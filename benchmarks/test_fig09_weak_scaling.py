"""Bench: Figure 9 — weak-scaling FLOP utilization, all algorithms.

Regenerates both charts (GPT-3 and Megatron-NLG, 16..256 chips, seven
algorithms) and the paper's headline end-to-end speedups.
"""

import pytest

from repro.experiments import fig09_weak_scaling
from repro.models import GPT3_175B, MEGATRON_NLG_530B


@pytest.mark.repro("Figure 9")
def test_fig09_weak_scaling(benchmark, show):
    rows = benchmark.pedantic(fig09_weak_scaling.run, rounds=1, iterations=1)

    # MeshSlice is the fastest algorithm at every point it shares with
    # a competitor (Section 5.1.1).
    for model in (GPT3_175B.name, MEGATRON_NLG_530B.name):
        for chips in (16, 64, 256):
            utils = {
                r.algorithm: r.utilization
                for r in rows
                if r.model == model and r.chips == chips
                and r.utilization is not None
            }
            assert max(utils, key=utils.get) == "meshslice", (model, chips)

    gpt3_fc, gpt3_e2e = fig09_weak_scaling.speedup_over(rows, GPT3_175B.name, 256)
    mt_fc, mt_e2e = fig09_weak_scaling.speedup_over(
        rows, MEGATRON_NLG_530B.name, 256
    )
    assert gpt3_e2e > 0.05  # paper: +12.0%
    assert mt_e2e > 0.05    # paper: +23.4%

    benchmark.extra_info["gpt3_e2e_speedup_vs_wang"] = round(gpt3_e2e, 4)
    benchmark.extra_info["megatron_e2e_speedup_vs_wang"] = round(mt_e2e, 4)
    benchmark.extra_info["paper_gpt3"] = 0.120
    benchmark.extra_info["paper_megatron"] = 0.234

    from repro.experiments import render_table

    table = render_table(
        ["model", "chips", "algorithm", "mesh", "FLOP util"],
        [(r.model, r.chips, r.algorithm, r.mesh, r.utilization) for r in rows],
    )
    show(
        "Figure 9: weak scaling",
        table
        + f"\nGPT-3 e2e speedup over Wang: {gpt3_e2e:+.1%} (paper +12.0%)"
        + f"\nMegatron e2e speedup over Wang: {mt_e2e:+.1%} (paper +23.4%)",
    )
