"""Bench: Figure 13 — cost model vs simulation across mesh shapes."""

import pytest

from repro.experiments import fig13_mesh_shapes, render_table
from repro.models import GPT3_175B, MEGATRON_NLG_530B


@pytest.mark.repro("Figure 13")
def test_fig13_mesh_shapes(benchmark, show):
    rows = benchmark.pedantic(fig13_mesh_shapes.run, rounds=1, iterations=1)

    for model in (GPT3_175B.name, MEGATRON_NLG_530B.name):
        est, sim = fig13_mesh_shapes.optimal_shapes(rows, model)
        # The whole point: the cost model identifies the optimal shape.
        assert est == sim, model

    # Mesh shape matters a lot: the paper reports up to 2.4x between
    # the best and worst shapes for GPT-3.
    gpt3 = [r.simulated_utilization for r in rows if r.model == GPT3_175B.name]
    spread = max(gpt3) / min(gpt3)
    assert spread > 1.4

    benchmark.extra_info["gpt3_shape_spread"] = round(spread, 3)
    benchmark.extra_info["paper_shape_spread"] = 2.4
    show(
        "Figure 13: mesh shapes",
        render_table(
            ["model", "mesh", "estimated", "simulated"],
            [(r.model, f"{r.mesh[0]}x{r.mesh[1]}",
              r.estimated_utilization, r.simulated_utilization) for r in rows],
        ),
    )
