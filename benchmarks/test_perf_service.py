"""Bench: the tuning service — store + dedup throughput vs cold tuning.

Not a paper artifact: tracks the serving layer's amortization. A
zipf-distributed query mix (heavy head of repeated configs, long tail
of variants) is replayed through :class:`repro.service.TunerService`
backed by a fresh on-disk plan store; the reference numbers — served
throughput, speedup over per-query cold ``tune()``, warm-start prune
ratio, latency tails — live in ``benchmarks/BENCH_service.json``. The
acceptance floor (served >= 5x cold) is enforced both here and by the
CI perf-smoke leg.
"""

import pytest

from repro.hw import TPUV4
from repro.obs.registry import registry
from repro.perf import clear_caches
from repro.service import default_catalog, run_load, zipf_mix

#: The benchmark mix: two models swept over adjacent chip counts, 64
#: zipf-weighted queries over the 6 distinct configs.
QUERIES = 64


def _mix():
    catalog = default_catalog(
        models=("gpt3-175b", "llama2-70b"),
        chip_counts=(16, 32, 64),
        batches=(8,),
        hw=TPUV4,
    )
    return zipf_mix(catalog, QUERIES, seed=0)


@pytest.mark.repro("tuning service")
def test_service_throughput(benchmark, tmp_path):
    mix = _mix()

    def serve_mix():
        clear_caches()
        return run_load(
            mix, str(tmp_path / "store"), workers=4, measure_cold=False
        )

    # One pedantic round: the first replay populates the store (cold
    # searches, warm-started where neighbors landed first), repeats
    # inside the mix hit memory/in-flight dedup; a steady-state replay
    # would be faster still.
    report = benchmark.pedantic(serve_mix, rounds=1, iterations=1)

    unique = list({r.cache_key(): r for r in mix}.values())
    cold = run_load(
        unique, None, workers=1, measure_cold=True
    ).cold_seconds_per_query

    served_per_query = report.elapsed_s / report.queries
    speedup = cold / served_per_query
    assert speedup >= 5.0, (
        f"service throughput floor: {speedup:.1f}x < 5x cold tune()"
    )

    reg = registry()
    tunings = reg.counter_value("service.warmstart.pass_tunings")
    prunes = reg.counter_value("service.warmstart.pass_prunes")
    benchmark.extra_info["queries"] = report.queries
    benchmark.extra_info["unique_configs"] = report.unique
    benchmark.extra_info["throughput_qps"] = round(report.throughput_qps, 1)
    benchmark.extra_info["cold_seconds_per_query"] = round(cold, 4)
    benchmark.extra_info["speedup_vs_cold"] = round(speedup, 1)
    benchmark.extra_info["store_hit_rate"] = round(
        report.stats["store_hit_rate"], 3
    )
    benchmark.extra_info["warmstart_prune_ratio"] = round(
        prunes / (tunings + prunes) if tunings + prunes else 0.0, 3
    )
    benchmark.extra_info["latency_p50_ms"] = round(
        report.stats["latency_p50_ms"], 2
    )
    benchmark.extra_info["latency_p95_ms"] = round(
        report.stats["latency_p95_ms"], 2
    )


@pytest.mark.repro("tuning service")
def test_warm_store_replay(benchmark, tmp_path):
    """Steady state: every query answered from the persistent store."""
    mix = _mix()
    store = str(tmp_path / "store")
    clear_caches()
    run_load(mix, store, workers=4, measure_cold=False)  # populate

    def replay():
        clear_caches()
        return run_load(mix, store, workers=4, measure_cold=False)

    report = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert report.stats["store_hit_rate"] == 1.0
    benchmark.extra_info["throughput_qps"] = round(report.throughput_qps, 1)
    benchmark.extra_info["store_hit_rate"] = report.stats["store_hit_rate"]
