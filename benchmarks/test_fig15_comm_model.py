"""Bench: Figure 15 — communication cost model accuracy."""

import pytest

from repro.experiments import fig15_comm_model_accuracy, render_table


@pytest.mark.repro("Figure 15")
def test_fig15_comm_model_accuracy(benchmark, show):
    rows = benchmark.pedantic(
        fig15_comm_model_accuracy.run, rounds=1, iterations=1
    )

    # 8 FC layers: 4 per model (Section 5.3.2).
    assert len(rows) == 8
    error = fig15_comm_model_accuracy.average_error(rows)
    # Paper: 5.1% average error on real hardware.
    assert error < 0.15
    # Skewed measurement can only exceed the synchronized estimate.
    for row in rows:
        assert row.measured_ms >= row.estimated_ms

    benchmark.extra_info["average_error"] = round(error, 4)
    benchmark.extra_info["paper_average_error"] = 0.051
    show(
        "Figure 15: comm model accuracy",
        render_table(
            ["model", "layer", "estimated (ms)", "measured (ms)", "error"],
            [(r.model, r.layer, r.estimated_ms, r.measured_ms,
              f"{r.error:.1%}") for r in rows],
        ),
    )
