"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's evaluation artifacts
(Figures 9-15, Tables 2-3, and the Section 7 traffic comparison),
asserts its qualitative claims, and records the headline numbers in
``benchmark.extra_info``. Run with ``pytest benchmarks/ --benchmark-only``;
add ``-s`` to see the rendered tables.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "repro(paper_ref): marks which paper artifact a bench regenerates"
    )


@pytest.fixture
def show():
    """Print a rendered experiment table (visible with -s)."""

    def _show(title, report):
        print(f"\n===== {title} =====")
        print(report)

    return _show
