"""Bench: Section 7 — 2.5D GeMM vs MeshSlice+DP per-chip traffic."""

import pytest

from repro.experiments import ablation_25d, render_table


@pytest.mark.repro("Section 7 traffic comparison")
def test_ablation_25d(benchmark, show):
    rows = benchmark.pedantic(ablation_25d.run, rounds=1, iterations=1)
    by_method = {r.method: r for r in rows}

    two5d = by_method["2.5D GeMM"]
    ms = by_method["MeshSlice+DP"]
    # Paper: 16x16x4 forced by the square-base constraint, 1.6 GB.
    assert two5d.topology == "16x16x4"
    assert two5d.per_chip_traffic_gb == pytest.approx(1.6, rel=0.10)
    # Paper: MeshSlice+DP picks 32x8x4 and moves only ~336 MB.
    assert ms.topology == "32x8x4"
    assert ms.per_chip_traffic_gb == pytest.approx(0.336, rel=0.10)
    assert two5d.per_chip_traffic_gb / ms.per_chip_traffic_gb > 4.0

    benchmark.extra_info["traffic_ratio"] = round(
        two5d.per_chip_traffic_gb / ms.per_chip_traffic_gb, 2
    )
    show(
        "Section 7: 2.5D vs MeshSlice+DP",
        render_table(
            ["method", "topology", "per-chip traffic (GB)"],
            [(r.method, r.topology, r.per_chip_traffic_gb) for r in rows],
        ),
    )
