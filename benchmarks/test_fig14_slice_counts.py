"""Bench: Figure 14 — cost model vs simulation across slice counts."""

import pytest

from repro.experiments import fig14_slice_counts, render_table
from repro.models import GPT3_175B, MEGATRON_NLG_530B


@pytest.mark.repro("Figure 14")
def test_fig14_slice_counts(benchmark, show):
    rows = benchmark.pedantic(fig14_slice_counts.run, rounds=1, iterations=1)

    for model in (GPT3_175B.name, MEGATRON_NLG_530B.name):
        est, sim = fig14_slice_counts.optimal_slices(rows, model)
        # The cost model and the simulator agree on the optimal S.
        assert est == sim, model
        # The optimum is interior: slicing helps, but not unboundedly.
        assert est > 1

    # The S = 1 endpoint (Collective-like) is visibly worse than the
    # optimum — the overlap gain the slicing unlocks.
    for model in (GPT3_175B.name,):
        series = {
            r.slices: r.simulated_utilization
            for r in rows
            if r.model == model and r.simulated_utilization is not None
        }
        assert max(series.values()) > 1.1 * series[1]

    benchmark.extra_info["gpt3_optimal_s"] = fig14_slice_counts.optimal_slices(
        rows, GPT3_175B.name
    )[1]
    show(
        "Figure 14: slice counts (32x8 mesh)",
        render_table(
            ["model", "S", "estimated", "simulated"],
            [(r.model, r.slices, r.estimated_utilization,
              r.simulated_utilization) for r in rows],
        ),
    )
