"""Bench: Figure 4 — algorithm timelines for one training GeMM."""

import pytest

from repro.experiments import fig04_timelines


@pytest.mark.repro("Figure 4")
def test_fig04_timelines(benchmark, show):
    rows = benchmark.pedantic(fig04_timelines.run, rounds=1, iterations=1)
    order = fig04_timelines.ordering(rows)
    # MeshSlice attains the fastest execution (the Figure 4 takeaway).
    assert order[0] == "meshslice"
    # Collective beats SUMMA's sync-heavy broadcasts at this scale.
    assert order.index("collective") < order.index("summa")

    benchmark.extra_info["order"] = order
    show("Figure 4: timelines", fig04_timelines.main())
