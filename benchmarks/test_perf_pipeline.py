"""Bench: the fast-path pipeline — engine throughput and grid wall time.

Not a paper artifact: tracks the simulator's own performance so
regressions in the event-heap engine, the memoization layer, or the
mesh-search pruning are caught. Reference numbers (including the
pre-optimization baseline) live in ``benchmarks/BENCH_pipeline.json``.
"""

import time

import pytest

from repro.algorithms import GeMMConfig
from repro.core.gemm import GeMMShape
from repro.experiments import fig09_weak_scaling
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.perf import cache_stats, clear_caches
from repro.perf.pipeline import built_program
from repro.sim.engine import Engine


def _engine_corpus():
    """A mix of small and large per-pass programs, engine-input form."""
    corpus = []
    for algorithm, mesh, slices in (
        ("meshslice", Mesh2D(16, 16), 16),
        ("meshslice", Mesh2D(4, 4), 64),
        ("wang", Mesh2D(8, 8), 8),
        ("summa", Mesh2D(8, 8), 16),
        ("cannon", Mesh2D(8, 8), 1),
        ("collective", Mesh2D(16, 4), 1),
    ):
        cfg = GeMMConfig(
            shape=GeMMShape(m=4096, n=8192, k=4096),
            mesh=mesh,
            slices=slices,
        )
        program = built_program(algorithm, cfg, TPUV4)
        corpus.append((program.activities, program.shared_capacities))
    return corpus


@pytest.mark.repro("fast path")
def test_engine_throughput(benchmark):
    corpus = _engine_corpus()
    activities = sum(len(acts) for acts, _caps in corpus)

    def run_corpus():
        for acts, caps in corpus:
            Engine(acts, caps).run()

    benchmark.pedantic(run_corpus, rounds=5, iterations=1, warmup_rounds=1)
    per_run = benchmark.stats.stats.min
    benchmark.extra_info["programs"] = len(corpus)
    benchmark.extra_info["activities"] = activities
    benchmark.extra_info["activities_per_sec"] = round(activities / per_run)


@pytest.mark.repro("fast path")
def test_compiled_engine_throughput(benchmark):
    """Compiled vs heap on a deep layer stack, bit-identity enforced.

    A reduced single-program slice of the full corpus recorded in
    ``BENCH_pipeline.json`` (which stacks 192 layers over six
    algorithm/mesh points); one 48-layer MeshSlice stack keeps the
    benchmark runtime low while still exercising motif detection and
    steady-state composition.
    """
    from repro.sim.compiled import CompiledEngine
    from repro.sim.program import repeat_program

    cfg = GeMMConfig(
        shape=GeMMShape(m=8192, n=8192, k=8192),
        mesh=Mesh2D(16, 16),
        slices=64,
    )
    stack = repeat_program(built_program("meshslice", cfg, TPUV4), 48)
    acts = stack.activities
    caps = stack.shared_capacities
    motifs = stack.meta.get("motifs")

    heap_seconds = float("inf")
    for _round in range(3):
        start = time.perf_counter()
        heap_spans = Engine(acts, caps).run()
        heap_seconds = min(heap_seconds, time.perf_counter() - start)
    heap_key = [(s.aid, s.label, s.start, s.end) for s in heap_spans]

    def compiled_run():
        return CompiledEngine(acts, caps, motifs=motifs).run()

    spans = benchmark.pedantic(
        compiled_run, rounds=5, iterations=1, warmup_rounds=1
    )
    assert [(s.aid, s.label, s.start, s.end) for s in spans] == heap_key

    stats_engine = CompiledEngine(acts, caps, motifs=motifs)
    stats_engine.run()
    per_run = benchmark.stats.stats.min
    benchmark.extra_info["activities"] = len(acts)
    benchmark.extra_info["heap_activities_per_sec"] = round(
        len(acts) / heap_seconds
    )
    benchmark.extra_info["compiled_activities_per_sec"] = round(
        len(acts) / per_run
    )
    benchmark.extra_info["speedup_vs_heap"] = round(heap_seconds / per_run, 2)
    benchmark.extra_info["composed_fraction"] = round(
        stats_engine.stats.composed_fraction, 3
    )


@pytest.mark.repro("fast path")
def test_fig09_grid_wall_time(benchmark):
    def cold_grid():
        clear_caches()
        start = time.perf_counter()
        rows = fig09_weak_scaling.run()
        elapsed = time.perf_counter() - start
        return rows, elapsed

    rows, elapsed = benchmark.pedantic(cold_grid, rounds=3, iterations=1)
    assert len(rows) == 70  # 2 models x 5 sizes x 7 algorithms

    stats = cache_stats()
    sim = stats["simulated_pass"]
    benchmark.extra_info["fig9_grid_seconds"] = round(elapsed, 3)
    benchmark.extra_info["simulated_pass_calls"] = sim.calls
    benchmark.extra_info["simulated_pass_hit_rate"] = round(sim.hit_rate, 3)
    benchmark.extra_info["unique_simulations"] = sim.entries
