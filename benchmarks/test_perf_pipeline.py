"""Bench: the fast-path pipeline — engine throughput and grid wall time.

Not a paper artifact: tracks the simulator's own performance so
regressions in the event-heap engine, the memoization layer, or the
mesh-search pruning are caught. Reference numbers (including the
pre-optimization baseline) live in ``benchmarks/BENCH_pipeline.json``.
"""

import time

import pytest

from repro.algorithms import GeMMConfig
from repro.core.gemm import GeMMShape
from repro.experiments import fig09_weak_scaling
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.perf import cache_stats, clear_caches
from repro.perf.pipeline import built_program
from repro.sim.engine import Engine


def _engine_corpus():
    """A mix of small and large per-pass programs, engine-input form."""
    corpus = []
    for algorithm, mesh, slices in (
        ("meshslice", Mesh2D(16, 16), 16),
        ("meshslice", Mesh2D(4, 4), 64),
        ("wang", Mesh2D(8, 8), 8),
        ("summa", Mesh2D(8, 8), 16),
        ("cannon", Mesh2D(8, 8), 1),
        ("collective", Mesh2D(16, 4), 1),
    ):
        cfg = GeMMConfig(
            shape=GeMMShape(m=4096, n=8192, k=4096),
            mesh=mesh,
            slices=slices,
        )
        program = built_program(algorithm, cfg, TPUV4)
        corpus.append((program.activities, program.shared_capacities))
    return corpus


@pytest.mark.repro("fast path")
def test_engine_throughput(benchmark):
    corpus = _engine_corpus()
    activities = sum(len(acts) for acts, _caps in corpus)

    def run_corpus():
        for acts, caps in corpus:
            Engine(acts, caps).run()

    benchmark.pedantic(run_corpus, rounds=5, iterations=1, warmup_rounds=1)
    per_run = benchmark.stats.stats.min
    benchmark.extra_info["programs"] = len(corpus)
    benchmark.extra_info["activities"] = activities
    benchmark.extra_info["activities_per_sec"] = round(activities / per_run)


@pytest.mark.repro("fast path")
def test_fig09_grid_wall_time(benchmark):
    def cold_grid():
        clear_caches()
        start = time.perf_counter()
        rows = fig09_weak_scaling.run()
        elapsed = time.perf_counter() - start
        return rows, elapsed

    rows, elapsed = benchmark.pedantic(cold_grid, rounds=3, iterations=1)
    assert len(rows) == 70  # 2 models x 5 sizes x 7 algorithms

    stats = cache_stats()
    sim = stats["simulated_pass"]
    benchmark.extra_info["fig9_grid_seconds"] = round(elapsed, 3)
    benchmark.extra_info["simulated_pass_calls"] = sim.calls
    benchmark.extra_info["simulated_pass_hit_rate"] = round(sim.hit_rate, 3)
    benchmark.extra_info["unique_simulations"] = sim.entries
