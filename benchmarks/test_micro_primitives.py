"""Microbenchmarks of the reproduction's own hot primitives.

Unlike the figure/table benches (which time one full experiment these
measure repeated executions of the core building blocks: the blocked
slicing kernel, the functional ring collectives, the functional
MeshSlice GeMM, the activity-level simulator, and the autotuner. They
double as ablations for design choices DESIGN.md calls out (block size
B, engine scalability).
"""

import numpy as np
import pytest

from repro.algorithms import GeMMConfig, get_algorithm
from repro.autotuner import tune
from repro.comm.ops import ring_allgather
from repro.core import GeMMShape, meshslice_os, slice_col
from repro.core.dataflow import Dataflow
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.models import GPT3_175B
from repro.sim import simulate


@pytest.fixture(scope="module")
def big_shard():
    return np.random.default_rng(7).standard_normal((512, 4096))


@pytest.mark.repro("Algorithm 2 (blocked slicing)")
@pytest.mark.parametrize("block", [1, 8, 64])
def test_slice_col_block_size_ablation(benchmark, big_shard, block):
    """Blocked slicing keeps copies contiguous: larger B, faster copy.

    This is the reproduction-side analogue of the paper's B = 8 choice
    for TPU memory chunks.
    """
    result = benchmark(slice_col, big_shard, 8, 3, block)
    assert result.shape == (512, 512)


@pytest.mark.repro("Figure 3 (ring AllGather)")
@pytest.mark.parametrize("ring", [4, 16])
def test_ring_allgather_functional(benchmark, ring):
    chunks = [np.full((64, 64), r, dtype=np.float64) for r in range(ring)]
    gathered = benchmark(ring_allgather, chunks, 0)
    assert gathered[0].shape == (64 * ring, 64)


@pytest.mark.repro("Figure 5 (MeshSlice OS functional)")
def test_meshslice_functional_gemm(benchmark):
    rng = np.random.default_rng(3)
    mesh = Mesh2D(4, 2)
    a = rng.standard_normal((128, 256))
    b = rng.standard_normal((256, 128))
    c = benchmark(meshslice_os, a, b, mesh, 4, 2)
    assert np.allclose(c, a @ b)


@pytest.mark.repro("Section 4.1 (cluster simulator)")
def test_simulator_throughput(benchmark):
    """One MeshSlice GeMM simulation at S=32 (hundreds of activities)."""
    alg = get_algorithm("meshslice")
    cfg = GeMMConfig(
        GeMMShape(262144, 49152, 12288), Mesh2D(32, 8), Dataflow.OS, slices=32
    )

    def run():
        return simulate(alg.build_program(cfg, TPUV4), TPUV4)

    result = benchmark(run)
    assert result.makespan > 0


@pytest.mark.repro("Section 3.2 (LLM autotuner)")
def test_autotuner_speed(benchmark):
    """The paper: the autotuner finishes in seconds. Ours: well under."""
    result = benchmark(tune, GPT3_175B, 128, 256, TPUV4)
    assert result.mesh.size == 256
