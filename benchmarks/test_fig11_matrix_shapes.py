"""Bench: Figure 11 — the 16 distinct training GeMM shapes at 256 chips."""

import pytest

from repro.experiments import fig11_matrix_shapes, render_table


@pytest.mark.repro("Figure 11")
def test_fig11_matrix_shapes(benchmark, show):
    rows = benchmark.pedantic(fig11_matrix_shapes.run, rounds=1, iterations=1)

    # 8 distinct shapes per model, 16 total (Section 5.1.4).
    labels = {(r.model, r.label) for r in rows}
    assert len(labels) == 16

    # MeshSlice is the fastest on every shape.
    by_shape = {}
    for r in rows:
        if r.utilization is not None:
            by_shape.setdefault((r.model, r.label), {})[r.algorithm] = r.utilization
    for key, utils in by_shape.items():
        assert max(utils, key=utils.get) == "meshslice", key

    vs_collective = fig11_matrix_shapes.average_speedup(
        rows, "meshslice", "collective"
    )
    vs_wang = fig11_matrix_shapes.average_speedup(rows, "meshslice", "wang")
    assert vs_collective > 0.10  # paper: +27.8%
    assert vs_wang > 0.03        # paper: +19.1%

    benchmark.extra_info["avg_speedup_vs_collective"] = round(vs_collective, 4)
    benchmark.extra_info["avg_speedup_vs_wang"] = round(vs_wang, 4)
    show(
        "Figure 11: per-shape utilization",
        render_table(
            ["model", "gemm", "(M,N,K)", "algorithm", "util"],
            [(r.model, r.label, str(r.shape), r.algorithm, r.utilization)
             for r in rows],
        ),
    )
