"""Bench: Figure 12 — strong-scaling FLOP utilization (batch 32)."""

import pytest

from repro.experiments import fig12_strong_scaling, render_table
from repro.models import GPT3_175B


@pytest.mark.repro("Figure 12")
def test_fig12_strong_scaling(benchmark, show):
    rows = benchmark.pedantic(fig12_strong_scaling.run, rounds=1, iterations=1)

    # FSDP is absent by construction (cannot strong-scale).
    assert all(r.algorithm != "fsdp" for r in rows)

    utils = {
        (r.model, r.chips, r.algorithm): r.utilization
        for r in rows
        if r.utilization is not None
    }
    model = GPT3_175B.name
    # 16 chips is compute-bound: every 2D algorithm is decent there.
    for alg in ("meshslice", "collective", "wang"):
        assert utils[(model, 16, alg)] > 0.4
    # Utilization decays under strong scaling.
    for alg in ("meshslice", "collective"):
        assert utils[(model, 256, alg)] < utils[(model, 16, alg)]
    # MeshSlice stays ahead of SUMMA and 1D TP at 256 (Section 5.1.3).
    assert utils[(model, 256, "meshslice")] > utils[(model, 256, "summa")]
    assert utils[(model, 256, "meshslice")] > utils[(model, 256, "1dtp")]

    benchmark.extra_info["gpt3_meshslice_16"] = round(utils[(model, 16, "meshslice")], 3)
    benchmark.extra_info["gpt3_meshslice_256"] = round(utils[(model, 256, "meshslice")], 3)
    show(
        "Figure 12: strong scaling",
        render_table(
            ["model", "chips", "algorithm", "mesh", "util"],
            [(r.model, r.chips, r.algorithm, r.mesh, r.utilization) for r in rows],
        ),
    )
