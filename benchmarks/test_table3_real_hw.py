"""Bench: Table 3 — MeshSlice on the real 4x4 TPUv4 cloud preset."""

import pytest

from repro.experiments import render_table, table3_real_hw


@pytest.mark.repro("Table 3")
def test_table3_real_hw(benchmark, show):
    rows = benchmark.pedantic(table3_real_hw.run, rounds=1, iterations=1)

    for row in rows:
        # Without AG/RdS-compute overlap, MeshSlice pays a modest
        # intrinsic overhead relative to Collective (paper: ~4.5%).
        assert row.meshslice < row.collective
        assert row.meshslice_overhead < 0.30
        # Wang gains little: the compiler defeats most SendRecv overlap.
        assert abs(row.wang - row.collective) < 0.15 * row.collective
        # If collectives could overlap, MeshSlice would win decisively
        # (paper estimates 38.6% / 32.8% speedups over Collective).
        assert row.meshslice_overlap > 1.2 * row.collective

    benchmark.extra_info["rows"] = [
        {
            "model": r.model,
            "collective": round(r.collective, 4),
            "wang": round(r.wang, 4),
            "meshslice": round(r.meshslice, 4),
            "meshslice_overlap": round(r.meshslice_overlap, 4),
        }
        for r in rows
    ]
    show(
        "Table 3: real 4x4 TPUv4",
        render_table(
            ["model", "collective", "wang", "meshslice", "ms+overlap",
             "overhead"],
            [(r.model, r.collective, r.wang, r.meshslice,
              r.meshslice_overlap, f"{r.meshslice_overhead:+.1%}")
             for r in rows],
        ),
    )
