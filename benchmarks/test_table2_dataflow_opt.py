"""Bench: Table 2 — MeshSlice dataflow optimization effect."""

import pytest

from repro.experiments import render_table, table2_dataflow_opt
from repro.models import GPT3_175B, MEGATRON_NLG_530B


@pytest.mark.repro("Table 2")
def test_table2_dataflow_opt(benchmark, show):
    rows = benchmark.pedantic(table2_dataflow_opt.run, rounds=1, iterations=1)
    by_model = {r.model: r for r in rows}

    gpt3 = by_model[GPT3_175B.name]
    megatron = by_model[MEGATRON_NLG_530B.name]

    # Optimization never hurts and visibly helps GPT-3 (paper: +21.2%).
    assert gpt3.speedup > 0.02
    assert megatron.speedup >= 0.0
    # GPT-3 benefits more than the compute-heavy Megatron (paper:
    # 21.2% vs 5.1%): the smaller model cannot hide the extra traffic.
    assert gpt3.speedup > megatron.speedup

    benchmark.extra_info["gpt3_speedup"] = round(gpt3.speedup, 4)
    benchmark.extra_info["megatron_speedup"] = round(megatron.speedup, 4)
    benchmark.extra_info["paper"] = {"gpt3": 0.212, "megatron": 0.051}
    show(
        "Table 2: dataflow optimization",
        render_table(
            ["model", "not optimized", "optimized", "speedup"],
            [(r.model, r.not_optimized, r.optimized, f"{r.speedup:+.1%}")
             for r in rows],
        ),
    )
