"""Benches: the Section 2.2 / Section 6 extension ablations.

Beyond the paper's evaluation section, these regenerate the
quantitative claims of its introduction and discussion: the 3D-cluster
DP-traffic argument, MeshSlice on logical (GPU-style) meshes with NIC
contention, and inference-phase behaviour.
"""

import pytest

from repro.experiments import (
    ablation_3d,
    ablation_inference,
    ablation_logical_mesh,
    render_table,
)


@pytest.mark.repro("Section 2.2 (3D cluster composition)")
def test_ablation_3d(benchmark, show):
    rows = benchmark.pedantic(ablation_3d.run, rounds=1, iterations=1)

    # The intro's arithmetic: 16x and 64x per-chip DP traffic cuts.
    p_scale_out, p_same_cluster = ablation_3d.paper_style_ratios()
    assert p_scale_out == pytest.approx(16.0)
    assert p_same_cluster == pytest.approx(64.0)
    # Exact ring accounting still shows large reductions.
    scale_out, same_cluster = ablation_3d.traffic_ratios(rows)
    assert scale_out == pytest.approx(16.0, rel=0.01)
    assert same_cluster > 3.0
    # Fewer pipeline stages -> fewer bubbles at the same cluster size.
    by_label = {r.label: r for r in rows}
    assert (
        by_label["same-cluster 128-way 2D TP"].bubble_fraction
        < by_label["baseline 8-way 1D TP"].bubble_fraction
    )

    benchmark.extra_info["paper_ratios"] = [16.0, 64.0]
    benchmark.extra_info["ring_accounting_ratios"] = [
        round(scale_out, 2), round(same_cluster, 2)
    ]
    show(
        "Section 2.2: 3D composition",
        render_table(
            ["configuration", "chips", "DP GB/chip", "bubble", "step (s)",
             "util"],
            [(r.label, r.chips, r.dp_traffic_gb, r.bubble_fraction,
              r.step_seconds, r.utilization) for r in rows],
        ),
    )


@pytest.mark.repro("Section 6 (logical mesh / GPU clusters)")
def test_ablation_logical_mesh(benchmark, show):
    rows = benchmark.pedantic(
        ablation_logical_mesh.run, rounds=1, iterations=1
    )
    by_alg = {r.algorithm: r for r in rows}

    for row in rows:
        assert row.degradation is not None
        assert row.degradation >= -0.02
    # MeshSlice still wins on the logical mesh.
    assert (
        by_alg["meshslice"].logical_utilization
        > by_alg["wang"].logical_utilization
        > by_alg["collective"].logical_utilization
    )
    # The contention-aware cost model still finds the simulator's
    # optimal mesh shape (the paper's required autotuner modification).
    est, sim = ablation_logical_mesh.cost_model_agreement()
    assert est == sim

    benchmark.extra_info["meshslice_degradation"] = round(
        by_alg["meshslice"].degradation, 4
    )
    show(
        "Section 6: logical mesh",
        render_table(
            ["algorithm", "torus util", "logical util", "degradation"],
            [(r.algorithm, r.torus_utilization, r.logical_utilization,
              f"{r.degradation:.1%}") for r in rows],
        ),
    )


@pytest.mark.repro("Section 6 (inference)")
def test_ablation_inference(benchmark, show):
    rows = benchmark.pedantic(ablation_inference.run, rounds=1, iterations=1)

    # Phase classification: decode memory-bound, prefill not.
    for row in rows:
        assert row.memory_bound == (row.phase == "decode")
    # The tuner backs slicing off for decode.
    prefill_s = ablation_inference.mean_tuned_slices(rows, "prefill")
    decode_s = ablation_inference.mean_tuned_slices(rows, "decode")
    assert decode_s < prefill_s
    # MeshSlice never loses to Collective in either phase.
    by_key = {(r.phase, r.layer, r.algorithm): r.latency_ms for r in rows}
    for phase in ("prefill", "decode"):
        for layer in ("qkv", "attn_out", "ffn_in", "ffn_out"):
            ms = by_key[(phase, layer, "meshslice")]
            coll = by_key[(phase, layer, "collective")]
            assert ms <= coll * 1.02, (phase, layer)

    benchmark.extra_info["mean_slices"] = {
        "prefill": round(prefill_s, 2), "decode": round(decode_s, 2)
    }
    show(
        "Section 6: inference phases",
        render_table(
            ["phase", "layer", "algorithm", "mem-bound", "S", "latency (ms)"],
            [(r.phase, r.layer, r.algorithm, r.memory_bound, r.tuned_slices,
              r.latency_ms) for r in rows],
        ),
    )


@pytest.mark.repro("Section 4.2 (loop unrolling)")
def test_ablation_unrolling(benchmark, show):
    from repro.experiments import ablation_unrolling

    rows = benchmark.pedantic(ablation_unrolling.run, rounds=1, iterations=1)
    # SUMMA benefits greatly from the paper's unrolling; Wang modestly.
    assert ablation_unrolling.unrolling_speedup(rows, "summa") > 0.20
    assert ablation_unrolling.unrolling_speedup(rows, "wang") >= -0.01
    show(
        "Section 4.2: loop unrolling",
        render_table(
            ["algorithm", "variant", "iterations", "util", "time (ms)"],
            [(r.algorithm, r.variant, r.iterations, r.utilization,
              r.makespan_ms) for r in rows],
        ),
    )
