"""Bench: Figure 10 — communication-time breakdown at 256 chips."""

import pytest

from repro.experiments import fig10_comm_breakdown, render_table
from repro.models import GPT3_175B


@pytest.mark.repro("Figure 10")
def test_fig10_comm_breakdown(benchmark, show):
    rows = benchmark.pedantic(fig10_comm_breakdown.run, rounds=1, iterations=1)
    by_key = {(r.model, r.algorithm): r for r in rows}

    gpt3 = lambda alg: by_key[(GPT3_175B.name, alg)]  # noqa: E731
    # Collective executes the fewest, largest collectives -> least
    # total communication time (Section 5.1.2).
    for other in ("summa", "wang", "meshslice", "1dtp", "fsdp"):
        if gpt3(other).total is not None:
            assert gpt3("collective").total <= gpt3(other).total, other
    # SUMMA's synchronization dominates its own breakdown.
    assert gpt3("summa").sync > gpt3("summa").launch
    assert gpt3("summa").sync > gpt3("collective").sync * 5
    # Wang pays launches for its many SendRecvs; MeshSlice pays syncs
    # for its many partial collectives.
    assert gpt3("wang").launch > gpt3("collective").launch
    assert gpt3("meshslice").sync > gpt3("collective").sync
    # 1D methods have by far the highest transfer cost.
    assert gpt3("1dtp").transfer > 3 * gpt3("collective").transfer

    benchmark.extra_info["gpt3_collective_total"] = round(gpt3("collective").total, 3)
    benchmark.extra_info["gpt3_meshslice_total"] = round(gpt3("meshslice").total, 3)
    show(
        "Figure 10: comm breakdown (relative to compute)",
        render_table(
            ["model", "algorithm", "launch", "transfer", "sync", "total"],
            [(r.model, r.algorithm, r.launch, r.transfer, r.sync, r.total)
             for r in rows],
        ),
    )
