"""Retarget the autotuner to a hypothetical next-generation accelerator.

The paper observes that "the compute power of ML accelerators is
growing faster than the bandwidth of ICIs" (Section 5.1.3). This
example builds a hypothetical chip with 4x the compute of TPUv4 but the
same interconnect, and shows how the autotuner responds: communication
becomes relatively more expensive, optimal mesh shapes shift, slice
counts change, and MeshSlice's advantage over non-overlapping
algorithms widens.

Run:  python examples/custom_hardware.py
"""

from repro.experiments import best_block_run, render_table, weak_scaling_batch
from repro.autotuner import tune_model
from repro.hw import TPUV4
from repro.models import GPT3_175B

#: TPUv4 with 4x the matrix throughput and HBM, same ICI links.
TPU_NEXT = TPUV4.with_overrides(
    name="tpu-next-hypothetical",
    peak_flops=4 * TPUV4.peak_flops,
    hbm_bandwidth=4 * TPUV4.hbm_bandwidth,
)


def main() -> None:
    chips = 256
    batch = weak_scaling_batch(chips)
    model = GPT3_175B

    rows = []
    for hw in (TPUV4, TPU_NEXT):
        tuned = tune_model(model, batch, chips, hw)
        for alg in ("meshslice", "wang", "collective"):
            run = best_block_run(alg, model, batch, chips, hw)
            rows.append(
                (
                    hw.name,
                    alg,
                    str(run.mesh),
                    run.utilization(hw),
                    run.seconds * 1e3,
                )
            )
        rows.append((hw.name, "(autotuner mesh)", str(tuned.mesh), None, None))

    print(f"{model.name}, {chips} chips, batch {batch}\n")
    print(
        render_table(
            ["hardware", "algorithm", "mesh", "FLOP util", "FC block (ms)"],
            rows,
        )
    )

    def util(hw_name, alg):
        for name, a, _m, u, _t in rows:
            if name == hw_name and a == alg:
                return u
        raise KeyError((hw_name, alg))

    gap_now = util("tpuv4-sim", "meshslice") / util("tpuv4-sim", "collective")
    gap_next = util(TPU_NEXT.name, "meshslice") / util(TPU_NEXT.name, "collective")
    print(
        f"\nMeshSlice/Collective advantage: {gap_now - 1:+.1%} on TPUv4, "
        f"{gap_next - 1:+.1%} on the compute-heavy chip —"
    )
    print(
        "overlap matters more as compute outgrows interconnect bandwidth,"
        " the paper's Section 5.1.3 trend."
    )


if __name__ == "__main__":
    main()
