"""Head-to-head comparison of all seven distributed GeMM algorithms.

Reproduces the spirit of the paper's Figure 4: one large training GeMM
on a fixed cluster, each algorithm at its own optimal mesh shape, with
a timeline per algorithm showing *why* the rankings come out the way
they do (Cannon's skew prologue, SUMMA's sync-heavy broadcasts,
Collective's exposed collectives, Wang's one-direction overlap, and
MeshSlice hiding both directions).

Run:  python examples/algorithm_shootout.py [chips]
"""

import dataclasses
import sys

from repro.algorithms import GeMMConfig, get_algorithm
from repro.core import Dataflow, GeMMShape
from repro.experiments import candidate_meshes, render_table, tuned_slices
from repro.hw import TPUV4
from repro.sim import ascii_timeline, simulate

ALGORITHMS = ("cannon", "summa", "collective", "wang", "meshslice", "1dtp", "fsdp")


def best_run(name: str, shape: GeMMShape, chips: int):
    """The algorithm's best (mesh, config, result) on this cluster."""
    alg = get_algorithm(name)
    best = None
    for mesh in candidate_meshes(name, chips):
        base = GeMMConfig(shape, mesh, Dataflow.OS, slices=1)
        slices = 1
        if name not in ("collective", "cannon"):
            slices = tuned_slices(base, TPUV4)
        cfg = dataclasses.replace(base, slices=slices)
        if not alg.supports(cfg):
            continue
        result = simulate(alg.build_program(cfg, TPUV4), TPUV4)
        if best is None or result.makespan < best[2].makespan:
            best = (mesh, cfg, result)
    return best


def main(chips: int = 256) -> None:
    # GPT-3's FFN input projection at weak-scaling batch (Section 4.4).
    shape = GeMMShape(m=1024 * chips, n=49152, k=12288)
    print(f"GeMM {shape} on {chips} chips (TPUv4 model)\n")

    rows = []
    timelines = []
    for name in ALGORITHMS:
        found = best_run(name, shape, chips)
        if found is None:
            rows.append((name, "-", None, None, None))
            continue
        mesh, cfg, result = found
        rows.append(
            (
                name,
                str(mesh),
                cfg.slices,
                result.makespan * 1e3,
                result.flop_utilization(),
            )
        )
        timelines.append((name, result))

    print(render_table(
        ["algorithm", "mesh", "S", "time (ms)", "FLOP util"], rows
    ))

    print("\nTimelines (compute '#', communication '=', slicing '.'):")
    for name, result in timelines:
        print(f"\n--- {name} ---")
        print(ascii_timeline(result.spans, width=76))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 256)
