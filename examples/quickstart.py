"""Quickstart: run a MeshSlice 2D GeMM, verify it, and simulate it.

Demonstrates the two planes of the library:

1. the *functional* plane — execute the sliced algorithm of the paper's
   Figure 5 on numpy shards and check it against a local matmul, and
2. the *timing* plane — build the representative-chip program for a
   large training GeMM, simulate it on the TPUv4 cluster model, and
   render the Figure 4-style timeline showing communication hidden
   behind computation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Mesh2D, meshslice_os
from repro.algorithms import GeMMConfig, get_algorithm
from repro.core import Dataflow, GeMMShape
from repro.hw import TPUV4
from repro.sim import simulate


def functional_demo() -> None:
    print("=== Functional plane: bit-exact sliced GeMM ===")
    mesh = Mesh2D(4, 2)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((64, 96))
    b = rng.standard_normal((96, 128))

    c = meshslice_os(a, b, mesh, slices=4, block=2)
    assert np.allclose(c, a @ b)
    print(f"C = A @ B on a {mesh} mesh with S=4, B=2: matches numpy. OK\n")


def timing_demo() -> None:
    print("=== Timing plane: one GPT-3 FC GeMM on 256 simulated TPUv4s ===")
    # The FFN input projection of GPT-3 at batch 128 (Section 4.4).
    shape = GeMMShape(m=262144, n=49152, k=12288)
    mesh = Mesh2D(32, 8)

    for name, slices in (("collective", 1), ("meshslice", 8)):
        cfg = GeMMConfig(shape, mesh, Dataflow.OS, slices=slices)
        result = simulate(get_algorithm(name).build_program(cfg, TPUV4), TPUV4)
        print(
            f"{name:>10s}: {result.makespan * 1e3:6.2f} ms, "
            f"FLOP utilization {result.flop_utilization():.1%}"
        )
        print(result.trace.timeline(width=76))
        print()


if __name__ == "__main__":
    functional_demo()
    timing_demo()
