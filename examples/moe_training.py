"""Combine MeshSlice 2D TP with expert parallelism (Section 6).

Builds an MoE variant of GPT-3 and sweeps how a fixed cluster splits
between expert parallelism (EP groups, connected by all-to-all
dispatch/combine) and 2D tensor parallelism inside each group (running
the expert FFN GeMMs with MeshSlice). More EP means smaller per-group
meshes (cheaper TP collectives, more parallel experts) but larger
all-to-all exchanges — the trade-off the paper's discussion projects.

Run:  python examples/moe_training.py [chips]
"""

import dataclasses
import sys

from repro.algorithms import GeMMConfig, get_algorithm
from repro.core.dataflow import Dataflow
from repro.experiments import render_table, tuned_slices
from repro.hw import TPUV4
from repro.mesh import mesh_shapes
from repro.models import GPT3_175B
from repro.models.moe import (
    MoEConfig,
    alltoall_seconds,
    dispatch_bytes,
    expert_ffn_gemms,
)
from repro.sim import simulate


def expert_group_seconds(moe, tokens, group_chips):
    """Best-mesh MeshSlice time of one expert's FFN GeMMs."""
    alg = get_algorithm("meshslice")
    best = None
    for mesh in mesh_shapes(group_chips, min_dim=2):
        total = 0.0
        feasible = True
        for _name, shape in expert_ffn_gemms(moe, tokens):
            base = GeMMConfig(shape, mesh, Dataflow.OS, slices=1)
            cfg = dataclasses.replace(base, slices=tuned_slices(base, TPUV4))
            if not alg.supports(cfg):
                feasible = False
                break
            total += simulate(alg.build_program(cfg, TPUV4), TPUV4).makespan
        if feasible and (best is None or total < best):
            best = total
    return best


def main(chips: int = 256) -> None:
    moe = MoEConfig(GPT3_175B, num_experts=16, top_k=2)
    tokens = GPT3_175B.tokens(chips // 2)
    print(f"{moe.name}: {chips} chips, {tokens} tokens/step\n")

    rows = []
    ep = 1
    while ep <= min(moe.num_experts, chips // 4):
        group_chips = chips // ep
        ffn = expert_group_seconds(moe, tokens, group_chips)
        if ffn is None:
            ep *= 2
            continue
        a2a = 2 * alltoall_seconds(  # dispatch + combine
            dispatch_bytes(moe, tokens), groups=ep, chips=chips, hw=TPUV4
        )
        # Each group runs num_experts / ep experts sequentially.
        experts_per_group = max(1, moe.num_experts // ep)
        total = experts_per_group * ffn + a2a
        rows.append(
            (
                ep,
                f"{group_chips} chips/group",
                experts_per_group,
                ffn * 1e3,
                a2a * 1e3,
                total * 1e3,
            )
        )
        ep *= 2

    print(render_table(
        ["EP", "TP group", "experts/group", "FFN (ms)", "all-to-all (ms)",
         "MoE FFN total (ms)"],
        rows,
    ))
    best = min(rows, key=lambda r: r[-1])
    print(
        f"\nbest split: EP={best[0]} with {best[1]} — expert parallelism "
        "amortizes the expert FFNs until the all-to-all dominates."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 256)
