"""Plan an LLM serving deployment with 2D TP (Section 6).

Inference has two very different phases: the prefill pass is a
training-like, compute-bound GeMM over all prompt tokens; the decode
pass produces one token per sequence per step and is memory- and
communication-bound. This example classifies both phases on the
roofline, lets the autotuner adapt the slice count per phase, and
reports per-layer and per-block latencies on a simulated TPUv4 mesh.

Run:  python examples/inference_serving.py [chips] [batch]
"""

import dataclasses
import sys

from repro.algorithms import GeMMConfig, get_algorithm
from repro.core.dataflow import Dataflow
from repro.experiments import render_table, tuned_slices
from repro.hw import TPUV4
from repro.mesh import mesh_shapes
from repro.models import GPT3_175B
from repro.models.inference import (
    InferenceWorkload,
    arithmetic_intensity,
    inference_gemms,
    is_memory_bound,
)
from repro.sim import simulate


def best_mesh_latency(shape, chips):
    alg = get_algorithm("meshslice")
    best = None
    for mesh in mesh_shapes(chips, min_dim=2):
        base = GeMMConfig(shape, mesh, Dataflow.OS, slices=1)
        cfg = dataclasses.replace(base, slices=tuned_slices(base, TPUV4))
        if not alg.supports(cfg):
            continue
        result = simulate(alg.build_program(cfg, TPUV4), TPUV4)
        if best is None or result.makespan < best[0]:
            best = (result.makespan, cfg)
    return best


def main(chips: int = 64, batch: int = 32) -> None:
    model = GPT3_175B
    ridge = TPUV4.effective_flops / TPUV4.hbm_bandwidth
    print(f"{model.name} serving on {chips} chips, batch {batch}")
    print(f"roofline ridge: {ridge:.0f} FLOP/byte\n")

    rows = []
    block_latency = {}
    for phase in ("prefill", "decode"):
        workload = InferenceWorkload(
            model=model, batch=batch, prompt_len=1024, phase=phase
        )
        total = 0.0
        for layer, shape in inference_gemms(workload):
            found = best_mesh_latency(shape, chips)
            latency, cfg = found
            total += latency
            rows.append(
                (
                    phase,
                    layer,
                    f"{arithmetic_intensity(shape):.0f}",
                    "yes" if is_memory_bound(shape, TPUV4) else "no",
                    str(cfg.mesh),
                    cfg.slices,
                    latency * 1e3,
                )
            )
        block_latency[phase] = total

    print(render_table(
        ["phase", "layer", "FLOP/byte", "mem-bound", "mesh", "S",
         "latency (ms)"],
        rows,
    ))
    decode_step = model.num_layers * block_latency["decode"]
    prefill_time = model.num_layers * block_latency["prefill"]
    print(f"\nprefill FC time (1024-token prompts): {prefill_time * 1e3:8.1f} ms")
    print(f"per-token decode FC latency:          {decode_step * 1e3:8.1f} ms")
    print(
        f"decode throughput: {batch / decode_step:,.0f} tokens/s across the "
        "batch (FC layers only)"
    )


if __name__ == "__main__":
    chips = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    main(chips, batch)
