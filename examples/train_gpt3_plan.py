"""Plan a GPT-3 training deployment with the MeshSlice LLM autotuner.

Given a cluster size and batch, the autotuner (Section 3.2):

1. picks the dataflow for each FC layer (largest matrix stationary,
   Table 1) and derives the shardings,
2. co-optimizes the torus mesh shape and the per-layer slice counts
   with analytical cost models,

and this script then cross-checks the chosen configuration with the
cluster simulator and reports the expected training step time.

Run:  python examples/train_gpt3_plan.py [chips] [batch]
"""

import sys

from repro.autotuner import plan_model, tune_model
from repro.experiments import end_to_end_step_seconds, render_table, run_block
from repro.hw import TPUV4
from repro.models import GPT3_175B


def main(chips: int = 256, batch: int = 128) -> None:
    model = GPT3_175B
    tokens = model.tokens(batch)
    print(f"Planning {model.name}: {chips} chips, batch {batch} "
          f"({tokens} tokens/step)\n")

    print("--- Phase 1: dataflows (largest matrix stationary) ---")
    plans = plan_model(model, tokens)
    rows = []
    for plan in plans:
        for pass_plan in plan.passes:
            rows.append(
                (
                    plan.layer.name,
                    pass_plan.pass_name,
                    plan.stationary + "-stn",
                    pass_plan.dataflow.name,
                    str(pass_plan.shape),
                )
            )
    print(render_table(["layer", "pass", "stationary", "dataflow", "GeMM"], rows))

    print("\n--- Phase 2: mesh shape and slice counts ---")
    result = tune_model(model, batch, chips, TPUV4)
    ranking = sorted(result.per_mesh_seconds.items(), key=lambda kv: kv[1])
    print(
        render_table(
            ["mesh", "estimated FC block (ms)"],
            [(f"{r}x{c}", seconds * 1e3) for (r, c), seconds in ranking],
        )
    )
    print(f"\nchosen mesh: {result.mesh}")
    print(
        render_table(
            ["layer", "pass", "slice count S"],
            [(t.layer_name, t.plan.pass_name, t.slices) for t in result.passes],
        )
    )

    print("\n--- Cross-check with the cluster simulator ---")
    block = run_block("meshslice", plans, result.mesh, TPUV4)
    step = end_to_end_step_seconds(model, batch, chips, TPUV4, block.seconds)
    print(f"simulated FC block time : {block.seconds * 1e3:8.2f} ms "
          f"(autotuner estimate {result.block_seconds * 1e3:.2f} ms)")
    print(f"FC FLOP utilization     : {block.utilization(TPUV4):8.1%}")
    print(f"end-to-end step time    : {step:8.2f} s "
          f"({model.num_layers} blocks incl. non-FC)")


if __name__ == "__main__":
    chips = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 128
    main(chips, batch)
