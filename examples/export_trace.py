"""Export a simulated MeshSlice timeline to Chrome tracing format.

Simulates one transformer block's FC training GeMMs and writes a
``trace.json`` loadable in ``chrome://tracing`` or https://ui.perfetto.dev,
with one track per chip resource (compute core, each ICI link
direction). The interactive view shows exactly the Figure 4 structure:
partial AllGathers racing ahead of the partial GeMMs, the prologue
before the first GeMM, and the epilogue after the last collective.

Run:  python examples/export_trace.py [output.json]
"""

import sys

from repro.autotuner import plan_model
from repro.experiments import run_block
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.models import GPT3_175B
from repro.sim import Trace


def main(path: str = "trace.json") -> None:
    model = GPT3_175B
    mesh = Mesh2D(32, 8)
    plans = plan_model(model, model.tokens(128))
    block = run_block("meshslice", plans, mesh, TPUV4)

    # Concatenate the 12 GeMMs' spans onto one timeline, offsetting
    # each GeMM by the end of the previous one.
    import dataclasses

    merged = []
    offset = 0.0
    for result, cfg in zip(block.results, block.configs):
        for span in result.spans:
            merged.append(
                dataclasses.replace(
                    span, start=span.start + offset, end=span.end + offset
                )
            )
        offset += result.makespan
    trace = Trace.from_spans(merged)
    trace.write_chrome(path)
    print(
        f"wrote {len(trace.spans)} spans ({offset * 1e3:.2f} ms of simulated "
        f"time) to {path}"
    )
    print("open chrome://tracing or https://ui.perfetto.dev and load it")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "trace.json")
