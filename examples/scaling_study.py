"""Weak- and strong-scaling study of 2D tensor parallelism.

Sweeps cluster sizes for a chosen model and prints utilization curves
as ASCII charts — the reproduction-side view of the paper's Figures 9
and 12 and of the Section 2.2 argument for replacing 8-way 1D TP with
wide 2D TP.

Run:  python examples/scaling_study.py [gpt3-175b|megatron-nlg-530b]
"""

import sys
from typing import Dict, List, Optional

from repro.experiments import best_block_run, render_table, weak_scaling_batch
from repro.hw import TPUV4
from repro.models import get_model

SIZES = (16, 32, 64, 128, 256)
ALGORITHMS = ("meshslice", "wang", "collective", "1dtp")


def sweep(model, strong_batch: Optional[int] = None) -> Dict[str, List]:
    curves: Dict[str, List] = {alg: [] for alg in ALGORITHMS}
    for chips in SIZES:
        batch = strong_batch if strong_batch is not None else weak_scaling_batch(chips)
        for alg in ALGORITHMS:
            run = best_block_run(alg, model, batch, chips, TPUV4)
            curves[alg].append(None if run is None else run.utilization(TPUV4))
    return curves


def ascii_chart(curves: Dict[str, List], width: int = 50) -> str:
    """Horizontal-bar chart of utilization per (algorithm, size)."""
    lines = []
    for alg, values in curves.items():
        lines.append(f"{alg}:")
        for chips, value in zip(SIZES, values):
            if value is None:
                lines.append(f"  {chips:4d} | n/a")
                continue
            bar = "#" * int(round(value * width))
            lines.append(f"  {chips:4d} |{bar:<{width}}| {value:.1%}")
    return "\n".join(lines)


def main(model_name: str = "gpt3-175b") -> None:
    model = get_model(model_name)

    print(f"=== Weak scaling (batch = chips / 2): {model.name} ===")
    weak = sweep(model)
    print(ascii_chart(weak))

    print(f"\n=== Strong scaling (batch = 32): {model.name} ===")
    strong = sweep(model, strong_batch=32)
    print(ascii_chart(strong))

    print("\n=== Summary ===")
    rows = []
    for alg in ALGORITHMS:
        rows.append(
            (
                alg,
                weak[alg][0],
                weak[alg][-1],
                strong[alg][-1],
            )
        )
    print(
        render_table(
            ["algorithm", "weak @16", "weak @256", "strong @256"], rows
        )
    )
    ms16, ms256 = weak["meshslice"][0], weak["meshslice"][-1]
    print(
        f"\nMeshSlice keeps {ms256 / ms16:.1%} of its 16-way efficiency at "
        f"256-way 2D TP (paper: 83-94%)."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gpt3-175b")
