"""Process-wide metrics registry: counters, gauges, histograms.

The observability layer's collection side. Instrumented code obtains
the active registry via :func:`registry` and bumps named, labeled
series; consumers take a :meth:`MetricsRegistry.snapshot` and hand it
to the exporters in :mod:`repro.obs.export`.

Design constraints, in order:

* **Zero-cost opt-out.** ``REPRO_NO_METRICS=1`` switches
  :func:`registry` to a shared :class:`NullRegistry` whose methods are
  empty; instrumentation sites then cost one environment probe and one
  no-op method call. The switch is honored *per call*, exactly like
  ``REPRO_NO_CACHE`` in :mod:`repro.perf.cache`, so one process can
  flip it (tests rely on this). Simulation *outputs* never depend on
  the switch — metrics are observations, not inputs.
* **Determinism.** Snapshots are sorted by ``(type, name, labels)``
  and labels are stored as sorted tuples, so two identical workloads
  produce byte-identical exports regardless of dict insertion or hash
  ordering (``PYTHONHASHSEED``).
* **Mergeability.** Every series is a sum (histograms carry bucket
  *counts*, not min/max), so deltas from worker processes can be added
  back into the parent registry in input order — see
  ``repro.experiments.common.grid_map``. Histogram *totals* are
  accumulated in exact fixed-point arithmetic (every finite double is
  an integer multiple of 2^-1074) and records carry the exact value
  alongside the rounded float, so a total assembled from worker deltas
  is bit-identical to one observed serially — float addition is not
  associative, and ulp drift between pooled and serial runs would
  break the byte-determinism contract the exporters promise.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Environment variable that disables metric collection when set to a
#: truthy value ("1", "true", "yes", "on" — case-insensitive).
KILL_SWITCH_ENV = "REPRO_NO_METRICS"

_TRUTHY = ("1", "true", "yes", "on")

# Per-call environment probe. ``os.environ.get`` re-encodes the key on
# every call; on CPython/POSIX read the underlying bytes dict directly
# (kept in sync by ``os.environ.__setitem__``, which monkeypatch.setenv
# and CLI code use). Same idiom as ``repro.perf.cache``.
if os.name == "posix" and isinstance(
    getattr(os.environ, "_data", None), dict
):
    _ENV_DATA = os.environ._data
    _KILL_KEY = os.fsencode(KILL_SWITCH_ENV)

    def _kill_switch_value() -> str:
        raw = _ENV_DATA.get(_KILL_KEY)
        return "" if raw is None else os.fsdecode(raw)

else:  # pragma: no cover - non-CPython / non-POSIX fallback

    def _kill_switch_value() -> str:
        return os.environ.get(KILL_SWITCH_ENV, "")


def metrics_enabled() -> bool:
    """Whether metric collection is active (the kill switch is unset)."""
    value = _kill_switch_value()
    return not value or value.strip().lower() not in _TRUTHY


#: Canonical label encoding: a tuple of (key, value) pairs sorted by
#: key. Hashable, order-independent, and deterministic to serialize.
Labels = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds): nanoseconds to
#: seventeen minutes in half-decade steps, plus a +inf overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (e / 2.0) for e in range(-18, 7)
)


def _labels_key(labels: Optional[Mapping[str, object]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


#: Fixed-point scale for exact histogram totals: 2^1074 is the
#: reciprocal of the smallest subnormal double, so every finite float
#: is an exact integer multiple of the unit and integer addition is
#: associative where float addition is not.
_FIXED_SHIFT = 1074
_FIXED_ONE = 1 << _FIXED_SHIFT


def _to_fixed(value: float) -> int:
    """A finite float as an exact multiple of 2^-1074."""
    num, den = value.as_integer_ratio()  # den is a power of two
    return num << (_FIXED_SHIFT - (den.bit_length() - 1))


def _fixed_to_float(fixed: int, nonfinite: float) -> float:
    """Round an exact total back to the nearest double.

    ``int / int`` is correctly rounded, so the result depends only on
    the exact sum, not on the grouping that produced it. Any inf/nan
    observations ride in the separate float term.
    """
    try:
        base = fixed / _FIXED_ONE
    except OverflowError:  # pragma: no cover - needs a ~1e308 total
        base = float("inf") if fixed > 0 else float("-inf")
    return base + nonfinite


def _record_exact(rec: "MetricRecord") -> Tuple[int, float]:
    """A histogram record's exact total, deriving it for hand-built
    records whose float total is itself exactly representable."""
    if rec.exact_total is not None:
        return rec.exact_total
    total = rec.total or 0.0
    if total - total == 0.0:
        return _to_fixed(total), 0.0
    return 0, total


@dataclasses.dataclass(frozen=True)
class MetricRecord:
    """One exported series: the unit the JSONL schema serializes.

    ``value`` is the counter total or gauge level; histograms instead
    carry ``count``/``total`` and per-bucket counts (upper-bound keyed,
    ``"+inf"`` for the overflow bucket).
    """

    type: str  # "counter" | "gauge" | "histogram" | "derived"
    name: str
    labels: Labels
    value: Optional[float] = None
    count: Optional[int] = None
    total: Optional[float] = None
    buckets: Optional[Tuple[Tuple[str, int], ...]] = None
    #: Exact histogram total as ``(fixed, nonfinite)`` — the 2^-1074
    #: fixed-point sum plus any inf/nan term. Never serialized (the
    #: JSONL schema carries only the rounded ``total``); it exists so
    #: merges of worker deltas stay exact instead of re-rounding.
    exact_total: Optional[Tuple[int, float]] = None

    def to_record(self) -> Dict[str, object]:
        """The JSON-able dict of one JSONL line (see the schema docs)."""
        record: Dict[str, object] = {
            "type": self.type,
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
        }
        if self.value is not None:
            record["value"] = self.value
        if self.count is not None:
            record["count"] = self.count
        if self.total is not None:
            record["total"] = self.total
        if self.buckets is not None:
            record["buckets"] = {bound: n for bound, n in self.buckets}
        return record

    @property
    def sort_key(self) -> Tuple[str, str, Labels]:
        return (self.type, self.name, self.labels)


class _Histogram:
    """Cumulative-free bucketed distribution: counts, not percentiles.

    Buckets hold the number of observations at or below each upper
    bound (non-cumulative, one slot per bound plus overflow), so two
    histograms merge by plain addition.
    """

    __slots__ = ("bounds", "counts", "count", "total_fixed", "nonfinite")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total_fixed = 0
        self.nonfinite = 0.0

    @property
    def total(self) -> float:
        return _fixed_to_float(self.total_fixed, self.nonfinite)

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        if value - value == 0.0:  # finite (inf/nan fail this)
            self.total_fixed += _to_fixed(value)
        else:
            self.nonfinite += value

    def bucket_items(self) -> Tuple[Tuple[str, int], ...]:
        """Non-empty buckets as ``(upper_bound_repr, count)`` pairs."""
        items: List[Tuple[str, int]] = []
        for i, n in enumerate(self.counts):
            if not n:
                continue
            bound = "+inf" if i == len(self.bounds) else repr(self.bounds[i])
            items.append((bound, n))
        return tuple(items)


class MetricsRegistry:
    """Named, labeled metric series with deterministic snapshots.

    Thread-safe for concurrent writers (a single lock — the
    instrumented paths are far from contended). Reads
    (:meth:`snapshot`) take the same lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Labels], float] = {}
        self._gauges: Dict[Tuple[str, Labels], float] = {}
        self._histograms: Dict[Tuple[str, Labels], _Histogram] = {}

    # ------------------------------------------------------------ writers

    def inc(
        self,
        name: str,
        value: float = 1.0,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Add ``value`` to a counter series (creating it at zero)."""
        key = (name, _labels_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Set a gauge series to its latest level."""
        with self._lock:
            self._gauges[(name, _labels_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one observation into a histogram series."""
        key = (name, _labels_key(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram()
            hist.observe(value)

    # ------------------------------------------------------------ readers

    def snapshot(self) -> List[MetricRecord]:
        """Every series as records, sorted by ``(type, name, labels)``."""
        with self._lock:
            records = [
                MetricRecord("counter", name, labels, value=value)
                for (name, labels), value in self._counters.items()
            ]
            records.extend(
                MetricRecord("gauge", name, labels, value=value)
                for (name, labels), value in self._gauges.items()
            )
            records.extend(
                MetricRecord(
                    "histogram",
                    name,
                    labels,
                    count=hist.count,
                    total=hist.total,
                    buckets=hist.bucket_items(),
                    exact_total=(hist.total_fixed, hist.nonfinite),
                )
                for (name, labels), hist in self._histograms.items()
            )
        records.sort(key=lambda r: r.sort_key)
        return records

    def counter_value(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> float:
        """Current total of one counter series (0.0 if absent)."""
        with self._lock:
            return self._counters.get((name, _labels_key(labels)), 0.0)

    def clear(self) -> None:
        """Drop every series (tests and fresh CLI invocations)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------- merging

    def merge_records(self, records: Iterable[MetricRecord]) -> None:
        """Fold a snapshot (or delta) from another registry into this one.

        Counters and histograms add; gauges take the incoming level
        (last writer wins, as for a local ``set_gauge``).
        """
        with self._lock:
            for rec in records:
                key = (rec.name, rec.labels)
                if rec.type == "counter":
                    self._counters[key] = (
                        self._counters.get(key, 0.0) + (rec.value or 0.0)
                    )
                elif rec.type == "gauge":
                    self._gauges[key] = rec.value or 0.0
                elif rec.type == "histogram":
                    hist = self._histograms.get(key)
                    if hist is None:
                        hist = self._histograms[key] = _Histogram()
                    bounds = {repr(b): i for i, b in enumerate(hist.bounds)}
                    for bound, n in rec.buckets or ():
                        index = (
                            len(hist.bounds)
                            if bound == "+inf"
                            else bounds[bound]
                        )
                        hist.counts[index] += n
                    hist.count += rec.count or 0
                    fixed, nonfinite = _record_exact(rec)
                    hist.total_fixed += fixed
                    hist.nonfinite += nonfinite

    def delta_since(self, before: List[MetricRecord]) -> List[MetricRecord]:
        """The change in every series since an earlier snapshot.

        Counters and histograms subtract; gauges are included at their
        current level whenever they changed (or are new). Series absent
        from ``before`` subtract against zero — in particular a counter
        *created* with a zero increment is omitted exactly like an
        existing counter that did not move, so a delta is a pure
        function of the work done since ``before``, not of which
        process's registry happened to see the series first. Used by
        worker processes to report only the metrics their task
        produced.
        """
        old = {(r.type, r.name, r.labels): r for r in before}
        delta: List[MetricRecord] = []
        for rec in self.snapshot():
            prior = old.get((rec.type, rec.name, rec.labels))
            if prior is None and rec.type != "counter":
                delta.append(rec)
                continue
            if rec.type == "counter":
                change = (rec.value or 0.0) - (
                    (prior.value or 0.0) if prior is not None else 0.0
                )
                if change:
                    delta.append(
                        dataclasses.replace(rec, value=change)
                    )
            elif rec.type == "gauge":
                if rec.value != prior.value:
                    delta.append(rec)
            elif rec.type == "histogram":
                count = (rec.count or 0) - (prior.count or 0)
                if not count:
                    continue
                prior_buckets = dict(prior.buckets or ())
                buckets = tuple(
                    (bound, n - prior_buckets.get(bound, 0))
                    for bound, n in rec.buckets or ()
                    if n - prior_buckets.get(bound, 0)
                )
                cur_fixed, cur_bad = _record_exact(rec)
                prior_fixed, prior_bad = _record_exact(prior)
                exact = (cur_fixed - prior_fixed, cur_bad - prior_bad)
                delta.append(
                    dataclasses.replace(
                        rec,
                        count=count,
                        total=_fixed_to_float(*exact),
                        buckets=buckets,
                        exact_total=exact,
                    )
                )
        return delta


class NullRegistry(MetricsRegistry):
    """The no-op registry handed out while ``REPRO_NO_METRICS`` is set."""

    def inc(self, name, value=1.0, labels=None) -> None:  # noqa: D102
        pass

    def set_gauge(self, name, value, labels=None) -> None:  # noqa: D102
        pass

    def observe(self, name, value, labels=None) -> None:  # noqa: D102
        pass

    def merge_records(self, records) -> None:  # noqa: D102
        pass


#: The process-wide registries. ``registry()`` picks one per call.
GLOBAL_REGISTRY = MetricsRegistry()
NULL_REGISTRY = NullRegistry()


def registry() -> MetricsRegistry:
    """The active registry: global when enabled, a shared no-op not."""
    if metrics_enabled():
        return GLOBAL_REGISTRY
    return NULL_REGISTRY
