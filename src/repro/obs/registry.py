"""Process-wide metrics registry: counters, gauges, histograms.

The observability layer's collection side. Instrumented code obtains
the active registry via :func:`registry` and bumps named, labeled
series; consumers take a :meth:`MetricsRegistry.snapshot` and hand it
to the exporters in :mod:`repro.obs.export`.

Design constraints, in order:

* **Zero-cost opt-out.** ``REPRO_NO_METRICS=1`` switches
  :func:`registry` to a shared :class:`NullRegistry` whose methods are
  empty; instrumentation sites then cost one environment probe and one
  no-op method call. The switch is honored *per call*, exactly like
  ``REPRO_NO_CACHE`` in :mod:`repro.perf.cache`, so one process can
  flip it (tests rely on this). Simulation *outputs* never depend on
  the switch — metrics are observations, not inputs.
* **Determinism.** Snapshots are sorted by ``(type, name, labels)``
  and labels are stored as sorted tuples, so two identical workloads
  produce byte-identical exports regardless of dict insertion or hash
  ordering (``PYTHONHASHSEED``).
* **Mergeability.** Every series is a sum (histograms carry bucket
  *counts*, not min/max), so deltas from worker processes can be added
  back into the parent registry in input order — see
  ``repro.experiments.common.grid_map``.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Environment variable that disables metric collection when set to a
#: truthy value ("1", "true", "yes", "on" — case-insensitive).
KILL_SWITCH_ENV = "REPRO_NO_METRICS"

_TRUTHY = ("1", "true", "yes", "on")

# Per-call environment probe. ``os.environ.get`` re-encodes the key on
# every call; on CPython/POSIX read the underlying bytes dict directly
# (kept in sync by ``os.environ.__setitem__``, which monkeypatch.setenv
# and CLI code use). Same idiom as ``repro.perf.cache``.
if os.name == "posix" and isinstance(
    getattr(os.environ, "_data", None), dict
):
    _ENV_DATA = os.environ._data
    _KILL_KEY = os.fsencode(KILL_SWITCH_ENV)

    def _kill_switch_value() -> str:
        raw = _ENV_DATA.get(_KILL_KEY)
        return "" if raw is None else os.fsdecode(raw)

else:  # pragma: no cover - non-CPython / non-POSIX fallback

    def _kill_switch_value() -> str:
        return os.environ.get(KILL_SWITCH_ENV, "")


def metrics_enabled() -> bool:
    """Whether metric collection is active (the kill switch is unset)."""
    value = _kill_switch_value()
    return not value or value.strip().lower() not in _TRUTHY


#: Canonical label encoding: a tuple of (key, value) pairs sorted by
#: key. Hashable, order-independent, and deterministic to serialize.
Labels = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds): nanoseconds to
#: seventeen minutes in half-decade steps, plus a +inf overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (e / 2.0) for e in range(-18, 7)
)


def _labels_key(labels: Optional[Mapping[str, object]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclasses.dataclass(frozen=True)
class MetricRecord:
    """One exported series: the unit the JSONL schema serializes.

    ``value`` is the counter total or gauge level; histograms instead
    carry ``count``/``total`` and per-bucket counts (upper-bound keyed,
    ``"+inf"`` for the overflow bucket).
    """

    type: str  # "counter" | "gauge" | "histogram" | "derived"
    name: str
    labels: Labels
    value: Optional[float] = None
    count: Optional[int] = None
    total: Optional[float] = None
    buckets: Optional[Tuple[Tuple[str, int], ...]] = None

    def to_record(self) -> Dict[str, object]:
        """The JSON-able dict of one JSONL line (see the schema docs)."""
        record: Dict[str, object] = {
            "type": self.type,
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
        }
        if self.value is not None:
            record["value"] = self.value
        if self.count is not None:
            record["count"] = self.count
        if self.total is not None:
            record["total"] = self.total
        if self.buckets is not None:
            record["buckets"] = {bound: n for bound, n in self.buckets}
        return record

    @property
    def sort_key(self) -> Tuple[str, str, Labels]:
        return (self.type, self.name, self.labels)


class _Histogram:
    """Cumulative-free bucketed distribution: counts, not percentiles.

    Buckets hold the number of observations at or below each upper
    bound (non-cumulative, one slot per bound plus overflow), so two
    histograms merge by plain addition.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value

    def bucket_items(self) -> Tuple[Tuple[str, int], ...]:
        """Non-empty buckets as ``(upper_bound_repr, count)`` pairs."""
        items: List[Tuple[str, int]] = []
        for i, n in enumerate(self.counts):
            if not n:
                continue
            bound = "+inf" if i == len(self.bounds) else repr(self.bounds[i])
            items.append((bound, n))
        return tuple(items)


class MetricsRegistry:
    """Named, labeled metric series with deterministic snapshots.

    Thread-safe for concurrent writers (a single lock — the
    instrumented paths are far from contended). Reads
    (:meth:`snapshot`) take the same lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Labels], float] = {}
        self._gauges: Dict[Tuple[str, Labels], float] = {}
        self._histograms: Dict[Tuple[str, Labels], _Histogram] = {}

    # ------------------------------------------------------------ writers

    def inc(
        self,
        name: str,
        value: float = 1.0,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Add ``value`` to a counter series (creating it at zero)."""
        key = (name, _labels_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Set a gauge series to its latest level."""
        with self._lock:
            self._gauges[(name, _labels_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one observation into a histogram series."""
        key = (name, _labels_key(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram()
            hist.observe(value)

    # ------------------------------------------------------------ readers

    def snapshot(self) -> List[MetricRecord]:
        """Every series as records, sorted by ``(type, name, labels)``."""
        with self._lock:
            records = [
                MetricRecord("counter", name, labels, value=value)
                for (name, labels), value in self._counters.items()
            ]
            records.extend(
                MetricRecord("gauge", name, labels, value=value)
                for (name, labels), value in self._gauges.items()
            )
            records.extend(
                MetricRecord(
                    "histogram",
                    name,
                    labels,
                    count=hist.count,
                    total=hist.total,
                    buckets=hist.bucket_items(),
                )
                for (name, labels), hist in self._histograms.items()
            )
        records.sort(key=lambda r: r.sort_key)
        return records

    def counter_value(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> float:
        """Current total of one counter series (0.0 if absent)."""
        with self._lock:
            return self._counters.get((name, _labels_key(labels)), 0.0)

    def clear(self) -> None:
        """Drop every series (tests and fresh CLI invocations)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------- merging

    def merge_records(self, records: Iterable[MetricRecord]) -> None:
        """Fold a snapshot (or delta) from another registry into this one.

        Counters and histograms add; gauges take the incoming level
        (last writer wins, as for a local ``set_gauge``).
        """
        with self._lock:
            for rec in records:
                key = (rec.name, rec.labels)
                if rec.type == "counter":
                    self._counters[key] = (
                        self._counters.get(key, 0.0) + (rec.value or 0.0)
                    )
                elif rec.type == "gauge":
                    self._gauges[key] = rec.value or 0.0
                elif rec.type == "histogram":
                    hist = self._histograms.get(key)
                    if hist is None:
                        hist = self._histograms[key] = _Histogram()
                    bounds = {repr(b): i for i, b in enumerate(hist.bounds)}
                    for bound, n in rec.buckets or ():
                        index = (
                            len(hist.bounds)
                            if bound == "+inf"
                            else bounds[bound]
                        )
                        hist.counts[index] += n
                    hist.count += rec.count or 0
                    hist.total += rec.total or 0.0

    def delta_since(self, before: List[MetricRecord]) -> List[MetricRecord]:
        """The change in every series since an earlier snapshot.

        Counters and histograms subtract; gauges are included at their
        current level whenever they changed (or are new). Series absent
        from ``before`` pass through whole. Used by worker processes to
        report only the metrics their task produced.
        """
        old = {(r.type, r.name, r.labels): r for r in before}
        delta: List[MetricRecord] = []
        for rec in self.snapshot():
            prior = old.get((rec.type, rec.name, rec.labels))
            if prior is None:
                delta.append(rec)
                continue
            if rec.type == "counter":
                change = (rec.value or 0.0) - (prior.value or 0.0)
                if change:
                    delta.append(
                        dataclasses.replace(rec, value=change)
                    )
            elif rec.type == "gauge":
                if rec.value != prior.value:
                    delta.append(rec)
            elif rec.type == "histogram":
                count = (rec.count or 0) - (prior.count or 0)
                if not count:
                    continue
                prior_buckets = dict(prior.buckets or ())
                buckets = tuple(
                    (bound, n - prior_buckets.get(bound, 0))
                    for bound, n in rec.buckets or ()
                    if n - prior_buckets.get(bound, 0)
                )
                delta.append(
                    dataclasses.replace(
                        rec,
                        count=count,
                        total=(rec.total or 0.0) - (prior.total or 0.0),
                        buckets=buckets,
                    )
                )
        return delta


class NullRegistry(MetricsRegistry):
    """The no-op registry handed out while ``REPRO_NO_METRICS`` is set."""

    def inc(self, name, value=1.0, labels=None) -> None:  # noqa: D102
        pass

    def set_gauge(self, name, value, labels=None) -> None:  # noqa: D102
        pass

    def observe(self, name, value, labels=None) -> None:  # noqa: D102
        pass

    def merge_records(self, records) -> None:  # noqa: D102
        pass


#: The process-wide registries. ``registry()`` picks one per call.
GLOBAL_REGISTRY = MetricsRegistry()
NULL_REGISTRY = NullRegistry()


def registry() -> MetricsRegistry:
    """The active registry: global when enabled, a shared no-op not."""
    if metrics_enabled():
        return GLOBAL_REGISTRY
    return NULL_REGISTRY
