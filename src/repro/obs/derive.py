"""Per-run derived metrics: what one simulated trace *means*.

The registry in :mod:`repro.obs.registry` accumulates process-wide
totals; this module computes the per-execution quantities the paper's
evaluation is built on (Figures 9, 10, 15) from one span list:

* **per-resource utilization** — wall-clock fraction each exclusive
  resource (core, link directions) was held;
* **overlap fraction** — the fraction of the makespan during which
  compute (GeMM kernels and slicing copies) ran concurrently with
  communication: the very overhead-hiding MeshSlice's software
  pipelining exists to maximize;
* **communication breakdown** — nominal launch/transfer/sync totals
  (Figure 10's split);
* **per-kind durations** and **queue-wait statistics** (from the
  engine's ready-heap observations).

Everything here is a pure function of the spans (plus the optional
wait samples), so derived metrics are independent of caching
(``REPRO_NO_CACHE``) and identical across processes — properties the
test suite pins.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.hooks import WaitSample

#: Span kinds that count as computation for the overlap metric (GeMM
#: kernels and blocked slicing copies both occupy the compute core).
COMPUTE_KINDS = ("compute", "slice")


def _union(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge possibly-overlapping intervals into a disjoint union."""
    intervals.sort()
    merged: List[Tuple[float, float]] = []
    for start, end in intervals:
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _measure(intervals: Sequence[Tuple[float, float]]) -> float:
    return sum(end - start for start, end in intervals)


def _intersection_measure(
    a: Sequence[Tuple[float, float]], b: Sequence[Tuple[float, float]]
) -> float:
    """Total length of the intersection of two disjoint unions."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


@dataclasses.dataclass(frozen=True)
class WaitStats:
    """Queue-wait summary of one activity kind."""

    count: int
    total: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclasses.dataclass(frozen=True)
class RunMetrics:
    """Derived metrics of one simulated execution.

    Attributes:
        makespan: End time of the last span (seconds).
        utilization: Busy fraction of each exclusive resource that
            appears in the trace, in ``[0, 1]``.
        busy_seconds: Wall-clock busy time behind each utilization.
        compute_seconds: Union busy time of compute/slice spans.
        comm_seconds: Union busy time of communication spans.
        overlap_seconds: Time compute and communication ran
            concurrently (never exceeds either union).
        overlap_fraction: ``overlap_seconds / makespan`` (0 for an
            empty trace).
        kind_durations: Total span duration per activity kind.
        comm_launch / comm_transfer / comm_sync: Nominal communication
            component totals (Figure 10's split).
        queue_wait: Per-kind ready-but-blocked wait statistics from
            the engine's event heap; empty when the run was served
            from a cache or waits were not captured.
    """

    makespan: float
    utilization: Mapping[str, float]
    busy_seconds: Mapping[str, float]
    compute_seconds: float
    comm_seconds: float
    overlap_seconds: float
    overlap_fraction: float
    kind_durations: Mapping[str, float]
    comm_launch: float
    comm_transfer: float
    comm_sync: float
    queue_wait: Mapping[str, WaitStats]

    @property
    def comm_total(self) -> float:
        """Total nominal communication time (launch + transfer + sync)."""
        return self.comm_launch + self.comm_transfer + self.comm_sync

    def as_dict(self) -> Dict[str, object]:
        """One nested JSON-able dict (sorted mappings throughout)."""
        return {
            "makespan": self.makespan,
            "utilization": dict(sorted(self.utilization.items())),
            "busy_seconds": dict(sorted(self.busy_seconds.items())),
            "compute_seconds": self.compute_seconds,
            "comm_seconds": self.comm_seconds,
            "overlap_seconds": self.overlap_seconds,
            "overlap_fraction": self.overlap_fraction,
            "kind_durations": dict(sorted(self.kind_durations.items())),
            "comm_launch": self.comm_launch,
            "comm_transfer": self.comm_transfer,
            "comm_sync": self.comm_sync,
            "queue_wait": {
                kind: {
                    "count": stats.count,
                    "total": stats.total,
                    "max": stats.max,
                }
                for kind, stats in sorted(self.queue_wait.items())
            },
        }

    def to_records(self) -> List[Dict[str, object]]:
        """Flat ``type="derived"`` records in the JSONL schema.

        One record per scalar series, labels identifying the resource
        or kind, sorted by ``(name, labels)`` for byte-stable export.
        """
        records: List[Dict[str, object]] = []

        def emit(name: str, value: float, **labels: str) -> None:
            records.append(
                {
                    "type": "derived",
                    "name": name,
                    "labels": dict(sorted(labels.items())),
                    "value": value,
                }
            )

        emit("run.makespan_seconds", self.makespan)
        emit("run.compute_seconds", self.compute_seconds)
        emit("run.comm_seconds", self.comm_seconds)
        emit("run.overlap_seconds", self.overlap_seconds)
        emit("run.overlap_fraction", self.overlap_fraction)
        emit("run.comm_breakdown_seconds", self.comm_launch, component="launch")
        emit(
            "run.comm_breakdown_seconds",
            self.comm_transfer,
            component="transfer",
        )
        emit("run.comm_breakdown_seconds", self.comm_sync, component="sync")
        for resource in sorted(self.utilization):
            emit(
                "run.utilization",
                self.utilization[resource],
                resource=resource,
            )
            emit(
                "run.busy_seconds",
                self.busy_seconds[resource],
                resource=resource,
            )
        for kind in sorted(self.kind_durations):
            emit("run.kind_seconds", self.kind_durations[kind], kind=kind)
        for kind in sorted(self.queue_wait):
            stats = self.queue_wait[kind]
            emit("run.queue_wait_count", float(stats.count), kind=kind)
            emit("run.queue_wait_seconds", stats.total, kind=kind)
            emit("run.queue_wait_max_seconds", stats.max, kind=kind)
        records.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return records


def derive_run_metrics(
    spans: Iterable[object],
    waits: Optional[Sequence[WaitSample]] = None,
) -> RunMetrics:
    """Compute :class:`RunMetrics` from one execution's spans.

    ``spans`` is any iterable of :class:`repro.sim.engine.Span`-shaped
    objects; ``waits`` the engine's queue-wait samples for the same
    run, when captured.
    """
    span_list = list(spans)
    makespan = max((s.end for s in span_list), default=0.0)

    resource_intervals: Dict[str, List[Tuple[float, float]]] = {}
    compute_intervals: List[Tuple[float, float]] = []
    comm_intervals: List[Tuple[float, float]] = []
    kind_durations: Dict[str, float] = {}
    launch = transfer = sync = 0.0
    for span in span_list:
        kind_durations[span.kind] = (
            kind_durations.get(span.kind, 0.0) + span.duration
        )
        interval = (span.start, span.end)
        for resource in span.exclusive:
            resource_intervals.setdefault(resource, []).append(interval)
        if span.kind in COMPUTE_KINDS:
            compute_intervals.append(interval)
        elif span.kind == "comm":
            comm_intervals.append(interval)
            launch += float(span.meta.get("launch", 0.0))
            transfer += float(span.meta.get("transfer", 0.0))
            sync += float(span.meta.get("sync", 0.0))

    busy_seconds = {
        resource: _measure(_union(intervals))
        for resource, intervals in resource_intervals.items()
    }
    utilization = {
        resource: (busy / makespan if makespan > 0 else 0.0)
        for resource, busy in busy_seconds.items()
    }
    compute_union = _union(compute_intervals)
    comm_union = _union(comm_intervals)
    overlap = _intersection_measure(compute_union, comm_union)

    queue_wait: Dict[str, WaitStats] = {}
    if waits:
        grouped: Dict[str, List[float]] = {}
        for kind, wait in waits:
            grouped.setdefault(kind, []).append(wait)
        queue_wait = {
            kind: WaitStats(
                count=len(values), total=sum(values), max=max(values)
            )
            for kind, values in grouped.items()
        }

    return RunMetrics(
        makespan=makespan,
        utilization=utilization,
        busy_seconds=busy_seconds,
        compute_seconds=_measure(compute_union),
        comm_seconds=_measure(comm_union),
        overlap_seconds=overlap,
        overlap_fraction=overlap / makespan if makespan > 0 else 0.0,
        kind_durations=kind_durations,
        comm_launch=launch,
        comm_transfer=transfer,
        comm_sync=sync,
        queue_wait=queue_wait,
    )


def merge_run_metrics(metrics: Sequence[RunMetrics]) -> RunMetrics:
    """Aggregate several runs executed back to back (one block).

    Durations, busy times, and waits add; the combined makespan is the
    sum (the passes run sequentially), and utilization/overlap are
    recomputed against it, mirroring how the evaluation aggregates a
    block's twelve GeMMs into one utilization number.
    """
    if not metrics:
        raise ValueError("need at least one RunMetrics")
    makespan = sum(m.makespan for m in metrics)
    busy: Dict[str, float] = {}
    kinds: Dict[str, float] = {}
    waits: Dict[str, WaitStats] = {}
    compute = comm = overlap = launch = transfer = sync = 0.0
    for m in metrics:
        for resource, seconds in m.busy_seconds.items():
            busy[resource] = busy.get(resource, 0.0) + seconds
        for kind, seconds in m.kind_durations.items():
            kinds[kind] = kinds.get(kind, 0.0) + seconds
        for kind, stats in m.queue_wait.items():
            prior = waits.get(kind)
            waits[kind] = WaitStats(
                count=(prior.count if prior else 0) + stats.count,
                total=(prior.total if prior else 0.0) + stats.total,
                max=max(prior.max if prior else 0.0, stats.max),
            )
        compute += m.compute_seconds
        comm += m.comm_seconds
        overlap += m.overlap_seconds
        launch += m.comm_launch
        transfer += m.comm_transfer
        sync += m.comm_sync
    return RunMetrics(
        makespan=makespan,
        utilization={
            resource: (seconds / makespan if makespan > 0 else 0.0)
            for resource, seconds in busy.items()
        },
        busy_seconds=busy,
        compute_seconds=compute,
        comm_seconds=comm,
        overlap_seconds=overlap,
        overlap_fraction=overlap / makespan if makespan > 0 else 0.0,
        kind_durations=kinds,
        comm_launch=launch,
        comm_transfer=transfer,
        comm_sync=sync,
        queue_wait=waits,
    )
