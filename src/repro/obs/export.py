"""Metric exporters: JSON-lines, record collection, summary tables.

The documented JSONL schema (see ``docs/observability.md``): one JSON
object per line, serialized with sorted keys, each of the form ::

    {"type": <"counter"|"gauge"|"histogram"|"derived">,
     "name": <dotted series name>,
     "labels": {<str>: <str>, ...},
     ...}

with the value fields per type:

* ``counter`` / ``gauge`` / ``derived`` — ``"value"`` (number);
* ``histogram`` — ``"count"`` (int), ``"total"`` (number), and
  ``"buckets"`` mapping upper-bound reprs (``"+inf"`` for overflow) to
  observation counts.

Exports are deterministic: records are emitted sorted by
``(type, name, labels)`` and every mapping is key-sorted, so the same
workload produces byte-identical files across processes and hash
seeds (pinned by ``tests/test_obs_determinism.py``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.obs.derive import RunMetrics
from repro.obs.registry import registry

#: Record keys every schema-valid line must carry.
REQUIRED_KEYS = ("type", "name", "labels")

#: Allowed record types and the extra keys each may carry.
RECORD_TYPES: Dict[str, tuple] = {
    "counter": ("value",),
    "gauge": ("value",),
    "derived": ("value",),
    "histogram": ("count", "total", "buckets"),
}


def validate_record(record: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``record`` matches the JSONL schema."""
    for key in REQUIRED_KEYS:
        if key not in record:
            raise ValueError(f"metric record missing {key!r}: {record!r}")
    rtype = record["type"]
    if rtype not in RECORD_TYPES:
        raise ValueError(f"unknown metric record type {rtype!r}")
    if not isinstance(record["name"], str) or not record["name"]:
        raise ValueError(f"metric record name must be a string: {record!r}")
    labels = record["labels"]
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        raise ValueError(f"metric labels must map str to str: {record!r}")
    allowed = set(REQUIRED_KEYS) | set(RECORD_TYPES[rtype])
    extra = set(record) - allowed
    if extra:
        raise ValueError(
            f"unexpected keys {sorted(extra)} on {rtype} record {record!r}"
        )
    if rtype == "histogram":
        if not isinstance(record.get("count"), int):
            raise ValueError(f"histogram record needs an int count: {record!r}")
        buckets = record.get("buckets", {})
        if not isinstance(buckets, dict) or not all(
            isinstance(k, str) and isinstance(v, int)
            for k, v in buckets.items()
        ):
            raise ValueError(
                f"histogram buckets must map str to int: {record!r}"
            )
    elif not isinstance(record.get("value"), (int, float)):
        raise ValueError(f"{rtype} record needs a numeric value: {record!r}")


def cache_records() -> List[Dict[str, object]]:
    """The memoization layer's hit/miss counters as schema records.

    Pulled from :func:`repro.perf.cache.cache_stats` at export time, so
    the cache hot path carries no instrumentation of its own.
    """
    from repro.perf.cache import cache_stats

    records: List[Dict[str, object]] = []
    for name, stats in sorted(cache_stats().items()):
        for field in ("hits", "misses", "entries"):
            records.append(
                {
                    "type": "counter",
                    "name": f"cache.{field}",
                    "labels": {"cache": name},
                    "value": float(getattr(stats, field)),
                }
            )
    return records


def collect_records(
    run_metrics: Optional[Iterable[RunMetrics]] = None,
    include_caches: bool = True,
) -> List[Dict[str, object]]:
    """Everything observable right now, as sorted schema records.

    The global registry snapshot, the cache counters (optional), and
    any per-run derived metrics the caller wants included.
    """
    records = [rec.to_record() for rec in registry().snapshot()]
    if include_caches:
        records.extend(cache_records())
    for metrics in run_metrics or ():
        records.extend(metrics.to_records())
    records.sort(
        key=lambda r: (r["type"], r["name"], sorted(r["labels"].items()))
    )
    return records


def dumps_records(records: Iterable[Dict[str, object]]) -> str:
    """Serialize records as JSON lines (sorted keys, one per line)."""
    return "".join(
        json.dumps(record, sort_keys=True) + "\n" for record in records
    )


def write_jsonl(records: Iterable[Dict[str, object]], path: str) -> None:
    """Write schema records to a JSONL file."""
    with open(path, "w") as handle:
        handle.write(dumps_records(records))


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Read a metrics JSONL file back, validating every record."""
    records: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            validate_record(record)
            records.append(record)
    return records


def summary_table(records: Iterable[Dict[str, object]]) -> str:
    """A human-readable table of metric records.

    Counters/gauges/derived series print their value; histograms their
    count, total, and mean.
    """
    from repro.experiments.common import render_table

    rows = []
    for record in records:
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(record["labels"].items())
        )
        if record["type"] == "histogram":
            count = record.get("count", 0)
            total = record.get("total", 0.0)
            mean = total / count if count else 0.0
            value = f"n={count} total={total:.6g} mean={mean:.6g}"
        else:
            value = f"{record.get('value', 0.0):.6g}"
        rows.append((record["type"], record["name"], labels or "-", value))
    return render_table(["type", "name", "labels", "value"], rows)
