"""The profiling workflow: where does one deployment's time go?

:func:`profile_block` runs the same mesh search the evaluation uses
(``best_block_run``) for one ``(model, batch, chips, hw, algorithm)``
point and assembles a :class:`ProfileReport`: FLOP utilization,
per-resource utilization, the overlap fraction, the communication
breakdown, queue waits, and the memoization layer's hit rates. The
``meshslice profile`` subcommand renders it; library callers get the
structured object.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.hw.params import HardwareParams
from repro.models.config import LLMConfig
from repro.obs.derive import RunMetrics, derive_run_metrics, merge_run_metrics


@dataclasses.dataclass(frozen=True)
class ProfileReport:
    """Profile of one transformer block's FC training GeMMs.

    Attributes:
        model: Model name.
        algorithm: Distributed GeMM algorithm profiled.
        chips: Cluster size.
        batch: Global batch size.
        mesh: The algorithm's chosen mesh shape ``(rows, cols)``.
        flop_utilization: Figure 9's metric over the block.
        block_seconds: Total FC block time (seconds).
        metrics: Block-aggregated :class:`RunMetrics`.
        per_pass: ``(pass label, RunMetrics)`` of each training GeMM.
        cache_hit_rates: Hit rate of each warm memoization cache.
        compile_stats: The compiled engine's cumulative ``compile.*``
            counters (runs, motifs found/validated, composed vs
            simulated instance and activity counts, compile seconds),
            empty when the heap engine ran.
        service_stats: The tuning service's cumulative ``service.*``
            counters and gauges (store hit/miss/corrupt counts,
            in-flight coalescing, warm-start tunings vs prunes, queue
            depth, p50/p95 service latency), empty when no
            :class:`repro.service.TunerService` ran in this process.
        campaign_stats: The campaign layer's cumulative ``campaign.*``
            counters (store appends/corrupt/repairs, points ran vs
            skipped vs failed, retries), empty when no
            :class:`repro.campaign.CampaignRunner` ran in this process.
        elastic_stats: The elastic-recovery layer's cumulative
            ``elastic.*`` counters (lifetimes simulated, failures,
            repairs, transitions per policy, spares consumed,
            exhaustions, migrations built per plane), empty when no
            lifetime or migration simulation ran in this process.
    """

    model: str
    algorithm: str
    chips: int
    batch: int
    mesh: Tuple[int, int]
    flop_utilization: float
    block_seconds: float
    metrics: RunMetrics
    per_pass: Tuple[Tuple[str, RunMetrics], ...]
    cache_hit_rates: Dict[str, float]
    compile_stats: Dict[str, float] = dataclasses.field(default_factory=dict)
    service_stats: Dict[str, float] = dataclasses.field(default_factory=dict)
    campaign_stats: Dict[str, float] = dataclasses.field(default_factory=dict)
    elastic_stats: Dict[str, float] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        """The ``meshslice profile`` text report."""
        from repro.experiments.common import render_table

        m = self.metrics
        lines = [
            f"{self.model}: {self.algorithm} on {self.chips} chips "
            f"(mesh {self.mesh[0]}x{self.mesh[1]}), batch {self.batch}",
            f"FC block {self.block_seconds * 1e3:.2f} ms; "
            f"FLOP utilization {self.flop_utilization * 100:.1f}%",
            "",
            f"overlap fraction {m.overlap_fraction * 100:.1f}% "
            f"(compute {m.compute_seconds * 1e3:.2f} ms, "
            f"comm {m.comm_seconds * 1e3:.2f} ms, "
            f"hidden {m.overlap_seconds * 1e3:.2f} ms)",
            f"comm breakdown: launch {m.comm_launch * 1e3:.3f} ms, "
            f"transfer {m.comm_transfer * 1e3:.3f} ms, "
            f"sync {m.comm_sync * 1e3:.3f} ms",
            "",
            render_table(
                ["resource", "busy (ms)", "utilization"],
                [
                    (
                        resource,
                        m.busy_seconds[resource] * 1e3,
                        f"{m.utilization[resource] * 100:.1f}%",
                    )
                    for resource in sorted(m.utilization)
                ],
            ),
        ]
        if m.queue_wait:
            lines.extend(
                [
                    "",
                    render_table(
                        ["kind", "waits", "total wait (ms)", "max wait (ms)"],
                        [
                            (
                                kind,
                                stats.count,
                                stats.total * 1e3,
                                stats.max * 1e3,
                            )
                            for kind, stats in sorted(m.queue_wait.items())
                        ],
                    ),
                ]
            )
        if self.cache_hit_rates:
            lines.extend(
                [
                    "",
                    render_table(
                        ["cache", "hit rate"],
                        [
                            (name, f"{rate * 100:.1f}%")
                            for name, rate in sorted(
                                self.cache_hit_rates.items()
                            )
                        ],
                    ),
                ]
            )
        if self.compile_stats:
            lines.extend(
                [
                    "",
                    render_table(
                        ["compiled engine", "total"],
                        [
                            (
                                name[len("compile."):],
                                f"{value:.3f}"
                                if name == "compile.seconds"
                                else f"{value:g}",
                            )
                            for name, value in sorted(
                                self.compile_stats.items()
                            )
                        ],
                    ),
                ]
            )
        if self.service_stats:
            lines.extend(
                [
                    "",
                    render_table(
                        ["tuning service", "total"],
                        [
                            (name[len("service."):], f"{value:g}")
                            for name, value in sorted(
                                self.service_stats.items()
                            )
                        ],
                    ),
                ]
            )
        if self.campaign_stats:
            lines.extend(
                [
                    "",
                    render_table(
                        ["campaign", "total"],
                        [
                            (name[len("campaign."):], f"{value:g}")
                            for name, value in sorted(
                                self.campaign_stats.items()
                            )
                        ],
                    ),
                ]
            )
        if self.elastic_stats:
            lines.extend(
                [
                    "",
                    render_table(
                        ["elastic recovery", "total"],
                        [
                            (name[len("elastic."):], f"{value:g}")
                            for name, value in sorted(
                                self.elastic_stats.items()
                            )
                        ],
                    ),
                ]
            )
        return "\n".join(lines)


def profile_block(
    model: LLMConfig,
    batch_size: int,
    chips: int,
    hw: HardwareParams,
    algorithm: str = "meshslice",
) -> Optional[ProfileReport]:
    """Profile one block at the algorithm's own optimal mesh shape.

    Returns ``None`` when the algorithm cannot run at this cluster
    size (mirroring ``best_block_run``). Imports the experiment stack
    lazily: ``repro.obs`` sits below it.
    """
    from repro.experiments.common import best_block_run
    from repro.perf.cache import cache_stats

    block = best_block_run(algorithm, model, batch_size, chips, hw)
    if block is None:
        return None
    per_pass: List[Tuple[str, RunMetrics]] = []
    for cfg, result in zip(block.configs, block.results):
        metrics = result.metrics
        if metrics is None:
            # Metrics were disabled when this pass was first simulated
            # (or the result came from a pre-metrics cache entry); the
            # spans still carry everything derivable.
            metrics = derive_run_metrics(result.spans)
        label = (
            f"{cfg.shape.m}x{cfg.shape.n}x{cfg.shape.k}"
            f"/{cfg.dataflow.name}/S{cfg.slices}"
        )
        per_pass.append((label, metrics))
    merged = merge_run_metrics([metrics for _label, metrics in per_pass])
    hit_rates = {
        name: stats.hit_rate
        for name, stats in cache_stats().items()
        if stats.calls
    }
    compile_totals = _compile_counters()
    service_totals = _prefixed_totals("service.")
    campaign_totals = _prefixed_totals("campaign.", counters_only=True)
    elastic_totals = _prefixed_totals("elastic.", counters_only=True)
    return ProfileReport(
        model=model.name,
        algorithm=algorithm,
        chips=chips,
        batch=batch_size,
        mesh=block.mesh.shape,
        flop_utilization=block.utilization(hw),
        block_seconds=block.seconds,
        metrics=merged,
        per_pass=tuple(per_pass),
        cache_hit_rates=hit_rates,
        compile_stats=compile_totals,
        service_stats=service_totals,
        campaign_stats=campaign_totals,
        elastic_stats=elastic_totals,
    )


def _compile_counters() -> Dict[str, float]:
    """The registry's cumulative ``compile.*`` counter totals.

    Labeled series (fallback reasons) render as
    ``compile.fallbacks{reason=...}``. Empty when the compiled engine
    never ran (or metrics are disabled) — the report section is
    skipped then.
    """
    return _prefixed_totals("compile.", counters_only=True)


def _prefixed_totals(
    prefix: str, counters_only: bool = False
) -> Dict[str, float]:
    """Registry counter (and gauge) values under one name prefix.

    Labeled series render as ``name{label=value}``. Empty when the
    subsystem never ran (or metrics are disabled) — prefix sections of
    the report are skipped then.
    """
    from repro.obs.registry import registry

    wanted = ("counter",) if counters_only else ("counter", "gauge")
    totals: Dict[str, float] = {}
    for record in registry().snapshot():
        if record.type not in wanted or not record.name.startswith(prefix):
            continue
        if record.value is None or not record.value:
            continue
        key = record.name
        if record.labels:
            inner = ",".join(f"{k}={v}" for k, v in record.labels)
            key = f"{key}{{{inner}}}"
        totals[key] = record.value
    return totals
