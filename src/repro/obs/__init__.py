"""``repro.obs``: the observability layer.

A lightweight metrics/profiling subsystem threaded through the whole
stack:

* :mod:`repro.obs.registry` — process-wide counters/gauges/histograms
  with labeled series and a zero-cost no-op mode (``REPRO_NO_METRICS``);
* :mod:`repro.obs.hooks` — the engine's queue-wait capture channel;
* :mod:`repro.obs.derive` — per-run derived metrics (utilization,
  overlap fraction, comm breakdown) computed from span lists;
* :mod:`repro.obs.export` — JSONL and summary-table exporters with a
  documented, byte-deterministic schema;
* :mod:`repro.obs.profile` — the ``meshslice profile`` workflow.

The eager imports here are stdlib-only (``registry`` and ``hooks``
must be importable from ``repro.sim.engine`` without cycles); the
heavier layers load lazily (PEP 562).
"""

from repro.obs.hooks import capture_waits, wait_sink
from repro.obs.registry import (
    GLOBAL_REGISTRY,
    KILL_SWITCH_ENV,
    MetricRecord,
    MetricsRegistry,
    NullRegistry,
    metrics_enabled,
    registry,
)

#: Lazily-loaded exports (PEP 562): name -> (module, attribute).
_LAZY_EXPORTS = {
    "ProfileReport": ("repro.obs.profile", "ProfileReport"),
    "RunMetrics": ("repro.obs.derive", "RunMetrics"),
    "WaitStats": ("repro.obs.derive", "WaitStats"),
    "collect_records": ("repro.obs.export", "collect_records"),
    "derive_run_metrics": ("repro.obs.derive", "derive_run_metrics"),
    "merge_run_metrics": ("repro.obs.derive", "merge_run_metrics"),
    "profile_block": ("repro.obs.profile", "profile_block"),
    "read_jsonl": ("repro.obs.export", "read_jsonl"),
    "summary_table": ("repro.obs.export", "summary_table"),
    "validate_record": ("repro.obs.export", "validate_record"),
    "write_jsonl": ("repro.obs.export", "write_jsonl"),
}

__all__ = [
    "GLOBAL_REGISTRY",
    "KILL_SWITCH_ENV",
    "MetricRecord",
    "MetricsRegistry",
    "NullRegistry",
    "ProfileReport",
    "RunMetrics",
    "WaitStats",
    "capture_waits",
    "collect_records",
    "derive_run_metrics",
    "merge_run_metrics",
    "metrics_enabled",
    "profile_block",
    "read_jsonl",
    "registry",
    "summary_table",
    "validate_record",
    "wait_sink",
    "write_jsonl",
]


def __getattr__(name):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
