"""Engine-side observation channel: queue-wait capture.

The event-heap engine knows something the span list cannot reconstruct:
how long each activity sat *ready but blocked* between its dependencies
finishing (its heap ``ready_time``) and its actual start. This module
is the side channel that carries those observations out without
touching the engine's results — the engine appends ``(kind, wait)``
pairs to the active sink, and :func:`repro.sim.cluster.simulate` wraps
execution in :func:`capture_waits` to collect them per run.

Kept import-light on purpose (stdlib only): ``repro.sim.engine``
imports this module, so it must sit below the whole simulation stack.
Capture is per-process and non-reentrant-safe in the trivial way —
nested captures stack, each engine run reports to the innermost one.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Tuple

from repro.obs.registry import metrics_enabled

#: One observation: (activity kind, seconds between ready and start).
WaitSample = Tuple[str, float]

_sinks: List[List[WaitSample]] = []


def wait_sink() -> Optional[List[WaitSample]]:
    """The innermost active capture buffer, or ``None``.

    The engine reads this once per run; ``None`` (no capture active,
    or metrics disabled) keeps the hot loop untouched.
    """
    return _sinks[-1] if _sinks else None


@contextlib.contextmanager
def capture_waits() -> Iterator[Optional[List[WaitSample]]]:
    """Collect queue-wait samples from engine runs inside the block.

    Yields the live sample list, or ``None`` when metrics are disabled
    (the engine then records nothing and the block costs nothing).
    """
    if not metrics_enabled():
        yield None
        return
    buffer: List[WaitSample] = []
    _sinks.append(buffer)
    try:
        yield buffer
    finally:
        _sinks.pop()
