"""Functional ring collectives over sharded matrices.

These are the communication primitives used by every distributed GeMM
algorithm in the paper, implemented over per-chip numpy arrays so the
algorithms can be verified bit-exactly against local matmul.

Naming follows the paper's Figure 2: a ``col`` subscript denotes
*inter-column* communication among the chips of the same row (the
horizontal/row ring), and a ``row`` subscript denotes *inter-row*
communication among the chips of the same column (the vertical/column
ring). Example: ``ag_col`` all-gathers each chip's shard from all chips
in its row.

All collectives are implemented with explicit ring steps (each chip only
ever exchanges data with its ring neighbours), mirroring how a 2D torus
executes them, rather than by assembling the result from global state.
This keeps the functional plane honest: an algorithm cannot accidentally
read data its chips never received.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.faults import sdc as _sdc
from repro.mesh.topology import Coord, Mesh2D

Shards = Dict[Coord, np.ndarray]


def _check_mesh_shards(shards: Shards, mesh: Mesh2D) -> None:
    missing = [c for c in mesh.coords() if c not in shards]
    if missing:
        raise ValueError(f"shards missing for chips {missing[:4]} of mesh {mesh}")


def _check_uniform(chunks: List[np.ndarray], what: str) -> None:
    """Reject mismatched ring participants before numpy can mask them.

    A shape mismatch would otherwise surface as a cryptic concatenate
    error several ring steps later; a dtype mismatch is worse — the
    reduce silently promotes. Names the first offending rank.
    """
    first = chunks[0]
    for rank, chunk in enumerate(chunks[1:], start=1):
        if chunk.shape != first.shape or chunk.dtype != first.dtype:
            raise ValueError(
                f"{what}: rank {rank} shard {chunk.shape}/{chunk.dtype} "
                f"disagrees with rank 0 {first.shape}/{first.dtype}"
            )


def ring_allgather(chunks: List[np.ndarray], axis: int) -> List[np.ndarray]:
    """Ring AllGather over one ring.

    ``chunks[r]`` is rank ``r``'s local chunk. Executes the standard
    P-1 step ring algorithm (Figure 3, right): at every step each rank
    forwards the chunk it received in the previous step to its next
    neighbour. Returns the gathered array per rank (identical on all
    ranks, assembled in global rank order).
    """
    p = len(chunks)
    _check_uniform(chunks, "ring_allgather")
    # Per-rank collection, indexed by source rank.
    have: List[Dict[int, np.ndarray]] = [{r: chunks[r]} for r in range(p)]
    # in_flight[r] is the chunk rank r forwards in the current step.
    in_flight = list(range(p))
    for _step in range(p - 1):
        received = []
        for r in range(p):
            src_rank = in_flight[(r - 1) % p]
            received.append(src_rank)
            have[r][src_rank] = chunks[src_rank]
        in_flight = received
    gathered = []
    for r in range(p):
        if len(have[r]) != p:
            raise AssertionError("ring allgather did not deliver all chunks")
        gathered.append(np.concatenate([have[r][s] for s in range(p)], axis=axis))
    return gathered


def ring_reducescatter(parts: List[np.ndarray], axis: int) -> List[np.ndarray]:
    """Ring ReduceScatter over one ring.

    ``parts[r]`` is rank ``r``'s full-size partial result. Splits every
    partial into P chunks along ``axis``; rank ``r`` ends with the sum
    of chunk ``r`` over all ranks. Executes the P-1 step ring algorithm
    where partial sums travel around the ring accumulating local
    contributions.
    """
    p = len(parts)
    _check_uniform(parts, "ring_reducescatter")
    split = [np.array_split(part, p, axis=axis) for part in parts]
    for chunks in split:
        sizes = {c.shape[axis] for c in chunks}
        if len(sizes) != 1:
            raise ValueError(
                f"reduce-scatter axis {axis} does not divide evenly into {p} parts"
            )
    # acc[r] is the partial sum currently held by rank r; it is destined
    # for chunk index dest[r]. The partial for chunk c starts at rank
    # c+1 and travels P-1 hops forward, arriving at rank c.
    acc = [split[r][(r - 1) % p].copy() for r in range(p)]
    dest = [(r - 1) % p for r in range(p)]
    for _step in range(p - 1):
        new_acc, new_dest = [], []
        for r in range(p):
            prev = (r - 1) % p
            incoming, chunk_idx = acc[prev], dest[prev]
            new_acc.append(incoming + split[r][chunk_idx])
            new_dest.append(chunk_idx)
        acc, dest = new_acc, new_dest
    result = [None] * p
    for r in range(p):
        if dest[r] != r:
            raise AssertionError("ring reduce-scatter routed a chunk incorrectly")
        result[r] = acc[r]
    return result


def ag_col(shards: Shards, mesh: Mesh2D, axis: int = 1) -> Shards:
    """AllGather within each row ring (inter-column communication).

    Every chip ``(i, j)`` receives the concatenation, along ``axis``, of
    the shards of all chips in row ``i`` (in column order).
    """
    _check_mesh_shards(shards, mesh)
    out: Shards = {}
    for i in range(mesh.rows):
        gathered = ring_allgather([shards[(i, j)] for j in range(mesh.cols)], axis)
        for j in range(mesh.cols):
            out[(i, j)] = gathered[j]
    return _sdc.corrupt_shards("ag_col", out)


def ag_row(shards: Shards, mesh: Mesh2D, axis: int = 0) -> Shards:
    """AllGather within each column ring (inter-row communication)."""
    _check_mesh_shards(shards, mesh)
    out: Shards = {}
    for j in range(mesh.cols):
        gathered = ring_allgather([shards[(i, j)] for i in range(mesh.rows)], axis)
        for i in range(mesh.rows):
            out[(i, j)] = gathered[i]
    return _sdc.corrupt_shards("ag_row", out)


def rds_col(partials: Shards, mesh: Mesh2D, axis: int = 1) -> Shards:
    """ReduceScatter within each row ring (inter-column communication).

    Sums the full-size partials of the chips in each row and scatters
    the sum along ``axis``: chip ``(i, j)`` receives the ``j``-th chunk.
    """
    _check_mesh_shards(partials, mesh)
    out: Shards = {}
    for i in range(mesh.rows):
        scattered = ring_reducescatter(
            [partials[(i, j)] for j in range(mesh.cols)], axis
        )
        for j in range(mesh.cols):
            out[(i, j)] = scattered[j]
    return _sdc.corrupt_shards("rds_col", out)


def rds_row(partials: Shards, mesh: Mesh2D, axis: int = 0) -> Shards:
    """ReduceScatter within each column ring (inter-row communication)."""
    _check_mesh_shards(partials, mesh)
    out: Shards = {}
    for j in range(mesh.cols):
        scattered = ring_reducescatter(
            [partials[(i, j)] for i in range(mesh.rows)], axis
        )
        for i in range(mesh.rows):
            out[(i, j)] = scattered[i]
    return _sdc.corrupt_shards("rds_row", out)


def bcast_col(shards: Shards, mesh: Mesh2D, root_col: int) -> Shards:
    """Broadcast within each row ring from the chip in ``root_col``.

    SUMMA's per-iteration one-to-all primitive: every chip of row ``i``
    receives a copy of the shard held by chip ``(i, root_col)``. Only
    the root chips' entries of ``shards`` are read.
    """
    mesh._check_col(root_col)
    out: Shards = {}
    for i in range(mesh.rows):
        payload = shards[(i, root_col)]
        for j in range(mesh.cols):
            out[(i, j)] = payload.copy()
    return _sdc.corrupt_shards("bcast_col", out)


def bcast_row(shards: Shards, mesh: Mesh2D, root_row: int) -> Shards:
    """Broadcast within each column ring from the chip in ``root_row``.

    Only the root chips' entries of ``shards`` are read.
    """
    mesh._check_row(root_row)
    out: Shards = {}
    for j in range(mesh.cols):
        payload = shards[(root_row, j)]
        for i in range(mesh.rows):
            out[(i, j)] = payload.copy()
    return _sdc.corrupt_shards("bcast_row", out)


def reduce_col(partials: Shards, mesh: Mesh2D, root_col: int) -> Shards:
    """All-to-one sum within each row ring, landing at ``root_col``.

    SUMMA's per-iteration reduce: chip ``(i, root_col)`` receives the
    sum of the partials of row ``i``; other chips receive nothing
    (absent from the result).
    """
    _check_mesh_shards(partials, mesh)
    mesh._check_col(root_col)
    out: Shards = {}
    for i in range(mesh.rows):
        total = sum(partials[(i, j)] for j in range(mesh.cols))
        out[(i, root_col)] = total
    return _sdc.corrupt_shards("reduce_col", out)


def reduce_row(partials: Shards, mesh: Mesh2D, root_row: int) -> Shards:
    """All-to-one sum within each column ring, landing at ``root_row``."""
    _check_mesh_shards(partials, mesh)
    mesh._check_row(root_row)
    out: Shards = {}
    for j in range(mesh.cols):
        total = sum(partials[(i, j)] for i in range(mesh.rows))
        out[(root_row, j)] = total
    return _sdc.corrupt_shards("reduce_row", out)


def shift_col(shards: Shards, mesh: Mesh2D, hops: int = 1) -> Shards:
    """Cyclic shift within each row ring (Cannon's SendRecv).

    Each chip's shard moves ``hops`` chips to the *left* (toward lower
    column index), wrapping around the torus: chip ``(i, j)`` ends up
    holding the shard previously at ``(i, j + hops)``.
    """
    _check_mesh_shards(shards, mesh)
    return {
        (i, j): shards[(i, (j + hops) % mesh.cols)]
        for i, j in mesh.coords()
    }


def shift_row(shards: Shards, mesh: Mesh2D, hops: int = 1) -> Shards:
    """Cyclic shift within each column ring.

    Each chip's shard moves ``hops`` chips *up*: chip ``(i, j)`` ends up
    holding the shard previously at ``(i + hops, j)``.
    """
    _check_mesh_shards(shards, mesh)
    return {
        (i, j): shards[((i + hops) % mesh.rows, j)]
        for i, j in mesh.coords()
    }
