"""Collective communication: functional ring collectives and cost models."""

from repro.comm.cost import ZERO_COST, CommCost, CommCostModel
from repro.comm import onesided
from repro.comm.onesided import OneSidedCostModel, ring_hops
from repro.comm.ops import (
    ring_allgather,
    ring_reducescatter,
    ag_col,
    ag_row,
    bcast_col,
    bcast_row,
    rds_col,
    rds_row,
    reduce_col,
    reduce_row,
    shift_col,
    shift_row,
)

__all__ = [
    "ring_allgather",
    "ring_reducescatter",
    "CommCost",
    "CommCostModel",
    "OneSidedCostModel",
    "ZERO_COST",
    "onesided",
    "ring_hops",
    "ag_col",
    "ag_row",
    "bcast_col",
    "bcast_row",
    "rds_col",
    "rds_row",
    "reduce_col",
    "reduce_row",
    "shift_col",
    "shift_row",
]
