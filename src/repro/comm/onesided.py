"""One-sided (RDMA-style) communication: get/put primitives and costs.

The ring collectives in :mod:`repro.comm.ops` are *two-sided*: every
transfer is matched by a receiver and every ring step pays a
synchronization. One-sided sliced GeMM (Brock & Golin, "Slicing Is All
You Need", PAPERS.md) instead has each chip *get* exactly the operand
windows it needs from their owners' memory — no per-step rendezvous,
no global schedule — and close each epoch with a single fence. This
module provides both planes of that primitive:

* a **functional** plane over per-chip numpy shards (windowed ``get``,
  ``put``, ``accumulate`` and a get-based ``gather_get``), with the
  same eager shape/dtype validation contract as :mod:`repro.comm.ops`
  (errors name the offending rank), and
* an analytical :class:`OneSidedCostModel` next to
  :class:`repro.comm.cost.CommCostModel`: gets and puts pay a cheap
  descriptor-post launch and pure wire time with **zero per-step
  sync**; all synchronization is concentrated in the epoch-closing
  :meth:`~OneSidedCostModel.fence`.

SDC hooks mirror the collectives: every payload that crossed the wire
passes through :func:`repro.faults.sdc.corrupt_block` under the
``onesided_get`` / ``onesided_put`` / ``onesided_acc`` hook names, so
:class:`~repro.faults.sdc.SDCPlan` injection covers one-sided traffic
too. ABFT checksums, however, do **not** survive one-sided transfers:
a windowed get reads an arbitrary sub-range of a shard, which slices
through the checksum rows/columns appended at shard granularity — the
algorithms built on this module reject ``abft=True`` configurations
with a structured ``check_support`` reason (see ``docs/algorithms.md``).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.comm.cost import CommCost, ZERO_COST
from repro.comm.ops import Shards, _check_uniform
from repro.faults import sdc as _sdc
from repro.hw.params import HardwareParams
from repro.mesh.topology import Coord, Mesh2D

__all__ = [
    "OneSidedCostModel",
    "accumulate",
    "gather_get",
    "get",
    "put",
    "ring_hops",
]


def ring_hops(ring_size: int) -> int:
    """Total min-wrap hop count of gets from every other ring member.

    ``sum(min(d, P - d) for d in 1..P-1)`` — the wire volume multiplier
    of a get epoch that fetches one shard from each peer of a ring.
    """
    if ring_size < 1:
        raise ValueError(f"ring_size must be >= 1, got {ring_size}")
    return sum(min(d, ring_size - d) for d in range(1, ring_size))


class OneSidedCostModel:
    """Closed-form costs of one-sided get/put communication.

    Args:
        hw: Hardware parameters providing link bandwidth and the
            measured ``t_sync`` / ``t_launch`` constants.

    A one-sided operation posts a transfer descriptor to the NIC
    instead of launching a host-coordinated collective, so its launch
    cost is a fraction (:data:`LAUNCH_FRACTION`) of ``t_launch`` and it
    pays **no** per-step synchronization — the defining difference from
    the ring formula ``t_launch + (P-1) * (t_sync + shard/bw)``. The
    synchronization deferred by the gets/puts is paid once per epoch in
    :meth:`fence` (a log-depth tree barrier over the participants).
    """

    #: Descriptor-post cost of one get/put relative to a collective
    #: launch: no rendezvous with remote software, just a NIC doorbell.
    LAUNCH_FRACTION = 0.25

    def __init__(self, hw: HardwareParams):
        self.hw = hw
        self._t_post = hw.t_launch * self.LAUNCH_FRACTION
        self._t_sync = hw.t_sync
        self._bw = hw.ring_bandwidth

    #: Flyweight pool, mirroring ``CommCostModel._instances``.
    _instances: "dict" = {}

    @classmethod
    def for_hw(cls, hw: HardwareParams) -> "OneSidedCostModel":
        """The shared cost model of ``hw`` (do not mutate)."""
        model = cls._instances.get(hw)
        if model is None:
            model = cls._instances[hw] = cls(hw)
        return model

    def get(self, message_bytes: float, hops: int = 1) -> CommCost:
        """One one-sided read of ``message_bytes`` over ``hops`` links.

        The remote chip is not involved (its NIC serves the read), so
        the only latency terms are the descriptor post and wire time;
        HBM traffic is one read at the source and one write at the
        reader.
        """
        return self._transfer(message_bytes, hops, hbm_factor=2.0)

    def put(self, message_bytes: float, hops: int = 1) -> CommCost:
        """One one-sided write; same cost structure as :meth:`get`."""
        return self._transfer(message_bytes, hops, hbm_factor=2.0)

    def accumulate(self, message_bytes: float, hops: int = 1) -> CommCost:
        """A one-sided fetch-add write.

        The target's NIC performs a read-modify-write, so the remote
        side pays one extra HBM read per byte compared to :meth:`put`.
        """
        return self._transfer(message_bytes, hops, hbm_factor=3.0)

    def epoch(self, ring_size: int, shard_bytes: float) -> CommCost:
        """Gets of one ``shard_bytes`` shard from each other ring member.

        The one-sided replacement of a ring AllGather: ``P - 1``
        descriptor posts, wire time for every shard over its min-wrap
        route, and **zero** synchronization (the caller fences once per
        epoch). On its own link direction the transfers serialize, which
        is what charging the summed wire time models.
        """
        self._check(ring_size, shard_bytes)
        if ring_size == 1:
            return ZERO_COST
        return self._epoch(ring_size, shard_bytes, hbm_factor=2.0)

    def accumulate_epoch(self, ring_size: int, shard_bytes: float) -> CommCost:
        """Accumulating puts of one shard to each other ring member.

        The one-sided replacement of a ring ReduceScatter: each peer's
        chunk is put-accumulated into its owner's window. Remote
        read-modify-write adds one HBM read per byte over :meth:`epoch`.
        """
        self._check(ring_size, shard_bytes)
        if ring_size == 1:
            return ZERO_COST
        return self._epoch(ring_size, shard_bytes, hbm_factor=3.0)

    def fence(self, participants: int) -> CommCost:
        """Epoch-closing quiet-and-barrier over ``participants`` chips.

        All the synchronization the gets/puts skipped, paid once: a
        log-depth dissemination barrier of ``ceil(log2(P))`` rounds,
        each costing one ``t_sync``.
        """
        if participants < 1:
            raise ValueError(
                f"participants must be >= 1, got {participants}"
            )
        if participants == 1:
            return ZERO_COST
        rounds = math.ceil(math.log2(participants))
        return CommCost(
            launch=self._t_post,
            transfer=0.0,
            sync=rounds * self._t_sync,
            hbm_bytes=0.0,
            syncs=rounds,
            wire_bytes=0.0,
        )

    def panel(
        self, pieces: int, piece_bytes: float, mean_hops: float = 1.0
    ) -> CommCost:
        """A distributed panel fetched with ``pieces`` gets.

        Used by the SFC GeMM: a tile's operand panel lives sharded over
        ``pieces`` owner chips at an average torus distance of
        ``mean_hops``; the reader posts one get per piece.
        """
        if pieces < 1:
            raise ValueError(f"pieces must be >= 1, got {pieces}")
        if piece_bytes < 0:
            raise ValueError(
                f"piece_bytes must be non-negative, got {piece_bytes}"
            )
        if mean_hops < 0:
            raise ValueError(f"mean_hops must be non-negative, got {mean_hops}")
        total = pieces * piece_bytes
        return CommCost(
            launch=pieces * self._t_post,
            transfer=total * mean_hops / self._bw,
            sync=0.0,
            hbm_bytes=2.0 * total,
            syncs=0,
            wire_bytes=total * mean_hops,
        )

    def mean_ring_hops(self, ring_size: int) -> float:
        """Average min-wrap distance to the other members of a ring."""
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        if ring_size == 1:
            return 0.0
        return ring_hops(ring_size) / (ring_size - 1)

    def _transfer(
        self, message_bytes: float, hops: int, hbm_factor: float
    ) -> CommCost:
        if message_bytes < 0:
            raise ValueError("message_bytes must be non-negative")
        if hops < 0:
            raise ValueError("hops must be non-negative")
        if hops == 0 or message_bytes == 0:
            return ZERO_COST
        return CommCost(
            launch=self._t_post,
            transfer=hops * message_bytes / self._bw,
            sync=0.0,
            hbm_bytes=hbm_factor * message_bytes,
            syncs=0,
            wire_bytes=hops * message_bytes,
        )

    def _epoch(
        self, ring_size: int, shard_bytes: float, hbm_factor: float
    ) -> CommCost:
        peers = ring_size - 1
        hops = ring_hops(ring_size)
        return CommCost(
            launch=peers * self._t_post,
            transfer=hops * shard_bytes / self._bw,
            sync=0.0,
            hbm_bytes=hbm_factor * peers * shard_bytes,
            syncs=0,
            wire_bytes=hops * shard_bytes,
        )

    @staticmethod
    def _check(ring_size: int, shard_bytes: float) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        if shard_bytes < 0:
            raise ValueError(
                f"shard_bytes must be non-negative, got {shard_bytes}"
            )


# --------------------------------------------------------------- functional

Window = Optional[Tuple[int, int]]


def get(
    shards: Shards,
    mesh: Mesh2D,
    source: Coord,
    rows: Window = None,
    cols: Window = None,
) -> np.ndarray:
    """One-sided read of a window of ``source``'s shard.

    ``rows``/``cols`` are half-open ``(start, stop)`` ranges into the
    shard (``None`` reads the full extent). Returns a fresh copy — the
    reader owns the bytes it pulled; the source shard is never aliased
    or mutated. The payload passes the ``onesided_get`` SDC hook.
    """
    shard = _source_shard(shards, mesh, source, "onesided get")
    r = _check_window(rows, shard.shape[0], "rows", source, shard)
    c = _check_window(cols, shard.shape[1], "cols", source, shard)
    window = shard[r[0]:r[1], c[0]:c[1]].copy()
    return _sdc.corrupt_block("onesided_get", window)


def put(
    shards: Shards,
    mesh: Mesh2D,
    target: Coord,
    payload: np.ndarray,
    row: int = 0,
    col: int = 0,
) -> Shards:
    """One-sided write of ``payload`` into ``target``'s shard.

    Returns a new shard dict with the target entry replaced
    (copy-on-write: the input dict and arrays are never mutated,
    mirroring the collectives' contract). The payload passes the
    ``onesided_put`` SDC hook before landing.
    """
    shard = _check_payload(shards, mesh, target, payload, row, col, "onesided_put")
    landed = _sdc.corrupt_block("onesided_put", payload)
    out = dict(shards)
    updated = shard.copy()
    updated[row:row + payload.shape[0], col:col + payload.shape[1]] = landed
    out[target] = updated
    return out


def accumulate(
    shards: Shards,
    mesh: Mesh2D,
    target: Coord,
    payload: np.ndarray,
    row: int = 0,
    col: int = 0,
) -> Shards:
    """One-sided fetch-add of ``payload`` into ``target``'s shard.

    The one-sided reduce primitive: the target's window is incremented
    in place of a receive-and-add ring step. Copy-on-write like
    :func:`put`; the payload passes the ``onesided_acc`` SDC hook
    before the add (a wire flip corrupts the accumulated sum).
    """
    shard = _check_payload(shards, mesh, target, payload, row, col, "onesided_acc")
    landed = _sdc.corrupt_block("onesided_acc", payload)
    out = dict(shards)
    updated = shard.copy()
    updated[row:row + payload.shape[0], col:col + payload.shape[1]] += landed
    out[target] = updated
    return out


def gather_get(
    shards: Shards,
    mesh: Mesh2D,
    sources: Tuple[Coord, ...],
    axis: int,
) -> np.ndarray:
    """One-sided gather: get each source's full shard and concatenate.

    The get-based replacement of a ring AllGather for one reading chip:
    no ring schedule, no per-step synchronization — just one get per
    source, assembled in the given order. Mismatched source shards are
    rejected eagerly, naming the offending rank (the same contract as
    ``ring_allgather``).
    """
    if not sources:
        raise ValueError("gather_get needs at least one source")
    chunks = [
        _source_shard(shards, mesh, coord, "gather_get") for coord in sources
    ]
    _check_uniform(chunks, "gather_get")
    gathered = [
        get(shards, mesh, coord) for coord in sources
    ]
    return np.concatenate(gathered, axis=axis)


def _source_shard(
    shards: Shards, mesh: Mesh2D, coord: Coord, what: str
) -> np.ndarray:
    if not mesh.contains(coord):
        raise ValueError(f"{what}: rank {coord} not in mesh {mesh}")
    shard = shards.get(coord)
    if shard is None:
        raise ValueError(f"{what}: rank {coord} has no shard")
    return shard


def _check_window(
    window: Window, extent: int, what: str, source: Coord, shard: np.ndarray
) -> Tuple[int, int]:
    if window is None:
        return (0, extent)
    start, stop = window
    if not 0 <= start < stop <= extent:
        raise ValueError(
            f"onesided get: {what} window [{start}, {stop}) out of bounds "
            f"for rank {source} shard {shard.shape}"
        )
    return (start, stop)


def _check_payload(
    shards: Shards,
    mesh: Mesh2D,
    target: Coord,
    payload: np.ndarray,
    row: int,
    col: int,
    what: str,
) -> np.ndarray:
    shard = _source_shard(shards, mesh, target, what)
    if payload.dtype != shard.dtype:
        raise ValueError(
            f"{what}: payload dtype {payload.dtype} disagrees with "
            f"rank {target} shard dtype {shard.dtype}"
        )
    if (
        row < 0
        or col < 0
        or row + payload.shape[0] > shard.shape[0]
        or col + payload.shape[1] > shard.shape[1]
    ):
        raise ValueError(
            f"{what}: payload {payload.shape} at ({row}, {col}) does not "
            f"fit rank {target} shard {shard.shape}"
        )
    return shard
