"""Analytical communication cost model (Sections 3.2.2 and 4.5).

The paper models the cost of a collective operation on a ring of ``P``
chips as a linear function::

    cost_op = t_launch + (P - 1) * (t_sync + sizeof(shard) / bw)

which fits ring AllGather/ReduceScatter well because their shard
transfers are synchronized and contention-free. This module implements
that model, plus the corresponding models for SUMMA's pipelined
bcast/reduce (which pay a synchronization per pipeline stage and suffer
P-1 bubble stages) and point-to-point SendRecv. Every cost is broken
down into the three components the paper reports in Figure 10: launch,
transfer, and sync. Costs also carry the HBM traffic the operation
generates on each chip, which the simulator uses to model contention
between the NIC and the compute cores.
"""

from __future__ import annotations

import dataclasses

from repro.hw.params import HardwareParams


@dataclasses.dataclass(frozen=True)
class CommCost:
    """Cost of one communication operation on one chip's critical path.

    Attributes:
        launch: Host launch overhead (seconds).
        transfer: Time the links spend moving bytes, including pipeline
            bubbles for bcast/reduce (seconds).
        sync: Total synchronization latency (seconds).
        hbm_bytes: Bytes of HBM traffic (reads plus writes) the
            operation generates on one chip.
        syncs: Number of synchronization events (for overhead analysis).
        wire_bytes: Bytes the chip transmits over its network links
            (used to model NIC contention on logical meshes,
            Section 6).
    """

    launch: float
    transfer: float
    sync: float
    hbm_bytes: float
    syncs: int
    wire_bytes: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end duration of the operation (seconds)."""
        return self.launch + self.transfer + self.sync

    def scaled(self, factor: float) -> "CommCost":
        """All components multiplied by ``factor`` (syncs rounded up)."""
        return CommCost(
            launch=self.launch * factor,
            transfer=self.transfer * factor,
            sync=self.sync * factor,
            hbm_bytes=self.hbm_bytes * factor,
            syncs=int(round(self.syncs * factor)),
            wire_bytes=self.wire_bytes * factor,
        )

    def __add__(self, other: "CommCost") -> "CommCost":
        return CommCost(
            launch=self.launch + other.launch,
            transfer=self.transfer + other.transfer,
            sync=self.sync + other.sync,
            hbm_bytes=self.hbm_bytes + other.hbm_bytes,
            syncs=self.syncs + other.syncs,
            wire_bytes=self.wire_bytes + other.wire_bytes,
        )


ZERO_COST = CommCost(
    launch=0.0, transfer=0.0, sync=0.0, hbm_bytes=0.0, syncs=0, wire_bytes=0.0
)


class CommCostModel:
    """Closed-form per-operation communication costs for one machine.

    Args:
        hw: Hardware parameters providing link bandwidth and the
            measured ``t_sync`` / ``t_launch`` constants.
    """

    def __init__(self, hw: HardwareParams):
        self.hw = hw
        # The per-op cost formulas below run tens of thousands of times
        # per sweep; hoist the hardware scalars (``ring_bandwidth`` is a
        # computed property) out of the hot path.
        self._t_launch = hw.t_launch
        self._t_sync = hw.t_sync
        self._bw = hw.ring_bandwidth

    #: Flyweight pool: the cost model is immutable per hardware config,
    #: and the sweeps construct one per estimate/program otherwise.
    _instances: "dict" = {}

    @classmethod
    def for_hw(cls, hw: HardwareParams) -> "CommCostModel":
        """The shared cost model of ``hw`` (do not mutate)."""
        model = cls._instances.get(hw)
        if model is None:
            model = cls._instances[hw] = cls(hw)
        return model

    def _ring_bw(self) -> float:
        return self._bw

    def allgather(self, ring_size: int, shard_bytes: float) -> CommCost:
        """Ring AllGather of per-chip shards of ``shard_bytes``.

        Each of the ``P - 1`` steps moves one shard per link and pays
        one synchronization (Figure 3, right). Each received shard is
        written to HBM and each forwarded shard is read back.
        """
        self._check(ring_size, shard_bytes)
        if ring_size == 1:
            return ZERO_COST
        steps = ring_size - 1
        return CommCost(
            self._t_launch,
            steps * shard_bytes / self._bw,
            steps * self._t_sync,
            2.0 * steps * shard_bytes,
            steps,
            steps * shard_bytes,
        )

    def reducescatter(self, ring_size: int, shard_bytes: float) -> CommCost:
        """Ring ReduceScatter producing per-chip shards of ``shard_bytes``.

        Same communication pattern as AllGather; the accumulation adds
        one extra HBM read of the local contribution per step.
        """
        self._check(ring_size, shard_bytes)
        if ring_size == 1:
            return ZERO_COST
        steps = ring_size - 1
        return CommCost(
            self._t_launch,
            steps * shard_bytes / self._bw,
            steps * self._t_sync,
            3.0 * steps * shard_bytes,
            steps,
            steps * shard_bytes,
        )

    def broadcast(
        self, ring_size: int, shard_bytes: float, packets: int
    ) -> CommCost:
        """SUMMA's pipelined ring broadcast of one shard (Figure 3, left).

        The shard is split into ``packets`` fine-grain packets streamed
        over the ring in ``P + D - 1`` pipeline stages; every stage pays
        a synchronization, and ``P - 1`` of the stages are bubbles on
        any given link.
        """
        self._check(ring_size, shard_bytes)
        if packets < 1:
            raise ValueError(f"packets must be >= 1, got {packets}")
        if ring_size == 1:
            return ZERO_COST
        stages = ring_size + packets - 2
        packet_bytes = shard_bytes / packets
        return CommCost(
            self._t_launch,
            stages * packet_bytes / self._bw,
            stages * self._t_sync,
            2.0 * shard_bytes,
            stages,
            shard_bytes,
        )

    def reduce(self, ring_size: int, shard_bytes: float, packets: int) -> CommCost:
        """SUMMA's pipelined all-to-one ring reduce of one shard.

        Same pipeline structure as :meth:`broadcast`; accumulation adds
        an extra HBM read per byte.
        """
        cost = self.broadcast(ring_size, shard_bytes, packets)
        return dataclasses.replace(cost, hbm_bytes=cost.hbm_bytes * 1.5)

    def sendrecv(self, message_bytes: float, hops: int = 1) -> CommCost:
        """Point-to-point SendRecv of ``message_bytes`` over ``hops`` links."""
        if message_bytes < 0:
            raise ValueError("message_bytes must be non-negative")
        if hops < 0:
            raise ValueError("hops must be non-negative")
        if hops == 0 or message_bytes == 0:
            return ZERO_COST
        return CommCost(
            self._t_launch,
            hops * message_bytes / self._bw,
            hops * self._t_sync,
            2.0 * message_bytes,
            hops,
            hops * message_bytes,
        )

    @staticmethod
    def _check(ring_size: int, shard_bytes: float) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        if shard_bytes < 0:
            raise ValueError(f"shard_bytes must be non-negative, got {shard_bytes}")
