"""Performance model of a 3D (DP x PP x TP) training cluster.

Combines the reproduction's existing pieces into a training-step
estimate:

* **TP**: the simulated FC-block time of the chosen distributed GeMM
  algorithm on the TP mesh (plus the analytical non-FC time) gives the
  per-microbatch stage time.
* **PP**: the standard 1F1B/GPipe occupancy model — a step takes
  ``(microbatches + pp - 1)`` stage slots, so the pipeline *bubble
  fraction* is ``(pp - 1) / (microbatches + pp - 1)``.
* **DP**: the gradient all-reduce moves ``2 (dp-1)/dp`` of each chip's
  weight-shard bytes; it overlaps the backward pass, so only the excess
  over the overlap window is exposed.

This is the machinery behind the paper's Section 2.2 argument: widening
TP shrinks each chip's weight shard, which shrinks DP traffic and (at
fixed cluster size) lets DP and PP degrees drop, cutting bubbles.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.experiments.common import run_block
from repro.autotuner.dataflow import plan_model
from repro.hw.params import HardwareParams
from repro.models.layers import fc_layers
from repro.models.nonfc import nonfc_block_seconds
from repro.parallel3d.config import Parallel3DConfig


@dataclasses.dataclass(frozen=True)
class StepBreakdown:
    """Training-step time decomposition for one 3D configuration.

    All times are seconds per training step; traffic is bytes per chip.
    """

    config_desc: str
    chips: int
    stage_seconds: float
    pipeline_seconds: float
    bubble_fraction: float
    dp_traffic_bytes: float
    dp_exposed_seconds: float
    step_seconds: float
    flop_utilization: float


def per_chip_weight_bytes(cfg: Parallel3DConfig) -> float:
    """Bytes of FC weights each chip holds.

    TP shards every weight matrix over all TP chips; PP divides the
    layers among stages. This is the quantity Section 2.2 tracks: 128-
    way TP leaves each chip 1/16th the shard of 8-way TP.
    """
    stage_weights = sum(
        layer.weight_bytes() for layer in fc_layers(cfg.model)
    ) * cfg.layers_per_stage
    return stage_weights / cfg.tp


def dp_allreduce_traffic_bytes(cfg: Parallel3DConfig) -> float:
    """Per-chip gradient all-reduce traffic per step.

    Ring all-reduce moves ``2 (dp - 1) / dp`` times the local gradient
    bytes.
    """
    if cfg.dp == 1:
        return 0.0
    return 2.0 * (cfg.dp - 1) / cfg.dp * per_chip_weight_bytes(cfg)


def estimate_step(
    cfg: Parallel3DConfig,
    hw: HardwareParams,
    algorithm: Optional[str] = None,
    dp_overlap_fraction: float = 0.8,
) -> StepBreakdown:
    """Estimate one training step of a 3D configuration.

    Args:
        cfg: The DP x PP x TP decomposition.
        hw: Hardware parameters.
        algorithm: Distributed GeMM algorithm for the TP plane; default
            MeshSlice for 2D meshes and 1D TP for rings.
        dp_overlap_fraction: Fraction of the DP all-reduce hidden under
            the backward pass (DP communication of one layer overlaps
            compute of another, Section 2.1).
    """
    if not 0.0 <= dp_overlap_fraction <= 1.0:
        raise ValueError("dp_overlap_fraction must be in [0, 1]")
    if algorithm is None:
        algorithm = "meshslice" if cfg.is_2d_tp else "1dtp"

    # Per-microbatch, per-stage time: FC block sims + non-FC estimate.
    micro_tokens = cfg.microbatch_size * cfg.model.seq_len
    plans = plan_model(cfg.model, micro_tokens)
    block = run_block(algorithm, plans, cfg.tp_mesh, hw)
    nonfc = nonfc_block_seconds(cfg.model, micro_tokens, cfg.tp, hw)
    stage_seconds = cfg.layers_per_stage * (block.seconds + nonfc)

    # Pipeline occupancy: (microbatches + pp - 1) stage slots.
    slots = cfg.num_microbatches + cfg.pp - 1
    pipeline_seconds = slots * stage_seconds
    bubble_fraction = (cfg.pp - 1) / slots

    # DP all-reduce, partially hidden under the backward pass.
    traffic = dp_allreduce_traffic_bytes(cfg)
    dp_seconds = traffic / hw.ring_bandwidth
    dp_exposed = dp_seconds * (1.0 - dp_overlap_fraction)

    step_seconds = pipeline_seconds + dp_exposed

    # Utilization: useful FC FLOPs over cluster peak. One step
    # processes num_microbatches * microbatch tokens per replica.
    from repro.models.layers import block_fc_flops

    replica_tokens = cfg.num_microbatches * micro_tokens
    useful_flops = (
        cfg.dp * cfg.model.num_layers * block_fc_flops(cfg.model, replica_tokens)
    )
    utilization = useful_flops / (step_seconds * hw.peak_flops * cfg.chips)

    return StepBreakdown(
        config_desc=cfg.describe(),
        chips=cfg.chips,
        stage_seconds=stage_seconds,
        pipeline_seconds=pipeline_seconds,
        bubble_fraction=bubble_fraction,
        dp_traffic_bytes=traffic,
        dp_exposed_seconds=dp_exposed,
        step_seconds=step_seconds,
        flop_utilization=utilization,
    )
