"""3D (DP x PP x TP) training cluster composition (Section 2.2)."""

from repro.parallel3d.config import Parallel3DConfig
from repro.parallel3d.model import (
    StepBreakdown,
    dp_allreduce_traffic_bytes,
    estimate_step,
    per_chip_weight_bytes,
)

__all__ = [
    "Parallel3DConfig",
    "StepBreakdown",
    "dp_allreduce_traffic_bytes",
    "estimate_step",
    "per_chip_weight_bytes",
]
