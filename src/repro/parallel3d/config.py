"""3D training cluster configurations (Section 2.2).

Contemporary LLM training composes data parallelism (DP), pipeline
parallelism (PP), and tensor parallelism (TP) into a 3D cluster. The
paper's Section 2.2 argues that widening TP from 8-way 1D to, e.g.,
128-way 2D both scales the cluster and *shrinks per-chip DP traffic*,
because every chip then holds a smaller weight shard. This subpackage
models those compositions quantitatively.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.mesh.topology import Mesh2D
from repro.models.config import LLMConfig


@dataclasses.dataclass(frozen=True)
class Parallel3DConfig:
    """One DP x PP x TP decomposition of a training cluster.

    Attributes:
        model: The LLM being trained.
        dp: Data-parallel degree (weight replicas).
        pp: Pipeline-parallel degree (layer stages).
        tp_mesh: The tensor-parallel mesh. ``Mesh2D(1, t)`` denotes
            1D TP over a ring of ``t`` chips.
        global_batch: Global batch size (sequences per step).
        microbatches: Pipeline microbatch count (defaults to ``dp``-
            normalized batch, at least ``pp`` to fill the pipeline).
    """

    model: LLMConfig
    dp: int
    pp: int
    tp_mesh: Mesh2D
    global_batch: int
    microbatches: Optional[int] = None

    def __post_init__(self) -> None:
        if min(self.dp, self.pp) < 1:
            raise ValueError(f"dp and pp must be >= 1, got {self.dp}/{self.pp}")
        if self.global_batch < self.dp:
            raise ValueError(
                f"global batch {self.global_batch} smaller than dp {self.dp}"
            )
        if self.model.num_layers % self.pp != 0:
            raise ValueError(
                f"{self.model.num_layers} layers do not divide into "
                f"{self.pp} pipeline stages"
            )
        if self.microbatches is not None and self.microbatches < 1:
            raise ValueError("microbatches must be >= 1")

    @property
    def tp(self) -> int:
        """Tensor-parallel degree."""
        return self.tp_mesh.size

    @property
    def is_2d_tp(self) -> bool:
        return self.tp_mesh.rows > 1 and self.tp_mesh.cols > 1

    @property
    def chips(self) -> int:
        """Total cluster size."""
        return self.dp * self.pp * self.tp

    @property
    def layers_per_stage(self) -> int:
        return self.model.num_layers // self.pp

    @property
    def batch_per_replica(self) -> int:
        if self.global_batch % self.dp != 0:
            raise ValueError(
                f"global batch {self.global_batch} does not divide over "
                f"dp={self.dp}"
            )
        return self.global_batch // self.dp

    @property
    def num_microbatches(self) -> int:
        """Microbatch count: explicit, or enough to fill the pipeline."""
        if self.microbatches is not None:
            return self.microbatches
        return max(self.pp, min(self.batch_per_replica, 4 * self.pp))

    @property
    def microbatch_size(self) -> int:
        size = max(1, self.batch_per_replica // self.num_microbatches)
        return size

    def describe(self) -> str:
        kind = "2D" if self.is_2d_tp else "1D"
        return (
            f"dp={self.dp} x pp={self.pp} x tp={self.tp}({kind} "
            f"{self.tp_mesh}) = {self.chips} chips"
        )
