"""Recovery ablation: goodput vs scale vs policy for multi-day runs.

Per-step simulation says how fast a healthy mesh trains; this ablation
asks what survives contact with failures. For each cluster size the
tuned MeshSlice configuration provides the full-mesh step time; the
degraded-mesh retune (:func:`repro.perf.pipeline.degraded_retune_model`)
provides the step time after one chip dies and its row or column is
drained; and the analytical checkpoint/goodput models
(:mod:`repro.recovery`) convert both into end-to-end goodput — the
fraction of wall-clock banked as useful training — under the two
recovery policies:

* **restart**: checkpoint at the Young/Daly-optimal interval, and on a
  failure wait out the chip repair before resuming on the full mesh;
* **degrade**: checkpoint identically, but ride out each repair window
  on the shrunk torus at the re-tuned (slower) step rate.

The grid sweeps cluster size — the cluster MTBF shrinks as ``1 / chips``
while the repair window stays fixed, so the policy gap widens with
scale. Every simulated pass and every degraded retune flows through
the memoized pipeline; revisits across policies and scales are cache
hits.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignSpec
from repro.experiments.common import (
    best_block_run,
    end_to_end_step_seconds,
    grid_map,
    render_table,
    weak_scaling_batch,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.models import GPT3_175B
from repro.models.config import LLMConfig
from repro.perf.pipeline import degraded_retune_model, simulated_pass
from repro.recovery import (
    ClusterReliability,
    degrade_goodput,
    restart_goodput,
)

#: Cluster sizes swept (weak scaling, like Figure 9).
CLUSTER_SIZES = (16, 64, 256)

#: Per-chip mean time between failures (hours). TPU-class fleet number:
#: a few months per chip, so a 256-chip pod fails every day or two.
DEFAULT_CHIP_MTBF_HOURS = 2000.0

#: Chip replacement / repair time (minutes).
DEFAULT_REPAIR_MINUTES = 60.0

#: Checkpoint write and restart (reload + reschedule) costs (seconds).
DEFAULT_CHECKPOINT_SECONDS = 60.0
DEFAULT_RESTART_SECONDS = 180.0

ALGORITHM = "meshslice"


@dataclasses.dataclass(frozen=True)
class RecoveryRow:
    """One cluster size of the goodput-vs-policy grid."""

    chips: int
    mesh: Tuple[int, int]
    degraded_mesh: Tuple[int, int]
    dropped: str
    step_ms: float
    degraded_step_ms: float
    cluster_mtbf_hours: float
    checkpoint_interval_s: float
    restart_goodput: float
    degrade_goodput: float

    @property
    def best_policy(self) -> str:
        if self.degrade_goodput > self.restart_goodput:
            return "degrade"
        return "restart"

    @property
    def degraded_slowdown(self) -> float:
        """Degraded over full-mesh step time (>= 1)."""
        if self.step_ms <= 0:
            return 1.0
        return self.degraded_step_ms / self.step_ms


def _degraded_step_seconds(
    model: LLMConfig,
    batch: int,
    retune,
    hw: HardwareParams,
) -> float:
    """Simulated end-to-end step time of the re-tuned shrunk torus.

    The retune's analytical block estimate picked the configuration;
    the reported time re-simulates it pass by pass through the
    memoized pipeline, same as the healthy baseline.
    """
    block = sum(
        simulated_pass(ALGORITHM, tuned.config(retune.mesh), hw).makespan
        for tuned in retune.result.passes
    )
    return end_to_end_step_seconds(
        model, batch, retune.surviving_chips, hw, block
    )


def _point(
    args: Tuple[int, LLMConfig, HardwareParams, float, float, float, float],
) -> Optional[RecoveryRow]:
    """One cluster size, shaped for :func:`grid_map` (picklable)."""
    (chips, model, hw, chip_mtbf_hours, repair_minutes,
     checkpoint_seconds, restart_seconds) = args
    batch = weak_scaling_batch(chips)
    clean = best_block_run(ALGORITHM, model, batch, chips, hw)
    if clean is None:
        return None
    step = end_to_end_step_seconds(model, batch, chips, hw, clean.seconds)
    # Any single dead chip yields the same shrunk candidates, so (0, 0)
    # is fully general (pinned by tests/test_recovery.py).
    retune = degraded_retune_model(model, batch, clean.mesh, (0, 0), hw)
    degraded_step = _degraded_step_seconds(model, batch, retune, hw)
    reliability = ClusterReliability(
        chip_mtbf=chip_mtbf_hours * 3600.0,
        chips=chips,
        repair_seconds=repair_minutes * 60.0,
    )
    restart = restart_goodput(
        step, reliability, checkpoint_seconds, restart_seconds
    )
    degrade = degrade_goodput(
        step, degraded_step, reliability, checkpoint_seconds, restart_seconds
    )
    return RecoveryRow(
        chips=chips,
        mesh=clean.mesh.shape,
        degraded_mesh=retune.mesh.shape,
        dropped=retune.dropped,
        step_ms=step * 1e3,
        degraded_step_ms=degraded_step * 1e3,
        cluster_mtbf_hours=reliability.mtbf / 3600.0,
        checkpoint_interval_s=restart.checkpoint_interval,
        restart_goodput=restart.goodput,
        degrade_goodput=degrade.goodput,
    )


def run(
    model: LLMConfig = GPT3_175B,
    sizes: Sequence[int] = CLUSTER_SIZES,
    hw: HardwareParams = TPUV4,
    chip_mtbf_hours: float = DEFAULT_CHIP_MTBF_HOURS,
    repair_minutes: float = DEFAULT_REPAIR_MINUTES,
    checkpoint_seconds: float = DEFAULT_CHECKPOINT_SECONDS,
    restart_seconds: float = DEFAULT_RESTART_SECONDS,
    jobs: Optional[int] = None,
) -> List[RecoveryRow]:
    """Goodput of both recovery policies at every cluster size."""
    points = [
        (chips, model, hw, chip_mtbf_hours, repair_minutes,
         checkpoint_seconds, restart_seconds)
        for chips in sizes
    ]
    rows = grid_map(_point, points, jobs=jobs)
    return [row for row in rows if row is not None]


def render(rows: Sequence[RecoveryRow]) -> str:
    table = render_table(
        ["chips", "mesh", "degraded", "dropped", "step (ms)",
         "degraded step (ms)", "MTBF (h)", "ckpt interval (s)",
         "restart goodput", "degrade goodput", "best"],
        [(r.chips, f"{r.mesh[0]}x{r.mesh[1]}",
          f"{r.degraded_mesh[0]}x{r.degraded_mesh[1]}", r.dropped,
          r.step_ms, r.degraded_step_ms, f"{r.cluster_mtbf_hours:.0f}",
          f"{r.checkpoint_interval_s:.0f}",
          f"{r.restart_goodput * 100:.2f}%",
          f"{r.degrade_goodput * 100:.2f}%", r.best_policy)
         for r in rows],
    )
    lines = [table, ""]
    if rows:
        largest = rows[-1]
        gap = (largest.degrade_goodput - largest.restart_goodput) * 100
        lines.append(
            f"at {largest.chips} chips the degrade policy keeps "
            f"{gap:+.2f} points of goodput over restart-and-wait "
            f"(degraded step {largest.degraded_slowdown:.2f}x the full mesh)"
        )
        lines.append(
            "(cluster MTBF shrinks as 1/chips while the repair window is "
            "fixed, so riding out repairs on the shrunk torus pays off "
            "more the larger the pod — exactly the regime where "
            "checkpoint-restart alone bleeds goodput)"
        )
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4) -> str:
    return render(run(hw=hw))


def _campaign_point(args) -> List[RecoveryRow]:
    """One durable campaign point; unsupported points store as []."""
    row = _point(args)
    return [] if row is None else [row]


def _campaign_points() -> List[tuple]:
    return [
        (chips, GPT3_175B, TPUV4, DEFAULT_CHIP_MTBF_HOURS,
         DEFAULT_REPAIR_MINUTES, DEFAULT_CHECKPOINT_SECONDS,
         DEFAULT_RESTART_SECONDS)
        for chips in CLUSTER_SIZES
    ]


CAMPAIGN = CampaignSpec(
    name="ablation-recovery",
    points=_campaign_points,
    point=_campaign_point,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
