"""Figure 14: cost-model vs simulation across slice counts (32x8 mesh).

Sweeps the MeshSlice slice count ``S`` uniformly over the FC layers of
a 32x8-mesh cluster and compares the analytical estimate against the
simulation. The trade-off the paper describes should appear as an
interior optimum: small ``S`` leaves a large non-overlapped prologue
and epilogue; large ``S`` piles up synchronization and kernel-launch
overhead. What matters is that the cost model's optimum matches the
simulator's.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.algorithms import GeMMConfig, get_algorithm
from repro.autotuner.costmodel import meshslice_estimate
from repro.autotuner.dataflow import plan_model
from repro.campaign.spec import CampaignSpec
from repro.experiments.common import render_table, weak_scaling_batch
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.mesh.topology import Mesh2D
from repro.models.config import LLMConfig
from repro.models.zoo import GPT3_175B, MEGATRON_NLG_530B
from repro.sim.cluster import simulate

#: Uniform slice counts swept by the figure.
SLICE_COUNTS = (1, 2, 4, 8, 16, 32, 64)


@dataclasses.dataclass(frozen=True)
class SliceCountRow:
    model: str
    slices: int
    estimated_utilization: Optional[float]
    simulated_utilization: Optional[float]


def _point_row(point) -> SliceCountRow:
    """One Figure 14 (model, slice count) data point.

    Module-level so the campaign runner can run it as one durable,
    picklable unit of work; ``plan_model`` is memoized so points
    sharing a process derive the plans once.
    """
    model, chips, mesh, slices, hw = point
    alg = get_algorithm("meshslice")
    tokens = model.tokens(weak_scaling_batch(chips))
    plans = plan_model(model, tokens, optimize_dataflow=True)
    est_seconds = sim_seconds = 0.0
    flops_per_chip = 0.0
    for plan in plans:
        for pass_plan in plan.passes:
            cfg = GeMMConfig(
                shape=pass_plan.shape,
                mesh=mesh,
                dataflow=pass_plan.dataflow,
                slices=slices,
                transposed=pass_plan.transposed,
            )
            if not alg.supports(cfg):
                return SliceCountRow(model.name, slices, None, None)
            est_seconds += meshslice_estimate(cfg, hw).total
            result = simulate(alg.build_program(cfg, hw), hw)
            sim_seconds += result.makespan
            flops_per_chip += result.flops_per_chip
    return SliceCountRow(
        model=model.name,
        slices=slices,
        estimated_utilization=flops_per_chip
        / (est_seconds * hw.peak_flops),
        simulated_utilization=flops_per_chip
        / (sim_seconds * hw.peak_flops),
    )


def run(
    models: Sequence[LLMConfig] = (GPT3_175B, MEGATRON_NLG_530B),
    chips: int = 256,
    mesh: Mesh2D = Mesh2D(32, 8),
    slice_counts: Sequence[int] = SLICE_COUNTS,
    hw: HardwareParams = TPUV4,
) -> List[SliceCountRow]:
    """Produce the Figure 14 series."""
    return [
        _point_row((model, chips, mesh, slices, hw))
        for model in models
        for slices in slice_counts
    ]


def optimal_slices(rows: Sequence[SliceCountRow], model: str) -> Tuple[int, int]:
    """(estimated-optimal, simulated-optimal) slice counts for a model."""
    model_rows = [
        r for r in rows if r.model == model and r.estimated_utilization is not None
    ]
    if not model_rows:
        raise ValueError(f"no feasible rows for model {model!r}")
    est = max(model_rows, key=lambda r: r.estimated_utilization).slices
    sim = max(model_rows, key=lambda r: r.simulated_utilization).slices
    return est, sim


def render(rows: Sequence[SliceCountRow]) -> str:
    table = render_table(
        ["model", "S", "estimated util", "simulated util"],
        [
            (r.model, r.slices, r.estimated_utilization, r.simulated_utilization)
            for r in rows
        ],
    )
    lines = [table, ""]
    for model in sorted({r.model for r in rows}):
        est, sim = optimal_slices(rows, model)
        agree = "agree" if est == sim else "DISAGREE"
        lines.append(
            f"{model}: cost model optimum S={est}, simulated optimum S={sim} "
            f"({agree})"
        )
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4) -> str:
    return render(run(hw=hw))


def _campaign_points() -> List[tuple]:
    return [
        (model, 256, Mesh2D(32, 8), slices, TPUV4)
        for model in (GPT3_175B, MEGATRON_NLG_530B)
        for slices in SLICE_COUNTS
    ]


CAMPAIGN = CampaignSpec(
    name="fig14",
    points=_campaign_points,
    point=_point_row,
    render=render,
)


if __name__ == "__main__":
    print(main())
