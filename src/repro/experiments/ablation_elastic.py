"""Elastic ablation: simulated lifetimes vs closed-form policy math.

The recovery ablation (:mod:`~repro.experiments.ablation_recovery`)
prices one failure per repair cycle with renewal algebra. This grid
runs the real thing: for each chip MTBF x spare-pool size x policy it
simulates a seeded multi-failure lifetime
(:func:`repro.recovery.simulate_lifetime`) on the tuned 4x4 torus —
failure clustering, chained degradations, repair queues, spare
exhaustion, and every reconfiguration charged its simulated reshard
migration — and reports the simulated goodput next to the matching
closed form, so the table shows exactly where (and by how much) the
single-cycle approximation breaks down as failures get frequent.

Spare counts only matter to the ``replace`` policy (the others never
consult the pool), so the grid sweeps the pool on ``replace`` and pins
it to zero elsewhere.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignSpec
from repro.experiments.common import (
    grid_map,
    render_table,
    weak_scaling_batch,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.mesh.topology import Mesh2D
from repro.models import GPT3_175B
from repro.models.config import LLMConfig
from repro.recovery import (
    POLICIES,
    ClusterReliability,
    LifetimeSpec,
    TunedElasticPlanner,
    degrade_goodput,
    replace_goodput,
    reshape_goodput,
    restart_goodput,
    simulate_lifetime,
)

#: Per-chip MTBFs swept (hours): a flaky fleet, the recovery
#: ablation's TPU-class default, and a reliable one.
CHIP_MTBF_HOURS = (500.0, 2000.0, 8000.0)

#: Spare-pool sizes swept for the replace policy.
SPARE_COUNTS = (0, 2)

#: The full torus every lifetime starts from.
MESH_SHAPE = (4, 4)

#: Simulated horizon and failure-arrival seed.
DEFAULT_DURATION_DAYS = 90.0
DEFAULT_SEED = 0

#: Repair / checkpoint constants (matching the recovery ablation).
DEFAULT_REPAIR_MINUTES = 60.0
DEFAULT_CHECKPOINT_SECONDS = 60.0
DEFAULT_RESTART_SECONDS = 180.0

#: Migration plane charged for every transition.
DEFAULT_PLANE = "onesided"


@dataclasses.dataclass(frozen=True)
class ElasticRow:
    """One (MTBF, spares, policy) cell of the lifetime grid."""

    policy: str
    chip_mtbf_hours: float
    spares: int
    mesh: Tuple[int, int]
    cluster_mtbf_hours: float
    migration_seconds: float
    simulated_goodput: float
    closed_form_goodput: float
    failures: int
    transitions: int
    spares_consumed: int
    exhaustions: int
    min_running: int

    @property
    def gap(self) -> float:
        """Simulated minus closed-form goodput (negative = closed form
        too optimistic)."""
        return self.simulated_goodput - self.closed_form_goodput


def _closed_form(
    policy: str,
    planner: TunedElasticPlanner,
    reliability: ClusterReliability,
    checkpoint_seconds: float,
    restart_seconds: float,
) -> Tuple[float, float]:
    """(closed-form goodput, per-transition migration seconds)."""
    full_mesh, step = planner.full()
    if policy == "restart":
        est = restart_goodput(
            step, reliability, checkpoint_seconds, restart_seconds
        )
        return est.goodput, 0.0
    if policy == "degrade":
        degraded = planner.degraded(1)
        if degraded is None:
            return 0.0, 0.0
        migration = planner.migration(full_mesh, degraded[0])
        est = degrade_goodput(
            step, degraded[1], reliability, checkpoint_seconds,
            restart_seconds,
        )
        return est.goodput, migration
    if policy == "replace":
        migration = planner.migration(full_mesh, full_mesh)
        est = replace_goodput(
            step, reliability, checkpoint_seconds, restart_seconds,
            migration,
        )
        return est.goodput, migration
    reshaped = planner.reshaped(full_mesh.size - 1)
    if reshaped is None:
        return 0.0, 0.0
    migration = planner.migration(full_mesh, reshaped[0])
    est = reshape_goodput(
        step, reshaped[1], reliability, checkpoint_seconds,
        restart_seconds, migration,
    )
    return est.goodput, migration


def _point(
    args: Tuple[
        str, float, int, LLMConfig, HardwareParams, float, float, float,
        float, int,
    ],
) -> Optional[ElasticRow]:
    """One grid cell, shaped for :func:`grid_map` (picklable)."""
    (policy, chip_mtbf_hours, spares, model, hw, repair_minutes,
     checkpoint_seconds, restart_seconds, duration_days, seed) = args
    mesh = Mesh2D(*MESH_SHAPE)
    batch = weak_scaling_batch(mesh.size)
    planner = TunedElasticPlanner(
        model, batch, hw, mesh, plane=DEFAULT_PLANE
    )
    try:
        full_mesh, _ = planner.full()
    except ValueError:
        return None
    reliability = ClusterReliability(
        chip_mtbf=chip_mtbf_hours * 3600.0,
        chips=full_mesh.size,
        repair_seconds=repair_minutes * 60.0,
    )
    closed, migration = _closed_form(
        policy, planner, reliability, checkpoint_seconds, restart_seconds
    )
    result = simulate_lifetime(
        planner,
        reliability,
        LifetimeSpec(
            policy=policy, duration_days=duration_days, spares=spares,
            seed=seed,
        ),
        checkpoint_seconds,
        restart_seconds,
    )
    return ElasticRow(
        policy=policy,
        chip_mtbf_hours=chip_mtbf_hours,
        spares=spares,
        mesh=full_mesh.shape,
        cluster_mtbf_hours=reliability.mtbf / 3600.0,
        migration_seconds=migration,
        simulated_goodput=result.goodput,
        closed_form_goodput=closed,
        failures=result.failures,
        transitions=result.transitions,
        spares_consumed=result.spares_consumed,
        exhaustions=result.exhaustions,
        min_running=result.min_running,
    )


def _grid_points(
    model: LLMConfig,
    hw: HardwareParams,
    mtbf_hours: Sequence[float],
    spare_counts: Sequence[int],
    repair_minutes: float,
    checkpoint_seconds: float,
    restart_seconds: float,
    duration_days: float,
    seed: int,
) -> List[tuple]:
    points = []
    for mtbf in mtbf_hours:
        for policy in POLICIES:
            pools = spare_counts if policy == "replace" else (0,)
            for spares in pools:
                points.append(
                    (policy, mtbf, spares, model, hw, repair_minutes,
                     checkpoint_seconds, restart_seconds, duration_days,
                     seed)
                )
    return points


def run(
    model: LLMConfig = GPT3_175B,
    hw: HardwareParams = TPUV4,
    mtbf_hours: Sequence[float] = CHIP_MTBF_HOURS,
    spare_counts: Sequence[int] = SPARE_COUNTS,
    repair_minutes: float = DEFAULT_REPAIR_MINUTES,
    checkpoint_seconds: float = DEFAULT_CHECKPOINT_SECONDS,
    restart_seconds: float = DEFAULT_RESTART_SECONDS,
    duration_days: float = DEFAULT_DURATION_DAYS,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> List[ElasticRow]:
    """Simulated lifetime goodput across the MTBF x spares x policy grid."""
    points = _grid_points(
        model, hw, mtbf_hours, spare_counts, repair_minutes,
        checkpoint_seconds, restart_seconds, duration_days, seed,
    )
    rows = grid_map(_point, points, jobs=jobs)
    return [row for row in rows if row is not None]


def render(rows: Sequence[ElasticRow]) -> str:
    table = render_table(
        ["MTBF (h)", "policy", "spares", "mesh", "migration (s)",
         "sim goodput", "closed form", "gap", "failures", "transitions",
         "exhausted", "min chips"],
        [(f"{r.chip_mtbf_hours:.0f}", r.policy, r.spares,
          f"{r.mesh[0]}x{r.mesh[1]}", f"{r.migration_seconds:.1f}",
          f"{r.simulated_goodput * 100:.2f}%",
          f"{r.closed_form_goodput * 100:.2f}%",
          f"{r.gap * 100:+.2f}pp", r.failures, r.transitions,
          r.exhaustions, r.min_running)
         for r in rows],
    )
    lines = [table, ""]
    if rows:
        flaky = [r for r in rows if r.chip_mtbf_hours == min(
            row.chip_mtbf_hours for row in rows
        )]
        best = max(flaky, key=lambda r: r.simulated_goodput)
        worst_gap = min(flaky, key=lambda r: r.gap)
        lines.append(
            f"at the flakiest fleet ({best.chip_mtbf_hours:.0f}h per chip) "
            f"the best policy is {best.policy} (spares={best.spares}) at "
            f"{best.simulated_goodput * 100:.2f}% simulated goodput"
        )
        lines.append(
            f"largest closed-form optimism: {worst_gap.policy} at "
            f"{worst_gap.gap * 100:+.2f}pp — overlapping failures, repair "
            "queues, and migration charges the single-cycle algebra "
            "cannot see"
        )
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4) -> str:
    return render(run(hw=hw))


def _campaign_point(args) -> List[ElasticRow]:
    """One durable campaign point; unsupported points store as []."""
    row = _point(args)
    return [] if row is None else [row]


def _campaign_points() -> List[tuple]:
    return _grid_points(
        GPT3_175B, TPUV4, CHIP_MTBF_HOURS, SPARE_COUNTS,
        DEFAULT_REPAIR_MINUTES, DEFAULT_CHECKPOINT_SECONDS,
        DEFAULT_RESTART_SECONDS, DEFAULT_DURATION_DAYS, DEFAULT_SEED,
    )


CAMPAIGN = CampaignSpec(
    name="ablation-elastic",
    points=_campaign_points,
    point=_campaign_point,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
