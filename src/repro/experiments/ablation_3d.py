"""Section 2.2 ablation: widening TP in a 3D training cluster.

Quantifies the paper's motivating argument with the 3D composition
model. Two comparisons, both against a Llama-3-style baseline of 8-way
1D TP:

1. **Scale-out**: replacing 8-way 1D TP with 128-way 2D TP builds a
   16x larger cluster at the same DP x PP, and each chip's weight shard
   shrinks 16x — so per-chip DP all-reduce traffic drops 16x.
2. **Same cluster**: keeping the chip count and shrinking DP and PP by
   4x each, per-chip DP traffic drops 64x and the pipeline has 4x fewer
   stages (fewer bubbles).

The experiment reports the per-chip DP traffic ratios (which must match
the paper's 16x / 64x exactly — they are arithmetic identities) and the
modelled step times/utilizations of the same-cluster comparison.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.campaign.spec import CampaignSpec
from repro.experiments.common import render_table
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.mesh.topology import Mesh2D
from repro.models.config import LLMConfig
from repro.models.zoo import GPT3_175B
from repro.parallel3d import (
    Parallel3DConfig,
    dp_allreduce_traffic_bytes,
    estimate_step,
)


@dataclasses.dataclass(frozen=True)
class ThreeDRow:
    label: str
    config: str
    chips: int
    dp_traffic_gb: float
    bubble_fraction: float
    step_seconds: float
    utilization: float


def baseline_config(model: LLMConfig = GPT3_175B) -> Parallel3DConfig:
    """Llama-3-style: dp=16 x pp=8 x 8-way 1D TP = 1024 chips."""
    return Parallel3DConfig(
        model=model, dp=16, pp=8, tp_mesh=Mesh2D(1, 8), global_batch=512,
    )


def scale_out_config(model: LLMConfig = GPT3_175B) -> Parallel3DConfig:
    """Same dp x pp, TP widened to 128-way 2D: 16x more chips."""
    return Parallel3DConfig(
        model=model, dp=16, pp=8, tp_mesh=Mesh2D(16, 8), global_batch=512,
    )


def same_cluster_config(model: LLMConfig = GPT3_175B) -> Parallel3DConfig:
    """Same chip count: dp and pp shrink 4x, TP widens 16x."""
    return Parallel3DConfig(
        model=model, dp=4, pp=2, tp_mesh=Mesh2D(16, 8), global_batch=512,
    )


def run(
    model: LLMConfig = GPT3_175B, hw: HardwareParams = TPUV4
) -> List[ThreeDRow]:
    """Produce the Section 2.2 comparison rows."""
    rows = []
    for label, cfg in (
        ("baseline 8-way 1D TP", baseline_config(model)),
        ("scale-out 128-way 2D TP", scale_out_config(model)),
        ("same-cluster 128-way 2D TP", same_cluster_config(model)),
    ):
        step = estimate_step(cfg, hw)
        rows.append(
            ThreeDRow(
                label=label,
                config=cfg.describe(),
                chips=cfg.chips,
                dp_traffic_gb=dp_allreduce_traffic_bytes(cfg) / 1e9,
                bubble_fraction=step.bubble_fraction,
                step_seconds=step.step_seconds,
                utilization=step.flop_utilization,
            )
        )
    return rows


def traffic_ratios(rows: List[ThreeDRow]) -> tuple:
    """(scale-out ratio, same-cluster ratio) vs the 1D baseline,
    using the bandwidth-optimal ring all-reduce accounting."""
    base = rows[0].dp_traffic_gb
    return base / rows[1].dp_traffic_gb, base / rows[2].dp_traffic_gb


def paper_style_dp_traffic(cfg: Parallel3DConfig) -> float:
    """The intro's simpler DP-traffic accounting (Section 2.2).

    The paper's 16x / 64x figures count per-chip DP volume as
    proportional to ``dp * (full weight matrix) / tp``: each of the
    ``dp`` replicas contributes one copy of the chip's per-layer weight
    shard, and pipeline staging is ignored. A bandwidth-optimal ring
    all-reduce (see :func:`dp_allreduce_traffic_bytes`) moves less —
    ``2 (dp-1)/dp`` of the shard — and the PP degree changes the shard
    size, so the exact ratios differ; both accountings are reported.
    """
    weights = sum(layer.weight_bytes() for layer in _fc_layers(cfg.model))
    return cfg.dp * weights / cfg.tp


def _fc_layers(model):
    from repro.models.layers import fc_layers

    return fc_layers(model)


def paper_style_ratios(model: LLMConfig = GPT3_175B) -> tuple:
    """(scale-out, same-cluster) ratios under the paper's accounting.

    These reproduce the intro's 16x and 64x exactly.
    """
    base = paper_style_dp_traffic(baseline_config(model))
    return (
        base / paper_style_dp_traffic(scale_out_config(model)),
        base / paper_style_dp_traffic(same_cluster_config(model)),
    )


def _campaign_point(kind: str) -> List[ThreeDRow]:
    """The single campaign point: all three configuration rows."""
    if kind != "rows":
        raise ValueError(f"unknown ablation-3d point {kind!r}")
    return run()


def render(rows: List[ThreeDRow]) -> str:
    table = render_table(
        ["configuration", "layout", "chips", "DP traffic/chip (GB)",
         "bubble frac", "step (s)", "FLOP util"],
        [(r.label, r.config, r.chips, r.dp_traffic_gb, r.bubble_fraction,
          r.step_seconds, r.utilization) for r in rows],
    )
    if len(rows) < 3:
        return table
    scale_out, same_cluster = traffic_ratios(rows)
    p_scale_out, p_same_cluster = paper_style_ratios()
    return (
        table
        + "\n\nDP traffic reduction vs the 1D baseline:"
        + f"\n  paper's accounting (dp * W / tp): {p_scale_out:.0f}x "
        f"scale-out, {p_same_cluster:.0f}x same-cluster "
        "(paper: 16x / 64x)"
        + f"\n  ring all-reduce accounting:       {scale_out:.1f}x "
        f"scale-out, {same_cluster:.1f}x same-cluster"
    )


def main(hw: HardwareParams = TPUV4) -> str:
    return render(run(hw=hw))


def _campaign_points() -> list:
    return ["rows"]


CAMPAIGN = CampaignSpec(
    name="ablation-3d",
    points=_campaign_points,
    point=_campaign_point,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
