"""Table 2: effect of the autotuner's dataflow optimization.

Compares MeshSlice FC-layer training in a 256-chip cluster with the
default dataflow (Y-stationary for every layer, the transpose-free
baseline) against the autotuner's Phase-1 choice (largest matrix
stationary). For GPT-3 the optimization rescues the FFN output layer —
whose input is 4x larger than its output, so the Y-stationary default
moves the largest matrix — yielding the paper's 21.2% speedup; for the
more compute-heavy Megatron-NLG the gain is smaller (5.1%).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.campaign.spec import CampaignSpec
from repro.experiments.common import (
    best_block_run,
    render_table,
    weak_scaling_batch,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.models.config import LLMConfig
from repro.models.zoo import GPT3_175B, MEGATRON_NLG_530B

#: The paper's Table 2 values for comparison.
PAPER_RESULTS = {
    "gpt3-175b": {"not_optimized": 0.556, "optimized": 0.674, "speedup": 0.212},
    "megatron-nlg-530b": {"not_optimized": 0.782, "optimized": 0.822, "speedup": 0.051},
}


@dataclasses.dataclass(frozen=True)
class DataflowRow:
    model: str
    not_optimized: float
    optimized: float

    @property
    def speedup(self) -> float:
        return self.not_optimized and (self.optimized / self.not_optimized - 1.0)


def _point_row(point) -> DataflowRow:
    """One Table 2 row: one model, both dataflow settings.

    Module-level so the campaign runner can run it as one durable,
    picklable unit of work.
    """
    model, chips, hw = point
    batch = weak_scaling_batch(chips)
    default = best_block_run(
        "meshslice", model, batch, chips, hw, optimize_dataflow=False
    )
    optimized = best_block_run(
        "meshslice", model, batch, chips, hw, optimize_dataflow=True
    )
    return DataflowRow(
        model=model.name,
        not_optimized=default.utilization(hw),
        optimized=optimized.utilization(hw),
    )


def run(
    models: Sequence[LLMConfig] = (GPT3_175B, MEGATRON_NLG_530B),
    chips: int = 256,
    hw: HardwareParams = TPUV4,
) -> List[DataflowRow]:
    """Produce the Table 2 rows."""
    return [_point_row((model, chips, hw)) for model in models]


def render(rows: Sequence[DataflowRow]) -> str:
    body = []
    for r in rows:
        paper = PAPER_RESULTS.get(r.model, {})
        body.append(
            (
                r.model,
                r.not_optimized,
                r.optimized,
                f"{r.speedup * 100:+.1f}%",
                f"paper: {paper.get('speedup', 0) * 100:+.1f}%",
            )
        )
    return render_table(
        ["model", "not optimized", "optimized", "speedup", "reference"], body
    )


def main(hw: HardwareParams = TPUV4, chips: int = 256) -> str:
    return render(run(chips=chips, hw=hw))


def _campaign_points() -> List[tuple]:
    return [(model, 256, TPUV4) for model in (GPT3_175B, MEGATRON_NLG_530B)]


CAMPAIGN = CampaignSpec(
    name="table2",
    points=_campaign_points,
    point=_point_row,
    render=render,
)


if __name__ == "__main__":
    print(main())
