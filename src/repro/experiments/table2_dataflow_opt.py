"""Table 2: effect of the autotuner's dataflow optimization.

Compares MeshSlice FC-layer training in a 256-chip cluster with the
default dataflow (Y-stationary for every layer, the transpose-free
baseline) against the autotuner's Phase-1 choice (largest matrix
stationary). For GPT-3 the optimization rescues the FFN output layer —
whose input is 4x larger than its output, so the Y-stationary default
moves the largest matrix — yielding the paper's 21.2% speedup; for the
more compute-heavy Megatron-NLG the gain is smaller (5.1%).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.experiments.common import (
    best_block_run,
    render_table,
    weak_scaling_batch,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.models.config import LLMConfig
from repro.models.zoo import GPT3_175B, MEGATRON_NLG_530B

#: The paper's Table 2 values for comparison.
PAPER_RESULTS = {
    "gpt3-175b": {"not_optimized": 0.556, "optimized": 0.674, "speedup": 0.212},
    "megatron-nlg-530b": {"not_optimized": 0.782, "optimized": 0.822, "speedup": 0.051},
}


@dataclasses.dataclass(frozen=True)
class DataflowRow:
    model: str
    not_optimized: float
    optimized: float

    @property
    def speedup(self) -> float:
        return self.not_optimized and (self.optimized / self.not_optimized - 1.0)


def run(
    models: Sequence[LLMConfig] = (GPT3_175B, MEGATRON_NLG_530B),
    chips: int = 256,
    hw: HardwareParams = TPUV4,
) -> List[DataflowRow]:
    """Produce the Table 2 rows."""
    rows: List[DataflowRow] = []
    for model in models:
        batch = weak_scaling_batch(chips)
        default = best_block_run(
            "meshslice", model, batch, chips, hw, optimize_dataflow=False
        )
        optimized = best_block_run(
            "meshslice", model, batch, chips, hw, optimize_dataflow=True
        )
        rows.append(
            DataflowRow(
                model=model.name,
                not_optimized=default.utilization(hw),
                optimized=optimized.utilization(hw),
            )
        )
    return rows


def main(hw: HardwareParams = TPUV4, chips: int = 256) -> str:
    rows = run(chips=chips, hw=hw)
    body = []
    for r in rows:
        paper = PAPER_RESULTS.get(r.model, {})
        body.append(
            (
                r.model,
                r.not_optimized,
                r.optimized,
                f"{r.speedup * 100:+.1f}%",
                f"paper: {paper.get('speedup', 0) * 100:+.1f}%",
            )
        )
    return render_table(
        ["model", "not optimized", "optimized", "speedup", "reference"], body
    )


if __name__ == "__main__":
    print(main())
