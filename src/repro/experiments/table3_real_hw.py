"""Table 3: MeshSlice on a real 4x4 TPUv4 cloud slice.

Current TPUv4 clusters cannot overlap AG/RdS collectives with
computation (only SendRecv is asynchronous) and only expose
unidirectional link bandwidth. The ``TPUV4_CLOUD_4X4`` preset models
this environment. The experiment shows (1) MeshSlice's *intrinsic*
overhead — slicing copies plus less efficient fine-grain partial
GeMMs/collectives — is small relative to Collective when its overlap
advantage is taken away, (2) Wang barely gains because compiler-created
dependencies defeat most of its SendRecv overlap, and (3) the
"MeshSlice Overlap" column estimates what the same configuration would
deliver if collectives could overlap.

Slice counts are tuned for the overlap-capable machine (the algorithm
configuration a deployment would ship) and then run on the restricted
one, mirroring the paper's methodology.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.autotuner.dataflow import plan_model
from repro.campaign.spec import CampaignSpec
from repro.experiments.common import render_table, run_block
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4_CLOUD_4X4, TPUV4_CLOUD_4X4_OVERLAP
from repro.mesh.topology import Mesh2D
from repro.models.config import LLMConfig
from repro.models.zoo import GPT3_175B, MEGATRON_NLG_530B

#: The paper's Table 3 values for comparison.
PAPER_RESULTS = {
    "gpt3-175b": {
        "collective": 0.474, "wang": 0.477, "meshslice": 0.455,
        "meshslice_overlap": 0.657,
    },
    "megatron-nlg-530b": {
        "collective": 0.494, "wang": 0.464, "meshslice": 0.471,
        "meshslice_overlap": 0.656,
    },
}


@dataclasses.dataclass(frozen=True)
class RealHWRow:
    model: str
    collective: float
    wang: float
    meshslice: float
    meshslice_overlap: float

    @property
    def meshslice_overhead(self) -> float:
        """Relative execution-time overhead of MeshSlice vs Collective."""
        return self.collective / self.meshslice - 1.0


def _point_row(point) -> RealHWRow:
    """One Table 3 row: one model across all four columns.

    Module-level so the campaign runner can run it as one durable,
    picklable unit of work.
    """
    model, batch_size, hw, overlap_hw = point
    mesh = Mesh2D(4, 4)
    tokens = model.tokens(batch_size)
    plans = plan_model(model, tokens, optimize_dataflow=True)
    utils: Dict[str, float] = {}
    for algorithm in ("collective", "wang", "meshslice"):
        block = run_block(
            algorithm, plans, mesh, hw, tuning_hw=overlap_hw
        )
        utils[algorithm] = block.utilization(hw)
    overlap = run_block(
        "meshslice", plans, mesh, overlap_hw, tuning_hw=overlap_hw
    )
    return RealHWRow(
        model=model.name,
        collective=utils["collective"],
        wang=utils["wang"],
        meshslice=utils["meshslice"],
        meshslice_overlap=overlap.utilization(overlap_hw),
    )


def run(
    models: Sequence[LLMConfig] = (GPT3_175B, MEGATRON_NLG_530B),
    batch_size: int = 8,
    hw: HardwareParams = TPUV4_CLOUD_4X4,
    overlap_hw: HardwareParams = TPUV4_CLOUD_4X4_OVERLAP,
) -> List[RealHWRow]:
    """Produce the Table 3 rows on the fixed 4x4 cloud mesh."""
    return [
        _point_row((model, batch_size, hw, overlap_hw)) for model in models
    ]


def render(rows: Sequence[RealHWRow]) -> str:
    body = []
    for r in rows:
        paper = PAPER_RESULTS.get(r.model, {})
        body.append(
            (
                r.model, r.collective, r.wang, r.meshslice, r.meshslice_overlap,
                f"{r.meshslice_overhead * 100:+.1f}%",
                f"paper ms: {paper.get('meshslice', 0):.3f}",
            )
        )
    return render_table(
        [
            "model", "collective", "wang", "meshslice",
            "meshslice+overlap (est.)", "ms overhead vs coll.", "reference",
        ],
        body,
    )


def main(hw: HardwareParams = TPUV4_CLOUD_4X4) -> str:
    return render(run(hw=hw))


def _campaign_points() -> List[tuple]:
    return [
        (model, 8, TPUV4_CLOUD_4X4, TPUV4_CLOUD_4X4_OVERLAP)
        for model in (GPT3_175B, MEGATRON_NLG_530B)
    ]


CAMPAIGN = CampaignSpec(
    name="table3",
    points=_campaign_points,
    point=_point_row,
    render=render,
)


if __name__ == "__main__":
    print(main())
