"""Algorithm-zoo ablation: the full registry compared on plain GeMMs.

Post-paper experiment (ROADMAP item 3): every registered algorithm —
the paper's five 2D baselines, the 1D baselines, and the two zoo
additions (one-sided sliced, space-filling-curve) — executes the same
output-stationary GeMMs, each at its best candidate mesh. Three grid
points stress the zoo's coverage claims:

* a square and a wide GeMM on 16 chips, where every family runs and
  the interesting signal is one-sided vs ring-collective sync cost;
* a GeMM on a prime chip count (7), where no 2D mesh exists — only
  the curve-based and 1D algorithms produce a result, which is the
  space-filling-curve family's reason to exist.

The rendered table footers the Hilbert/Morton/row-major curve lengths
on an 8x8 grid, tying the :mod:`repro.mesh.topology` layouts the SFC
algorithm rides on into the reported output.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.algorithms import GeMMConfig, algorithm_names, get_algorithm
from repro.campaign.spec import CampaignSpec
from repro.core.dataflow import Dataflow
from repro.core.gemm import GeMMShape
from repro.experiments.common import (
    candidate_meshes,
    grid_map,
    render_table,
    tuned_slices,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.mesh.topology import curve_length, hilbert_order, morton_order
from repro.sim.cluster import simulate

#: The compared GeMM grid: (label, (M, N, K), chips).
ZOO_POINTS: Tuple[Tuple[str, Tuple[int, int, int], int], ...] = (
    ("square", (4096, 4096, 4096), 16),
    ("wide", (2048, 8192, 4096), 16),
    ("prime", (3584, 3584, 3584), 7),
)


@dataclasses.dataclass(frozen=True)
class ZooRow:
    """Best-mesh utilization of one algorithm on one GeMM point."""

    label: str
    shape: Tuple[int, int, int]
    chips: int
    algorithm: str
    utilization: Optional[float]
    mesh: Optional[str]


def _fixed_slices(algorithm: str) -> Optional[int]:
    """Algorithms whose granularity is not the autotuned slice count."""
    if algorithm in ("collective", "cannon", "sfc"):
        return 1
    return None


def _best_for_point(
    algorithm: str,
    shape: Tuple[int, int, int],
    chips: int,
    hw: HardwareParams,
) -> Optional[Tuple[float, str]]:
    alg = get_algorithm(algorithm)
    best = None
    for mesh in candidate_meshes(algorithm, chips):
        base = GeMMConfig(
            shape=GeMMShape(*shape),
            mesh=mesh,
            dataflow=Dataflow.OS,
            slices=1,
        )
        slices = _fixed_slices(algorithm)
        if slices is None:
            slices = tuned_slices(base, hw)
        cfg = dataclasses.replace(base, slices=slices)
        if not alg.supports(cfg):
            continue
        result = simulate(alg.build_program(cfg, hw), hw)
        util = result.flop_utilization()
        if best is None or util > best[0]:
            best = (util, str(mesh))
    return best


def _point_rows(point) -> List[ZooRow]:
    """All rows of one (GeMM, chips) grid point (grid_map worker)."""
    label, shape, chips, algorithms, hw = point
    rows: List[ZooRow] = []
    for algorithm in algorithms:
        best = _best_for_point(algorithm, shape, chips, hw)
        if best is None:
            rows.append(ZooRow(label, shape, chips, algorithm, None, None))
        else:
            rows.append(ZooRow(label, shape, chips, algorithm, *best))
    return rows


def run(
    points: Sequence[Tuple[str, Tuple[int, int, int], int]] = ZOO_POINTS,
    algorithms: Optional[Sequence[str]] = None,
    hw: HardwareParams = TPUV4,
    jobs: Optional[int] = None,
) -> List[ZooRow]:
    """Produce every zoo-comparison row (grid points run in parallel)."""
    names = tuple(algorithms) if algorithms is not None else algorithm_names()
    grid = [(label, shape, chips, names, hw) for label, shape, chips in points]
    return [row for rows in grid_map(_point_rows, grid, jobs=jobs)
            for row in rows]


def render(rows: Sequence[ZooRow]) -> str:
    table = render_table(
        ["gemm", "(M,N,K)", "chips", "algorithm", "FLOP util", "mesh"],
        [(r.label, str(r.shape), r.chips, r.algorithm, r.utilization, r.mesh)
         for r in rows],
    )
    lines = [table, ""]
    prime = [r for r in rows if r.chips == 7 and r.utilization is not None]
    if prime:
        names = ", ".join(sorted({r.algorithm for r in prime}))
        lines.append(f"prime chip count served by: {names}")
    lines.append(
        "8x8 rank-layout curve lengths: "
        + ", ".join(
            f"{name}={length}"
            for name, length in (
                ("hilbert", curve_length(hilbert_order(8, 8))),
                ("morton", curve_length(morton_order(8, 8))),
                ("row-major", 8 * 7 + 7 * 8),
            )
        )
    )
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4) -> str:
    return render(run(hw=hw))


def _campaign_points() -> List[tuple]:
    return [
        (label, shape, chips, algorithm_names(), TPUV4)
        for label, shape, chips in ZOO_POINTS
    ]


CAMPAIGN = CampaignSpec(
    name="ablation-zoo",
    points=_campaign_points,
    point=_point_rows,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
