"""Reproductions of the paper's evaluation (Section 5 + Section 7).

One module per figure/table; each exposes ``run()`` returning typed
rows and ``main()`` rendering a text table with paper reference points.
"""

from repro.experiments import (
    ablation_25d,
    ablation_3d,
    ablation_elastic,
    ablation_faults,
    ablation_inference,
    ablation_logical_mesh,
    ablation_recovery,
    ablation_sdc,
    ablation_unrolling,
    ablation_zoo,
    fig04_timelines,
    fig09_weak_scaling,
    fig10_comm_breakdown,
    fig11_matrix_shapes,
    fig12_strong_scaling,
    fig13_mesh_shapes,
    fig14_slice_counts,
    fig15_comm_model_accuracy,
    table2_dataflow_opt,
    table3_real_hw,
)
from repro.experiments.common import (
    ALL_ALGORITHMS,
    CLUSTER_SIZES,
    BlockRun,
    GridPointError,
    best_block_run,
    candidate_meshes,
    end_to_end_step_seconds,
    grid_map,
    pass_config,
    render_table,
    run_block,
    tuned_slices,
    weak_scaling_batch,
)

#: Experiment registry for the CLI: name -> module (must expose main()).
EXPERIMENTS = {
    "fig4": fig04_timelines,
    "fig9": fig09_weak_scaling,
    "fig10": fig10_comm_breakdown,
    "fig11": fig11_matrix_shapes,
    "fig12": fig12_strong_scaling,
    "fig13": fig13_mesh_shapes,
    "fig14": fig14_slice_counts,
    "fig15": fig15_comm_model_accuracy,
    "table2": table2_dataflow_opt,
    "table3": table3_real_hw,
    "ablation-2.5d": ablation_25d,
    "ablation-3d": ablation_3d,
    "ablation-elastic": ablation_elastic,
    "ablation-faults": ablation_faults,
    "ablation-inference": ablation_inference,
    "ablation-logical-mesh": ablation_logical_mesh,
    "ablation-recovery": ablation_recovery,
    "ablation-sdc": ablation_sdc,
    "ablation-unrolling": ablation_unrolling,
    "ablation-zoo": ablation_zoo,
}

__all__ = [
    "ALL_ALGORITHMS",
    "CLUSTER_SIZES",
    "BlockRun",
    "EXPERIMENTS",
    "GridPointError",
    "best_block_run",
    "candidate_meshes",
    "end_to_end_step_seconds",
    "grid_map",
    "pass_config",
    "render_table",
    "run_block",
    "tuned_slices",
    "weak_scaling_batch",
]
