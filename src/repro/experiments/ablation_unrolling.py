"""Section 4.2 ablation: loop unrolling for SUMMA and Wang.

The paper applies loop unrolling to SUMMA and Wang "as they have large
iteration counts", setting both algorithms' loop counts to MeshSlice's
autotuned slice count, because merging small GeMMs into larger GeMMs
helps computational efficiency. This ablation quantifies that choice:
it runs both baselines with their *natural* fine iteration counts (one
iteration per ring member for Wang; a classical panel count for SUMMA)
and with the unrolled counts the paper's evaluation uses, showing how
much the unrolling improves the baselines — i.e. that the paper
compares MeshSlice against strengthened versions of its competitors.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.algorithms import GeMMConfig, get_algorithm
from repro.campaign.spec import CampaignSpec
from repro.core.dataflow import Dataflow
from repro.core.gemm import GeMMShape
from repro.experiments.common import render_table, tuned_slices
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.mesh.topology import Mesh2D
from repro.sim.cluster import simulate

#: A GPT-3 FFN-in forward GeMM at 256-chip weak scaling, on an
#: elongated mesh where both baselines' natural iteration counts are
#: large (Wang's decomposed ring has 64 members; SUMMA's panel loop is
#: long) so the unrolling effect is visible for both.
DEFAULT_SHAPE = GeMMShape(m=262144, n=49152, k=12288)
DEFAULT_MESH = Mesh2D(4, 64)


@dataclasses.dataclass(frozen=True)
class UnrollingRow:
    algorithm: str
    iterations: int
    variant: str
    utilization: float
    makespan_ms: float


def natural_iterations(algorithm: str, mesh: Mesh2D, shape: GeMMShape) -> int:
    """The un-unrolled loop count of each baseline.

    Wang's SendRecv decomposition naturally runs one step per member of
    the decomposed ring; SUMMA's classical panel loop runs a common
    multiple of the mesh dims (we use the least one, capped by the
    sliced dimension).
    """
    if algorithm == "wang":
        return max(mesh.rows, mesh.cols)
    if algorithm == "summa":
        import math

        return min(math.lcm(mesh.rows, mesh.cols) * 2, 64)
    raise ValueError(f"no natural iteration count for {algorithm!r}")


def run(
    shape: GeMMShape = DEFAULT_SHAPE,
    mesh: Mesh2D = DEFAULT_MESH,
    algorithms: Sequence[str] = ("summa", "wang"),
    hw: HardwareParams = TPUV4,
) -> List[UnrollingRow]:
    """Each baseline with fine-grain vs unrolled iteration counts."""
    rows: List[UnrollingRow] = []
    base = GeMMConfig(shape, mesh, Dataflow.OS, slices=1)
    unrolled = tuned_slices(base, hw)
    for algorithm in algorithms:
        alg = get_algorithm(algorithm)
        for variant, iterations in (
            ("natural", natural_iterations(algorithm, mesh, shape)),
            ("unrolled (paper)", unrolled),
        ):
            cfg = dataclasses.replace(base, slices=iterations)
            if not alg.supports(cfg):
                continue
            result = simulate(alg.build_program(cfg, hw), hw)
            rows.append(
                UnrollingRow(
                    algorithm=algorithm,
                    iterations=iterations,
                    variant=variant,
                    utilization=result.flop_utilization(),
                    makespan_ms=result.makespan * 1e3,
                )
            )
    return rows


def unrolling_speedup(rows: Sequence[UnrollingRow], algorithm: str) -> float:
    """Relative speedup of the unrolled variant over the natural one."""
    by_variant = {
        r.variant: r for r in rows if r.algorithm == algorithm
    }
    natural = by_variant["natural"]
    unrolled = by_variant["unrolled (paper)"]
    return natural.makespan_ms / unrolled.makespan_ms - 1.0


def render(rows: Sequence[UnrollingRow]) -> str:
    table = render_table(
        ["algorithm", "variant", "iterations", "FLOP util", "time (ms)"],
        [(r.algorithm, r.variant, r.iterations, r.utilization, r.makespan_ms)
         for r in rows],
    )
    lines = [table, ""]
    for algorithm in ("summa", "wang"):
        try:
            speedup = unrolling_speedup(rows, algorithm)
        except KeyError:
            continue
        lines.append(
            f"unrolling speeds {algorithm} up by {speedup * 100:+.1f}% — the "
            "paper evaluates against the strengthened baseline"
        )
    lines.append(
        "(SUMMA gains most: its fine panels multiply synchronization-heavy "
        "broadcasts; Wang's SendRecvs already move full shards, so "
        "unrolling only merges its GeMM kernels)"
    )
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4) -> str:
    return render(run(hw=hw))


def _campaign_point(algorithm: str) -> List[UnrollingRow]:
    """One baseline algorithm's fine-vs-unrolled pair (one point)."""
    return run(algorithms=(algorithm,))


def _campaign_points() -> List[str]:
    return ["summa", "wang"]


CAMPAIGN = CampaignSpec(
    name="ablation-unrolling",
    points=_campaign_points,
    point=_campaign_point,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
