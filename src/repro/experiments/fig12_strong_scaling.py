"""Figure 12: strong-scaling FLOP utilization (batch fixed at 32).

With the batch frozen at the 64-chip weak-scaling value, per-chip
compute shrinks as the cluster grows while communication does not, so
the 256-chip points become communication-bound: MeshSlice's overlap
gain diminishes and it converges toward Collective/Wang, while staying
ahead of SUMMA and 1D TP. FSDP cannot strong-scale at all (data
parallelism needs the batch to grow with the chip count), matching the
paper's omission.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.autotuner.dataflow import plan_model
from repro.campaign.spec import CampaignSpec
from repro.experiments.common import (
    CLUSTER_SIZES,
    best_block_run,
    grid_map,
    render_table,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.models.config import LLMConfig
from repro.models.zoo import GPT3_175B, MEGATRON_NLG_530B

#: Strong scaling excludes FSDP (Section 5.1.3).
STRONG_SCALING_ALGORITHMS = (
    "cannon", "summa", "collective", "wang", "meshslice", "1dtp",
)


@dataclasses.dataclass(frozen=True)
class StrongScalingRow:
    model: str
    chips: int
    algorithm: str
    mesh: Optional[str]
    utilization: Optional[float]


def _point_rows(point) -> List[StrongScalingRow]:
    """All Figure 12 rows of one (model, chips) grid point.

    Module-level so it can run in a ``grid_map`` worker process; the
    Phase-1 plans are shared by every algorithm's mesh search.
    """
    model, chips, batch_size, algorithms, hw = point
    plans = plan_model(model, model.tokens(batch_size), optimize_dataflow=True)
    rows: List[StrongScalingRow] = []
    for algorithm in algorithms:
        block = best_block_run(
            algorithm, model, batch_size, chips, hw, plans=plans
        )
        if block is None:
            rows.append(
                StrongScalingRow(model.name, chips, algorithm, None, None)
            )
        else:
            rows.append(
                StrongScalingRow(
                    model.name, chips, algorithm,
                    str(block.mesh), block.utilization(hw),
                )
            )
    return rows


def run(
    models: Sequence[LLMConfig] = (GPT3_175B, MEGATRON_NLG_530B),
    sizes: Sequence[int] = CLUSTER_SIZES,
    batch_size: int = 32,
    algorithms: Sequence[str] = STRONG_SCALING_ALGORITHMS,
    hw: HardwareParams = TPUV4,
    jobs: Optional[int] = None,
) -> List[StrongScalingRow]:
    """Produce every Figure 12 data point.

    Grid points are independent (model, chips) pairs and run in worker
    processes when ``jobs`` (or ``REPRO_JOBS``) allows.
    """
    points = [
        (model, chips, batch_size, tuple(algorithms), hw)
        for model in models
        for chips in sizes
    ]
    return [row for rows in grid_map(_point_rows, points, jobs=jobs)
            for row in rows]


def render(rows: Sequence[StrongScalingRow]) -> str:
    return render_table(
        ["model", "chips", "algorithm", "mesh", "FLOP util"],
        [(r.model, r.chips, r.algorithm, r.mesh, r.utilization) for r in rows],
    )


def main(hw: HardwareParams = TPUV4, sizes: Sequence[int] = CLUSTER_SIZES) -> str:
    return render(run(sizes=sizes, hw=hw))


def _campaign_points() -> List[tuple]:
    return [
        (model, chips, 32, tuple(STRONG_SCALING_ALGORITHMS), TPUV4)
        for model in (GPT3_175B, MEGATRON_NLG_530B)
        for chips in CLUSTER_SIZES
    ]


CAMPAIGN = CampaignSpec(
    name="fig12",
    points=_campaign_points,
    point=_point_rows,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
