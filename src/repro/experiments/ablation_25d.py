"""Section 7 ablation: 2.5D GeMM vs MeshSlice+DP on a 3D cluster.

The paper's closing comparison: computing a GPT-3 FC layer with
(M, N, K) = (1024K, 12K, 48K) on 1024 accelerators. The 2.5D algorithm
(Cannon-based) must use a square base mesh — 16x16x4 is the only
possible torus — and pays skewed-shift traffic of 1.6 GB per chip.
MeshSlice combined with data parallelism along the third dimension can
pick the traffic-optimal 32x8x4 shape and incurs only ~336 MB per chip.

Traffic models:

* 2.5D on a ``P x P x c`` torus: each of the ``P / c`` shift steps per
  replica layer moves both input shards, so per-chip traffic is
  ``(P / c) * (sizeof(A) + sizeof(B)) / P^2`` (plus the initial
  replication, reported separately).
* MeshSlice+DP on ``(P_r x P_c) x c``: each 2D mesh of ``P_r * P_c``
  chips handles ``1/c`` of the batch; per-chip traffic is the larger
  plus smaller flowing-matrix ring traffic of Section 2.3.1, plus the
  DP gradient all-reduce of the weight shard.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro.algorithms.base import GeMMConfig, flow_ops, matrix_bytes
from repro.autotuner.dataflow import choose_stationary, pass_plans
from repro.campaign.spec import CampaignSpec
from repro.core.gemm import GeMMShape
from repro.experiments.common import render_table
from repro.mesh.topology import Mesh2D, mesh_shapes

#: The Section 7 example problem: a GPT-3 FC layer at batch 512.
EXAMPLE_SHAPE = GeMMShape(m=1024 * 1024, n=12 * 1024, k=48 * 1024, dtype_bytes=2)


@dataclasses.dataclass(frozen=True)
class TrafficRow:
    method: str
    topology: str
    per_chip_traffic_gb: float


@dataclasses.dataclass(frozen=True)
class TimedRow:
    """Simulated makespans of both 3D methods (one campaign point)."""

    t25_s: float
    tdp_s: float


def traffic_25d(shape: GeMMShape, base: int, copies: int) -> float:
    """Per-chip shift traffic of the 2.5D algorithm (bytes)."""
    if base < 1 or copies < 1:
        raise ValueError("base and copies must be positive")
    shifts = max(1, base // copies)
    return shifts * (shape.a_bytes + shape.b_bytes) / (base * base)


def traffic_meshslice_dp(
    shape: GeMMShape, mesh: Mesh2D, copies: int
) -> float:
    """Per-chip traffic of MeshSlice+DP (bytes).

    The batch (M) splits over the DP dimension; the 2D mesh runs the
    dataflow the autotuner would pick (largest matrix stationary), and
    each chip additionally all-reduces its weight-gradient shard across
    the ``copies`` replicas.
    """
    if copies < 1:
        raise ValueError("copies must be positive")
    per_copy = GeMMShape(
        m=max(1, shape.m // copies), n=shape.n, k=shape.k,
        dtype_bytes=shape.dtype_bytes,
    )
    stationary = choose_stationary(
        per_copy.m, in_dim=per_copy.k, out_dim=per_copy.n
    )
    plan = pass_plans(
        stationary, per_copy.m, in_dim=per_copy.k, out_dim=per_copy.n,
        dtype_bytes=shape.dtype_bytes,
    )[0]
    cfg = GeMMConfig(plan.shape, mesh, plan.dataflow, transposed=plan.transposed)
    (col_op, col_mat), (row_op, row_mat) = flow_ops(cfg.dataflow, cfg.transposed)
    chips = mesh.size
    col = (mesh.cols - 1) * matrix_bytes(cfg.shape, col_mat) / chips
    row = (mesh.rows - 1) * matrix_bytes(cfg.shape, row_mat) / chips
    dp_allreduce = 2.0 * (copies - 1) / copies * shape.b_bytes / chips
    return col + row + dp_allreduce


def best_meshslice_topology(
    shape: GeMMShape, chips: int, copies: int
) -> Tuple[Mesh2D, float]:
    """The traffic-minimizing 2D mesh for MeshSlice+DP."""
    per_mesh = chips // copies
    best = None
    for mesh in mesh_shapes(per_mesh, min_dim=2):
        traffic = traffic_meshslice_dp(shape, mesh, copies)
        if best is None or traffic < best[1]:
            best = (mesh, traffic)
    if best is None:
        raise ValueError(f"no 2D mesh for {per_mesh} chips")
    return best


def run(
    shape: GeMMShape = EXAMPLE_SHAPE, chips: int = 1024, copies: int = 4
) -> List[TrafficRow]:
    """Produce the Section 7 comparison rows."""
    import math

    base = math.isqrt(chips // copies)
    if base * base * copies != chips:
        raise ValueError(
            f"2.5D needs a square base mesh: {chips} chips / {copies} copies"
        )
    rows = [
        TrafficRow(
            method="2.5D GeMM",
            topology=f"{base}x{base}x{copies}",
            per_chip_traffic_gb=traffic_25d(shape, base, copies) / 1e9,
        )
    ]
    mesh, traffic = best_meshslice_topology(shape, chips, copies)
    rows.append(
        TrafficRow(
            method="MeshSlice+DP",
            topology=f"{mesh.rows}x{mesh.cols}x{copies}",
            per_chip_traffic_gb=traffic / 1e9,
        )
    )
    return rows


def run_timed(
    shape: GeMMShape = EXAMPLE_SHAPE, chips: int = 1024, copies: int = 4
):
    """Simulated execution times of both 3D methods (beyond the paper's
    traffic-only comparison)."""
    import math

    from repro.algorithms.stacked import (
        MeshSliceDPGeMM,
        StackedConfig,
        TwoPointFiveDGeMM,
    )
    from repro.hw.presets import TPUV4
    from repro.sim.cluster import simulate

    base = math.isqrt(chips // copies)
    c25 = StackedConfig(shape, Mesh2D(base, base), copies)
    mesh, _traffic = best_meshslice_topology(shape, chips, copies)
    msdp = StackedConfig(shape, mesh, copies, slices=8)
    t25 = simulate(TwoPointFiveDGeMM().build_program(c25, TPUV4), TPUV4)
    tdp = simulate(MeshSliceDPGeMM().build_program(msdp, TPUV4), TPUV4)
    return t25.makespan, tdp.makespan


def _campaign_point(kind: str) -> list:
    """One campaign point: the traffic rows or the timed comparison."""
    if kind == "traffic":
        return list(run())
    if kind == "timed":
        t25, tdp = run_timed()
        return [TimedRow(t25_s=t25, tdp_s=tdp)]
    raise ValueError(f"unknown ablation-2.5d point {kind!r}")


def render(rows: Sequence) -> str:
    traffic = [r for r in rows if isinstance(r, TrafficRow)]
    timed = [r for r in rows if isinstance(r, TimedRow)]
    out = render_table(
        ["method", "topology", "per-chip traffic (GB)"],
        [(r.method, r.topology, r.per_chip_traffic_gb) for r in traffic],
    )
    if len(traffic) >= 2:
        ratio = traffic[0].per_chip_traffic_gb / traffic[1].per_chip_traffic_gb
        out += (
            f"\n\nMeshSlice+DP moves {ratio:.1f}x less data per chip "
            "(paper: 1.6 GB vs 336 MB, ~4.8x)"
        )
    if timed:
        t25, tdp = timed[0].t25_s, timed[0].tdp_s
        out += (
            f"\nsimulated execution: 2.5D {t25 * 1e3:.2f} ms vs "
            f"MeshSlice+DP {tdp * 1e3:.2f} ms ({t25 / tdp:.1f}x faster)"
        )
    return out


def main() -> str:
    return render(_campaign_point("traffic") + _campaign_point("timed"))


def _campaign_points() -> list:
    return ["traffic", "timed"]


CAMPAIGN = CampaignSpec(
    name="ablation-2.5d",
    points=_campaign_points,
    point=_campaign_point,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
