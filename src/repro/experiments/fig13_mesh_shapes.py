"""Figure 13: cost-model vs simulation across mesh shapes (256 chips).

For every 2D factorization of a 256-chip cluster, compares the FC-layer
FLOP utilization *estimated* by the autotuner's analytical cost models
against the utilization obtained by *simulating* the same
configurations. What matters is ranking fidelity: the cost model must
point at the same optimal mesh shape the simulator finds (the paper
reports up to a 2.4x gap between the best and worst shapes for GPT-3).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.autotuner.dataflow import plan_model
from repro.autotuner.search import tune_mesh
from repro.campaign.spec import CampaignSpec
from repro.experiments.common import (
    grid_map,
    render_table,
    run_block,
    weak_scaling_batch,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.mesh.topology import Mesh2D, mesh_shapes
from repro.models.config import LLMConfig
from repro.models.layers import block_fc_flops
from repro.models.zoo import GPT3_175B, MEGATRON_NLG_530B


@dataclasses.dataclass(frozen=True)
class MeshShapeRow:
    model: str
    mesh: Tuple[int, int]
    estimated_utilization: float
    simulated_utilization: float


def _point_row(point) -> MeshShapeRow:
    """One Figure 13 (model, mesh) data point.

    Module-level so it can run in a ``grid_map`` worker process. The
    plans are re-derived per point, but ``plan_model`` is memoized so
    points sharing a worker pay once.
    """
    model, chips, mesh, hw = point
    batch = weak_scaling_batch(chips)
    tokens = model.tokens(batch)
    plans = plan_model(model, tokens, optimize_dataflow=True)
    flops_per_chip = block_fc_flops(model, tokens) / chips
    _tuned, estimated_seconds = tune_mesh(plans, mesh, hw)
    estimated_util = flops_per_chip / (estimated_seconds * hw.peak_flops)
    block = run_block("meshslice", plans, mesh, hw)
    return MeshShapeRow(
        model=model.name,
        mesh=mesh.shape,
        estimated_utilization=estimated_util,
        simulated_utilization=block.utilization(hw),
    )


def run(
    models: Sequence[LLMConfig] = (GPT3_175B, MEGATRON_NLG_530B),
    chips: int = 256,
    hw: HardwareParams = TPUV4,
    meshes: Optional[Sequence[Mesh2D]] = None,
    jobs: Optional[int] = None,
) -> List[MeshShapeRow]:
    """Produce the Figure 13 series.

    The (model, mesh shape) grid points are independent and run in
    worker processes when ``jobs`` (or ``REPRO_JOBS``) allows.
    """
    candidates = list(meshes or mesh_shapes(chips, min_dim=2))
    points = [
        (model, chips, mesh, hw)
        for model in models
        for mesh in candidates
    ]
    return grid_map(_point_row, points, jobs=jobs)


def optimal_shapes(
    rows: Sequence[MeshShapeRow], model: str
) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """(estimated-optimal, simulated-optimal) mesh shapes for a model."""
    model_rows = [r for r in rows if r.model == model]
    if not model_rows:
        raise ValueError(f"no rows for model {model!r}")
    est = max(model_rows, key=lambda r: r.estimated_utilization).mesh
    sim = max(model_rows, key=lambda r: r.simulated_utilization).mesh
    return est, sim


def render(rows: Sequence[MeshShapeRow]) -> str:
    table = render_table(
        ["model", "mesh", "estimated util", "simulated util"],
        [
            (r.model, f"{r.mesh[0]}x{r.mesh[1]}",
             r.estimated_utilization, r.simulated_utilization)
            for r in rows
        ],
    )
    lines = [table, ""]
    for model in {r.model for r in rows}:
        est, sim = optimal_shapes(rows, model)
        agree = "agree" if est == sim else "DISAGREE"
        lines.append(
            f"{model}: cost model picks {est[0]}x{est[1]}, "
            f"simulation picks {sim[0]}x{sim[1]} ({agree})"
        )
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4, chips: int = 256) -> str:
    return render(run(chips=chips, hw=hw))


def _campaign_points() -> List[tuple]:
    return [
        (model, 256, mesh, TPUV4)
        for model in (GPT3_175B, MEGATRON_NLG_530B)
        for mesh in mesh_shapes(256, min_dim=2)
    ]


CAMPAIGN = CampaignSpec(
    name="fig13",
    points=_campaign_points,
    point=_point_row,
    render=render,
)


if __name__ == "__main__":
    print(main())
