"""Shared runners for the evaluation reproduction (Section 5).

The experiment modules compose three ingredients:

* the autotuner's Phase-1 plans (which dataflow each FC-layer training
  GeMM uses),
* per-algorithm mesh-shape optimization — the paper compares every
  algorithm at *its own* optimal mesh shape (Section 4.2) — and
* the cluster simulator, which executes one transformer block's twelve
  training GeMMs (4 FC layers x 3 passes) and aggregates them into the
  FLOP utilization numbers the paper reports.

Slice counts follow the paper's fairness rule: MeshSlice's autotuned
``S`` is also used as the unrolled iteration count of SUMMA and Wang.

Fast path
---------

The mesh-shape search dominated sweep time, so it runs through three
optimizations that leave results bit-identical to the exhaustive
search:

* per-pass simulation results come from the memoized
  ``repro.perf.pipeline`` layer (design-space grids revisit the same
  ``(algorithm, GeMMConfig, HardwareParams)`` triples constantly);
* ``best_block_run`` visits mesh candidates in ascending order of the
  analytical cost estimate, so a near-optimal mesh is simulated first;
* ``run_block`` accepts ``abort_above``, a certified branch-and-bound
  cutoff: passes are simulated in descending order of their makespan
  lower bound, and the mesh is abandoned as soon as the simulated
  partial plus the remaining bounds provably exceed the best block
  found so far. The bound is conservative (see
  ``repro.perf.pipeline.pass_lower_bound``), so only meshes that could
  never win — not even tie — are pruned.

Independent grid points can additionally run in worker processes via
:func:`grid_map` (the ``--jobs`` CLI flag / ``REPRO_JOBS`` env var).
"""

from __future__ import annotations

import dataclasses
import os
import traceback
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from repro.algorithms import GeMMConfig, get_algorithm
from repro.autotuner.costmodel import (
    best_slice_count,
    best_sliced_slice_count,
    meshslice_estimate,
)
from repro.core.dataflow import Dataflow
from repro.autotuner.dataflow import LayerPlan, PassPlan, plan_model
from repro.hw.params import HardwareParams
from repro.mesh.topology import Mesh2D, mesh_shapes, square_mesh
from repro.models.config import LLMConfig
from repro.models.nonfc import nonfc_block_seconds
from repro.obs.registry import MetricRecord, metrics_enabled, registry
from repro.perf.pipeline import (
    pass_compute_floor,
    pass_lower_bound,
    simulated_pass,
)
from repro.sim.cluster import SimResult

#: Safety factor on the branch-and-bound cutoff: a candidate is pruned
#: only when its certified bound exceeds the incumbent by more than one
#: part in 1e9, so floating-point noise can never prune a true tie.
_ABORT_SLACK = 1.0 + 1e-9

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Default weak-scaling cluster sizes (Figure 9 / 12 x-axis).
CLUSTER_SIZES = (16, 32, 64, 128, 256)

#: Display order of the algorithms in Figures 9, 10 and 12.
ALL_ALGORITHMS = ("cannon", "summa", "collective", "wang", "meshslice", "1dtp", "fsdp")


@dataclasses.dataclass
class BlockRun:
    """Simulated execution of one transformer block's FC training GeMMs."""

    algorithm: str
    mesh: Mesh2D
    results: List[SimResult]
    configs: List[GeMMConfig]

    @property
    def seconds(self) -> float:
        """Total FC execution time of one block (per training step)."""
        return sum(r.makespan for r in self.results)

    @property
    def flops_per_chip(self) -> float:
        return sum(r.flops_per_chip for r in self.results)

    def utilization(self, hw: HardwareParams) -> float:
        """FLOP utilization over the block's FC GeMMs (Figure 9 metric)."""
        if self.seconds <= 0:
            return 0.0
        return self.flops_per_chip / (self.seconds * hw.peak_flops)


def tuned_slices(cfg: GeMMConfig, hw: HardwareParams, max_slices: int = 64) -> int:
    """MeshSlice's autotuned slice count for a pass configuration."""
    slices, _estimate = best_slice_count(cfg, hw, max_slices=max_slices)
    return slices


def pass_config(
    plan: LayerPlan,
    pass_name: str,
    mesh: Mesh2D,
    slices: int = 1,
) -> GeMMConfig:
    """Build the GeMMConfig of one layer pass on a given mesh."""
    pass_plan = plan.pass_plan(pass_name)
    return GeMMConfig(
        shape=pass_plan.shape,
        mesh=mesh,
        dataflow=pass_plan.dataflow,
        slices=slices,
        transposed=pass_plan.transposed,
    )


def _base_pass_config(
    algorithm: str, pass_plan: "PassPlan", mesh: Mesh2D
) -> GeMMConfig:
    """The untuned (``slices=1``) configuration of one layer pass."""
    dataflow = pass_plan.dataflow
    transposed = pass_plan.transposed
    if algorithm in ("cannon", "sfc"):
        # Cannon always computes output-stationary, whatever dataflow
        # the plan assigns (Section 7: PrimePar "only uses Cannon's OS
        # algorithm"). The space-filling-curve algorithm is likewise
        # OS-only: the curve orders output tiles.
        dataflow, transposed = Dataflow.OS, False
    return GeMMConfig(
        shape=pass_plan.shape,
        mesh=mesh,
        dataflow=dataflow,
        slices=1,
        transposed=transposed,
    )


def _tuned_pass_config(
    algorithm: str,
    plan: LayerPlan,
    pass_plan: "PassPlan",
    mesh: Mesh2D,
    tune_hw: HardwareParams,
    max_slices: int,
) -> GeMMConfig:
    """Tune and validate one pass; raises ``ValueError`` if unsupported."""
    base = _base_pass_config(algorithm, pass_plan, mesh)
    slices = _slices_for(algorithm, base, tune_hw, max_slices)
    cfg = dataclasses.replace(base, slices=slices)
    reason = get_algorithm(algorithm).check_support(cfg)
    if reason:
        raise ValueError(
            f"{algorithm} cannot run {plan.layer.name}/"
            f"{pass_plan.pass_name} on {mesh}: {reason}"
        )
    return cfg


def block_pass_configs(
    algorithm: str,
    plans: Sequence[LayerPlan],
    mesh: Mesh2D,
    tune_hw: HardwareParams,
    max_slices: int = 64,
) -> List[GeMMConfig]:
    """Validated pass configurations of one block, in plan order.

    Raises ``ValueError`` for the first pass the algorithm cannot run
    on ``mesh``.
    """
    return [
        _tuned_pass_config(algorithm, plan, pass_plan, mesh, tune_hw, max_slices)
        for plan in plans
        for pass_plan in plan.passes
    ]


def run_block(
    algorithm: str,
    plans: Sequence[LayerPlan],
    mesh: Mesh2D,
    hw: HardwareParams,
    tuning_hw: Optional[HardwareParams] = None,
    max_slices: int = 64,
    abort_above: Optional[float] = None,
) -> Optional[BlockRun]:
    """Simulate one block's 12 training GeMMs with one algorithm.

    ``tuning_hw`` lets the slice counts be tuned for a different
    machine than the one simulated (Table 3 runs overlap-tuned
    MeshSlice configurations on the no-overlap cloud preset).

    ``abort_above`` turns the call into a branch-and-bound probe: when
    the certified lower bounds prove the block's total time must exceed
    ``abort_above``, the remaining passes are not simulated and the
    call returns ``None``. Without it a ``BlockRun`` is always
    returned (or ``ValueError`` raised for unsupported passes).
    """
    tune_hw = tuning_hw or hw
    if abort_above is None:
        configs = block_pass_configs(algorithm, plans, mesh, tune_hw, max_slices)
        results: List[Optional[SimResult]] = [
            simulated_pass(algorithm, cfg, hw) for cfg in configs
        ]
        return BlockRun(
            algorithm=algorithm, mesh=mesh, results=results, configs=configs
        )

    cutoff = abort_above * _ABORT_SLACK
    passes = [(plan, pass_plan) for plan in plans for pass_plan in plan.passes]
    # Grow the certified bound one pass at a time, biggest (by the
    # untuned analytical estimate) first: a hopeless mesh is rejected
    # after tuning and bounding only a few passes, without ever
    # deriving the others' slice counts or programs.
    order = sorted(
        range(len(passes)),
        key=lambda i: -meshslice_estimate(
            _base_pass_config(algorithm, passes[i][1], mesh), tune_hw
        ).total,
    )
    configs: List[Optional[GeMMConfig]] = [None] * len(passes)
    # Certified per-pass bounds: passes start at the build-free compute
    # floor and are tightened to the program-based bound one at a time,
    # so partial sums already count every pass and the cutoff trips
    # after tuning/building only a few of them.
    chips = mesh.size
    bounds: List[float] = [
        pass_compute_floor(pass_plan.shape.flops, chips, hw)
        for _plan, pass_plan in passes
    ]
    for i in order:
        plan, pass_plan = passes[i]
        configs[i] = _tuned_pass_config(
            algorithm, plan, pass_plan, mesh, tune_hw, max_slices
        )
        bounds[i] = pass_lower_bound(algorithm, configs[i], hw)
        if sum(bounds) > cutoff:
            return None
    # Simulate the largest bounds first: replacing a bound with its
    # (>=) actual makespan trips the cutoff soonest.
    order.sort(key=lambda i: -bounds[i])
    results = [None] * len(passes)
    actuals: Dict[int, float] = {}
    for rank, i in enumerate(order):
        outstanding = sum(bounds[j] for j in order[rank:])
        if sum(actuals.values()) + outstanding > cutoff:
            return None
        result = simulated_pass(algorithm, configs[i], hw)
        results[i] = result
        actuals[i] = result.makespan
    return BlockRun(algorithm=algorithm, mesh=mesh, results=results, configs=configs)


def _slices_for(
    algorithm: str, base: GeMMConfig, hw: HardwareParams, max_slices: int
) -> int:
    """The granularity each algorithm runs with (Section 4.2)."""
    if algorithm == "collective":
        return 1
    if algorithm == "cannon":
        return 1  # Cannon's iteration count is fixed by the mesh side.
    if algorithm == "sfc":
        return 1  # One output tile per chip; slices is a tile multiplier.
    if algorithm == "sliced":
        # Fences amortize differently from ring syncs (log2(P) rounds
        # per slice vs P - 1 steps), so one-sided slicing tunes S
        # against its own cost model instead of borrowing MeshSlice's.
        slices, _estimate = best_sliced_slice_count(
            base, hw, max_slices=max_slices
        )
        return slices
    # MeshSlice's autotuned S, shared with SUMMA/Wang/1D overlapping
    # (same granularity semantics over ring collectives).
    return tuned_slices(base, hw, max_slices)


def candidate_meshes(algorithm: str, chips: int) -> List[Mesh2D]:
    """Mesh shapes an algorithm may use on a ``chips``-sized cluster."""
    if algorithm in ("1dtp", "fsdp"):
        return [Mesh2D(1, chips)]
    if algorithm == "cannon":
        try:
            return [square_mesh(chips)]
        except ValueError:
            return []
    if algorithm == "sfc":
        # The curve does not need a 2D mesh: degenerate 1 x chips
        # layouts (prime chip counts included) are legal tile grids.
        return mesh_shapes(chips, min_dim=1)
    return mesh_shapes(chips, min_dim=2)


def _candidate_order(
    algorithm: str,
    plans: Sequence[LayerPlan],
    meshes: Sequence[Mesh2D],
    tune_hw: HardwareParams,
    max_slices: int,
) -> List[int]:
    """Candidate indices sorted by the analytical block estimate.

    Purely a search heuristic: visiting a near-optimal mesh first makes
    the ``abort_above`` cutoff bite on almost every other candidate.
    Uses the untuned (``slices=1``) estimates so that ranking a mesh
    never triggers the full slice-count search; the estimates are
    memoized and shared with slice tuning of surviving meshes.
    """
    if len(meshes) <= 1:
        return list(range(len(meshes)))
    scores = []
    for idx, mesh in enumerate(meshes):
        total = 0.0
        for plan in plans:
            for pass_plan in plan.passes:
                base = _base_pass_config(algorithm, pass_plan, mesh)
                total += meshslice_estimate(base, tune_hw).total
        scores.append((total, idx))
    scores.sort()
    return [idx for _total, idx in scores]


def best_block_run(
    algorithm: str,
    model: LLMConfig,
    batch_size: int,
    chips: int,
    hw: HardwareParams,
    optimize_dataflow: bool = True,
    tuning_hw: Optional[HardwareParams] = None,
    max_slices: int = 64,
    plans: Optional[Sequence[LayerPlan]] = None,
) -> Optional[BlockRun]:
    """Run one block at the algorithm's own optimal mesh shape.

    Returns ``None`` when the algorithm cannot run at this cluster size
    at all (Cannon on a non-square chip count, FSDP constraints handled
    by callers).

    ``plans`` lets callers that evaluate several algorithms at one
    ``(model, batch)`` point pass the Phase-1 plans in once instead of
    re-deriving them per algorithm; when omitted they are computed
    (``batch_size`` is then the effective batch for ``model.tokens``).

    The search result is identical to exhaustively simulating every
    candidate mesh: candidates are visited in analytical-estimate order
    and abandoned via the certified ``abort_above`` cutoff, and ties on
    ``seconds`` resolve to the earliest mesh in ``candidate_meshes``
    order, exactly as the exhaustive first-strictly-better scan did.
    """
    if plans is None:
        tokens = model.tokens(batch_size)
        plans = plan_model(model, tokens, optimize_dataflow=optimize_dataflow)
    meshes = candidate_meshes(algorithm, chips)
    tune_hw = tuning_hw or hw
    best: Optional[BlockRun] = None
    best_idx = -1
    for idx in _candidate_order(algorithm, plans, meshes, tune_hw, max_slices):
        try:
            run = run_block(
                algorithm, plans, meshes[idx], hw,
                tuning_hw=tuning_hw, max_slices=max_slices,
                abort_above=None if best is None else best.seconds,
            )
        except ValueError:
            continue
        if run is None:
            continue
        if (
            best is None
            or run.seconds < best.seconds
            or (run.seconds == best.seconds and idx < best_idx)
        ):
            best = run
            best_idx = idx
    return best


def end_to_end_step_seconds(
    model: LLMConfig,
    batch_size: int,
    chips: int,
    hw: HardwareParams,
    fc_block_seconds: float,
) -> float:
    """Per-step training time combining FC and non-FC layers.

    The paper combines simulated FC times with single-TPU benchmarks of
    the communication-free non-FC layers (Section 4.4); we substitute
    the analytical non-FC estimate.
    """
    tokens = model.tokens(batch_size)
    nonfc = nonfc_block_seconds(model, tokens, chips, hw)
    return model.num_layers * (fc_block_seconds + nonfc)


def weak_scaling_batch(chips: int) -> int:
    """The paper's weak-scaling rule: batch = half the chip count."""
    return max(1, chips // 2)


#: Environment variable carrying the worker-process count (set by the
#: CLI's ``--jobs`` flag; read by every figure grid).
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` > CPU count."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


class GridPointError(RuntimeError):
    """A grid worker failed; the message names the offending point.

    A bare exception out of a process pool loses which input caused it
    (``pool.map`` reraises the first failure with no argument context),
    so :func:`grid_map` wraps worker exceptions in this type. The
    original exception is the ``__cause__`` in serial mode; across a
    process pool only its rendering inside the message and the
    ``traceback`` string survive pickling — ``traceback`` preserves
    the worker-side stack that ``__cause__`` loses, so collected
    records can still say *where* a point died.
    """

    def __init__(
        self,
        message: str,
        point: object = None,
        traceback: Optional[str] = None,
    ):
        super().__init__(message)
        self.point = point
        self.traceback = traceback

    def __reduce__(self):
        return (GridPointError, (self.args[0], self.point, self.traceback))


@dataclasses.dataclass
class _MetricsEnvelope:
    """A pooled worker's result plus the metric delta it produced."""

    result: object
    records: List[MetricRecord]


@dataclasses.dataclass
class _GridWorker:
    """Picklable wrapper attaching the grid point to worker failures.

    With ``collect_metrics`` (the process-pool path) each call also
    snapshots the worker process's registry around ``fn`` and ships the
    delta home in a :class:`_MetricsEnvelope`, so pooled runs lose no
    counters. Serial calls never set it — their ``fn`` already writes
    the parent registry directly, and enveloping would double-count.

    With ``on_error="collect"`` a failing point returns its
    :class:`GridPointError` as the point's result instead of raising,
    so one bad point cannot abort the grid.
    """

    fn: Callable
    collect_metrics: bool = False
    on_error: str = "raise"

    def __call__(self, point):
        if not self.collect_metrics or not metrics_enabled():
            return self._run(point)
        reg = registry()
        before = reg.snapshot()
        result = self._run(point)
        return _MetricsEnvelope(result, reg.delta_since(before))

    def _run(self, point):
        try:
            return self.fn(point)
        except GridPointError as exc:
            if self.on_error == "collect":
                return exc
            raise
        except Exception as exc:
            wrapped = GridPointError(
                f"grid point {point!r} failed: "
                f"{type(exc).__name__}: {exc}",
                point,
                traceback.format_exc(),
            )
            if self.on_error == "collect":
                return wrapped
            raise wrapped from exc


def grid_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = None,
    on_error: str = "raise",
    progress: Optional[Callable[[int, object], None]] = None,
) -> List[_R]:
    """Map ``fn`` over independent grid points, in input order.

    With more than one worker the points run in a process pool (``fn``
    and the items must be picklable, i.e. module-level functions).
    Falls back to the serial map when worker processes cannot be
    spawned (restricted sandboxes) or the pool breaks, resuming from
    the first point whose result has not been delivered yet.

    ``on_error`` selects the failure semantics. ``"raise"`` (the
    default) aborts the map on the first failing point with a
    :class:`GridPointError` naming it. ``"collect"`` never aborts:
    each failing point's :class:`GridPointError` takes its slot in the
    returned list, so callers get every healthy result plus a
    structured placeholder per failure (the campaign runner's
    fail-soft substrate).

    ``progress`` is called as ``progress(index, result)`` once per
    point, in input order, as soon as that point's result (and, in
    pooled mode, its metrics delta) has been folded into the parent
    process — the streaming hook the campaign runner appends durable
    records from. A kill mid-run therefore loses only the points whose
    ``progress`` had not fired yet.

    Metrics survive the pool: each worker returns the registry delta
    its point produced and the parent folds the deltas back in *input
    order*, so the merged registry is byte-identical to a serial run
    regardless of pool scheduling (and of ``jobs``).
    """
    if on_error not in ("raise", "collect"):
        raise ValueError(f"unknown on_error mode {on_error!r}")
    points = list(items)
    workers = min(resolve_jobs(jobs), len(points))
    results: List[_R] = []

    def _deliver(result) -> None:
        if progress is not None:
            progress(len(results), result)
        results.append(result)

    def _serial_from(start: int) -> List[_R]:
        worker = _GridWorker(fn, on_error=on_error)
        for point in points[start:]:
            _deliver(worker(point))
        return results

    if workers <= 1:
        return _serial_from(0)
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    pooled = _GridWorker(
        fn, collect_metrics=metrics_enabled(), on_error=on_error
    )
    reg = registry()
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # pool.map yields in input order; envelopes merge and
            # progress fires as each point streams home, so delivered
            # prefixes stay valid even if the pool breaks later.
            for out in pool.map(pooled, points):
                if isinstance(out, _MetricsEnvelope):
                    reg.merge_records(out.records)
                    out = out.result
                _deliver(out)
    except (OSError, PermissionError, BrokenProcessPool):
        # Undelivered points rerun serially; delivered ones are kept
        # (their metrics are already merged, their progress fired).
        return _serial_from(len(results))
    return results


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table used by the experiment CLIs and benches."""
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in text_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def utilization_map(
    runs: Dict[str, Optional[BlockRun]], hw: HardwareParams
) -> Dict[str, Optional[float]]:
    """Utilizations of a set of per-algorithm runs (None preserved)."""
    return {
        name: (run.utilization(hw) if run is not None else None)
        for name, run in runs.items()
    }
