"""Shared runners for the evaluation reproduction (Section 5).

The experiment modules compose three ingredients:

* the autotuner's Phase-1 plans (which dataflow each FC-layer training
  GeMM uses),
* per-algorithm mesh-shape optimization — the paper compares every
  algorithm at *its own* optimal mesh shape (Section 4.2) — and
* the cluster simulator, which executes one transformer block's twelve
  training GeMMs (4 FC layers x 3 passes) and aggregates them into the
  FLOP utilization numbers the paper reports.

Slice counts follow the paper's fairness rule: MeshSlice's autotuned
``S`` is also used as the unrolled iteration count of SUMMA and Wang.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.algorithms import GeMMConfig, get_algorithm
from repro.autotuner.costmodel import best_slice_count
from repro.core.dataflow import Dataflow
from repro.autotuner.dataflow import LayerPlan, plan_model
from repro.hw.params import HardwareParams
from repro.mesh.topology import Mesh2D, mesh_shapes, square_mesh
from repro.models.config import LLMConfig
from repro.models.nonfc import nonfc_block_seconds
from repro.sim.cluster import SimResult, simulate

#: Default weak-scaling cluster sizes (Figure 9 / 12 x-axis).
CLUSTER_SIZES = (16, 32, 64, 128, 256)

#: Display order of the algorithms in Figures 9, 10 and 12.
ALL_ALGORITHMS = ("cannon", "summa", "collective", "wang", "meshslice", "1dtp", "fsdp")


@dataclasses.dataclass
class BlockRun:
    """Simulated execution of one transformer block's FC training GeMMs."""

    algorithm: str
    mesh: Mesh2D
    results: List[SimResult]
    configs: List[GeMMConfig]

    @property
    def seconds(self) -> float:
        """Total FC execution time of one block (per training step)."""
        return sum(r.makespan for r in self.results)

    @property
    def flops_per_chip(self) -> float:
        return sum(r.flops_per_chip for r in self.results)

    def utilization(self, hw: HardwareParams) -> float:
        """FLOP utilization over the block's FC GeMMs (Figure 9 metric)."""
        if self.seconds <= 0:
            return 0.0
        return self.flops_per_chip / (self.seconds * hw.peak_flops)


def tuned_slices(cfg: GeMMConfig, hw: HardwareParams, max_slices: int = 64) -> int:
    """MeshSlice's autotuned slice count for a pass configuration."""
    slices, _estimate = best_slice_count(cfg, hw, max_slices=max_slices)
    return slices


def pass_config(
    plan: LayerPlan,
    pass_name: str,
    mesh: Mesh2D,
    slices: int = 1,
) -> GeMMConfig:
    """Build the GeMMConfig of one layer pass on a given mesh."""
    pass_plan = plan.pass_plan(pass_name)
    return GeMMConfig(
        shape=pass_plan.shape,
        mesh=mesh,
        dataflow=pass_plan.dataflow,
        slices=slices,
        transposed=pass_plan.transposed,
    )


def run_block(
    algorithm: str,
    plans: Sequence[LayerPlan],
    mesh: Mesh2D,
    hw: HardwareParams,
    tuning_hw: Optional[HardwareParams] = None,
    max_slices: int = 64,
) -> BlockRun:
    """Simulate one block's 12 training GeMMs with one algorithm.

    ``tuning_hw`` lets the slice counts be tuned for a different
    machine than the one simulated (Table 3 runs overlap-tuned
    MeshSlice configurations on the no-overlap cloud preset).
    """
    alg = get_algorithm(algorithm)
    tune_hw = tuning_hw or hw
    results: List[SimResult] = []
    configs: List[GeMMConfig] = []
    for plan in plans:
        for pass_plan in plan.passes:
            dataflow = pass_plan.dataflow
            transposed = pass_plan.transposed
            if algorithm == "cannon":
                # Cannon always computes output-stationary, whatever
                # dataflow the plan assigns (Section 7: PrimePar "only
                # uses Cannon's OS algorithm").
                dataflow, transposed = Dataflow.OS, False
            base = GeMMConfig(
                shape=pass_plan.shape,
                mesh=mesh,
                dataflow=dataflow,
                slices=1,
                transposed=transposed,
            )
            slices = _slices_for(algorithm, base, tune_hw, max_slices)
            cfg = dataclasses.replace(base, slices=slices)
            reason = alg.check_support(cfg)
            if reason:
                raise ValueError(
                    f"{algorithm} cannot run {plan.layer.name}/"
                    f"{pass_plan.pass_name} on {mesh}: {reason}"
                )
            results.append(simulate(alg.build_program(cfg, hw), hw))
            configs.append(cfg)
    return BlockRun(algorithm=algorithm, mesh=mesh, results=results, configs=configs)


def _slices_for(
    algorithm: str, base: GeMMConfig, hw: HardwareParams, max_slices: int
) -> int:
    """The granularity each algorithm runs with (Section 4.2)."""
    if algorithm == "collective":
        return 1
    if algorithm == "cannon":
        return 1  # Cannon's iteration count is fixed by the mesh side.
    # MeshSlice's autotuned S, shared with SUMMA/Wang/1D overlapping.
    return tuned_slices(base, hw, max_slices)


def candidate_meshes(algorithm: str, chips: int) -> List[Mesh2D]:
    """Mesh shapes an algorithm may use on a ``chips``-sized cluster."""
    if algorithm in ("1dtp", "fsdp"):
        return [Mesh2D(1, chips)]
    if algorithm == "cannon":
        try:
            return [square_mesh(chips)]
        except ValueError:
            return []
    return mesh_shapes(chips, min_dim=2)


def best_block_run(
    algorithm: str,
    model: LLMConfig,
    batch_size: int,
    chips: int,
    hw: HardwareParams,
    optimize_dataflow: bool = True,
    tuning_hw: Optional[HardwareParams] = None,
    max_slices: int = 64,
) -> Optional[BlockRun]:
    """Run one block at the algorithm's own optimal mesh shape.

    Returns ``None`` when the algorithm cannot run at this cluster size
    at all (Cannon on a non-square chip count, FSDP constraints handled
    by callers).
    """
    tokens = model.tokens(batch_size)
    plans = plan_model(model, tokens, optimize_dataflow=optimize_dataflow)
    best: Optional[BlockRun] = None
    for mesh in candidate_meshes(algorithm, chips):
        try:
            run = run_block(
                algorithm, plans, mesh, hw,
                tuning_hw=tuning_hw, max_slices=max_slices,
            )
        except ValueError:
            continue
        if best is None or run.seconds < best.seconds:
            best = run
    return best


def end_to_end_step_seconds(
    model: LLMConfig,
    batch_size: int,
    chips: int,
    hw: HardwareParams,
    fc_block_seconds: float,
) -> float:
    """Per-step training time combining FC and non-FC layers.

    The paper combines simulated FC times with single-TPU benchmarks of
    the communication-free non-FC layers (Section 4.4); we substitute
    the analytical non-FC estimate.
    """
    tokens = model.tokens(batch_size)
    nonfc = nonfc_block_seconds(model, tokens, chips, hw)
    return model.num_layers * (fc_block_seconds + nonfc)


def weak_scaling_batch(chips: int) -> int:
    """The paper's weak-scaling rule: batch = half the chip count."""
    return max(1, chips // 2)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table used by the experiment CLIs and benches."""
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in text_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def utilization_map(
    runs: Dict[str, Optional[BlockRun]], hw: HardwareParams
) -> Dict[str, Optional[float]]:
    """Utilizations of a set of per-algorithm runs (None preserved)."""
    return {
        name: (run.utilization(hw) if run is not None else None)
        for name, run in runs.items()
    }
