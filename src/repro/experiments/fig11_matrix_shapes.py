"""Figure 11: FLOP utilization of the 16 distinct training GeMM shapes.

The forward and backward passes of the four FC layers produce eight
distinct (M, N, K) GeMM shapes per model — sixteen across GPT-3 and
Megatron-NLG. Each is executed with the five 2D algorithms in a
256-chip cluster, each algorithm at its own optimal mesh shape.
MeshSlice should win every shape, with larger speedups on the larger
GeMMs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms import GeMMConfig, TWO_D_ALGORITHMS, get_algorithm
from repro.autotuner.dataflow import PassPlan, plan_model
from repro.campaign.spec import CampaignSpec
from repro.experiments.common import (
    candidate_meshes,
    grid_map,
    render_table,
    tuned_slices,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.models.config import LLMConfig
from repro.models.zoo import GPT3_175B, MEGATRON_NLG_530B
from repro.sim.cluster import simulate


@dataclasses.dataclass(frozen=True)
class ShapeRow:
    """Utilization of one GeMM shape under one algorithm."""

    model: str
    label: str
    shape: Tuple[int, int, int]
    algorithm: str
    utilization: Optional[float]
    mesh: Optional[str]


def distinct_pass_plans(
    model: LLMConfig, tokens: int
) -> List[Tuple[str, PassPlan]]:
    """The distinct-shape training GeMMs of one block, with dataflows."""
    plans = plan_model(model, tokens, optimize_dataflow=True)
    seen: Dict[Tuple[int, int, int], Tuple[str, PassPlan]] = {}
    for plan in plans:
        for pass_plan in plan.passes:
            key = pass_plan.shape.as_tuple()
            if key not in seen:
                label = f"{plan.layer.name}/{pass_plan.pass_name}"
                seen[key] = (label, pass_plan)
    return list(seen.values())


def _point_rows(point) -> List[ShapeRow]:
    """All Figure 11 bars of one (model, GeMM shape) grid point.

    Module-level so it can run in a ``grid_map`` worker process.
    """
    model_name, label, pass_plan, algorithms, chips, hw = point
    rows: List[ShapeRow] = []
    for algorithm in algorithms:
        best = _best_for_shape(algorithm, pass_plan, chips, hw)
        if best is None:
            rows.append(
                ShapeRow(model_name, label, pass_plan.shape.as_tuple(),
                         algorithm, None, None)
            )
        else:
            util, mesh = best
            rows.append(
                ShapeRow(model_name, label, pass_plan.shape.as_tuple(),
                         algorithm, util, str(mesh))
            )
    return rows


def run(
    models: Sequence[LLMConfig] = (GPT3_175B, MEGATRON_NLG_530B),
    chips: int = 256,
    batch_size: int = 128,
    algorithms: Sequence[str] = TWO_D_ALGORITHMS,
    hw: HardwareParams = TPUV4,
    jobs: Optional[int] = None,
) -> List[ShapeRow]:
    """Produce every Figure 11 bar.

    The (model, GeMM shape) grid points are independent and run in
    worker processes when ``jobs`` (or ``REPRO_JOBS``) allows.
    """
    points = []
    for model in models:
        tokens = model.tokens(batch_size)
        for label, pass_plan in distinct_pass_plans(model, tokens):
            points.append(
                (model.name, label, pass_plan, tuple(algorithms), chips, hw)
            )
    return [row for rows in grid_map(_point_rows, points, jobs=jobs)
            for row in rows]


def _best_for_shape(
    algorithm: str, pass_plan: PassPlan, chips: int, hw: HardwareParams
) -> Optional[Tuple[float, object]]:
    alg = get_algorithm(algorithm)
    best = None
    dataflow = pass_plan.dataflow
    transposed = pass_plan.transposed
    if algorithm == "cannon":
        # Cannon always computes output-stationary (Section 7).
        from repro.core.dataflow import Dataflow

        dataflow, transposed = Dataflow.OS, False
    for mesh in candidate_meshes(algorithm, chips):
        base = GeMMConfig(
            shape=pass_plan.shape,
            mesh=mesh,
            dataflow=dataflow,
            slices=1,
            transposed=transposed,
        )
        slices = 1
        if algorithm not in ("collective", "cannon"):
            slices = tuned_slices(base, hw)
        cfg = dataclasses.replace(base, slices=slices)
        if not alg.supports(cfg):
            continue
        result = simulate(alg.build_program(cfg, hw), hw)
        util = result.flop_utilization()
        if best is None or util > best[0]:
            best = (util, mesh)
    return best


def average_speedup(
    rows: Sequence[ShapeRow], subject: str, baseline: str
) -> float:
    """Mean utilization ratio of ``subject`` over ``baseline`` - 1."""
    by_key: Dict[Tuple[str, str, str], float] = {
        (r.model, r.label, r.algorithm): r.utilization
        for r in rows
        if r.utilization is not None
    }
    ratios = []
    for (model, label, algorithm), util in by_key.items():
        if algorithm != subject:
            continue
        base = by_key.get((model, label, baseline))
        if base:
            ratios.append(util / base)
    if not ratios:
        raise ValueError("no comparable rows")
    return sum(ratios) / len(ratios) - 1.0


def render(rows: Sequence[ShapeRow]) -> str:
    table = render_table(
        ["model", "gemm", "(M,N,K)", "algorithm", "FLOP util", "mesh"],
        [(r.model, r.label, str(r.shape), r.algorithm, r.utilization, r.mesh)
         for r in rows],
    )
    lines = [table, ""]
    for baseline, paper in (("collective", 27.8), ("wang", 19.1)):
        try:
            avg = average_speedup(rows, "meshslice", baseline) * 100
        except ValueError:
            # Partial campaign store: no comparable pairs stored yet.
            continue
        lines.append(
            f"MeshSlice over {baseline}: {avg:+.1f}% average "
            f"(paper: +{paper}%)"
        )
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4, chips: int = 256) -> str:
    return render(run(chips=chips, hw=hw))


def _campaign_points() -> List[tuple]:
    points = []
    for model in (GPT3_175B, MEGATRON_NLG_530B):
        tokens = model.tokens(128)
        for label, pass_plan in distinct_pass_plans(model, tokens):
            points.append(
                (model.name, label, pass_plan,
                 tuple(TWO_D_ALGORITHMS), 256, TPUV4)
            )
    return points


CAMPAIGN = CampaignSpec(
    name="fig11",
    points=_campaign_points,
    point=_point_rows,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
