"""Figure 10: communication-time breakdown in 256-chip clusters.

For each algorithm, the total (overlapped plus non-overlapped)
communication time of the FC layers is broken into launch, transfer,
and synchronization components and reported *relative to the
algorithm's own GeMM computation time* — the paper's normalization,
under which a total below 1.0 means all communication could in theory
be hidden. The expected shape: Cannon pays extra transfer (skew +
square mesh), SUMMA drowns in synchronization, the 1D methods pay
large transfer costs, Collective is the leanest but cannot overlap,
and Wang/MeshSlice sit slightly above Collective (extra launches and
syncs respectively) while hiding almost all of it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.campaign.spec import CampaignSpec
from repro.experiments.common import (
    ALL_ALGORITHMS,
    best_block_run,
    render_table,
    weak_scaling_batch,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.models.config import LLMConfig
from repro.models.zoo import GPT3_175B, MEGATRON_NLG_530B
from repro.sim.trace import ZERO_BREAKDOWN


@dataclasses.dataclass(frozen=True)
class BreakdownRow:
    """Relative communication components of one algorithm."""

    model: str
    algorithm: str
    launch: Optional[float]
    transfer: Optional[float]
    sync: Optional[float]

    @property
    def total(self) -> Optional[float]:
        if self.launch is None:
            return None
        return self.launch + self.transfer + self.sync


def _point_rows(point) -> List[BreakdownRow]:
    """All Figure 10 bars of one (model, chips) grid point.

    Module-level so the campaign runner can run it as one durable,
    picklable unit of work.
    """
    model, chips, algorithms, hw = point
    batch = weak_scaling_batch(chips)
    rows: List[BreakdownRow] = []
    for algorithm in algorithms:
        block = best_block_run(algorithm, model, batch, chips, hw)
        if block is None:
            rows.append(BreakdownRow(model.name, algorithm, None, None, None))
            continue
        comm = sum(
            (r.trace.breakdown() for r in block.results),
            start=ZERO_BREAKDOWN,
        )
        compute = sum(r.compute_seconds for r in block.results)
        rel = comm.relative_to(compute)
        rows.append(
            BreakdownRow(
                model=model.name,
                algorithm=algorithm,
                launch=rel.launch,
                transfer=rel.transfer,
                sync=rel.sync,
            )
        )
    return rows


def run(
    models: Sequence[LLMConfig] = (GPT3_175B, MEGATRON_NLG_530B),
    chips: int = 256,
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    hw: HardwareParams = TPUV4,
) -> List[BreakdownRow]:
    """Produce the Figure 10 bars."""
    rows: List[BreakdownRow] = []
    for model in models:
        rows.extend(_point_rows((model, chips, tuple(algorithms), hw)))
    return rows


def render(rows: Sequence[BreakdownRow]) -> str:
    return render_table(
        ["model", "algorithm", "launch", "transfer", "sync", "total (rel. to compute)"],
        [(r.model, r.algorithm, r.launch, r.transfer, r.sync, r.total) for r in rows],
    )


def main(hw: HardwareParams = TPUV4, chips: int = 256) -> str:
    return render(run(chips=chips, hw=hw))


def _campaign_points() -> List[tuple]:
    return [
        (model, 256, tuple(ALL_ALGORITHMS), TPUV4)
        for model in (GPT3_175B, MEGATRON_NLG_530B)
    ]


CAMPAIGN = CampaignSpec(
    name="fig10",
    points=_campaign_points,
    point=_point_rows,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
