"""Section 6 ablation: MeshSlice for LLM inference.

Inference computations differ from training in arithmetic intensity:
prefill GeMMs look like training (compute bound), but decode GeMMs have
``M = batch`` rows (one new token per sequence) and sit far below the
roofline ridge — memory and communication bound. This experiment runs
both phases of GPT-3 serving on a 64-chip mesh with the 2D algorithms
and shows:

1. the phase classification (prefill compute-bound, decode
   memory-bound),
2. MeshSlice remains at worst tied with Collective in decode (it falls
   back to coarse S when slicing cannot help), and
3. the autotuner picks much smaller slice counts for decode — the
   adaptation Section 6 anticipates.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.algorithms import GeMMConfig, get_algorithm
from repro.campaign.spec import CampaignSpec
from repro.core.dataflow import Dataflow
from repro.experiments.common import candidate_meshes, render_table, tuned_slices
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.models.config import LLMConfig
from repro.models.inference import (
    InferenceWorkload,
    inference_gemms,
    is_memory_bound,
)
from repro.models.zoo import GPT3_175B
from repro.sim.cluster import simulate


@dataclasses.dataclass(frozen=True)
class InferenceRow:
    phase: str
    layer: str
    algorithm: str
    memory_bound: bool
    tuned_slices: int
    latency_ms: Optional[float]


def _phase_rows(point) -> List[InferenceRow]:
    """All rows of one serving phase (one durable campaign point).

    Whole-phase granularity keeps the row order of :func:`run` intact:
    layers x algorithms within a phase stay contiguous in the store.
    """
    model, chips, batch, prompt_len, phase, algorithms, hw = point
    rows: List[InferenceRow] = []
    workload = InferenceWorkload(
        model=model, batch=batch, prompt_len=prompt_len, phase=phase
    )
    for layer_name, shape in inference_gemms(workload):
        for algorithm in algorithms:
            best = _best_latency(algorithm, shape, chips, hw)
            if best is None:
                rows.append(
                    InferenceRow(phase, layer_name, algorithm,
                                 is_memory_bound(shape, hw), 1, None)
                )
                continue
            latency, slices = best
            rows.append(
                InferenceRow(
                    phase=phase,
                    layer=layer_name,
                    algorithm=algorithm,
                    memory_bound=is_memory_bound(shape, hw),
                    tuned_slices=slices,
                    latency_ms=latency * 1e3,
                )
            )
    return rows


def run(
    model: LLMConfig = GPT3_175B,
    chips: int = 64,
    batch: int = 32,
    prompt_len: int = 1024,
    algorithms: Sequence[str] = ("collective", "wang", "meshslice"),
    hw: HardwareParams = TPUV4,
) -> List[InferenceRow]:
    """Per-phase, per-layer inference latency rows."""
    rows: List[InferenceRow] = []
    for phase in ("prefill", "decode"):
        rows.extend(
            _phase_rows(
                (model, chips, batch, prompt_len, phase, tuple(algorithms), hw)
            )
        )
    return rows


def _best_latency(
    algorithm: str, shape, chips: int, hw: HardwareParams
) -> Optional[Tuple[float, int]]:
    alg = get_algorithm(algorithm)
    best = None
    for mesh in candidate_meshes(algorithm, chips):
        base = GeMMConfig(shape, mesh, Dataflow.OS, slices=1)
        slices = 1
        if algorithm not in ("collective", "cannon"):
            slices = tuned_slices(base, hw)
        cfg = dataclasses.replace(base, slices=slices)
        if not alg.supports(cfg):
            continue
        result = simulate(alg.build_program(cfg, hw), hw)
        if best is None or result.makespan < best[0]:
            best = (result.makespan, slices)
    return best


def mean_tuned_slices(rows: Sequence[InferenceRow], phase: str) -> float:
    values = [
        r.tuned_slices
        for r in rows
        if r.phase == phase and r.algorithm == "meshslice"
    ]
    if not values:
        raise ValueError(f"no meshslice rows for phase {phase!r}")
    return sum(values) / len(values)


def render(rows: Sequence[InferenceRow]) -> str:
    table = render_table(
        ["phase", "layer", "algorithm", "memory-bound", "S", "latency (ms)"],
        [(r.phase, r.layer, r.algorithm, r.memory_bound, r.tuned_slices,
          r.latency_ms) for r in rows],
    )
    try:
        prefill_s = mean_tuned_slices(rows, "prefill")
        decode_s = mean_tuned_slices(rows, "decode")
    except ValueError:
        # Partial campaign store: one of the phases is not in yet.
        return table
    return (
        table
        + f"\n\nautotuned mean S: prefill {prefill_s:.1f}, decode "
        f"{decode_s:.1f} — the tuner backs off slicing for "
        "memory-bound decode GeMMs"
    )


def main(chips: int = 64) -> str:
    return render(run(chips=chips))


def _campaign_points() -> List[tuple]:
    return [
        (GPT3_175B, 64, 32, 1024, phase,
         ("collective", "wang", "meshslice"), TPUV4)
        for phase in ("prefill", "decode")
    ]


CAMPAIGN = CampaignSpec(
    name="ablation-inference",
    points=_campaign_points,
    point=_phase_rows,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
