"""Section 6 ablation: MeshSlice on a logical mesh with NIC contention.

The paper's discussion: applying MeshSlice to GPU clusters means
constructing a *logical* 2D mesh on a switched network, where AG/RdS
operations in the two directions contend for the chip's NIC (unlike a
physical torus, whose per-direction links are contention-free), and the
autotuner must model that contention.

This experiment runs the same GPT-3 FC workload on (a) the physical
TPUv4 torus and (b) the ``GPU_LOGICAL_MESH`` preset with equal per-ring
bandwidth but a shared 120 GB/s NIC, and verifies:

1. every algorithm loses utilization on the logical mesh, with the
   always-both-directions algorithms hurt most;
2. MeshSlice still wins (it hides the now-longer communication); and
3. the contention-aware cost model still identifies the same optimal
   mesh shape as full simulation — the autotuner modification the
   paper calls for.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.autotuner.dataflow import plan_model
from repro.autotuner.search import tune_mesh
from repro.campaign.spec import CampaignSpec
from repro.experiments.common import (
    best_block_run,
    render_table,
    run_block,
    weak_scaling_batch,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import GPU_LOGICAL_MESH, TPUV4
from repro.mesh.topology import mesh_shapes
from repro.models.config import LLMConfig
from repro.models.layers import block_fc_flops
from repro.models.zoo import GPT3_175B


@dataclasses.dataclass(frozen=True)
class LogicalMeshRow:
    algorithm: str
    torus_utilization: Optional[float]
    logical_utilization: Optional[float]

    @property
    def degradation(self) -> Optional[float]:
        if self.torus_utilization in (None, 0) or self.logical_utilization is None:
            return None
        return 1.0 - self.logical_utilization / self.torus_utilization


def run(
    model: LLMConfig = GPT3_175B,
    chips: int = 64,
    algorithms: Sequence[str] = ("collective", "wang", "meshslice"),
    torus_hw: HardwareParams = TPUV4,
    logical_hw: HardwareParams = GPU_LOGICAL_MESH,
) -> List[LogicalMeshRow]:
    """Compare each algorithm on the torus vs the logical mesh."""
    batch = weak_scaling_batch(chips)
    rows = []
    for algorithm in algorithms:
        torus = best_block_run(algorithm, model, batch, chips, torus_hw)
        logical = best_block_run(algorithm, model, batch, chips, logical_hw)
        rows.append(
            LogicalMeshRow(
                algorithm=algorithm,
                torus_utilization=(
                    torus.utilization(torus_hw) if torus else None
                ),
                logical_utilization=(
                    logical.utilization(logical_hw) if logical else None
                ),
            )
        )
    return rows


def cost_model_agreement(
    model: LLMConfig = GPT3_175B,
    chips: int = 64,
    hw: HardwareParams = GPU_LOGICAL_MESH,
) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """(estimated-optimal, simulated-optimal) mesh shape under
    contention — the autotuner-extension validation."""
    batch = weak_scaling_batch(chips)
    tokens = model.tokens(batch)
    plans = plan_model(model, tokens)
    flops_per_chip = block_fc_flops(model, tokens) / chips
    best_est = best_sim = None
    for mesh in mesh_shapes(chips, min_dim=2):
        _tuned, est_seconds = tune_mesh(plans, mesh, hw)
        block = run_block("meshslice", plans, mesh, hw)
        if best_est is None or est_seconds < best_est[1]:
            best_est = (mesh.shape, est_seconds)
        if best_sim is None or block.seconds < best_sim[1]:
            best_sim = (mesh.shape, block.seconds)
    del flops_per_chip
    return best_est[0], best_sim[0]


@dataclasses.dataclass(frozen=True)
class AgreementRow:
    """Estimated vs simulated optimal mesh shape under NIC contention."""

    estimated: Tuple[int, int]
    simulated: Tuple[int, int]


def _campaign_point(kind: str) -> list:
    """One campaign point: a single algorithm's comparison row, or the
    expensive full-grid cost-model agreement check."""
    if kind == "agreement":
        est, sim = cost_model_agreement()
        return [AgreementRow(estimated=est, simulated=sim)]
    return list(run(algorithms=(kind,)))


def render(rows: Sequence) -> str:
    algo = [r for r in rows if isinstance(r, LogicalMeshRow)]
    table = render_table(
        ["algorithm", "torus util", "logical-mesh util", "degradation"],
        [
            (r.algorithm, r.torus_utilization, r.logical_utilization,
             None if r.degradation is None else f"{r.degradation:.1%}")
            for r in algo
        ],
    )
    agreement = [r for r in rows if isinstance(r, AgreementRow)]
    if not agreement:
        return table
    est, sim = agreement[0].estimated, agreement[0].simulated
    agree = "agree" if est == sim else "DISAGREE"
    return (
        table
        + f"\n\ncontention-aware cost model optimum {est[0]}x{est[1]}, "
        f"simulated optimum {sim[0]}x{sim[1]} ({agree})"
    )


def main(chips: int = 64) -> str:
    rows = run(chips=chips)
    est, sim = cost_model_agreement(chips=chips)
    return render([*rows, AgreementRow(estimated=est, simulated=sim)])


def _campaign_points() -> list:
    return ["collective", "wang", "meshslice", "agreement"]


CAMPAIGN = CampaignSpec(
    name="ablation-logical-mesh",
    points=_campaign_points,
    point=_campaign_point,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
