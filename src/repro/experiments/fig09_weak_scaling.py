"""Figure 9: weak-scaling FLOP utilization of the FC layers.

Reproduces the paper's headline experiment: the FC layers of GPT-3 and
Megatron-NLG trained with seven distributed GeMM algorithms on clusters
of 16..256 TPUs, batch size set to half the chip count (the
Megatron-NLG weak-scaling rule) and sequence length 2048. Every
algorithm runs at its own optimal mesh shape; SUMMA and Wang reuse
MeshSlice's autotuned slice count as their unrolled iteration count.

Also computes the paper's headline end-to-end numbers: including the
non-FC layers, MeshSlice trains GPT-3 and Megatron-NLG 12.0% and 23.4%
faster than Wang at 256 chips.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.autotuner.dataflow import plan_model
from repro.campaign.spec import CampaignSpec
from repro.experiments.common import (
    ALL_ALGORITHMS,
    CLUSTER_SIZES,
    best_block_run,
    end_to_end_step_seconds,
    grid_map,
    render_table,
    weak_scaling_batch,
)
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.models.config import LLMConfig
from repro.models.zoo import GPT3_175B, MEGATRON_NLG_530B


@dataclasses.dataclass(frozen=True)
class WeakScalingRow:
    """One (model, cluster size, algorithm) data point."""

    model: str
    chips: int
    algorithm: str
    mesh: Optional[str]
    utilization: Optional[float]
    fc_block_ms: Optional[float]
    end_to_end_s: Optional[float]


def _point_rows(point) -> List[WeakScalingRow]:
    """All Figure 9 rows of one independent (model, chips) grid point.

    Module-level so the point can run in a ``grid_map`` worker process.
    The Phase-1 plans are derived once here and shared by all seven
    algorithms' mesh searches.
    """
    model, chips, algorithms, hw = point
    batch = weak_scaling_batch(chips)
    plans = plan_model(model, model.tokens(batch), optimize_dataflow=True)
    rows: List[WeakScalingRow] = []
    for algorithm in algorithms:
        block = best_block_run(
            algorithm, model, batch, chips, hw, plans=plans
        )
        if block is None:
            rows.append(
                WeakScalingRow(model.name, chips, algorithm,
                               None, None, None, None)
            )
            continue
        rows.append(
            WeakScalingRow(
                model=model.name,
                chips=chips,
                algorithm=algorithm,
                mesh=str(block.mesh),
                utilization=block.utilization(hw),
                fc_block_ms=block.seconds * 1e3,
                end_to_end_s=end_to_end_step_seconds(
                    model, batch, chips, hw, block.seconds
                ),
            )
        )
    return rows


def run(
    models: Sequence[LLMConfig] = (GPT3_175B, MEGATRON_NLG_530B),
    sizes: Sequence[int] = CLUSTER_SIZES,
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    hw: HardwareParams = TPUV4,
    jobs: Optional[int] = None,
) -> List[WeakScalingRow]:
    """Produce every Figure 9 data point.

    The (model, cluster size) grid points are independent and run in
    worker processes when ``jobs`` (or ``REPRO_JOBS``) allows.
    """
    points = [
        (model, chips, tuple(algorithms), hw)
        for model in models
        for chips in sizes
    ]
    return [row for rows in grid_map(_point_rows, points, jobs=jobs)
            for row in rows]


def speedup_over(
    rows: Sequence[WeakScalingRow],
    model: str,
    chips: int,
    baseline: str = "wang",
    subject: str = "meshslice",
) -> Tuple[float, float]:
    """(FC speedup, end-to-end speedup) of ``subject`` over ``baseline``."""
    by_alg: Dict[str, WeakScalingRow] = {
        r.algorithm: r for r in rows if r.model == model and r.chips == chips
    }
    subj, base = by_alg[subject], by_alg[baseline]
    if subj.fc_block_ms is None or base.fc_block_ms is None:
        raise ValueError("missing data for speedup computation")
    if subj.end_to_end_s is None or base.end_to_end_s is None:
        raise ValueError(
            f"missing end_to_end_s for {subject!r} vs {baseline!r} "
            f"({model} @ {chips} chips)"
        )
    fc = base.fc_block_ms / subj.fc_block_ms - 1.0
    e2e = base.end_to_end_s / subj.end_to_end_s - 1.0
    return fc, e2e


def render(rows: Sequence[WeakScalingRow]) -> str:
    """The Figure 9 table plus headline speedups, from rows alone."""
    table = render_table(
        ["model", "chips", "algorithm", "mesh", "FLOP util", "FC block (ms)"],
        [
            (r.model, r.chips, r.algorithm, r.mesh, r.utilization, r.fc_block_ms)
            for r in rows
        ],
    )
    lines = [table, ""]
    top = max((r.chips for r in rows), default=0)
    for model in (GPT3_175B, MEGATRON_NLG_530B):
        try:
            fc, e2e = speedup_over(rows, model.name, top)
        except (KeyError, ValueError):
            # Partial campaign store: the headline pair is not in yet.
            continue
        lines.append(
            f"{model.name} @ {top} chips: MeshSlice over Wang: "
            f"FC {fc * 100:+.1f}% (paper: +13.8% / +26.0%), "
            f"end-to-end {e2e * 100:+.1f}% (paper: +12.0% / +23.4%)"
        )
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4, sizes: Sequence[int] = CLUSTER_SIZES) -> str:
    """Render the Figure 9 table plus headline speedups."""
    return render(run(sizes=sizes, hw=hw))


def _campaign_points() -> List[tuple]:
    return [
        (model, chips, tuple(ALL_ALGORITHMS), TPUV4)
        for model in (GPT3_175B, MEGATRON_NLG_530B)
        for chips in CLUSTER_SIZES
    ]


CAMPAIGN = CampaignSpec(
    name="fig9",
    points=_campaign_points,
    point=_point_rows,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
