"""Figure 4: execution timelines of the five 2D GeMM algorithms.

The paper's Figure 4 is a schematic; this experiment renders the real
simulated timelines of Cannon, SUMMA, Collective, Wang, and MeshSlice
for one representative training GeMM, showing the same structure:
Cannon's skew prologue and higher traffic, SUMMA's long sync-laden
broadcasts, Collective's fully exposed collectives, Wang overlapping
one direction, and MeshSlice overlapping both.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.algorithms import GeMMConfig, get_algorithm
from repro.campaign.spec import CampaignSpec
from repro.core.dataflow import Dataflow
from repro.core.gemm import GeMMShape
from repro.experiments.common import tuned_slices
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.mesh.topology import Mesh2D
from repro.sim.cluster import SimResult, simulate
from repro.sim.trace import ascii_timeline

#: A mid-size training GeMM on a 16x16 mesh (all five algorithms can
#: run it, including square-only Cannon).
DEFAULT_SHAPE = GeMMShape(m=131072, n=49152, k=12288)
DEFAULT_MESH = Mesh2D(16, 16)

ALGORITHMS = ("cannon", "summa", "collective", "wang", "meshslice")


@dataclasses.dataclass
class TimelineRow:
    algorithm: str
    makespan_ms: float
    utilization: float
    result: SimResult


def run(
    shape: GeMMShape = DEFAULT_SHAPE,
    mesh: Mesh2D = DEFAULT_MESH,
    algorithms: Sequence[str] = ALGORITHMS,
    hw: HardwareParams = TPUV4,
) -> List[TimelineRow]:
    """Simulate the same GeMM with every algorithm on one mesh."""
    rows: List[TimelineRow] = []
    for name in algorithms:
        alg = get_algorithm(name)
        base = GeMMConfig(shape, mesh, Dataflow.OS, slices=1)
        slices = 1
        if name not in ("collective", "cannon"):
            slices = tuned_slices(base, hw)
        cfg = dataclasses.replace(base, slices=slices)
        if not alg.supports(cfg):
            continue
        result = simulate(alg.build_program(cfg, hw), hw)
        rows.append(
            TimelineRow(
                algorithm=name,
                makespan_ms=result.makespan * 1e3,
                utilization=result.flop_utilization(),
                result=result,
            )
        )
    return rows


def ordering(rows: Sequence) -> List[str]:
    """Algorithms fastest-first."""
    return [r.algorithm for r in sorted(rows, key=lambda r: r.makespan_ms)]


@dataclasses.dataclass(frozen=True)
class CampaignTimelineRow:
    """The storable form of one timeline: text, not a ``SimResult``."""

    algorithm: str
    makespan_ms: float
    utilization: float
    timeline: str


def _campaign_row(row: TimelineRow) -> CampaignTimelineRow:
    return CampaignTimelineRow(
        algorithm=row.algorithm,
        makespan_ms=row.makespan_ms,
        utilization=row.utilization,
        timeline=ascii_timeline(row.result.spans, width=76),
    )


def _campaign_point(algorithm: str) -> List[CampaignTimelineRow]:
    """One algorithm's timeline (empty if it cannot run the GeMM)."""
    return [_campaign_row(r) for r in run(algorithms=(algorithm,))]


def render(rows: Sequence[CampaignTimelineRow]) -> str:
    lines = []
    for row in rows:
        lines.append(
            f"--- {row.algorithm}: {row.makespan_ms:.2f} ms, "
            f"{row.utilization:.1%} FLOP util "
            f"(compute '#', comm '=', slicing '.')"
        )
        lines.append(row.timeline)
        lines.append("")
    lines.append(f"fastest to slowest: {' > '.join(ordering(rows))}")
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4) -> str:
    return render([_campaign_row(r) for r in run(hw=hw)])


def _campaign_points() -> List[str]:
    return list(ALGORITHMS)


CAMPAIGN = CampaignSpec(
    name="fig4",
    points=_campaign_points,
    point=_campaign_point,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
