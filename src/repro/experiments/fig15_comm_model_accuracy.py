"""Figure 15: accuracy of the communication cost model.

Compares, for each of the 8 FC layers (4 per model), the total
communication time of one MeshSlice forward-plus-backward pass as
*estimated* by the autotuner's linear cost model against the time
*measured* on the reproduction's hardware stand-in — the cluster
simulator running the same configuration on the 4x4 cloud preset,
where communication spans include HBM-contention stretching and
scheduling effects the closed-form model ignores. The paper reports
5.1% average error on real TPUs; the reproduction reports the same
statistic against its simulated measurement.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.algorithms import GeMMConfig
from repro.autotuner.costmodel import best_slice_count
from repro.autotuner.dataflow import plan_model
from repro.campaign.spec import CampaignSpec
from repro.comm.cost import CommCostModel
from repro.experiments.common import render_table
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4_CLOUD_4X4
from repro.mesh.topology import Mesh2D
from repro.models.config import LLMConfig
from repro.models.zoo import GPT3_175B, MEGATRON_NLG_530B


@dataclasses.dataclass(frozen=True)
class CommAccuracyRow:
    """Estimated vs measured communication time of one FC layer."""

    model: str
    layer: str
    estimated_ms: float
    measured_ms: float

    @property
    def error(self) -> float:
        if self.measured_ms == 0:
            return 0.0
        return abs(self.estimated_ms - self.measured_ms) / self.measured_ms


def _estimated_comm_seconds(
    cfg: GeMMConfig, hw: HardwareParams
) -> float:
    """Closed-form total communication time of one MeshSlice GeMM."""
    from repro.algorithms.base import flow_ops, matrix_bytes

    costs = CommCostModel(hw)
    total = 0.0
    for (op, mat), ring in zip(
        flow_ops(cfg.dataflow, cfg.transposed),
        (cfg.mesh.cols, cfg.mesh.rows),
    ):
        if ring <= 1:
            continue
        shard_bytes = matrix_bytes(cfg.shape, mat) / (cfg.mesh.size * cfg.slices)
        if op == "ag":
            per_iter = costs.allgather(ring, shard_bytes).total
        else:
            per_iter = costs.reducescatter(ring, shard_bytes).total
        total += cfg.slices * per_iter
    return total


def _skew(ring: int, op_index: int, amplitude: float) -> list:
    """Deterministic per-chip start-time skew.

    Real chips never reach a collective simultaneously: preceding
    kernels finish at slightly different times. A fixed pseudo-random
    pattern (hash of rank and operation index) models that imbalance
    without randomness, keeping the experiment reproducible.
    """
    return [
        amplitude * (((rank * 7919 + op_index * 104729) % 1000) / 999.0)
        for rank in range(ring)
    ]


def _measured_comm_seconds(cfg: GeMMConfig, hw: HardwareParams) -> float:
    """Communication time measured by the per-step ring simulator.

    Every partial AllGather/ReduceScatter of the MeshSlice loop is
    step-simulated with skewed per-chip start times (the high-fidelity
    network model standing in for the paper's hardware measurement);
    ring synchronization absorbs the skew into the measured time.
    """
    from repro.algorithms.base import flow_ops, matrix_bytes
    from repro.sim.ring import simulate_allgather, simulate_reducescatter

    total = 0.0
    op_index = 0
    for (op, mat), ring in zip(
        flow_ops(cfg.dataflow, cfg.transposed),
        (cfg.mesh.cols, cfg.mesh.rows),
    ):
        if ring <= 1:
            continue
        shard_bytes = matrix_bytes(cfg.shape, mat) / (cfg.mesh.size * cfg.slices)
        # Skew amplitude: a few percent of one partial collective's
        # critical path, i.e. the kernel-time imbalance across chips.
        step_time = shard_bytes / hw.ring_bandwidth + hw.t_sync
        amplitude = 0.05 * (ring - 1) * step_time
        for _ in range(cfg.slices):
            starts = _skew(ring, op_index, amplitude)
            if op == "ag":
                result = simulate_allgather(ring, shard_bytes, hw, starts)
            else:
                result = simulate_reducescatter(ring, shard_bytes, hw, starts)
            total += result.total_time - min(starts)
            op_index += 1
    return total


def _point_row(point) -> CommAccuracyRow:
    """One Figure 15 bar: a single FC layer's fwd+bwd comm accuracy.

    Module-level so the campaign runner can run it as one durable,
    picklable unit of work; ``plan_model`` is memoized so points
    sharing a process derive the plans once.
    """
    model, batch_size, layer_name, hw = point
    mesh = Mesh2D(4, 4)
    tokens = model.tokens(batch_size)
    plans = plan_model(model, tokens, optimize_dataflow=True)
    plan = next(p for p in plans if p.layer.name == layer_name)
    estimated = measured = 0.0
    for pass_plan in plan.passes:
        base = GeMMConfig(
            shape=pass_plan.shape,
            mesh=mesh,
            dataflow=pass_plan.dataflow,
            slices=1,
            transposed=pass_plan.transposed,
        )
        slices, _est = best_slice_count(base, hw)
        cfg = dataclasses.replace(base, slices=slices)
        estimated += _estimated_comm_seconds(cfg, hw)
        measured += _measured_comm_seconds(cfg, hw)
    return CommAccuracyRow(
        model=model.name,
        layer=plan.layer.name,
        estimated_ms=estimated * 1e3,
        measured_ms=measured * 1e3,
    )


def run(
    models: Sequence[LLMConfig] = (GPT3_175B, MEGATRON_NLG_530B),
    batch_size: int = 8,
    hw: HardwareParams = TPUV4_CLOUD_4X4,
) -> List[CommAccuracyRow]:
    """Produce the Figure 15 bars (one per FC layer, fwd+bwd total)."""
    rows: List[CommAccuracyRow] = []
    for model in models:
        tokens = model.tokens(batch_size)
        plans = plan_model(model, tokens, optimize_dataflow=True)
        for plan in plans:
            rows.append(
                _point_row((model, batch_size, plan.layer.name, hw))
            )
    return rows


def average_error(rows: Sequence[CommAccuracyRow]) -> float:
    if not rows:
        raise ValueError("no rows")
    return sum(r.error for r in rows) / len(rows)


def render(rows: Sequence[CommAccuracyRow]) -> str:
    table = render_table(
        ["model", "FC layer", "estimated (ms)", "measured (ms)", "error"],
        [
            (r.model, r.layer, r.estimated_ms, r.measured_ms,
             f"{r.error * 100:.1f}%")
            for r in rows
        ],
    )
    if not rows:
        return table
    return (
        table
        + f"\n\naverage error: {average_error(rows) * 100:.1f}% (paper: 5.1%)"
    )


def main(hw: HardwareParams = TPUV4_CLOUD_4X4) -> str:
    return render(run(hw=hw))


def _campaign_points() -> List[tuple]:
    points = []
    for model in (GPT3_175B, MEGATRON_NLG_530B):
        plans = plan_model(model, model.tokens(8), optimize_dataflow=True)
        for plan in plans:
            points.append((model, 8, plan.layer.name, TPUV4_CLOUD_4X4))
    return points


CAMPAIGN = CampaignSpec(
    name="fig15",
    points=_campaign_points,
    point=_point_row,
    render=render,
)


if __name__ == "__main__":
    print(main())
