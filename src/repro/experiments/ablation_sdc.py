"""Silent-data-corruption ablation: ABFT protection vs escape rate.

The paper's evaluation assumes arithmetically perfect chips; production
fleets do not (silent data corruption from marginal cores flips bits in
GeMM outputs and collective payloads without any error signal). This
ablation sweeps an SDC rate x mesh size grid and, per point, measures
both planes of the ABFT story:

* functional: seeded :class:`repro.faults.SDCPlan` bit flips are
  injected into the MeshSlice numpy execution with and without the
  checksum protection of :mod:`repro.abft`, and the fraction of trials
  producing a silently wrong result (an *escape*) is counted for each,
  together with the corrected/recomputed block statistics; and
* timed: the simulated makespan of the ABFT-protected program (checksum
  encodes, enlarged payloads, verify + expected-recompute epilogue) over
  the unprotected baseline — the overhead bought for the detection.

Flips sample the full 0..62 bit range, so the functional escape counts
quantify the detection floor honestly: flips in the lowest mantissa
bits can fall below float64 summation rounding and slip through any
sum-based checksum (magnitude ~1e-15; see docs/simulator.md). All
draws derive from the row seed, so the table reproduces bit for bit.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.abft import abft_gemm
from repro.algorithms import get_algorithm
from repro.campaign.spec import CampaignSpec
from repro.algorithms.base import GeMMConfig
from repro.core.gemm import GeMMShape
from repro.experiments.common import grid_map, render_table
from repro.faults import SDCPlan, sdc_injection
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.mesh.topology import Mesh2D
from repro.sim.engine import makespan
from repro.core.dataflow import Dataflow

#: SDC rate sweep: probability of one flip per protected operation.
RATES = (1e-3, 1e-2, 0.05)

#: Mesh size sweep (square meshes; the paper's small-pod shapes).
MESHES = ((2, 2), (4, 4))

#: Functional problem size per trial (kept small: every trial runs a
#: full sharded numpy GeMM plus its protected re-execution).
FUNC_DIM = 32

#: Timed problem size (the simulated programs are cheap to build).
TIMED_DIM = 4096

DEFAULT_TRIALS = 8
DEFAULT_SEED = 2025
DEFAULT_SLICES = 2


@dataclasses.dataclass(frozen=True)
class SDCRow:
    """One (rate, mesh) grid point of the protection sweep."""

    rate: float
    mesh: Tuple[int, int]
    trials: int
    flips: int
    unprotected_escapes: int
    protected_escapes: int
    corrected: int
    recomputed: int
    overhead_pct: float

    @property
    def unprotected_escape_rate(self) -> float:
        if self.trials <= 0:
            return 0.0
        return self.unprotected_escapes / self.trials

    @property
    def protected_escape_rate(self) -> float:
        if self.trials <= 0:
            return 0.0
        return self.protected_escapes / self.trials


def _timed_overhead_pct(
    algorithm: str,
    mesh: Mesh2D,
    rate: float,
    hw: HardwareParams,
    slices: int,
) -> float:
    """Protected-over-unprotected simulated makespan, in percent."""
    algo = get_algorithm(algorithm)
    shape = GeMMShape(m=TIMED_DIM, n=TIMED_DIM, k=TIMED_DIM)
    cfg = GeMMConfig(
        shape=shape, mesh=mesh, dataflow=Dataflow.OS, slices=slices
    )
    base = makespan(algo.build_program(cfg, hw).run())
    protected = makespan(
        algo.build_program(
            dataclasses.replace(cfg, abft=True, sdc_rate=rate), hw
        ).run()
    )
    if base <= 0:
        return 0.0
    return 100.0 * (protected / base - 1.0)


def _point(
    args: Tuple[str, float, Tuple[int, int], int, int, int, HardwareParams],
) -> Optional[SDCRow]:
    """One grid point, shaped for :func:`grid_map` (must be picklable)."""
    algorithm, rate, mesh_shape, trials, seed, slices, hw = args
    mesh = Mesh2D(*mesh_shape)
    if algorithm == "collective":
        slices = 1  # the collective algorithm has no granularity knob
    dim = FUNC_DIM * max(mesh.rows, mesh.cols)
    func_cfg = GeMMConfig(
        shape=GeMMShape(m=dim, n=dim, k=dim),
        mesh=mesh,
        dataflow=Dataflow.OS,
        slices=slices,
    )
    algo = get_algorithm(algorithm)
    flips = 0
    unprotected_escapes = 0
    protected_escapes = 0
    corrected = 0
    recomputed = 0
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        # Integer-valued float64 operands: the clean products are exact,
        # so any output mismatch is corruption, not rounding.
        a = rng.integers(-4, 5, size=(dim, dim)).astype(np.float64)
        b = rng.integers(-4, 5, size=(dim, dim)).astype(np.float64)
        truth = a @ b
        plan = SDCPlan(rate=rate, seed=seed * 100_003 + trial)
        # Exponent-bit flips can inject NaN/inf; the resulting matmul
        # warnings are the injection working, not a numerical bug.
        with np.errstate(invalid="ignore", over="ignore"):
            with sdc_injection(plan) as injector:
                bare = algo.functional(a, b, func_cfg)
            flips += injector.flips
            if injector.flips and not np.array_equal(bare, truth):
                unprotected_escapes += 1
            guarded, report = abft_gemm(
                a, b, mesh, algorithm=algorithm, slices=slices, plan=plan
            )
        corrected += report.corrected
        recomputed += report.recomputed
        if not np.array_equal(guarded, truth):
            protected_escapes += 1
    return SDCRow(
        rate=rate,
        mesh=mesh.shape,
        trials=trials,
        flips=flips,
        unprotected_escapes=unprotected_escapes,
        protected_escapes=protected_escapes,
        corrected=corrected,
        recomputed=recomputed,
        overhead_pct=_timed_overhead_pct(algorithm, mesh, rate, hw, slices),
    )


def run(
    rates: Sequence[float] = RATES,
    meshes: Sequence[Tuple[int, int]] = MESHES,
    trials: int = DEFAULT_TRIALS,
    seed: int = DEFAULT_SEED,
    slices: int = DEFAULT_SLICES,
    algorithm: str = "meshslice",
    hw: HardwareParams = TPUV4,
    jobs: Optional[int] = None,
) -> List[SDCRow]:
    """Sweep SDC rate x mesh size with and without ABFT protection."""
    points = [
        (algorithm, rate, mesh, trials, seed, slices, hw)
        for rate in rates
        for mesh in meshes
    ]
    rows = grid_map(_point, points, jobs=jobs)
    return [row for row in rows if row is not None]


def render(rows: Sequence[SDCRow]) -> str:
    table = render_table(
        ["rate", "mesh", "flips", "escapes (bare)", "escapes (abft)",
         "corrected", "recomputed", "abft overhead"],
        [(f"{r.rate:g}", f"{r.mesh[0]}x{r.mesh[1]}", r.flips,
          f"{r.unprotected_escapes}/{r.trials}",
          f"{r.protected_escapes}/{r.trials}",
          r.corrected, r.recomputed, f"{r.overhead_pct:.1f}%")
         for r in rows],
    )
    total_flips = sum(r.flips for r in rows)
    bare = sum(r.unprotected_escapes for r in rows)
    guarded = sum(r.protected_escapes for r in rows)
    lines = [table, ""]
    lines.append(
        f"injected {total_flips} bit flips: {bare} bare escapes vs "
        f"{guarded} with ABFT protection"
    )
    lines.append(
        "(checksums catch every flip above the float64 summation "
        "rounding floor; residual escapes are low-mantissa flips with "
        "error magnitude ~1e-15 — see docs/simulator.md)"
    )
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4) -> str:
    return render(run(hw=hw))


def _campaign_point(args) -> List[SDCRow]:
    """One durable campaign point; unsupported points store as []."""
    row = _point(args)
    return [] if row is None else [row]


def _campaign_points() -> List[tuple]:
    return [
        ("meshslice", rate, mesh, DEFAULT_TRIALS, DEFAULT_SEED,
         DEFAULT_SLICES, TPUV4)
        for rate in RATES
        for mesh in MESHES
    ]


CAMPAIGN = CampaignSpec(
    name="ablation-sdc",
    points=_campaign_points,
    point=_campaign_point,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
