"""Fault-sensitivity ablation: stragglers vs the 2D TP algorithms.

The paper's evaluation assumes a perfectly uniform cluster; production
pods do not cooperate (stragglers, degraded links, transient outages).
This ablation injects seeded compute stragglers of growing severity and
count into a tuned transformer block and compares how gracefully each
algorithm family degrades: MeshSlice's sliced overlapping vs SUMMA's
broadcast loop vs the non-overlapped collective 2D TP vs 1D TP.

Each algorithm keeps the mesh shape and slice counts it tuned for the
*clean* cluster — the deployment situation where faults strike a
configuration chosen without knowing about them — and the makespan
inflation over its own clean baseline is reported together with the
shift of the communication share (total launch+transfer+sync over the
block, via :mod:`repro.sim.trace`), showing where the lost time goes.
All draws derive from the row's :class:`repro.faults.FaultSpec` seed,
so the table is reproducible bit for bit.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignSpec
from repro.experiments.common import (
    best_block_run,
    grid_map,
    render_table,
    weak_scaling_batch,
)
from repro.faults import FaultSpec
from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.models import GPT3_175B
from repro.models.config import LLMConfig
from repro.perf.pipeline import faulted_pass
from repro.sim.trace import ZERO_BREAKDOWN

#: Algorithm families compared (Section 5's main contenders).
ALGORITHMS = ("meshslice", "summa", "collective", "1dtp")

#: Straggler severity sweep: per-chip compute slowdown upper bounds.
SEVERITIES = (1.25, 1.5, 2.0)

#: Straggler count sweep (chips drawn per fault plan).
COUNTS = (1, 4)

DEFAULT_CHIPS = 16
DEFAULT_ENSEMBLE = 3
DEFAULT_SEED = 2025


@dataclasses.dataclass(frozen=True)
class FaultRow:
    """One (algorithm, severity, straggler-count) grid point."""

    algorithm: str
    severity: float
    stragglers: int
    mesh: Tuple[int, int]
    clean_ms: float
    faulted_ms: float
    comm_share_clean: float
    comm_share_faulted: float

    @property
    def inflation(self) -> float:
        """Ensemble-mean faulted over clean block time (>= 1)."""
        if self.clean_ms <= 0:
            return 1.0
        return self.faulted_ms / self.clean_ms


def _comm_share(results: Sequence) -> float:
    """Block-level communication share: comm time over block time."""
    breakdown = ZERO_BREAKDOWN
    seconds = 0.0
    for result in results:
        breakdown = breakdown + result.comm
        seconds += result.makespan
    if seconds <= 0:
        return 0.0
    return breakdown.total / seconds


def _point(
    args: Tuple[str, float, int, LLMConfig, int, int, HardwareParams, int, int],
) -> Optional[FaultRow]:
    """One grid point, shaped for :func:`grid_map` (must be picklable)."""
    (algorithm, severity, stragglers, model, batch, chips, hw,
     ensemble, seed) = args
    clean = best_block_run(algorithm, model, batch, chips, hw)
    if clean is None:
        return None
    spec = FaultSpec(
        stragglers=stragglers,
        straggler_slowdown=severity,
        seed=seed,
    )
    faulted_seconds = 0.0
    faulted_share = 0.0
    plans = spec.ensemble(chips, hw, ensemble)
    for plan in plans:
        results = [
            faulted_pass(algorithm, cfg, hw, plan) for cfg in clean.configs
        ]
        faulted_seconds += sum(r.makespan for r in results)
        faulted_share += _comm_share(results)
    return FaultRow(
        algorithm=algorithm,
        severity=severity,
        stragglers=stragglers,
        mesh=clean.mesh.shape,
        clean_ms=clean.seconds * 1e3,
        faulted_ms=faulted_seconds / len(plans) * 1e3,
        comm_share_clean=_comm_share(clean.results),
        comm_share_faulted=faulted_share / len(plans),
    )


def run(
    model: LLMConfig = GPT3_175B,
    chips: int = DEFAULT_CHIPS,
    hw: HardwareParams = TPUV4,
    algorithms: Sequence[str] = ALGORITHMS,
    severities: Sequence[float] = SEVERITIES,
    counts: Sequence[int] = COUNTS,
    ensemble: int = DEFAULT_ENSEMBLE,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> List[FaultRow]:
    """Sweep straggler severity x count for every algorithm family.

    Each row averages the faulted block time over a seeded ensemble of
    ``ensemble`` fault plans; every grid point reuses the same base
    ``seed``, so the same stragglers hit every algorithm.
    """
    batch = weak_scaling_batch(chips)
    points = [
        (algorithm, severity, stragglers, model, batch, chips, hw,
         ensemble, seed)
        for algorithm in algorithms
        for severity in severities
        for stragglers in counts
    ]
    rows = grid_map(_point, points, jobs=jobs)
    return [row for row in rows if row is not None]


def render(rows: Sequence[FaultRow]) -> str:
    table = render_table(
        ["algorithm", "mesh", "slowdown", "stragglers", "clean (ms)",
         "faulted (ms)", "inflation", "comm share", "comm share (faulted)"],
        [(r.algorithm, f"{r.mesh[0]}x{r.mesh[1]}", r.severity, r.stragglers,
          r.clean_ms, r.faulted_ms, f"{r.inflation:.3f}x",
          f"{r.comm_share_clean * 100:.1f}%",
          f"{r.comm_share_faulted * 100:.1f}%")
         for r in rows],
    )
    lines = [table, ""]
    worst = {}
    for row in rows:
        worst[row.algorithm] = max(
            worst.get(row.algorithm, 1.0), row.inflation
        )
    ranked = sorted(worst.items(), key=lambda kv: kv[1])
    summary = ", ".join(f"{name} {infl:.2f}x" for name, infl in ranked)
    lines.append(f"worst-case inflation by algorithm: {summary}")
    lines.append(
        "(a straggler slows every lockstep GeMM, so the most "
        "compute-efficient algorithm has the least comm slack to hide it "
        "in and inflates most — efficiency buys fault sensitivity; the "
        "falling comm share shows the lost time is compute, not network)"
    )
    return "\n".join(lines)


def main(hw: HardwareParams = TPUV4) -> str:
    return render(run(hw=hw))


def _campaign_point(args) -> List[FaultRow]:
    """One durable campaign point; unsupported points store as []."""
    row = _point(args)
    return [] if row is None else [row]


def _campaign_points() -> List[tuple]:
    batch = weak_scaling_batch(DEFAULT_CHIPS)
    return [
        (algorithm, severity, stragglers, GPT3_175B, batch, DEFAULT_CHIPS,
         TPUV4, DEFAULT_ENSEMBLE, DEFAULT_SEED)
        for algorithm in ALGORITHMS
        for severity in SEVERITIES
        for stragglers in COUNTS
    ]


CAMPAIGN = CampaignSpec(
    name="ablation-faults",
    points=_campaign_points,
    point=_campaign_point,
    render=render,
    flatten=True,
)


if __name__ == "__main__":
    print(main())
