"""Representative-chip fault plans: seeded perturbations of programs.

A :class:`FaultPlan` describes how one simulated execution deviates
from the uniform cluster the paper evaluates: a compute slowdown
(stragglers), per-link-direction bandwidth degradation, host
launch-latency jitter, and transient link outages that cost a retry.
The plan is applied at the program/engine boundary — it rewrites
activity *durations* (and rescales shared-resource demand rates so the
total demanded units are conserved) and hands the engine an ordinary
activity DAG. The event-heap engine itself is untouched, and a
zero-perturbation plan returns the input program object unchanged, so
its spans are bit-identical to an unfaulted run by construction.

Determinism: all randomness comes from ``random.Random(plan.seed)``,
consumed in activity order, so the same plan applied to the same
program always produces the same perturbed DAG — across processes and
platforms (the Mersenne Twister stream is specified).

The representative-chip reduction
---------------------------------

The simulator models *one* chip of an SPMD cluster (see
``docs/simulator.md``). Cluster-level nonuniformity reduces onto that
chip as follows, mirroring how ring synchronization propagates delays:

* a straggling chip slows every lockstep compute phase of the whole
  cluster, so the representative chip's compute/slicing activities run
  at the *worst* straggler's rate;
* a ring collective progresses at the rate of the slowest link in its
  ring, so each link direction carries the *worst* degradation factor
  among its sampled faulty links;
* launch jitter and outages hit individual operations, sampled
  per-activity from the plan's seed.

:class:`repro.faults.spec.FaultSpec` performs that reduction from a
cluster-level description.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.faults.hard import HardFault
from repro.obs.registry import registry as _metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim -> faults)
    from repro.recovery.retry import RetryPolicy
    from repro.sim.engine import Activity
    from repro.sim.program import Program

#: Kinds of activities a compute slowdown applies to: GeMM kernels and
#: blocked slicing copies both run on the straggler's core.
_COMPUTE_KINDS = ("compute", "slice")

#: Ring-link resources an exhausted retry sequence can take down
#: (mirrors ``repro.faults.hard._LINKS``).
_LINK_RESOURCES = ("link_h", "link_v")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A deterministic perturbation of one representative-chip program.

    Attributes:
        compute_slowdown: Duration multiplier (>= 1) for compute and
            slicing activities — the worst straggler's slowdown.
        link_degradation: Sorted ``(link resource, factor)`` pairs; a
            factor ``f >= 1`` multiplies the transfer component of every
            communication activity holding that link (bandwidth reduced
            to ``1/f`` of nominal).
        launch_jitter: Maximum extra host launch latency (seconds).
            Each communication activity with a non-zero launch
            component draws a uniform ``[0, launch_jitter)`` addition.
        outage_rate: Per-activity probability (in ``[0, 1]``) that a
            transferring communication activity hits a transient link
            outage.
        outage_penalty: Dead time (seconds) of one outage — the
            detection timeout plus reconnection cost — charged on top
            of a full retransmission of the activity's (degraded)
            transfer time. Ignored when ``retry_policy`` is set.
        retry_policy: Optional :class:`repro.recovery.retry.RetryPolicy`.
            When set, each outage runs the explicit capped-retry /
            exponential-backoff state machine instead of the flat
            ``outage_penalty`` charge; an exhausted retry budget marks
            the activity so the engine declares the link permanently
            down (a structured ``SimFailure``).
        hard_faults: Permanent resource deaths
            (:class:`repro.faults.hard.HardFault`); the earliest one
            that fires halts the simulation. These do not rewrite
            durations — :meth:`apply` ignores them — they are consumed
            by ``Program.execute`` / ``Engine.run_with_failures``.
        seed: Seed of the per-activity jitter/outage draws.
    """

    compute_slowdown: float = 1.0
    link_degradation: Tuple[Tuple[str, float], ...] = ()
    launch_jitter: float = 0.0
    outage_rate: float = 0.0
    outage_penalty: float = 0.0
    retry_policy: Optional["RetryPolicy"] = None
    hard_faults: Tuple[HardFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.compute_slowdown < 1.0:
            raise ValueError("compute_slowdown must be >= 1 (faults add time)")
        for link, factor in self.link_degradation:
            if not isinstance(link, str):
                raise ValueError(f"link name must be a string, got {link!r}")
            if factor < 1.0:
                raise ValueError(
                    f"link degradation factor for {link!r} must be >= 1"
                )
        if self.launch_jitter < 0.0:
            raise ValueError("launch_jitter must be non-negative")
        if not 0.0 <= self.outage_rate <= 1.0:
            raise ValueError("outage_rate must be in [0, 1]")
        if self.outage_penalty < 0.0:
            raise ValueError("outage_penalty must be non-negative")

    @property
    def _rewrites_nothing(self) -> bool:
        """Whether :meth:`apply` is guaranteed to change no durations."""
        return (
            self.compute_slowdown == 1.0
            and all(factor == 1.0 for _link, factor in self.link_degradation)
            and self.launch_jitter == 0.0
            and self.outage_rate == 0.0
        )

    @property
    def is_null(self) -> bool:
        """Whether simulating under this plan changes nothing at all."""
        return self._rewrites_nothing and not self.hard_faults

    # ------------------------------------------------------------ application

    def apply(self, program: "Program") -> "Program":
        """Return ``program`` with this plan's perturbations applied.

        A null plan returns the *same* ``Program`` object, so the
        unfaulted fast path stays bit-identical. Otherwise a new
        program is built; the input is never mutated (activities that
        the plan does not touch are shared between the two).
        """
        if self._rewrites_nothing:
            return program
        _metrics().inc("faults.plans_applied")
        rng = random.Random(self.seed)
        factors = dict(self.link_degradation)
        activities = [
            self._perturb(act, rng, factors) for act in program.activities
        ]
        faulted = dataclasses.replace(program, activities=activities)
        faulted.meta = dict(program.meta)
        faulted.meta["fault_plan"] = self
        return faulted

    def _perturb(
        self,
        act: "Activity",
        rng: random.Random,
        factors: Dict[str, float],
    ) -> "Activity":
        """One activity under this plan (the original if untouched).

        Shared-resource demand rates are rescaled by
        ``old_duration / new_duration`` so the *total units* demanded
        (bytes of HBM/NIC traffic) are conserved: a slower operation
        moves the same data over a longer window.
        """
        if act.kind in _COMPUTE_KINDS:
            if self.compute_slowdown == 1.0 or act.duration <= 0.0:
                return act
            return self._stretched(act, act.duration * self.compute_slowdown)
        if act.kind != "comm":
            return act

        meta = act.meta
        launch = float(meta.get("launch", 0.0))
        transfer = float(meta.get("transfer", 0.0))
        degradation = 1.0
        for resource in act.exclusive:
            factor = factors.get(resource)
            if factor is not None and factor > degradation:
                degradation = factor
        slowed_transfer = transfer * degradation
        extra = slowed_transfer - transfer
        jitter = 0.0
        if self.launch_jitter > 0.0 and launch > 0.0:
            jitter = rng.random() * self.launch_jitter
        retry = 0.0
        retransmit = 0.0
        attempts = 0
        failed_link = None
        if self.outage_rate > 0.0 and transfer > 0.0:
            if rng.random() < self.outage_rate:
                if self.retry_policy is not None:
                    episode = self.retry_policy.episode(
                        rng, slowed_transfer, self.outage_rate
                    )
                    retry = episode.dead_seconds
                    retransmit = episode.retransmit_seconds
                    attempts = episode.attempts
                    if episode.exhausted:
                        failed_link = self._victim_link(act)
                else:
                    retry = self.outage_penalty
                    retransmit = slowed_transfer
                    attempts = 1
                reg = _metrics()
                reg.inc("faults.outages")
                reg.inc("faults.retry_attempts", float(attempts))
                if failed_link is not None:
                    reg.inc(
                        "faults.retries_exhausted",
                        labels={"resource": failed_link},
                    )
        delta = extra + jitter + retry + retransmit
        if delta == 0.0 and failed_link is None:
            return act
        stretched = self._stretched(act, act.duration + delta)
        if retransmit > 0.0 and stretched.shared and act.duration > 0.0:
            # Retransmissions move the same bytes again: unlike a
            # degraded link (same units, longer window), each resend
            # adds its full HBM/NIC traffic. Charging it (plus the
            # retry timeout window at the nominal rate — the transport
            # keeps the path busy while it probes) keeps the demand
            # rate from dipping below nominal, so an outage can never
            # *relieve* contention for concurrent work.
            scale = (act.duration + retry + retransmit) / act.duration
            stretched.shared = {
                r: demand * scale for r, demand in stretched.shared.items()
            }
        new_meta = dict(meta)
        if jitter:
            new_meta["launch"] = launch + jitter
        if extra or retransmit:
            new_meta["transfer"] = slowed_transfer + retransmit
        if attempts:
            # The outage's dead time is a synchronization stall: the
            # chip waits out the timeout/backoff before retransmitting.
            new_meta["sync"] = float(meta.get("sync", 0.0)) + retry
            new_meta["retries"] = int(meta.get("retries", 0)) + attempts
        if failed_link is not None:
            # The retry budget ran out: the engine (failure-aware mode)
            # declares this link permanently dead the instant the last
            # retransmission completes.
            new_meta["failed_resource"] = failed_link
        stretched.meta = new_meta
        return stretched

    @staticmethod
    def _victim_link(act: "Activity") -> str:
        """The link resource an exhausted retry sequence takes down."""
        for resource in act.exclusive:
            if resource in _LINK_RESOURCES:
                return resource
        return _LINK_RESOURCES[0]

    @staticmethod
    def _stretched(act: "Activity", new_duration: float) -> "Activity":
        """Copy of ``act`` at ``new_duration`` with demand units conserved."""
        shared = act.shared
        if shared and new_duration > 0.0 and act.duration > 0.0:
            scale = act.duration / new_duration
            shared = {r: demand * scale for r, demand in shared.items()}
        return dataclasses.replace(act, duration=new_duration, shared=shared)


#: The identity plan: applying it returns the input program unchanged.
NULL_PLAN = FaultPlan()
