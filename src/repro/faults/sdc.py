"""Silent-data-corruption injection: seeded bit flips in the functional plane.

Every other fault in :mod:`repro.faults` is a *timing* fault — durations
stretch, chips die — but the answer stays right. An :class:`SDCPlan`
models the fault class that retry and checkpointing machinery cannot
catch: a bit silently flips in a shard payload (HBM, a ring link, an MXU
partial sum) and the computation completes normally with a wrong result.

Injection happens at hooks inside the functional collectives
(:mod:`repro.comm.ops`) and the local partial-GeMM helper
(:func:`repro.core.gemm.local_gemm`): entering an :func:`sdc_injection`
context arms the hooks with a plan; each hooked operation then flips a
mantissa/exponent bit of one element per affected chip with the plan's
probability. Detection and correction of the resulting corruption is the
job of :mod:`repro.abft`.

The null-plan contract mirrors :class:`repro.faults.plan.FaultPlan`: a
null plan (rate 0, no ops, or a zero flip budget) arms nothing — the
hooks stay on their zero-cost path, consume no randomness, and return
the very same array objects, so results are bit-identical to a run with
no context at all.

Determinism mirrors :class:`repro.faults.spec.FaultSpec`: all randomness
comes from ``random.Random(plan.seed)``, consumed in hook-invocation
order with shards visited in sorted coordinate order, so the same plan
over the same workload injects the same flips — across processes, hash
seeds, and platforms. :meth:`SDCPlan.ensemble` derives a family of plans
from consecutive seeds, the same convention as ``FaultSpec.ensemble``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import random
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.obs.registry import registry as _metrics

#: Hooked operations an :class:`SDCPlan` may corrupt: the output shards
#: of the functional ring collectives (all-gathered operand copies,
#: reduce-scattered partials, SUMMA's panel broadcasts/reduces), the
#: one-sided get/put/accumulate payloads of :mod:`repro.comm.onesided`,
#: and the local partial-GeMM accumulate.
SDC_OPS = (
    "ag_col",
    "ag_row",
    "rds_col",
    "rds_row",
    "bcast_col",
    "bcast_row",
    "reduce_col",
    "reduce_row",
    "onesided_get",
    "onesided_put",
    "onesided_acc",
    "gemm",
)

#: Highest flippable bit of a float64 lane: mantissa bits are 0-51,
#: exponent bits 52-62. The sign bit (63) is excluded — the plan models
#: datapath upsets, and sign flips of near-zero values are the one case
#: whose magnitude can be arbitrarily small.
MAX_BIT = 62


@dataclasses.dataclass(frozen=True)
class SDCEvent:
    """One injected bit flip (recorded for reporting and tests).

    Attributes:
        op: The hooked operation the flip occurred in (see ``SDC_OPS``).
        coord: Chip coordinate of the corrupted shard (``None`` for a
            local GeMM block, whose hook does not know its chip).
        index: Element index inside the corrupted array.
        bit: Flipped bit position (0-62, see :data:`MAX_BIT`).
        before: Element value before the flip.
        after: Element value after the flip.
    """

    op: str
    coord: Optional[Tuple[int, int]]
    index: Tuple[int, ...]
    bit: int
    before: float
    after: float


@dataclasses.dataclass(frozen=True)
class SDCPlan:
    """A seeded silent-data-corruption plan for the functional plane.

    Attributes:
        rate: Per-(operation, chip) probability of injecting one bit
            flip into the operation's output shard, in ``[0, 1]``.
        ops: Hooked operations the plan may corrupt (a subset of
            :data:`SDC_OPS`).
        bit: Force every flip to this bit position (0-62); ``None``
            draws the position uniformly per flip.
        max_flips: Optional cap on the total flips one injection
            context may produce (``0`` makes the plan null).
        seed: Root seed of all draws.
    """

    rate: float = 0.0
    ops: Tuple[str, ...] = SDC_OPS
    bit: Optional[int] = None
    max_flips: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        unknown = [op for op in self.ops if op not in SDC_OPS]
        if unknown:
            raise ValueError(
                f"unknown SDC ops {unknown}; known: {', '.join(SDC_OPS)}"
            )
        if self.bit is not None and not 0 <= self.bit <= MAX_BIT:
            raise ValueError(f"bit must be in [0, {MAX_BIT}] (sign bit excluded)")
        if self.max_flips is not None and self.max_flips < 0:
            raise ValueError("max_flips must be non-negative")

    @property
    def is_null(self) -> bool:
        """Whether arming this plan is guaranteed to change nothing."""
        return self.rate == 0.0 or not self.ops or self.max_flips == 0

    def ensemble(self, count: int) -> Tuple["SDCPlan", ...]:
        """``count`` plans with consecutive seeds (reproducible).

        The same derivation convention as
        :meth:`repro.faults.spec.FaultSpec.ensemble`: member ``i`` is
        this plan reseeded to ``seed + i``.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        return tuple(
            dataclasses.replace(self, seed=self.seed + i) for i in range(count)
        )


#: The identity plan: entering its injection context arms nothing.
NULL_SDC_PLAN = SDCPlan()


class SDCInjector:
    """Mutable injection state of one :func:`sdc_injection` context."""

    def __init__(self, plan: SDCPlan):
        self.plan = plan
        self.events: List[SDCEvent] = []
        self._rng = random.Random(plan.seed)

    @property
    def flips(self) -> int:
        """Number of bit flips injected so far."""
        return len(self.events)

    def _exhausted(self) -> bool:
        cap = self.plan.max_flips
        return cap is not None and len(self.events) >= cap

    def _flip(
        self, op: str, coord: Optional[Tuple[int, int]], arr: np.ndarray
    ) -> np.ndarray:
        """Flip one seeded bit of one seeded element; returns a copy."""
        if arr.dtype != np.float64:
            raise ValueError(
                f"SDC injection flips float64 payloads, got {arr.dtype}"
            )
        rng = self._rng
        flat = rng.randrange(arr.size)
        bit = self.plan.bit
        if bit is None:
            bit = rng.randrange(MAX_BIT + 1)
        out = arr.copy()
        lanes = out.view(np.int64).reshape(-1)
        before = float(out.reshape(-1)[flat])
        lanes[flat] ^= np.int64(1) << np.int64(bit)
        after = float(out.reshape(-1)[flat])
        self.events.append(
            SDCEvent(
                op=op,
                coord=coord,
                index=tuple(int(i) for i in np.unravel_index(flat, arr.shape)),
                bit=bit,
                before=before,
                after=after,
            )
        )
        _metrics().inc("sdc.flips", labels={"op": op})
        return out

    def corrupt_shards(
        self, op: str, shards: Dict[Tuple[int, int], np.ndarray]
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Maybe corrupt a collective's output shards at hook ``op``.

        Shards are visited in sorted coordinate order (hash-seed
        determinism); untouched shard dicts are returned unchanged (the
        same object), and corrupted entries are copies — the inputs are
        never mutated, mirroring ``FaultPlan.apply``.
        """
        if op not in self.plan.ops:
            return shards
        out: Optional[Dict[Tuple[int, int], np.ndarray]] = None
        for coord in sorted(shards):
            if self._exhausted():
                break
            if self._rng.random() >= self.plan.rate:
                continue
            if out is None:
                out = dict(shards)
            out[coord] = self._flip(op, coord, shards[coord])
        return shards if out is None else out

    def corrupt_block(self, op: str, array: np.ndarray) -> np.ndarray:
        """Maybe corrupt one local result block at hook ``op``."""
        if op not in self.plan.ops or self._exhausted():
            return array
        if self._rng.random() >= self.plan.rate:
            return array
        return self._flip(op, None, array)


#: The armed injector, or ``None`` when no non-null context is active.
_ACTIVE: Optional[SDCInjector] = None


@contextlib.contextmanager
def sdc_injection(plan: Optional[SDCPlan]) -> Iterator[SDCInjector]:
    """Arm the functional-plane corruption hooks with ``plan``.

    Yields the context's :class:`SDCInjector` (its ``events`` record
    every flip). A ``None`` or null plan arms nothing: the hooks stay on
    their zero-cost identity path and the enclosed computation is
    bit-identical to one outside any context — the same null contract
    as ``FaultPlan.apply`` returning the input program object.

    Contexts do not nest: the per-plan random stream would lose its
    meaning if two plans raced for the same hooks.
    """
    global _ACTIVE
    injector = SDCInjector(plan if plan is not None else NULL_SDC_PLAN)
    if injector.plan.is_null:
        yield injector
        return
    if _ACTIVE is not None:
        raise RuntimeError("sdc_injection contexts do not nest")
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None


def corrupt_shards(
    op: str, shards: Dict[Tuple[int, int], np.ndarray]
) -> Dict[Tuple[int, int], np.ndarray]:
    """Hook for :mod:`repro.comm.ops`: corrupt collective output shards."""
    injector = _ACTIVE
    if injector is None:
        return shards
    return injector.corrupt_shards(op, shards)


def corrupt_block(op: str, array: np.ndarray) -> np.ndarray:
    """Hook for :func:`repro.core.gemm.local_gemm`: corrupt one block."""
    injector = _ACTIVE
    if injector is None:
        return array
    return injector.corrupt_block(op, array)
