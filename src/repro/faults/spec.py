"""Cluster-level fault specifications and their seeded sampling.

A :class:`FaultSpec` describes nonuniformity the way an operator would:
"k straggler chips up to 1.5x slower, three degraded links, 20 us of
launch jitter". :meth:`FaultSpec.sample` draws one concrete cluster
from that description — which chips straggle and by how much, which
link directions are degraded — and reduces it to the representative-
chip :class:`~repro.faults.plan.FaultPlan` the simulator consumes (see
that module's docstring for the reduction rules).

Sampling is fully determined by ``spec.seed``: the same spec always
yields the same plan, and :meth:`FaultSpec.ensemble` derives a
reproducible family of plans from consecutive seeds — the ensemble the
robust autotuner optimizes its p95 makespan over.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING, Optional, Tuple

from repro.faults.hard import HardFault
from repro.faults.plan import FaultPlan
from repro.hw.params import HardwareParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (recovery -> faults)
    from repro.recovery.retry import RetryPolicy

#: Fallback outage dead time (seconds) when no hardware parameters are
#: supplied. Derived from the ``HardwareParams.link_retry_timeout``
#: default so the two can never silently diverge.
DEFAULT_RETRY_TIMEOUT = HardwareParams.__dataclass_fields__[
    "link_retry_timeout"
].default

#: The two ring-link directions of the 2D mesh (mirrors
#: ``repro.sim.engine.LINK_H`` / ``LINK_V`` without importing the
#: package-initialization chain of ``repro.sim``).
_LINK_DIRECTIONS = ("link_h", "link_v")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """A cluster-level description of faults and variability.

    Attributes:
        stragglers: Number of straggling chips in the cluster. Each
            straggler draws a compute slowdown uniformly from
            ``[1, straggler_slowdown)``; ring synchronization makes the
            worst draw the effective cluster slowdown.
        straggler_slowdown: Severity bound of one straggler (>= 1).
        degraded_links: Number of degraded ICI link directions across
            the cluster (each chip contributes one horizontal and one
            vertical ring-link slot).
        link_slowdown: Transfer-time multiplier bound of one degraded
            link (>= 1); the worst sampled factor per direction is what
            the representative chip sees.
        launch_jitter: Maximum extra launch latency per communication
            operation (seconds).
        outage_rate: Per-operation probability of a transient link
            outage (retry modelled as timeout + retransmission).
        outage_penalty: Outage dead time in seconds; ``None`` uses the
            hardware's ``link_retry_timeout`` (or
            :data:`DEFAULT_RETRY_TIMEOUT` when no hardware is given).
            Ignored when ``retry_policy`` is set.
        retry_policy: Optional capped-retry/backoff state machine
            (:class:`repro.recovery.retry.RetryPolicy`) carried through
            to every sampled plan in place of the flat outage penalty.
        hard_faults: Permanent resource deaths carried through to every
            sampled plan (see :mod:`repro.faults.hard`).
        seed: Root seed of all sampling.
    """

    stragglers: int = 0
    straggler_slowdown: float = 1.5
    degraded_links: int = 0
    link_slowdown: float = 2.0
    launch_jitter: float = 0.0
    outage_rate: float = 0.0
    outage_penalty: Optional[float] = None
    retry_policy: Optional["RetryPolicy"] = None
    hard_faults: Tuple[HardFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.stragglers < 0:
            raise ValueError("stragglers must be non-negative")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        if self.degraded_links < 0:
            raise ValueError("degraded_links must be non-negative")
        if self.link_slowdown < 1.0:
            raise ValueError("link_slowdown must be >= 1")
        if self.launch_jitter < 0.0:
            raise ValueError("launch_jitter must be non-negative")
        if not 0.0 <= self.outage_rate <= 1.0:
            raise ValueError("outage_rate must be in [0, 1]")
        if self.outage_penalty is not None and self.outage_penalty < 0.0:
            raise ValueError("outage_penalty must be non-negative")

    def sample(
        self, chips: int, hw: Optional[HardwareParams] = None
    ) -> FaultPlan:
        """Draw one cluster realization, reduced to a representative-chip plan."""
        if chips < 1:
            raise ValueError("chips must be >= 1")
        rng = random.Random(self.seed)
        slowdown = 1.0
        if self.stragglers and self.straggler_slowdown > 1.0:
            span = self.straggler_slowdown - 1.0
            for _ in range(min(self.stragglers, chips)):
                draw = 1.0 + span * rng.random()
                if draw > slowdown:
                    slowdown = draw
        degradation: Tuple[Tuple[str, float], ...] = ()
        if self.degraded_links and self.link_slowdown > 1.0:
            # One horizontal and one vertical ring-link slot per chip;
            # even slots are horizontal, odd vertical.
            slots = 2 * chips
            span = self.link_slowdown - 1.0
            worst = {}
            for slot in rng.sample(range(slots), min(self.degraded_links, slots)):
                direction = _LINK_DIRECTIONS[slot % 2]
                factor = 1.0 + span * rng.random()
                if factor > worst.get(direction, 1.0):
                    worst[direction] = factor
            degradation = tuple(sorted(worst.items()))
        penalty = self.outage_penalty
        if penalty is None:
            penalty = (
                hw.link_retry_timeout if hw is not None else DEFAULT_RETRY_TIMEOUT
            )
        return FaultPlan(
            compute_slowdown=slowdown,
            link_degradation=degradation,
            launch_jitter=self.launch_jitter,
            outage_rate=self.outage_rate,
            outage_penalty=penalty,
            retry_policy=self.retry_policy,
            hard_faults=self.hard_faults,
            seed=rng.getrandbits(32),
        )

    def ensemble(
        self,
        chips: int,
        hw: Optional[HardwareParams] = None,
        count: int = 16,
    ) -> Tuple[FaultPlan, ...]:
        """``count`` plans sampled from consecutive seeds (reproducible)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return tuple(
            dataclasses.replace(self, seed=self.seed + i).sample(chips, hw)
            for i in range(count)
        )

    @property
    def is_null(self) -> bool:
        """Whether every sampled plan is guaranteed to be a no-op."""
        return (
            (self.stragglers == 0 or self.straggler_slowdown == 1.0)
            and (self.degraded_links == 0 or self.link_slowdown == 1.0)
            and self.launch_jitter == 0.0
            and self.outage_rate == 0.0
            and not self.hard_faults
        )
