"""Deterministic fault & variability injection over the simulator.

The paper's evaluation assumes perfectly uniform chips and links. This
package perturbs the simulated cluster — compute stragglers, degraded
links, launch jitter, transient link outages — as a seeded, fully
reproducible rewrite of activity durations at the program/engine
boundary:

* :class:`FaultSpec` — the cluster-level description (how many
  stragglers, how severe, ...), sampled deterministically from a seed;
* :class:`FaultPlan` — the reduced representative-chip perturbation
  the simulator consumes; ``plan.apply(program)`` (or
  ``program.run(faults=plan)`` / ``simulate(program, hw, faults=plan)``)
  executes a program under it.

A zero-perturbation plan is the identity: it returns the input program
object unchanged, so unfaulted results stay bit-identical to the plain
engine. ``experiments/ablation_faults.py`` sweeps straggler severity
over the paper's algorithms, and ``repro.autotuner.robust_tune``
optimizes the p95 makespan over a seeded ensemble of plans.

Hard failures — a chip or link permanently dying mid-run — are first
class too: :func:`chip_down` / :func:`link_down` build
:class:`HardFault` events that a plan carries in ``hard_faults``; the
engine halts at the fault time and surfaces a structured
``SimFailure``. Responses to them (retry/backoff, degraded-mesh
reconfiguration, checkpoint-restart goodput) live in
:mod:`repro.recovery`.

Silent data corruption — a wrong *answer* rather than a wrong
*duration* — is modeled by :class:`SDCPlan` in :mod:`repro.faults.sdc`:
seeded bit flips injected into the functional plane's shard payloads,
detected and corrected by the ABFT checksums of :mod:`repro.abft`.

All three plan families share one seeding convention: every random
draw comes from ``random.Random(seed)`` consumed in a deterministic
order (activities in program order for ``FaultPlan``, sorted chip
coordinates for ``FaultSpec.sample`` and ``SDCPlan``), and
``ensemble(...)`` derives member ``i`` by reseeding to ``seed + i`` —
so sampling is byte-reproducible across processes, hash seeds, and
platforms.
"""

from repro.faults.hard import HardFault, chip_down, earliest, link_down
from repro.faults.plan import NULL_PLAN, FaultPlan
from repro.faults.sdc import NULL_SDC_PLAN, SDC_OPS, SDCEvent, SDCPlan, sdc_injection
from repro.faults.spec import DEFAULT_RETRY_TIMEOUT, FaultSpec

__all__ = [
    "DEFAULT_RETRY_TIMEOUT",
    "FaultPlan",
    "FaultSpec",
    "HardFault",
    "NULL_PLAN",
    "NULL_SDC_PLAN",
    "SDCEvent",
    "SDCPlan",
    "SDC_OPS",
    "chip_down",
    "earliest",
    "link_down",
    "sdc_injection",
]
