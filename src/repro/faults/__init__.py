"""Deterministic fault & variability injection over the simulator.

The paper's evaluation assumes perfectly uniform chips and links. This
package perturbs the simulated cluster — compute stragglers, degraded
links, launch jitter, transient link outages — as a seeded, fully
reproducible rewrite of activity durations at the program/engine
boundary:

* :class:`FaultSpec` — the cluster-level description (how many
  stragglers, how severe, ...), sampled deterministically from a seed;
* :class:`FaultPlan` — the reduced representative-chip perturbation
  the simulator consumes; ``plan.apply(program)`` (or
  ``program.run(faults=plan)`` / ``simulate(program, hw, faults=plan)``)
  executes a program under it.

A zero-perturbation plan is the identity: it returns the input program
object unchanged, so unfaulted results stay bit-identical to the plain
engine. ``experiments/ablation_faults.py`` sweeps straggler severity
over the paper's algorithms, and ``repro.autotuner.robust_tune``
optimizes the p95 makespan over a seeded ensemble of plans.
"""

from repro.faults.plan import NULL_PLAN, FaultPlan
from repro.faults.spec import DEFAULT_RETRY_TIMEOUT, FaultSpec

__all__ = [
    "DEFAULT_RETRY_TIMEOUT",
    "FaultPlan",
    "FaultSpec",
    "NULL_PLAN",
]
