"""First-class hard-failure events: a chip or a link dies mid-run.

Transient faults (:mod:`repro.faults.plan`) stretch activity durations
and the run still finishes. A *hard* fault is different in kind: at a
known simulated time a resource is simply gone, and the lockstep SPMD
step it interrupts can never complete — every chip executes the same
schedule, and every ring synchronizes through every chip and link, so
one dead chip (or one dead ring link) stalls the whole cluster within
one collective. The engine therefore halts the simulation at the fault
time and surfaces a structured :class:`repro.sim.engine.SimFailure`
(failure time, victim resource, in-flight activities) instead of an
exception or a silently-wrong finish.

This module defines the event vocabulary. It deliberately avoids
importing :mod:`repro.sim` (mirroring :mod:`repro.faults.spec`): the
resource names are the engine's canonical strings, duplicated as
literals so building a fault plan never pulls the simulator package in.

Usage::

    from repro.faults import FaultPlan, chip_down, link_down

    plan = FaultPlan(hard_faults=(chip_down(2e-3),))
    result = simulate(program, hw, faults=plan)
    if result.failure is not None:
        ...  # result.failure.time, .resource, .in_flight

Recovery policies for these events live in :mod:`repro.recovery`.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

#: Mirrors ``repro.sim.engine.CORE`` / ``LINK_H`` / ``LINK_V`` without
#: importing the package-initialization chain of ``repro.sim``.
_CORE = "core"
_LINKS = ("link_h", "link_v")

#: Failure categories (reporting only; the engine keys off ``resource``).
CHIP_FAILURE = "chip"
LINK_FAILURE = "link"


@dataclasses.dataclass(frozen=True)
class HardFault:
    """One permanent resource death at a known simulated time.

    Attributes:
        time: Simulated seconds into the run at which the resource
            dies. A fault later than the program's makespan never
            fires.
        resource: The engine resource that dies — ``"core"`` for a
            chip, ``"link_h"``/``"link_v"`` for a ring-link direction.
        kind: ``"chip"`` or ``"link"`` (reporting category).
    """

    time: float
    resource: str
    kind: str

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ValueError("hard fault time must be non-negative")
        if not isinstance(self.resource, str) or not self.resource:
            raise ValueError(f"victim resource must be a name, got {self.resource!r}")
        if self.kind not in (CHIP_FAILURE, LINK_FAILURE):
            raise ValueError(
                f"fault kind must be {CHIP_FAILURE!r} or {LINK_FAILURE!r}, "
                f"got {self.kind!r}"
            )


def chip_down(time: float) -> HardFault:
    """A chip of the cluster dies at ``time``.

    Under the representative-chip reduction one dead chip halts every
    lockstep compute phase, so the victim resource is the compute core.
    """
    return HardFault(time=time, resource=_CORE, kind=CHIP_FAILURE)


def link_down(time: float, link: str = _LINKS[0]) -> HardFault:
    """An ICI ring-link direction dies at ``time``.

    Args:
        time: Failure time in simulated seconds.
        link: ``"link_h"`` (inter-column) or ``"link_v"`` (inter-row).
    """
    if link not in _LINKS:
        raise ValueError(f"link must be one of {_LINKS}, got {link!r}")
    return HardFault(time=time, resource=link, kind=LINK_FAILURE)


def earliest(faults: Tuple[HardFault, ...]) -> "HardFault":
    """The first fault to fire (ties resolve to the earliest listed)."""
    if not faults:
        raise ValueError("no hard faults given")
    best = faults[0]
    for fault in faults[1:]:
        if fault.time < best.time:
            best = fault
    return best
