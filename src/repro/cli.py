"""Command-line interface: ``meshslice <command>``.

Experiment reproduction::

    meshslice list                    # enumerate experiments
    meshslice run fig9                # run one (any name from `list`)
    meshslice run all                 # run everything
    meshslice run fig9 --jobs 8       # spread grid points over 8 processes

Deployment planning and introspection::

    meshslice tune gpt3-175b --chips 256 --batch 128 [--hw tpuv4-sim]
    meshslice faults gpt3-175b --chips 256 --stragglers 2
    meshslice recovery gpt3-175b --chips 256 --chip-mtbf-hours 2000
    meshslice elastic gpt3-175b --mesh 4x4 --policy replace --spares 2
    meshslice sdc --rate 1e-2 --mesh 4x4 --trials 8
    meshslice profile gpt3-175b --chips 16 --batch 8
    meshslice serve --store plans/ --replay queries.jsonl
    meshslice campaign run fig13 --store sweeps/   # durable resumable sweep
    meshslice campaign status --store sweeps/
    meshslice models                  # model zoo
    meshslice presets                 # hardware presets

``--metrics out.jsonl`` on ``run``/``tune``/``faults``/``recovery``/
``profile`` dumps everything the observability layer collected during
the command (see ``docs/observability.md`` for the schema).

Bare experiment names keep working as aliases of ``run`` —
``meshslice fig9 --jobs 8`` and ``meshslice all`` behave exactly as
they did before the subcommand interface existed.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import EXPERIMENTS

#: The real subcommands; anything else in command position is treated
#: as an experiment name and routed through ``run`` (legacy alias).
COMMANDS = (
    "run", "list", "tune", "faults", "recovery", "elastic", "sdc",
    "profile", "serve", "campaign", "models", "presets",
)


def _add_cluster_arguments(parser: argparse.ArgumentParser) -> None:
    """Model/cluster selection shared by ``tune`` and ``faults``."""
    parser.add_argument(
        "model", nargs="?", default=None,
        help="model name (see 'models')",
    )
    parser.add_argument(
        "--chips", type=int, default=256, help="cluster size",
    )
    parser.add_argument(
        "--batch", type=int, default=None,
        help="global batch (default: chips / 2)",
    )
    parser.add_argument(
        "--hw", default="tpuv4-sim",
        help="hardware preset name (see 'presets')",
    )


def _add_metrics_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help=(
            "write collected metrics to a JSONL file after the command "
            "(schema: docs/observability.md)"
        ),
    )


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    from repro.sim.compiled import ENGINE_NAMES

    parser.add_argument(
        "--engine", choices=ENGINE_NAMES, default=None,
        help=(
            "simulation engine (default: REPRO_ENGINE env var, then "
            "'heap'); 'compiled' exploits repeated program structure "
            "and produces bit-identical results"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="meshslice",
        description="MeshSlice (ISCA 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", metavar="command")

    run = sub.add_parser(
        "run",
        help="run experiments by name ('all' for every one)",
        description="Run one or more experiment reproductions.",
    )
    run.add_argument(
        "experiments", nargs="+", metavar="experiment",
        help="experiment names from 'list', or 'all'",
    )
    run.add_argument(
        "--jobs", type=int, default=None,
        help=(
            "worker processes for experiment grids "
            "(default: REPRO_JOBS env var, then the CPU count)"
        ),
    )
    _add_metrics_argument(run)
    _add_engine_argument(run)

    sub.add_parser("list", help="enumerate the available experiments")

    tune = sub.add_parser(
        "tune",
        help="autotune mesh shape and slice counts for a model",
        description="Run the two-phase autotuner (Section 3.2).",
    )
    _add_cluster_arguments(tune)
    _add_metrics_argument(tune)
    _add_engine_argument(tune)

    faults = sub.add_parser(
        "faults",
        help="fault-aware robust tuning over a straggler/link ensemble",
        description=(
            "Choose the mesh shape minimizing a tail quantile of the "
            "simulated block time over a seeded ensemble of fault plans "
            "(stragglers, degraded links, jitter, outages)."
        ),
    )
    _add_cluster_arguments(faults)
    faults.add_argument(
        "--algorithm", default="meshslice",
        help="distributed GeMM algorithm to simulate (default: meshslice)",
    )
    faults.add_argument(
        "--stragglers", type=int, default=1,
        help="straggling chips per fault plan (default: 1)",
    )
    faults.add_argument(
        "--straggler-slowdown", type=float, default=1.5,
        help="worst-case straggler compute slowdown factor (default: 1.5)",
    )
    faults.add_argument(
        "--degraded-links", type=int, default=0,
        help="degraded mesh links per fault plan (default: 0)",
    )
    faults.add_argument(
        "--link-slowdown", type=float, default=2.0,
        help="worst-case link bandwidth degradation factor (default: 2.0)",
    )
    faults.add_argument(
        "--jitter", type=float, default=0.0,
        help="max extra collective launch latency, seconds (default: 0)",
    )
    faults.add_argument(
        "--outage-rate", type=float, default=0.0,
        help="per-transfer transient outage probability (default: 0)",
    )
    faults.add_argument(
        "--ensemble", type=int, default=16,
        help="number of sampled fault plans (default: 16)",
    )
    faults.add_argument(
        "--quantile", type=float, default=0.95,
        help="tail quantile to minimize (default: 0.95)",
    )
    faults.add_argument(
        "--seed", type=int, default=0,
        help="base seed of the fault ensemble (default: 0)",
    )
    _add_metrics_argument(faults)

    recovery = sub.add_parser(
        "recovery",
        help="goodput of recovery policies (restart vs degraded mesh)",
        description=(
            "Compare end-to-end goodput of checkpoint-restart against "
            "degraded-mesh continuation: tune the model, re-tune it on "
            "the torus surviving one dead chip, and combine both step "
            "times with the Young/Daly checkpoint model."
        ),
    )
    _add_cluster_arguments(recovery)
    recovery.add_argument(
        "--chip-mtbf-hours", type=float, default=2000.0,
        help="per-chip mean time between failures, hours (default: 2000)",
    )
    recovery.add_argument(
        "--repair-minutes", type=float, default=60.0,
        help="chip repair/replacement time, minutes (default: 60)",
    )
    recovery.add_argument(
        "--checkpoint-seconds", type=float, default=60.0,
        help="checkpoint write cost, seconds (default: 60)",
    )
    recovery.add_argument(
        "--restart-seconds", type=float, default=180.0,
        help="restart (reload + reschedule) cost, seconds (default: 180)",
    )
    recovery.add_argument(
        "--policy", choices=("restart", "degrade", "both"), default="both",
        help="recovery policy to evaluate (default: both)",
    )
    _add_metrics_argument(recovery)

    elastic = sub.add_parser(
        "elastic",
        help="seeded multi-failure lifetime simulation of elastic policies",
        description=(
            "Simulate a multi-day training run under chip failures: "
            "tune the model on the full torus, then replay a seeded "
            "failure/repair history under restart, degrade, "
            "replace-from-spares, or reshape policies — charging "
            "checkpoint rollback and the simulated reshard-migration "
            "program for every reconfiguration — and compare the "
            "simulated goodput against the closed-form policy math."
        ),
    )
    elastic.add_argument(
        "model", nargs="?", default=None,
        help="model name (see 'models')",
    )
    elastic.add_argument(
        "--mesh", default="4x4", metavar="RxC",
        help="full torus shape, e.g. 4x4 (default: 4x4)",
    )
    elastic.add_argument(
        "--batch", type=int, default=None,
        help="global batch (default: chips / 2)",
    )
    elastic.add_argument(
        "--hw", default="tpuv4-sim",
        help="hardware preset name (see 'presets')",
    )
    elastic.add_argument(
        "--policy",
        choices=("restart", "degrade", "replace", "reshape", "all"),
        default="all",
        help="elastic policy to simulate (default: all)",
    )
    elastic.add_argument(
        "--spares", type=int, default=0,
        help="spare chips in the replacement pool (default: 0)",
    )
    elastic.add_argument(
        "--duration-days", type=float, default=30.0,
        help="simulated horizon in days (default: 30)",
    )
    elastic.add_argument(
        "--seed", type=int, default=0,
        help="seed of the failure-arrival process (default: 0)",
    )
    elastic.add_argument(
        "--chip-mtbf-hours", type=float, default=2000.0,
        help="per-chip mean time between failures, hours (default: 2000)",
    )
    elastic.add_argument(
        "--repair-minutes", type=float, default=60.0,
        help="chip repair/replacement time, minutes (default: 60)",
    )
    elastic.add_argument(
        "--checkpoint-seconds", type=float, default=60.0,
        help="checkpoint write cost, seconds (default: 60)",
    )
    elastic.add_argument(
        "--restart-seconds", type=float, default=180.0,
        help="restart (reload + reschedule) cost, seconds (default: 180)",
    )
    elastic.add_argument(
        "--plane", choices=("onesided", "collective"), default="onesided",
        help="comm plane of the reshard migrations (default: onesided)",
    )
    elastic.add_argument(
        "--events", metavar="PATH", default=None,
        help=(
            "write the structured JSONL event log (requires a single "
            "--policy, not 'all')"
        ),
    )
    _add_metrics_argument(elastic)
    _add_engine_argument(elastic)

    sdc = sub.add_parser(
        "sdc",
        help="silent-data-corruption sweep: ABFT protection vs escapes",
        description=(
            "Inject seeded bit flips into the functional 2D GeMM with "
            "and without ABFT checksums, and report escape counts, "
            "correction statistics, and the simulated protection "
            "overhead per (rate, mesh) grid point."
        ),
    )
    sdc.add_argument(
        "--rate", type=float, action="append", default=None,
        metavar="R",
        help="SDC rate(s) to sweep; repeatable (default: 1e-3 1e-2 0.05)",
    )
    sdc.add_argument(
        "--mesh", action="append", default=None, metavar="RxC",
        help="mesh shape(s) to sweep, e.g. 4x4; repeatable "
             "(default: 2x2 4x4)",
    )
    sdc.add_argument(
        "--algorithm", default="meshslice",
        choices=("meshslice", "summa", "collective"),
        help="distributed GeMM algorithm to protect (default: meshslice)",
    )
    sdc.add_argument(
        "--trials", type=int, default=8,
        help="functional trials per grid point (default: 8)",
    )
    sdc.add_argument(
        "--seed", type=int, default=0,
        help="base seed of the injection ensemble (default: 0)",
    )
    sdc.add_argument(
        "--hw", default="tpuv4-sim",
        help="hardware preset name (see 'presets')",
    )
    sdc.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sweep grid",
    )
    _add_metrics_argument(sdc)

    profile = sub.add_parser(
        "profile",
        help="profile one deployment point: where does the time go?",
        description=(
            "Simulate one transformer block at the algorithm's optimal "
            "mesh shape and report per-resource utilization, the "
            "compute/communication overlap fraction, the communication "
            "breakdown, queue waits, and memoization hit rates."
        ),
    )
    _add_cluster_arguments(profile)
    profile.add_argument(
        "--algorithm", default="meshslice",
        help="distributed GeMM algorithm to profile (default: meshslice)",
    )
    _add_metrics_argument(profile)
    _add_engine_argument(profile)

    serve = sub.add_parser(
        "serve",
        help="serve tuning requests from a persistent plan store",
        description=(
            "Run the tuning service: JSONL TuneRequest queries (one "
            "object per line; see docs/service.md) are answered through "
            "the in-memory cache, the on-disk plan store, and finally a "
            "warm-started search. Queries come from stdin by default, "
            "or from a file with --replay (one-shot mode)."
        ),
    )
    serve.add_argument(
        "--store", metavar="DIR", default=None,
        help="plan-store directory (created if missing; default: "
             "in-memory only, nothing persists)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="thread-pool width for distinct concurrent requests "
             "(default: 4)",
    )
    serve.add_argument(
        "--replay", metavar="FILE", default=None,
        help="one-shot mode: replay a JSONL query file and exit",
    )
    serve.add_argument(
        "--repeat", type=int, default=1,
        help="replay the query mix this many times (default: 1)",
    )
    serve.add_argument(
        "--no-warm-start", action="store_true",
        help="disable neighbor-seeded search (results are identical; "
             "only pruning changes)",
    )
    serve.add_argument(
        "--store-max-records", type=int, default=None, metavar="N",
        help="bound the plan store to N records, evicting the "
             "least-recently-used (default: unbounded)",
    )
    serve.add_argument(
        "--store-max-bytes", type=int, default=None, metavar="B",
        help="bound the plan store to B bytes of records, evicting the "
             "least-recently-used (default: unbounded)",
    )
    _add_metrics_argument(serve)
    _add_engine_argument(serve)

    campaign = sub.add_parser(
        "campaign",
        help="durable, resumable experiment sweeps (crash-tolerant)",
        description=(
            "Run an experiment's grid as a campaign: every grid point "
            "appends a durable record to an append-only JSONL store, so "
            "a killed sweep resumes where it stopped, transient "
            "failures retry with backoff, and permanent failures are "
            "recorded instead of aborting the grid (docs/campaign.md)."
        ),
    )
    campaign_sub = campaign.add_subparsers(
        dest="campaign_command", metavar="action"
    )
    for action, blurb in (
        ("run", "run a campaign (skips points already in the store)"),
        ("resume", "continue an interrupted campaign (store must exist)"),
    ):
        action_parser = campaign_sub.add_parser(
            action, help=blurb, description=blurb,
        )
        action_parser.add_argument(
            "experiment", help="experiment name from 'list'",
        )
        action_parser.add_argument(
            "--store", metavar="DIR", required=True,
            help="campaign-store directory (created if missing)",
        )
        action_parser.add_argument(
            "--jobs", type=int, default=None,
            help="worker processes for the grid "
                 "(default: REPRO_JOBS env var, then the CPU count)",
        )
        action_parser.add_argument(
            "--retries", type=int, default=2,
            help="retry attempts per failing point (default: 2)",
        )
        action_parser.add_argument(
            "--backoff", type=float, default=0.05,
            help="base retry backoff, seconds; doubles per attempt "
                 "(default: 0.05)",
        )
        action_parser.add_argument(
            "--retry-failed", action="store_true",
            help="re-run points whose stored record is 'failed' "
                 "(appends superseding records)",
        )
        _add_metrics_argument(action_parser)
        _add_engine_argument(action_parser)
    status_parser = campaign_sub.add_parser(
        "status",
        help="summarize stored campaigns (ok/failed counts, versions)",
    )
    status_parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment name (default: every campaign in the store)",
    )
    status_parser.add_argument(
        "--store", metavar="DIR", required=True,
        help="campaign-store directory",
    )
    report_parser = campaign_sub.add_parser(
        "report",
        help="render the experiment's table from its stored records",
    )
    report_parser.add_argument(
        "experiment", help="experiment name from 'list'",
    )
    report_parser.add_argument(
        "--store", metavar="DIR", required=True,
        help="campaign-store directory",
    )

    sub.add_parser("models", help="list the model zoo")
    sub.add_parser("presets", help="list the hardware presets")
    return parser


def normalize_argv(argv: List[str]) -> List[str]:
    """Rewrite legacy invocations into the subcommand form.

    ``meshslice fig9 --jobs 8`` and ``meshslice all`` predate the
    subcommand interface; when the first positional token is not a
    known subcommand it is an experiment name, so ``run`` is inserted
    in front of it.
    """
    if argv and not argv[0].startswith("-") and argv[0] not in COMMANDS:
        return ["run", *argv]
    return list(argv)


def run_experiment(name: str) -> str:
    """Run one experiment module's main() and return its report."""
    try:
        module = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    return module.main()


def _cmd_list() -> int:
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:22s} {doc}")
    return 0


def _cmd_models() -> int:
    from repro.experiments.common import render_table
    from repro.models import get_model, model_names

    rows = []
    for name in model_names():
        model = get_model(name)
        rows.append(
            (
                name,
                model.num_layers,
                model.hidden,
                model.ffn_dim,
                f"{model.approx_params / 1e9:.0f}B (FC)",
            )
        )
    print(render_table(["model", "layers", "hidden", "ffn", "params"], rows))
    return 0


def _cmd_presets() -> int:
    from repro.experiments.common import render_table
    from repro.hw import get_preset, preset_names

    rows = []
    for name in preset_names():
        hw = get_preset(name)
        rows.append(
            (
                name,
                f"{hw.peak_flops / 1e12:.0f} TF",
                f"{hw.link_bandwidth / 1e9:.0f} GB/s x{hw.links_per_direction}",
                hw.network,
                "yes" if hw.overlap_collectives else "no",
            )
        )
    print(
        render_table(
            ["preset", "peak", "link bw", "network", "AG/RdS overlap"], rows
        )
    )
    return 0


def _resolve_cluster(args: argparse.Namespace):
    """Shared model/hw/batch resolution of ``tune`` and ``faults``.

    Returns ``(model, hw, batch)`` or an exit code on bad input.
    """
    if args.model is None:
        print(
            f"usage: meshslice {args.command} <model> "
            "[--chips N] [--batch B] [--hw P]",
            file=sys.stderr,
        )
        return 2
    from repro.hw import get_preset
    from repro.models import get_model

    try:
        model = get_model(args.model)
        hw = get_preset(args.hw)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    batch = args.batch if args.batch is not None else max(1, args.chips // 2)
    return model, hw, batch


def _cmd_tune(args: argparse.Namespace) -> int:
    bad = _check_flags(
        "tune",
        [
            ("--chips", args.chips, args.chips >= 1, "must be >= 1"),
            ("--batch", args.batch,
             args.batch is None or args.batch >= 1, "must be >= 1"),
        ],
    )
    if bad:
        return bad
    resolved = _resolve_cluster(args)
    if isinstance(resolved, int):
        return resolved
    model, hw, batch = resolved
    from repro.experiments.common import render_table
    from repro.service import TuneRequest

    result = TuneRequest(
        model=model, batch=batch, chips=args.chips, hw=hw
    ).run()
    print(
        f"{model.name}: {args.chips} chips ({hw.name}), batch {batch}\n"
        f"chosen mesh: {result.mesh}; estimated FC block "
        f"{result.block_seconds * 1e3:.2f} ms\n"
    )
    print(
        render_table(
            ["layer", "pass", "dataflow", "S"],
            [
                (t.layer_name, t.plan.pass_name, t.plan.dataflow.name, t.slices)
                for t in result.passes
            ],
        )
    )
    return 0


def _bad_flag(command: str, flag: str, value: object, requirement: str) -> int:
    """One-line exit-2 diagnostic naming the offending flag."""
    print(
        f"meshslice {command}: invalid {flag} {value} ({requirement})",
        file=sys.stderr,
    )
    return 2


def _check_flags(command: str, checks) -> int:
    """Validate ``(flag, value, ok, requirement)`` tuples; 0 if all pass."""
    for flag, value, ok, requirement in checks:
        if not ok:
            return _bad_flag(command, flag, value, requirement)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    bad = _check_flags(
        "faults",
        [
            ("--stragglers", args.stragglers,
             args.stragglers >= 0, "must be non-negative"),
            ("--straggler-slowdown", args.straggler_slowdown,
             args.straggler_slowdown >= 1.0, "must be >= 1"),
            ("--degraded-links", args.degraded_links,
             args.degraded_links >= 0, "must be non-negative"),
            ("--link-slowdown", args.link_slowdown,
             args.link_slowdown >= 1.0, "must be >= 1"),
            ("--jitter", args.jitter,
             args.jitter >= 0.0, "must be non-negative"),
            ("--outage-rate", args.outage_rate,
             0.0 <= args.outage_rate <= 1.0, "must be in [0, 1]"),
            ("--ensemble", args.ensemble,
             args.ensemble >= 1, "must be >= 1"),
            ("--quantile", args.quantile,
             0.0 < args.quantile <= 1.0, "must be in (0, 1]"),
        ],
    )
    if bad:
        return bad
    resolved = _resolve_cluster(args)
    if isinstance(resolved, int):
        return resolved
    model, hw, batch = resolved
    from repro.experiments.common import render_table
    from repro.faults import FaultSpec
    from repro.service import TuneRequest

    try:
        spec = FaultSpec(
            stragglers=args.stragglers,
            straggler_slowdown=args.straggler_slowdown,
            degraded_links=args.degraded_links,
            link_slowdown=args.link_slowdown,
            launch_jitter=args.jitter,
            outage_rate=args.outage_rate,
            seed=args.seed,
        )
        result = TuneRequest(
            model=model, batch=batch, chips=args.chips, hw=hw,
            mode="robust", spec=spec,
            ensemble=args.ensemble,
            quantile=args.quantile,
            algorithm=args.algorithm,
        ).run()
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    pct = f"p{args.quantile * 100:g}"
    print(
        f"{model.name}: {args.chips} chips ({hw.name}), batch {batch}, "
        f"{args.algorithm}\n"
        f"fault spec: {args.stragglers} straggler(s) up to "
        f"{args.straggler_slowdown:g}x, {args.degraded_links} degraded "
        f"link(s) up to {args.link_slowdown:g}x, jitter {args.jitter:g}s, "
        f"outage rate {args.outage_rate:g} (seed {args.seed}, "
        f"{args.ensemble} plans)\n"
        f"robust mesh: {result.mesh}; {pct} FC block "
        f"{result.robust_seconds * 1e3:.2f} ms "
        f"(mean {result.mean_seconds * 1e3:.2f} ms, clean "
        f"{result.nominal_seconds * 1e3:.2f} ms, "
        f"inflation {result.inflation:.3f}x)\n"
    )
    print(
        render_table(
            ["mesh", f"{pct} block (ms)"],
            [
                (f"{rows}x{cols}", seconds * 1e3)
                for (rows, cols), seconds in sorted(
                    result.per_mesh_robust.items()
                )
            ],
        )
    )
    return 0


def _cmd_recovery(args: argparse.Namespace) -> int:
    bad = _check_flags(
        "recovery",
        [
            ("--chip-mtbf-hours", args.chip_mtbf_hours,
             args.chip_mtbf_hours > 0.0, "must be positive"),
            ("--repair-minutes", args.repair_minutes,
             args.repair_minutes >= 0.0, "must be non-negative"),
            ("--checkpoint-seconds", args.checkpoint_seconds,
             args.checkpoint_seconds > 0.0, "must be positive"),
            ("--restart-seconds", args.restart_seconds,
             args.restart_seconds >= 0.0, "must be non-negative"),
            ("--chips", args.chips, args.chips >= 4,
             "need at least a 2x2 mesh to survive a dead chip"),
        ],
    )
    if bad:
        return bad
    resolved = _resolve_cluster(args)
    if isinstance(resolved, int):
        return resolved
    model, hw, batch = resolved
    from repro.experiments.ablation_recovery import _point
    from repro.experiments.common import GridPointError, render_table

    try:
        row = _point(
            (args.chips, model, hw, args.chip_mtbf_hours,
             args.repair_minutes, args.checkpoint_seconds,
             args.restart_seconds)
        )
    except (GridPointError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if row is None:
        print(
            f"meshslice recovery: no tunable mesh for {args.chips} chips",
            file=sys.stderr,
        )
        return 2
    print(
        f"{model.name}: {args.chips} chips ({hw.name}), batch {batch}\n"
        f"cluster MTBF {row.cluster_mtbf_hours:.1f} h "
        f"(chip MTBF {args.chip_mtbf_hours:g} h), repair "
        f"{args.repair_minutes:g} min, checkpoint "
        f"{args.checkpoint_seconds:g} s + restart {args.restart_seconds:g} s\n"
        f"full mesh {row.mesh[0]}x{row.mesh[1]}: step {row.step_ms:.1f} ms; "
        f"degraded {row.degraded_mesh[0]}x{row.degraded_mesh[1]} "
        f"(dropped {row.dropped}): step {row.degraded_step_ms:.1f} ms "
        f"({row.degraded_slowdown:.2f}x)\n"
        f"Young/Daly checkpoint interval: {row.checkpoint_interval_s:.0f} s\n"
    )
    estimates = []
    if args.policy in ("restart", "both"):
        estimates.append(("restart", row.restart_goodput))
    if args.policy in ("degrade", "both"):
        estimates.append(("degrade", row.degrade_goodput))
    print(
        render_table(
            ["policy", "goodput", "effective step (ms)"],
            [
                (name, f"{goodput * 100:.2f}%", row.step_ms / goodput)
                for name, goodput in estimates
            ],
        )
    )
    if len(estimates) == 2:
        gap = (row.degrade_goodput - row.restart_goodput) * 100
        print(f"\nbest policy: {row.best_policy} ({gap:+.2f} points)")
    return 0


def _cmd_elastic(args: argparse.Namespace) -> int:
    bad = _check_flags(
        "elastic",
        [
            ("--spares", args.spares, args.spares >= 0,
             "must be non-negative"),
            ("--duration-days", args.duration_days,
             args.duration_days > 0.0, "must be positive"),
            ("--seed", args.seed, args.seed >= 0, "must be non-negative"),
            ("--chip-mtbf-hours", args.chip_mtbf_hours,
             args.chip_mtbf_hours > 0.0, "must be positive"),
            ("--repair-minutes", args.repair_minutes,
             args.repair_minutes >= 0.0, "must be non-negative"),
            ("--checkpoint-seconds", args.checkpoint_seconds,
             args.checkpoint_seconds > 0.0, "must be positive"),
            ("--restart-seconds", args.restart_seconds,
             args.restart_seconds >= 0.0, "must be non-negative"),
            ("--events", args.events,
             args.events is None or args.policy != "all",
             "needs a single --policy, not 'all'"),
        ],
    )
    if bad:
        return bad
    if args.model is None:
        print(
            "usage: meshslice elastic <model> [--mesh RxC] [--batch B] "
            "[--hw P] [--policy NAME]",
            file=sys.stderr,
        )
        return 2
    from repro.hw import get_preset
    from repro.models import get_model

    try:
        model = get_model(args.model)
        hw = get_preset(args.hw)
        (shape,) = _parse_mesh_shapes([args.mesh])
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    from repro.experiments.common import render_table
    from repro.mesh import Mesh2D
    from repro.recovery import (
        POLICIES,
        ClusterReliability,
        LifetimeSpec,
        TunedElasticPlanner,
        simulate_lifetime,
    )

    mesh = Mesh2D(*shape)
    batch = args.batch if args.batch is not None else max(1, mesh.size // 2)
    if mesh.size < 4:
        return _bad_flag(
            "elastic", "--mesh", args.mesh,
            "need at least a 2x2 mesh to survive a dead chip",
        )
    planner = TunedElasticPlanner(
        model, batch, hw, mesh, plane=args.plane, engine=args.engine
    )
    try:
        full_mesh, step = planner.full()
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    reliability = ClusterReliability(
        chip_mtbf=args.chip_mtbf_hours * 3600.0,
        chips=full_mesh.size,
        repair_seconds=args.repair_minutes * 60.0,
    )
    policies = POLICIES if args.policy == "all" else (args.policy,)
    print(
        f"{model.name}: {full_mesh.rows}x{full_mesh.cols} ({hw.name}), "
        f"batch {batch}, block {step * 1e3:.1f} ms\n"
        f"cluster MTBF {reliability.mtbf / 3600.0:.1f} h "
        f"(chip MTBF {args.chip_mtbf_hours:g} h), repair "
        f"{args.repair_minutes:g} min, checkpoint "
        f"{args.checkpoint_seconds:g} s + restart {args.restart_seconds:g} s\n"
        f"{args.duration_days:g} simulated days, seed {args.seed}, "
        f"{args.plane} migrations\n"
    )
    rows = []
    results = {}
    for policy in policies:
        result = simulate_lifetime(
            planner,
            reliability,
            LifetimeSpec(
                policy=policy,
                duration_days=args.duration_days,
                spares=args.spares,
                seed=args.seed,
            ),
            args.checkpoint_seconds,
            args.restart_seconds,
        )
        results[policy] = result
        rows.append(
            (policy, f"{result.goodput * 100:.2f}%", result.failures,
             result.transitions, result.spares_consumed,
             result.exhaustions, result.min_running,
             f"{result.idle_seconds / 3600.0:.1f}")
        )
    print(
        render_table(
            ["policy", "goodput", "failures", "transitions", "spares used",
             "exhausted", "min chips", "idle (h)"],
            rows,
        )
    )
    if len(results) > 1:
        best = max(results, key=lambda name: results[name].goodput)
        print(f"\nbest policy: {best}")
    if args.events:
        result = results[policies[0]]
        with open(args.events, "w") as handle:
            handle.write(result.event_log_jsonl())
        print(f"\nwrote {len(result.events)} events to {args.events}")
    return 0


def _parse_mesh_shapes(specs) -> List:
    """Parse repeatable ``RxC`` mesh flags into shape tuples."""
    shapes = []
    for spec in specs:
        parts = spec.lower().split("x")
        if len(parts) != 2 or not all(p.isdigit() and int(p) > 0 for p in parts):
            raise ValueError(f"invalid mesh shape {spec!r} (expected RxC)")
        shapes.append((int(parts[0]), int(parts[1])))
    return shapes


def _cmd_sdc(args: argparse.Namespace) -> int:
    rates = tuple(args.rate) if args.rate else None
    bad = _check_flags(
        "sdc",
        [
            ("--trials", args.trials, args.trials >= 1, "must be >= 1"),
            ("--rate", rates,
             rates is None or all(0.0 <= r <= 1.0 for r in rates),
             "every rate must be in [0, 1]"),
            ("--jobs", args.jobs,
             args.jobs is None or args.jobs >= 1, "must be >= 1"),
            ("--seed", args.seed, args.seed >= 0, "must be non-negative"),
        ],
    )
    if bad:
        return bad
    from repro.experiments import ablation_sdc
    from repro.hw import get_preset

    try:
        hw = get_preset(args.hw)
        meshes = (
            _parse_mesh_shapes(args.mesh) if args.mesh
            else list(ablation_sdc.MESHES)
        )
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    rows = ablation_sdc.run(
        rates=rates or ablation_sdc.RATES,
        meshes=meshes,
        trials=args.trials,
        seed=args.seed if args.seed else ablation_sdc.DEFAULT_SEED,
        algorithm=args.algorithm,
        hw=hw,
        jobs=args.jobs,
    )
    from repro.experiments.common import render_table

    print(
        f"{args.algorithm} under silent data corruption ({hw.name}, "
        f"{args.trials} trials/point, seed "
        f"{args.seed if args.seed else ablation_sdc.DEFAULT_SEED})\n"
    )
    print(
        render_table(
            ["rate", "mesh", "flips", "escapes (bare)", "escapes (abft)",
             "corrected", "recomputed", "abft overhead"],
            [(f"{r.rate:g}", f"{r.mesh[0]}x{r.mesh[1]}", r.flips,
              f"{r.unprotected_escapes}/{r.trials}",
              f"{r.protected_escapes}/{r.trials}",
              r.corrected, r.recomputed, f"{r.overhead_pct:.1f}%")
             for r in rows],
        )
    )
    return 0


#: Per-run derived metrics a handler wants included in the command's
#: ``--metrics`` export (filled by ``profile``; others export only the
#: registry and cache counters).
_RUN_METRICS: List[object] = []


def _cmd_profile(args: argparse.Namespace) -> int:
    bad = _check_flags(
        "profile",
        [
            ("--chips", args.chips, args.chips >= 1, "must be >= 1"),
            ("--batch", args.batch,
             args.batch is None or args.batch >= 1, "must be >= 1"),
        ],
    )
    if bad:
        return bad
    resolved = _resolve_cluster(args)
    if isinstance(resolved, int):
        return resolved
    model, hw, batch = resolved
    from repro.obs.profile import profile_block

    report = profile_block(
        model, batch, args.chips, hw, algorithm=args.algorithm
    )
    if report is None:
        print(
            f"meshslice profile: {args.algorithm} cannot run on "
            f"{args.chips} chips",
            file=sys.stderr,
        )
        return 2
    _RUN_METRICS.append(report.metrics)
    print(report.render())
    return 0


def _describe_result(result) -> str:
    """One output line per served query."""
    from repro.autotuner.search import RobustTuningResult, TuningResult

    if isinstance(result, TuningResult):
        return (
            f"mesh {result.mesh}; block "
            f"{result.block_seconds * 1e3:.3f} ms"
        )
    if isinstance(result, RobustTuningResult):
        return (
            f"mesh {result.mesh}; p{result.quantile * 100:g} block "
            f"{result.robust_seconds * 1e3:.3f} ms "
            f"(inflation {result.inflation:.3f}x)"
        )
    # DegradedRetune
    return (
        f"degraded mesh {result.result.mesh} (dropped {result.dropped}); "
        f"block {result.result.block_seconds * 1e3:.3f} ms"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    bad = _check_flags(
        "serve",
        [
            ("--workers", args.workers, args.workers >= 1, "must be >= 1"),
            ("--repeat", args.repeat, args.repeat >= 1, "must be >= 1"),
            ("--store-max-records", args.store_max_records,
             args.store_max_records is None or args.store_max_records >= 1,
             "must be >= 1"),
            ("--store-max-bytes", args.store_max_bytes,
             args.store_max_bytes is None or args.store_max_bytes >= 1,
             "must be >= 1"),
        ],
    )
    if bad:
        return bad
    bounded = (
        args.store_max_records is not None or args.store_max_bytes is not None
    )
    if bounded and args.store is None:
        print(
            "meshslice serve: --store-max-records/--store-max-bytes "
            "require --store",
            file=sys.stderr,
        )
        return 2
    import json

    from repro.service import TuneRequest, TunerService

    if args.replay is not None:
        try:
            with open(args.replay) as handle:
                lines = handle.readlines()
        except OSError as exc:
            print(f"meshslice serve: {exc}", file=sys.stderr)
            return 2
    else:
        lines = sys.stdin.readlines()
    requests = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            requests.append(TuneRequest.from_dict(json.loads(line)))
        except (KeyError, TypeError, ValueError) as exc:
            source = args.replay or "<stdin>"
            print(
                f"meshslice serve: {source}:{lineno}: bad query: {exc}",
                file=sys.stderr,
            )
            return 2
    if not requests:
        print("meshslice serve: no queries", file=sys.stderr)
        return 2
    store = args.store
    if bounded:
        from repro.service import PlanStore

        store = PlanStore(
            args.store,
            max_records=args.store_max_records,
            max_bytes=args.store_max_bytes,
        )
    with TunerService(
        store, workers=args.workers,
        warm_start=not args.no_warm_start,
    ) as service:
        for _ in range(args.repeat):
            results = service.serve_many(requests)
        for request, result in zip(requests, results):
            print(
                f"{request.mode} {request.model.name} "
                f"chips={request.canonical().chips}: "
                f"{_describe_result(result)}"
            )
        stats = service.stats()
    print(
        f"\nserved {int(stats['requests'])} request(s): "
        f"{int(stats['served_from_memory'])} from memory, "
        f"{int(stats['coalesced_inflight'])} coalesced, "
        f"{int(stats['store_hits'])} store hit(s) "
        f"(hit rate {stats['store_hit_rate']:.2f}), "
        f"warm-start prune ratio {stats['warmstart_prune_ratio']:.2f}, "
        f"p50 {stats['latency_p50_ms']:.1f} ms, "
        f"p95 {stats['latency_p95_ms']:.1f} ms"
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import os

    action = getattr(args, "campaign_command", None)
    if action is None:
        print(
            "usage: meshslice campaign {run,resume,status,report} ...",
            file=sys.stderr,
        )
        return 2
    if action in ("run", "resume"):
        bad = _check_flags(
            f"campaign {action}",
            [
                ("--jobs", args.jobs,
                 args.jobs is None or args.jobs >= 1, "must be >= 1"),
                ("--retries", args.retries,
                 args.retries >= 0, "must be non-negative"),
                ("--backoff", args.backoff,
                 args.backoff >= 0.0, "must be non-negative"),
            ],
        )
        if bad:
            return bad
    from repro.campaign import (
        CampaignRunner,
        CampaignStore,
        get_campaign,
        report,
        status,
    )

    try:
        store = CampaignStore(args.store)
    except (OSError, ValueError) as exc:
        print(f"meshslice campaign: {exc}", file=sys.stderr)
        return 2
    name = getattr(args, "experiment", None)
    spec = None
    if name is not None:
        try:
            spec = get_campaign(name)
        except KeyError as exc:
            print(f"meshslice campaign: {exc.args[0]}", file=sys.stderr)
            return 2
    if action in ("resume", "status", "report"):
        wanted = [name] if name is not None else store.campaigns()
        if not wanted:
            print(
                f"meshslice campaign {action}: no campaigns in "
                f"{args.store}",
                file=sys.stderr,
            )
            return 2
        if name is not None and not os.path.exists(store.path_for(name)):
            print(
                f"meshslice campaign {action}: no store file for "
                f"{name!r} in {args.store}",
                file=sys.stderr,
            )
            return 2
    if action in ("run", "resume"):
        runner = CampaignRunner(
            store, name, spec.point,
            retries=args.retries, backoff_s=args.backoff,
            retry_failed=args.retry_failed, jobs=args.jobs,
        )
        summary = runner.run(spec.points())
        print(
            f"campaign {name}: {summary.total} point(s) "
            f"({summary.skipped} already stored); ran {summary.ran}, "
            f"ok {summary.ok}, failed {summary.failed}"
        )
        if summary.quarantined:
            print(
                f"quarantined {summary.quarantined} corrupt store "
                f"chunk(s) (see {store.quarantine_path(name)})"
            )
        if not summary.complete:
            print(
                f"meshslice campaign {action}: {name} is incomplete",
                file=sys.stderr,
            )
            return 1
        return 0
    if action == "status":
        blocks = []
        for campaign_name in wanted:
            blocks.append(status(store, campaign_name).render())
        print("\n\n".join(blocks))
        return 0
    print(report(store, name, spec))
    return 0


def _write_metrics(path: str) -> None:
    """Dump everything collected during the command as schema JSONL."""
    from repro.obs.export import collect_records, write_jsonl

    write_jsonl(collect_records(run_metrics=_RUN_METRICS), path)


def _cmd_run(args: argparse.Namespace) -> int:
    bad = _check_flags(
        "run",
        [
            ("--jobs", args.jobs,
             args.jobs is None or args.jobs >= 1, "must be >= 1"),
        ],
    )
    if bad:
        return bad
    if args.jobs is not None:
        # The experiment main()s read the worker count from the
        # environment, so one flag reaches every grid they run.
        import os

        from repro.experiments.common import JOBS_ENV

        os.environ[JOBS_ENV] = str(args.jobs)
    names: List[str] = []
    for name in args.experiments:
        if name == "all":
            names.extend(sorted(EXPERIMENTS))
        else:
            names.append(name)
    for name in names:
        start = time.time()
        try:
            report = run_experiment(name)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(f"=== {name} " + "=" * max(0, 70 - len(name)))
        print(report)
        print(f"--- {name} done in {time.time() - start:.1f}s\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    parser = build_parser()
    args = parser.parse_args(normalize_argv(list(argv)))
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2
    if getattr(args, "engine", None) is not None:
        from repro.sim.compiled import set_default_engine

        set_default_engine(args.engine)
    handlers = {
        "run": lambda: _cmd_run(args),
        "list": _cmd_list,
        "tune": lambda: _cmd_tune(args),
        "faults": lambda: _cmd_faults(args),
        "recovery": lambda: _cmd_recovery(args),
        "elastic": lambda: _cmd_elastic(args),
        "sdc": lambda: _cmd_sdc(args),
        "profile": lambda: _cmd_profile(args),
        "serve": lambda: _cmd_serve(args),
        "campaign": lambda: _cmd_campaign(args),
        "models": _cmd_models,
        "presets": _cmd_presets,
    }
    code = handlers[args.command]()
    metrics_path = getattr(args, "metrics", None)
    if code == 0 and metrics_path:
        _write_metrics(metrics_path)
    return code


if __name__ == "__main__":
    sys.exit(main())
