"""Command-line interface: ``meshslice <command>``.

Experiment reproduction::

    meshslice list                 # enumerate experiments
    meshslice fig9                 # run one (any name from `list`)
    meshslice all                  # run everything
    meshslice fig9 --jobs 8        # spread grid points over 8 processes

Deployment planning and introspection::

    meshslice tune gpt3-175b --chips 256 --batch 128 [--hw tpuv4-sim]
    meshslice models               # model zoo
    meshslice presets              # hardware presets
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="meshslice",
        description="MeshSlice (ISCA 2025) reproduction toolkit",
    )
    parser.add_argument(
        "command",
        help=(
            "an experiment name ('list' to enumerate, 'all' for every "
            "experiment), or one of: tune, models, presets"
        ),
    )
    parser.add_argument(
        "model", nargs="?", default=None,
        help="model name for the 'tune' command",
    )
    parser.add_argument(
        "--chips", type=int, default=256, help="cluster size for 'tune'"
    )
    parser.add_argument(
        "--batch", type=int, default=None,
        help="global batch for 'tune' (default: chips / 2)",
    )
    parser.add_argument(
        "--hw", default="tpuv4-sim",
        help="hardware preset name for 'tune' (see 'presets')",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help=(
            "worker processes for experiment grids "
            "(default: REPRO_JOBS env var, then the CPU count)"
        ),
    )
    return parser


def run_experiment(name: str) -> str:
    """Run one experiment module's main() and return its report."""
    try:
        module = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    return module.main()


def _cmd_list() -> int:
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:22s} {doc}")
    return 0


def _cmd_models() -> int:
    from repro.experiments.common import render_table
    from repro.models import get_model, model_names

    rows = []
    for name in model_names():
        model = get_model(name)
        rows.append(
            (
                name,
                model.num_layers,
                model.hidden,
                model.ffn_dim,
                f"{model.approx_params / 1e9:.0f}B (FC)",
            )
        )
    print(render_table(["model", "layers", "hidden", "ffn", "params"], rows))
    return 0


def _cmd_presets() -> int:
    from repro.experiments.common import render_table
    from repro.hw import get_preset, preset_names

    rows = []
    for name in preset_names():
        hw = get_preset(name)
        rows.append(
            (
                name,
                f"{hw.peak_flops / 1e12:.0f} TF",
                f"{hw.link_bandwidth / 1e9:.0f} GB/s x{hw.links_per_direction}",
                hw.network,
                "yes" if hw.overlap_collectives else "no",
            )
        )
    print(
        render_table(
            ["preset", "peak", "link bw", "network", "AG/RdS overlap"], rows
        )
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.autotuner import tune
    from repro.experiments.common import render_table
    from repro.hw import get_preset
    from repro.models import get_model

    if args.model is None:
        print("usage: meshslice tune <model> [--chips N] [--batch B] [--hw P]",
              file=sys.stderr)
        return 2
    try:
        model = get_model(args.model)
        hw = get_preset(args.hw)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    batch = args.batch if args.batch is not None else max(1, args.chips // 2)
    result = tune(model, batch, args.chips, hw)
    print(
        f"{model.name}: {args.chips} chips ({hw.name}), batch {batch}\n"
        f"chosen mesh: {result.mesh}; estimated FC block "
        f"{result.block_seconds * 1e3:.2f} ms\n"
    )
    print(
        render_table(
            ["layer", "pass", "dataflow", "S"],
            [
                (t.layer_name, t.plan.pass_name, t.plan.dataflow.name, t.slices)
                for t in result.passes
            ],
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs is not None:
        # The experiment main()s read the worker count from the
        # environment, so one flag reaches every grid they run.
        import os

        from repro.experiments.common import JOBS_ENV

        os.environ[JOBS_ENV] = str(args.jobs)
    command = args.command
    if command == "list":
        return _cmd_list()
    if command == "models":
        return _cmd_models()
    if command == "presets":
        return _cmd_presets()
    if command == "tune":
        return _cmd_tune(args)
    names = sorted(EXPERIMENTS) if command == "all" else [command]
    for name in names:
        start = time.time()
        try:
            report = run_experiment(name)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(f"=== {name} " + "=" * max(0, 70 - len(name)))
        print(report)
        print(f"--- {name} done in {time.time() - start:.1f}s\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
