"""Calibrated hardware presets.

``TPUV4`` models the simulated clusters of Section 4.1 (bidirectional
torus links, idealized async collectives). ``TPUV4_CLOUD_4X4`` models
the real Google Cloud 4x4 TPUv4 slice of Section 5.3, where only
unidirectional link bandwidth is available, AG/RdS collectives cannot
overlap with computation, and compiler-inserted dependencies defeat
most of Wang's SendRecv overlap.
"""

from __future__ import annotations

from repro.hw.params import HardwareParams

#: Simulated TPUv4 (Section 4.1). Peak 272 TFLOPS bf16 (the utilization
#: denominator the paper reports), 1.2 TB/s HBM, 50 GB/s/direction ICI
#: links with bidirectional ring collectives. Sync/launch latencies are
#: the offline-measured microsecond-scale constants of Section 4.5.
TPUV4 = HardwareParams(
    name="tpuv4-sim",
    peak_flops=272e12,
    mxu_dim=128,
    num_mxus=8,
    hbm_bandwidth=1.2e12,
    hbm_capacity=32e9,
    scratchpad_bytes=128e6,
    link_bandwidth=50e9,
    links_per_direction=2,
    t_sync=4e-6,
    t_launch=8e-6,
    t_kernel=4e-6,
    dtype_bytes=2,
    memory_block=8,
    overlap_collectives=True,
    overlap_sendrecv=True,
    sendrecv_overlap_fraction=1.0,
    compute_efficiency=0.86,
    slicing_overhead=0.004,
)

#: Real 4x4 Google Cloud TPUv4 slice (Section 5.3). Only unidirectional
#: ICI bandwidth is usable, AG/RdS do not overlap with compute, and the
#: JAX compiler prevents most SendRecv overlap for Wang's algorithm.
TPUV4_CLOUD_4X4 = TPUV4.with_overrides(
    name="tpuv4-cloud-4x4",
    links_per_direction=1,
    overlap_collectives=False,
    overlap_sendrecv=True,
    sendrecv_overlap_fraction=0.15,
)

#: Hypothetical TPUv4 cloud with async collectives enabled, used for the
#: "MeshSlice Overlap (Estim.)" column of Table 3.
TPUV4_CLOUD_4X4_OVERLAP = TPUV4_CLOUD_4X4.with_overrides(
    name="tpuv4-cloud-4x4-overlap",
    overlap_collectives=True,
    sendrecv_overlap_fraction=1.0,
)

#: A *logical* 2D mesh constructed on top of a switched GPU-style
#: network (Section 6). Same per-ring bandwidth as the TPUv4 torus, but
#: all of a chip's ring traffic shares one NIC, so collectives in the
#: two mesh directions contend (NIC oversubscription ~1.7x when both
#: rings are busy), and switched-fabric synchronization and launch
#: latencies are higher.
GPU_LOGICAL_MESH = TPUV4.with_overrides(
    name="gpu-logical-mesh",
    network="shared-nic",
    nic_bandwidth=120e9,
    t_sync=6e-6,
    t_launch=12e-6,
)

_PRESETS = {
    TPUV4.name: TPUV4,
    TPUV4_CLOUD_4X4.name: TPUV4_CLOUD_4X4,
    TPUV4_CLOUD_4X4_OVERLAP.name: TPUV4_CLOUD_4X4_OVERLAP,
    GPU_LOGICAL_MESH.name: GPU_LOGICAL_MESH,
}


def get_preset(name: str) -> HardwareParams:
    """Look up a preset by its ``name`` field.

    Raises:
        KeyError: if no preset with that name exists.
    """
    try:
        return _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise KeyError(f"unknown hardware preset {name!r}; known: {known}")


def preset_names() -> list:
    """Names of all registered presets."""
    return sorted(_PRESETS)
