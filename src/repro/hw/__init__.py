"""Hardware models: chip, memory, and interconnect parameters."""

from repro.hw.params import HardwareParams
from repro.hw.presets import (
    GPU_LOGICAL_MESH,
    TPUV4,
    TPUV4_CLOUD_4X4,
    TPUV4_CLOUD_4X4_OVERLAP,
    get_preset,
    preset_names,
)

__all__ = [
    "GPU_LOGICAL_MESH",
    "HardwareParams",
    "TPUV4",
    "TPUV4_CLOUD_4X4",
    "TPUV4_CLOUD_4X4_OVERLAP",
    "get_preset",
    "preset_names",
]
