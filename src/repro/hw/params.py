"""Hardware parameter descriptions for simulated accelerator clusters.

The paper evaluates MeshSlice on simulated TPUv4 clusters (Section 4.1).
This module defines the knobs that the simulator, the analytical cost
models, and the autotuner all read: compute throughput, memory system,
inter-chip interconnect (ICI) characteristics, and the per-operation
latencies (synchronization and launch) that the paper measures offline
on real hardware (Section 4.5).

All times are seconds, all sizes are bytes, and all rates are per-second.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class HardwareParams:
    """Parameters of one accelerator chip and its network links.

    The defaults are placeholders; use the presets in
    :mod:`repro.hw.presets` for calibrated configurations.

    Attributes:
        name: Human-readable preset name.
        peak_flops: Peak matrix-multiply throughput of one chip
            (FLOP/s). The paper uses 272 TFLOPS per TPUv4 as the
            utilization denominator.
        mxu_dim: Side length of one systolic array (TPUv4: 128).
        num_mxus: Number of systolic arrays per chip (TPUv4: 4 per core
            times 2 cores = 8; the paper's Figure 8 shows 4 per core).
        hbm_bandwidth: Shared HBM bandwidth of the chip (bytes/s).
        hbm_capacity: HBM capacity (bytes), used for feasibility checks.
        scratchpad_bytes: Per-core scratchpad (TPUv4: 64 MiB per core).
        link_bandwidth: Usable bandwidth of one ICI link in one
            direction (bytes/s).
        links_per_direction: Number of ICI links a ring collective in a
            mesh axis can use. 2 when bidirectional ring algorithms are
            allowed (the +axis and -axis links), 1 when the cluster only
            exposes unidirectional bandwidth (the real 4x4 cloud slice
            in Section 5.3 "only utilize[s] the uni-directional
            bandwidth").
        t_sync: Per-step synchronization latency of a ring collective
            (seconds). Every ring step of an AllGather/ReduceScatter and
            every pipeline stage of a bcast/reduce pays this cost.
        t_launch: Cost of launching one communication operation from the
            host (seconds).
        t_kernel: Cost of launching one compute kernel (a GeMM or a
            slicing copy) on the chip (seconds). This is what makes very
            fine-grain partial GeMMs inefficient (Section 5.3.1).
        link_retry_timeout: Dead time of one transient link outage
            (seconds): failure detection timeout plus reconnection,
            before the interrupted transfer is retried. Used by
            ``repro.faults`` as the default outage penalty; the
            unfaulted simulator never charges it.
        dtype_bytes: Bytes per matrix element (2 for bf16 training).
        memory_block: Architecture block size ``B`` for MeshSlice's
            blocked slicing (Algorithm 2). TPUs access memory in
            128x8 chunks, so the paper sets B = 8.
        overlap_collectives: Whether AG/RdS collectives may execute
            concurrently with GeMM computation. ``False`` models current
            TPUv4 clusters where only SendRecv is asynchronous
            (Section 5.3).
        overlap_sendrecv: Whether SendRecv operations may execute
            concurrently with computation.
        sendrecv_overlap_fraction: Fraction of SendRecv communication
            that actually overlaps with computation. The paper observes
            that the JAX compiler creates dependencies that prevent most
            of Wang's SendRecv overlap on real hardware; 1.0 means the
            idealized simulator behaviour.
        network: Physical network kind. ``"torus"`` gives every mesh
            direction its own contention-free links (TPU ICI,
            Section 2.2). ``"shared-nic"`` models a *logical* mesh on
            top of a switched network (GPU clusters, Section 6): all of
            a chip's ring traffic shares one NIC, so concurrent
            collectives in different directions contend.
        nic_bandwidth: Total NIC bandwidth per chip (bytes/s) when
            ``network == "shared-nic"``. Ignored for a torus.
        compute_efficiency: Fraction of ``peak_flops`` a large,
            well-tiled GeMM achieves (captures tiling and pipeline
            overheads that the paper's cycle-level core model produces).
        slicing_overhead: Relative compute-time overhead of one blocked
            slicing operation (the paper measures ~1.3% total from
            slicing on real hardware; per-slice this is small).
    """

    name: str = "generic"
    peak_flops: float = 272e12
    mxu_dim: int = 128
    num_mxus: int = 8
    hbm_bandwidth: float = 1.2e12
    hbm_capacity: float = 32e9
    scratchpad_bytes: float = 128e6
    link_bandwidth: float = 50e9
    links_per_direction: int = 2
    t_sync: float = 4e-6
    t_launch: float = 8e-6
    t_kernel: float = 4e-6
    link_retry_timeout: float = 500e-6
    dtype_bytes: int = 2
    memory_block: int = 8
    overlap_collectives: bool = True
    overlap_sendrecv: bool = True
    sendrecv_overlap_fraction: float = 1.0
    network: str = "torus"
    nic_bandwidth: float = 0.0
    compute_efficiency: float = 0.86
    slicing_overhead: float = 0.004

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ValueError("peak_flops must be positive")
        if self.hbm_bandwidth <= 0:
            raise ValueError("hbm_bandwidth must be positive")
        if self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if self.links_per_direction not in (1, 2):
            raise ValueError("links_per_direction must be 1 or 2")
        if self.link_retry_timeout < 0:
            raise ValueError("link_retry_timeout must be non-negative")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        if self.memory_block <= 0:
            raise ValueError("memory_block must be positive")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0.0 <= self.sendrecv_overlap_fraction <= 1.0:
            raise ValueError("sendrecv_overlap_fraction must be in [0, 1]")
        if self.network not in ("torus", "shared-nic"):
            raise ValueError(
                f"network must be 'torus' or 'shared-nic', got {self.network!r}"
            )
        if self.network == "shared-nic" and self.nic_bandwidth <= 0:
            raise ValueError("shared-nic network requires nic_bandwidth > 0")

    def __hash__(self) -> int:
        # Instances are hashed on every memoized-cost-model lookup, and
        # the generated dataclass hash walks all 23 fields each time;
        # cache it (frozen instances never change).
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(
                tuple(getattr(self, f.name) for f in dataclasses.fields(self))
            )
            object.__setattr__(self, "_hash", h)
        return h

    def __getstate__(self):
        # Drop the cached hash when pickling (e.g. into grid-runner
        # worker processes): ``name`` is a string, whose hash is not
        # stable across processes under hash randomization.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    @property
    def has_shared_nic(self) -> bool:
        """Whether ring traffic contends for a single NIC (Section 6)."""
        return self.network == "shared-nic"

    @property
    def ring_bandwidth(self) -> float:
        """Effective bandwidth of a ring collective along one mesh axis."""
        return self.link_bandwidth * self.links_per_direction

    @property
    def effective_flops(self) -> float:
        """Sustained GeMM throughput of one chip (FLOP/s)."""
        return self.peak_flops * self.compute_efficiency

    def with_overrides(self, **changes: object) -> "HardwareParams":
        """Return a copy with selected fields replaced."""
        return dataclasses.replace(self, **changes)
