"""The campaign record schema and its canonical line encoding.

One record is one grid point's terminal outcome: the point's content
key and encoded coordinate, its result row(s) or structured failure,
the metrics delta the point produced, and the code version that
produced it. Records deliberately contain **no wall-clock fields and
no attempt counts** — everything stored is a pure function of the
point — so a run completed cold, a run killed and resumed (any
``--jobs``), and a serial rerun all append byte-identical lines. The
nondeterministic residue (retry counts, skip counts, corrupt-line
counts, wall time) lives in the ``campaign.*`` metrics registry
series instead, which the record's own ``metrics`` field excludes.

Gauges are excluded from ``metrics`` wholesale: the registry's
``delta_since`` reports a gauge whenever it changed *or is new*, so a
resumed fresh process would see pre-existing gauge levels as new while
the uninterrupted run would not — counters and histograms subtract
cleanly and carry no such hazard. The two wall-clock histogram series
the tuning service emits are excluded by name for the same reason.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro import __version__
from repro.campaign.codec import encode_value
from repro.obs.registry import MetricRecord

__all__ = [
    "SCHEMA_VERSION",
    "WALL_CLOCK_SERIES",
    "encode_record",
    "make_record",
    "record_metrics",
    "validate_record",
]

#: Bump when the record shape changes; loads reject other versions.
SCHEMA_VERSION = 1

#: Registry series whose values are wall-clock measurements and must
#: never enter a stored record (they would break byte determinism).
WALL_CLOCK_SERIES = (
    "service.latency_ms",
    "service.queue.depth.sample",
)

_STATUSES = ("ok", "failed")


def record_metrics(
    delta: Iterable[MetricRecord],
) -> Tuple[Dict[str, Any], ...]:
    """The storable subset of a per-point registry delta.

    Counters and histograms only (deterministic, subtractable),
    excluding the campaign layer's own bookkeeping and the wall-clock
    service series. Order is the registry's sorted snapshot order, so
    the encoding is stable.
    """
    kept = []
    for rec in delta:
        if rec.type not in ("counter", "histogram"):
            continue
        if rec.name.startswith("campaign."):
            continue
        if rec.name in WALL_CLOCK_SERIES:
            continue
        kept.append(rec.to_record())
    return tuple(kept)


def make_record(
    campaign: str,
    key: str,
    point: Any,
    status: str,
    result: Any = None,
    error: Optional[Tuple[str, ...]] = None,
    metrics: Sequence[Dict[str, Any]] = (),
) -> Dict[str, Any]:
    """Build one schema-valid record dict for :func:`encode_record`.

    ``error`` is ``(type, message)`` with an optional third element
    carrying the worker-side traceback string; the traceback lands in
    the record's ``error["traceback"]`` so a collected failure still
    says where it died (the original exception object never survives
    the process-pool boundary).
    """
    if status not in _STATUSES:
        raise ValueError(f"unknown record status {status!r}")
    encoded_error: Optional[Dict[str, str]] = None
    if error is not None:
        encoded_error = {"type": error[0], "message": error[1]}
        if len(error) > 2 and error[2] is not None:
            encoded_error["traceback"] = error[2]
    record: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "campaign": campaign,
        "key": key,
        "point": encode_value(point),
        "status": status,
        "result": encode_value(result) if status == "ok" else None,
        "error": encoded_error,
        "metrics": list(metrics),
        "version": __version__,
    }
    validate_record(record)
    return record


def validate_record(record: Any) -> Dict[str, Any]:
    """Raise ``ValueError`` unless ``record`` is a schema-valid dict."""
    if not isinstance(record, dict):
        raise ValueError("record is not a dict")
    if record.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unknown schema {record.get('schema')!r}")
    for field, kind in (
        ("campaign", str),
        ("key", str),
        ("status", str),
        ("version", str),
        ("metrics", list),
    ):
        if not isinstance(record.get(field), kind):
            raise ValueError(f"field {field!r} missing or mistyped")
    if record["status"] not in _STATUSES:
        raise ValueError(f"unknown status {record['status']!r}")
    if "point" not in record or "result" not in record:
        raise ValueError("record lacks point/result fields")
    error = record.get("error")
    if error is not None and (
        not isinstance(error, dict)
        or not isinstance(error.get("type"), str)
        or not isinstance(error.get("message"), str)
        or not isinstance(error.get("traceback", ""), str)
    ):
        raise ValueError("malformed error field")
    if record["status"] == "failed" and error is None:
        raise ValueError("failed record lacks an error")
    return record


def encode_record(record: Dict[str, Any]) -> str:
    """The canonical JSONL line (newline-terminated) of one record."""
    validate_record(record)
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    )
