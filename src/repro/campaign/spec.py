"""Campaign specs: how an experiment exposes itself to the runner.

A :class:`CampaignSpec` is the contract an experiment module publishes
(as a module-level ``CAMPAIGN`` constant) so the campaign layer can
run it point-by-point instead of monolithically:

* ``points()`` builds the default grid — the same coordinates the
  module's ``run()`` iterates, as encodable values (see
  :mod:`repro.campaign.codec`);
* ``point`` is the **module-level, picklable** function mapping one
  coordinate to its result row(s) — the unit of durability, retry,
  and process-pool distribution;
* ``render(rows)`` turns the accumulated rows back into the module's
  human-readable report, so ``meshslice campaign report`` reproduces
  the figure table from the store alone.

This module deliberately imports nothing from ``repro.experiments`` —
the experiments import *it*, and the registry in
:mod:`repro.campaign.registry` closes the loop lazily.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Sequence

__all__ = ["CampaignSpec"]


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """One experiment's campaign contract.

    Args:
        name: Campaign name; by convention the experiment's registry
            name (``"fig9"``, ``"ablation-sdc"``, ...). Used as the
            store file name and hashed into every point key.
        points: Zero-argument builder of the default grid.
        point: Picklable function of one grid coordinate returning
            either one row or (with ``flatten=True``) a list of rows.
        render: Rows-to-report function reproducing the experiment's
            printed table.
        flatten: Whether ``point`` returns a list of rows per
            coordinate (queries concatenate) rather than a single row.
    """

    name: str
    points: Callable[[], Sequence[Any]]
    point: Callable[[Any], Any]
    render: Callable[[List[Any]], str]
    flatten: bool = False
