"""Queries over the campaign store: status, rows, reports, history.

The store is the source of truth; this module derives everything the
old monolithic experiment entry points printed — and the
cross-campaign comparisons they could not — without re-running a
single point:

* :func:`status` — per-campaign record counts, failure keys, and the
  set of code versions that produced the records;
* :func:`rows` / :func:`report` — decode the stored result rows and
  re-render the experiment's own table via its
  :class:`~repro.campaign.spec.CampaignSpec`;
* :func:`counter_history` / :func:`ratio_history` /
  :func:`cross_campaign_totals` — trajectories of any stored metric
  series (engine speed proxies like ``engine.events``, cache hit
  ratios, ABFT verification counts) across a campaign's points or
  across whole campaigns.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.codec import decode_value
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore

__all__ = [
    "CampaignStatus",
    "counter_history",
    "cross_campaign_totals",
    "ratio_history",
    "records",
    "report",
    "rows",
    "status",
]


@dataclasses.dataclass(frozen=True)
class CampaignStatus:
    """One campaign's stored state at a glance."""

    campaign: str
    stored: int
    ok: int
    failed: int
    failed_keys: Tuple[str, ...]
    versions: Tuple[str, ...]

    def render(self) -> str:
        lines = [
            f"campaign {self.campaign}: {self.stored} stored "
            f"({self.ok} ok, {self.failed} failed)",
        ]
        if self.versions:
            lines.append("versions: " + ", ".join(self.versions))
        for key in self.failed_keys:
            lines.append(f"failed: {key}")
        return "\n".join(lines)


def records(store: CampaignStore, name: str) -> List[Dict[str, Any]]:
    """The campaign's records, last-wins per key, in append order."""
    return list(store.load(name).values())


def status(store: CampaignStore, name: str) -> CampaignStatus:
    """Count what is stored, and name what failed."""
    recs = records(store, name)
    failed = tuple(r["key"] for r in recs if r["status"] == "failed")
    versions = tuple(sorted({r["version"] for r in recs}))
    return CampaignStatus(
        campaign=name,
        stored=len(recs),
        ok=len(recs) - len(failed),
        failed=len(failed),
        failed_keys=failed,
        versions=versions,
    )


def rows(
    store: CampaignStore, name: str, spec: CampaignSpec
) -> List[Any]:
    """The decoded result rows of every ``ok`` record, in store order.

    Failed records contribute nothing (their structured error lives in
    :func:`status`); specs with ``flatten`` concatenate each point's
    row list.
    """
    out: List[Any] = []
    for record in records(store, name):
        if record["status"] != "ok":
            continue
        decoded = decode_value(record["result"])
        if spec.flatten:
            out.extend(decoded)
        else:
            out.append(decoded)
    return out


def report(
    store: CampaignStore, name: str, spec: CampaignSpec
) -> str:
    """The experiment's own rendered table, from the store alone."""
    return spec.render(rows(store, name, spec))


# ----------------------------------------------------- metric history


def _counter_total(record: Dict[str, Any], counter: str) -> float:
    total = 0.0
    for metric in record.get("metrics", ()):
        if metric.get("type") == "counter" and metric.get("name") == counter:
            total += float(metric.get("value") or 0.0)
    return total


def counter_history(
    store: CampaignStore, name: str, counter: str
) -> List[Tuple[str, float]]:
    """Per-point totals of one counter series, in store order.

    Each entry is ``(point_key, total)`` over the record's stored
    metrics delta — e.g. ``counter_history(store, "fig9",
    "engine.events")`` is the engine-speed trajectory across the
    sweep.
    """
    return [
        (record["key"], _counter_total(record, counter))
        for record in records(store, name)
        if record["status"] == "ok"
    ]


def ratio_history(
    store: CampaignStore,
    name: str,
    numerator: str,
    denominator: str,
) -> List[Tuple[str, float]]:
    """Per-point ``numerator / (numerator + denominator)`` rates.

    The hit-rate shape: ``ratio_history(store, name,
    "service.store.hits", "service.store.misses")`` or any
    hit/miss-style counter pair. Points where both totals are zero
    yield 0.0.
    """
    out: List[Tuple[str, float]] = []
    for record in records(store, name):
        if record["status"] != "ok":
            continue
        hits = _counter_total(record, numerator)
        misses = _counter_total(record, denominator)
        total = hits + misses
        out.append((record["key"], hits / total if total else 0.0))
    return out


def cross_campaign_totals(
    store: CampaignStore,
    counter: str,
    names: Optional[List[str]] = None,
) -> Dict[str, float]:
    """One counter summed per campaign — the cross-campaign view.

    ``names`` defaults to every campaign in the store, so e.g.
    ``cross_campaign_totals(store, "sim.runs")`` compares how much
    simulation each recorded sweep performed.
    """
    if names is None:
        names = store.campaigns()
    return {
        name: sum(
            _counter_total(record, counter)
            for record in records(store, name)
            if record["status"] == "ok"
        )
        for name in names
    }
