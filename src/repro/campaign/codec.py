"""Canonical deterministic encoding of grid points and result rows.

The campaign store persists two kinds of values: the *point* (the
grid coordinate an experiment maps over — models, hardware presets,
algorithm tuples, mesh shapes) and the *result* (the experiment's row
dataclasses). Both must serialize byte-deterministically — same value,
same bytes, regardless of ``PYTHONHASHSEED``, process, or ``--jobs``
— because the store's resume contract is a byte-for-byte diff and the
point's content hash is its identity.

The encoding is plain JSON with three reserved markers so tuples,
enums, and dataclasses survive a round trip::

    (1, 2)            -> {"__tuple__": [1, 2]}
    Dataflow.WS       -> {"__enum__": "repro...:Dataflow", "name": "WS"}
    SomeRow(a=1)      -> {"__dataclass__": "mod:SomeRow",
                          "fields": {"a": 1}}

Points only ever need the *encode* direction (their hash is their
identity; the live objects come from the campaign spec). Result rows
need both: :func:`decode_value` re-imports the named dataclass or enum
— and refuses anything that is not one — so query/report code gets the
experiment's own row types back.

Anything without a canonical form (functions, open handles, objects
that are not dataclasses) raises ``TypeError`` — campaign specs must
build points and rows from encodable pieces, never silently hash a
``repr`` that could embed a memory address.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import importlib
import json
from typing import Any, Dict, List

import numpy as np

__all__ = [
    "canonical_json",
    "decode_value",
    "encode_value",
    "point_key",
]

_TUPLE = "__tuple__"
_ENUM = "__enum__"
_DATACLASS = "__dataclass__"
_MARKERS = (_TUPLE, _ENUM, _DATACLASS)


def _qualref(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve(ref: str) -> Any:
    module_name, _, qualname = ref.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def encode_value(value: Any) -> Any:
    """``value`` as JSON-able data with deterministic structure."""
    # numpy scalars first: np.float64 subclasses float and would
    # otherwise pass through un-coerced.
    if isinstance(value, np.generic):
        return encode_value(value.item())
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE: [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        out: Dict[str, Any] = {}
        for key, val in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"cannot encode dict key {key!r}: keys must be str"
                )
            if key in _MARKERS:
                raise TypeError(
                    f"dict key {key!r} collides with a codec marker"
                )
            out[key] = encode_value(val)
        return out
    if isinstance(value, enum.Enum):
        return {_ENUM: _qualref(type(value)), "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {_DATACLASS: _qualref(type(value)), "fields": fields}
    raise TypeError(
        f"cannot canonically encode {type(value).__name__}: {value!r}"
    )


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`.

    Marker dicts resolve their named type by import and verify it
    really is an ``Enum`` / dataclass before instantiating — a store
    record can make this raise, never execute arbitrary constructors.
    """
    if isinstance(data, list):
        return [decode_value(v) for v in data]
    if isinstance(data, dict):
        if _TUPLE in data:
            return tuple(decode_value(v) for v in data[_TUPLE])
        if _ENUM in data:
            cls = _resolve(data[_ENUM])
            if not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
                raise ValueError(f"{data[_ENUM]!r} is not an Enum")
            return cls[data["name"]]
        if _DATACLASS in data:
            cls = _resolve(data[_DATACLASS])
            if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
                raise ValueError(f"{data[_DATACLASS]!r} is not a dataclass")
            fields = {
                key: decode_value(val)
                for key, val in data["fields"].items()
            }
            return cls(**fields)
        return {key: decode_value(val) for key, val in data.items()}
    return data


def canonical_json(value: Any) -> str:
    """The one canonical JSON text of ``value`` (sorted, no spaces)."""
    return json.dumps(
        encode_value(value), sort_keys=True, separators=(",", ":")
    )


def point_key(campaign: str, point: Any) -> str:
    """Content address of one grid point within one campaign.

    The campaign name is part of the hash so two campaigns whose point
    tuples happen to collide structurally still key separately.
    """
    text = canonical_json({"campaign": campaign, "point": point})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def encode_points(points: List[Any]) -> List[Any]:
    """Encode a point list (convenience for specs and tests)."""
    return [encode_value(p) for p in points]
