"""Durable, crash-tolerant experiment campaigns (ROADMAP item 5).

The layer every figure/ablation sweep runs through when partial
progress must survive: each grid point appends one schema-validated,
byte-deterministic record to an append-only JSONL store
(:class:`CampaignStore`), the :class:`CampaignRunner` skips stored
points on restart and records exhausted failures fail-soft, and the
query module re-derives the paper tables — plus cross-campaign metric
history — from the store alone. See ``docs/campaign.md``.
"""

from repro.campaign.codec import (
    canonical_json,
    decode_value,
    encode_value,
    point_key,
)
from repro.campaign.query import (
    CampaignStatus,
    counter_history,
    cross_campaign_totals,
    ratio_history,
    report,
    rows,
    status,
)
from repro.campaign.records import (
    SCHEMA_VERSION,
    encode_record,
    make_record,
    validate_record,
)
from repro.campaign.registry import (
    campaign_names,
    campaign_specs,
    get_campaign,
)
from repro.campaign.runner import CampaignRunner, CampaignSummary
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore, RepairReport

__all__ = [
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStatus",
    "CampaignStore",
    "CampaignSummary",
    "RepairReport",
    "SCHEMA_VERSION",
    "campaign_names",
    "campaign_specs",
    "canonical_json",
    "counter_history",
    "cross_campaign_totals",
    "decode_value",
    "encode_record",
    "encode_value",
    "get_campaign",
    "make_record",
    "point_key",
    "ratio_history",
    "report",
    "rows",
    "status",
    "validate_record",
]
