"""The campaign registry: every experiment's published spec.

Collected lazily from ``repro.experiments.EXPERIMENTS`` — each
experiment module publishes a module-level ``CAMPAIGN``
:class:`~repro.campaign.spec.CampaignSpec`. The import happens inside
the function, not at module import, so ``repro.campaign`` never drags
the whole experiment suite (and its numpy workloads) into processes
that only touch the store.
"""

from __future__ import annotations

from typing import Dict

from repro.campaign.spec import CampaignSpec

__all__ = ["campaign_names", "campaign_specs", "get_campaign"]


def campaign_specs() -> Dict[str, CampaignSpec]:
    """Every experiment's spec, keyed by experiment name."""
    from repro.experiments import EXPERIMENTS

    specs: Dict[str, CampaignSpec] = {}
    for name, module in EXPERIMENTS.items():
        spec = getattr(module, "CAMPAIGN", None)
        if isinstance(spec, CampaignSpec):
            specs[name] = spec
    return specs


def campaign_names() -> list:
    """Sorted names of every experiment that publishes a spec."""
    return sorted(campaign_specs())


def get_campaign(name: str) -> CampaignSpec:
    """The spec of one experiment; ``KeyError`` names the options."""
    specs = campaign_specs()
    if name not in specs:
        raise KeyError(
            f"unknown campaign {name!r}; known: {', '.join(sorted(specs))}"
        )
    return specs[name]
