"""Append-only JSONL store of campaign records.

One campaign is one file, ``<root>/<name>.jsonl``, one record per
line (see :mod:`repro.campaign.records`). The shape is chosen for the
failure mode it must survive: a SIGKILL mid-sweep. Appends are
single-``write`` whole lines, so a kill leaves at worst one torn
final line; everything before it is intact and the resumed run
continues appending after it.

Corruption is never fatal, mirroring the ``PlanStore`` contract:

* :meth:`load` skips undecodable or schema-invalid lines, counting
  each under ``campaign.store.corrupt`` — a damaged line costs one
  recomputed point, never a crashed sweep;
* :meth:`repair` (run by the campaign runner before resuming)
  atomically rewrites the file keeping only valid lines and moves the
  invalid bytes to a ``<name>.quarantine`` sidecar for post-mortems,
  counting ``campaign.store.repaired`` — so a resumed store never
  carries a torn tail into its byte-determinism contract.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import tempfile
from typing import Any, Dict, List, Tuple

from repro.campaign.records import encode_record, validate_record
from repro.obs.registry import registry as _metrics

__all__ = ["CampaignStore", "RepairReport"]

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


@dataclasses.dataclass(frozen=True)
class RepairReport:
    """What one :meth:`CampaignStore.repair` pass did."""

    kept: int
    quarantined: int


class CampaignStore:
    """Durable per-campaign record files under one root directory."""

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    # ---------------------------------------------------------- addressing

    def _check_name(self, name: str) -> str:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid campaign name {name!r}")
        return name

    def path_for(self, name: str) -> str:
        """The record file of one campaign."""
        return os.path.join(self.root, f"{self._check_name(name)}.jsonl")

    def quarantine_path(self, name: str) -> str:
        """The sidecar invalid bytes are moved to by :meth:`repair`."""
        return os.path.join(
            self.root, f"{self._check_name(name)}.quarantine"
        )

    def campaigns(self) -> List[str]:
        """Names of every campaign with a record file, sorted."""
        try:
            entries = sorted(os.listdir(self.root))
        except OSError:
            return []
        return [
            name[: -len(".jsonl")]
            for name in entries
            if name.endswith(".jsonl") and not name.startswith(".")
        ]

    # -------------------------------------------------------------- append

    def append(self, name: str, record: Dict[str, Any]) -> None:
        """Durably append one record line.

        The line is written with a single ``write`` call and fsynced,
        so concurrent readers and a killed writer both observe either
        the whole line or (for the writer's very last moment) a torn
        tail that :meth:`repair` will quarantine.
        """
        line = encode_record(record)
        with open(self.path_for(name), "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        _metrics().inc("campaign.store.appends")

    # --------------------------------------------------------------- loads

    def _chunks(self, name: str) -> List[Tuple[bytes, bool]]:
        """Raw line chunks of one campaign file.

        Each entry is ``(bytes_without_newline, had_newline)``; a
        missing trailing newline marks a torn tail from a kill
        mid-append.
        """
        try:
            with open(self.path_for(name), "rb") as handle:
                raw = handle.read()
        except OSError:
            return []
        if not raw:
            return []
        parts = raw.split(b"\n")
        terminated = [(part, True) for part in parts[:-1]]
        if parts[-1]:
            terminated.append((parts[-1], False))
        return terminated

    @staticmethod
    def _decode(chunk: bytes) -> Dict[str, Any]:
        """One line's record, or raise ``ValueError`` if invalid."""
        try:
            record = json.loads(chunk.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(str(exc)) from exc
        return validate_record(record)

    def load(self, name: str) -> Dict[str, Dict[str, Any]]:
        """Every stored record by point key, corrupt lines skipped.

        Later records for a key supersede earlier ones (``last wins``,
        the ``retry_failed`` escape hatch), while key order remains
        first-occurrence order — i.e. append order for a healthy
        store. Invalid lines count under ``campaign.store.corrupt``
        and are otherwise ignored; they are **never** fatal.
        """
        reg = _metrics()
        records: Dict[str, Dict[str, Any]] = {}
        for chunk, _terminated in self._chunks(name):
            if not chunk:
                continue
            try:
                record = self._decode(chunk)
            except ValueError:
                reg.inc("campaign.store.corrupt")
                continue
            # Re-assignment keeps first-occurrence order (dict
            # insertion order) while the latest record wins.
            records[record["key"]] = record
        return records

    def repair(self, name: str) -> RepairReport:
        """Drop invalid bytes, atomically, before a resume.

        Valid lines keep their exact original bytes and order; invalid
        chunks (torn tails, bit rot, hand edits) move to the
        quarantine sidecar. A healthy file is left untouched — no
        rewrite, no mtime churn.
        """
        reg = _metrics()
        kept: List[bytes] = []
        quarantined: List[bytes] = []
        clean = True  # file already == kept lines, each "\n"-terminated
        for chunk, terminated in self._chunks(name):
            if not chunk:
                # A bare empty line is noise, not a record; dropping
                # it keeps the byte-determinism diff clean.
                clean = False
                continue
            try:
                self._decode(chunk)
            except ValueError:
                quarantined.append(chunk)
                clean = False
                continue
            kept.append(chunk)
            if not terminated:
                # Valid JSON but no newline: the kill landed between
                # write and close. Keep the record; the rewrite below
                # restores its terminator.
                clean = False
        if clean:
            return RepairReport(kept=len(kept), quarantined=0)
        path = self.path_for(name)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".jsonl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                for chunk in kept:
                    handle.write(chunk + b"\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if quarantined:
            with open(self.quarantine_path(name), "ab") as handle:
                for chunk in quarantined:
                    handle.write(chunk + b"\n")
            reg.inc("campaign.store.corrupt", len(quarantined))
        reg.inc("campaign.store.repaired")
        return RepairReport(kept=len(kept), quarantined=len(quarantined))
