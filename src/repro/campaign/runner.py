"""The resumable, fail-soft campaign runner.

:class:`CampaignRunner` is the crash-tolerance layer over
:func:`repro.experiments.common.grid_map`:

* **Resume.** Before running it repairs the store (quarantining any
  torn tail a kill left behind), loads the stored point keys, and
  skips every point already recorded — a sweep killed at point 2500
  of 5000 recomputes nothing on restart. Skips count under
  ``campaign.points.skipped``; duplicate coordinates in the input
  grid run once (``campaign.points.duplicate``).
* **Retry.** Each point gets ``retries`` extra attempts with capped
  exponential backoff (transient failures: flaky filesystems, pool
  hiccups). Attempts count under ``campaign.retries``.
* **Fail-soft.** A point that exhausts its attempts is recorded as a
  structured ``failed`` record — error type and message, no result —
  and the sweep continues (``grid_map(on_error="collect")``
  underneath). Failed keys are terminal on resume unless
  ``retry_failed`` is set, which appends a superseding record (and,
  by appending rather than rewriting, trades away byte-identity with
  an uninterrupted run — the one knob that does).

**The determinism contract.** Records append in input-point order
(``grid_map`` delivers in input order at any ``--jobs``), contain no
wall-clock fields or attempt counts, and carry a metrics delta that
is a pure function of the point: every attempt starts from cleared
``repro.perf`` caches and a fresh registry snapshot, so a point
computes the same delta whether it runs first or five-thousandth,
serial or pooled, cold or resumed. The cost is real — cross-point
cache warmth is deliberately given up (within-point memoization
keeps working) — and is what makes ``completed-by-resume`` stores
byte-identical to ``completed-cold`` ones, pinned by the subprocess
kill/resume suite in ``tests/test_campaign_kill_resume.py``.
"""

from __future__ import annotations

import dataclasses
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.codec import point_key
from repro.campaign.records import make_record, record_metrics
from repro.campaign.store import CampaignStore
from repro.experiments.common import GridPointError, grid_map
from repro.obs.registry import MetricRecord, registry
from repro.perf.cache import clear_caches

__all__ = ["CampaignRunner", "CampaignSummary"]


@dataclasses.dataclass(frozen=True)
class _PointOutcome:
    """What one point's (final) attempt produced, picklable."""

    status: str  # "ok" | "failed"
    result: Any
    error: Optional[Tuple[str, str]]
    metrics: Tuple[MetricRecord, ...]


@dataclasses.dataclass
class _CampaignWorker:
    """Picklable per-point attempt loop: clear, snapshot, run, retry.

    Catches every point failure itself and folds it into the returned
    :class:`_PointOutcome`, so the grid under it never aborts and the
    runner's ``progress`` callback sees exactly one outcome per point.
    """

    point_fn: Callable[[Any], Any]
    retries: int = 2
    backoff_s: float = 0.05
    backoff_cap_s: float = 2.0

    def __call__(self, point: Any) -> _PointOutcome:
        reg = registry()
        last_error = ("Unknown", "no attempt ran")
        for attempt in range(self.retries + 1):
            if attempt:
                reg.inc("campaign.retries")
                delay = min(
                    self.backoff_s * (2 ** (attempt - 1)),
                    self.backoff_cap_s,
                )
                if delay > 0:
                    time.sleep(delay)
            # Every attempt starts from the same cache state so the
            # point's metric delta is a pure function of the point —
            # a retried success stores the same bytes as a first-try
            # success, and point 500 the same as point 0.
            clear_caches()
            before = reg.snapshot()
            try:
                result = self.point_fn(point)
            except Exception as exc:
                last_error = (
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(),
                )
                continue
            delta = tuple(reg.delta_since(before))
            return _PointOutcome("ok", result, None, delta)
        return _PointOutcome("failed", None, last_error, ())


@dataclasses.dataclass(frozen=True)
class CampaignSummary:
    """What one :meth:`CampaignRunner.run` call did."""

    campaign: str
    total: int
    ran: int
    ok: int
    failed: int
    skipped: int
    duplicates: int
    quarantined: int

    @property
    def complete(self) -> bool:
        """Every input point now has a stored record."""
        return self.ran + self.skipped == self.total - self.duplicates


class CampaignRunner:
    """Run one campaign's grid durably through a store.

    Args:
        store: The campaign store (or its root directory).
        name: Campaign name — the store file and the key namespace.
        point_fn: Picklable module-level function of one grid point.
        retries: Extra attempts per point before it is recorded as
            ``failed``.
        backoff_s: First retry delay; doubles per attempt, capped at
            ``backoff_cap_s``.
        retry_failed: Re-run points whose stored record is ``failed``,
            appending a superseding record. Off by default: failed is
            a terminal, deterministic outcome.
        jobs: Worker processes for the grid (``None`` defers to
            ``--jobs``/``REPRO_JOBS`` resolution in ``grid_map``).
    """

    def __init__(
        self,
        store: Any,
        name: str,
        point_fn: Callable[[Any], Any],
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        retry_failed: bool = False,
        jobs: Optional[int] = None,
    ):
        if isinstance(store, str):
            store = CampaignStore(store)
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff must be >= 0")
        self.store: CampaignStore = store
        self.name = name
        self.point_fn = point_fn
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.retry_failed = retry_failed
        self.jobs = jobs

    def run(self, points: Sequence[Any]) -> CampaignSummary:
        """Bring the store to one record per input point; summary back.

        Idempotent: a second call with the same grid runs nothing and
        skips everything. Safe to call after a kill: the torn tail (if
        any) is repaired away first, then only unrecorded points run.
        """
        reg = registry()
        repair = self.store.repair(self.name)
        existing = self.store.load(self.name)
        all_points = list(points)

        seen: set = set()
        todo: List[Tuple[str, Any]] = []
        duplicates = 0
        skipped = 0
        for point in all_points:
            key = point_key(self.name, point)
            if key in seen:
                duplicates += 1
                reg.inc("campaign.points.duplicate")
                continue
            seen.add(key)
            stored = existing.get(key)
            if stored is not None and not (
                self.retry_failed and stored["status"] == "failed"
            ):
                skipped += 1
                reg.inc("campaign.points.skipped")
                continue
            todo.append((key, point))

        counts = {"ok": 0, "failed": 0}

        def _append(index: int, outcome: Any) -> None:
            key, point = todo[index]
            if isinstance(outcome, GridPointError):
                # collect-mode backstop: the worker itself died (e.g.
                # an unpicklable result), not the point function.
                outcome = _PointOutcome(
                    "failed",
                    None,
                    (
                        type(outcome).__name__,
                        str(outcome),
                        getattr(outcome, "traceback", None),
                    ),
                    (),
                )
            record = make_record(
                self.name,
                key,
                point,
                outcome.status,
                result=outcome.result,
                error=outcome.error,
                metrics=record_metrics(outcome.metrics),
            )
            self.store.append(self.name, record)
            counts[outcome.status] += 1
            reg.inc(f"campaign.points.{outcome.status}")

        worker = _CampaignWorker(
            self.point_fn,
            retries=self.retries,
            backoff_s=self.backoff_s,
            backoff_cap_s=self.backoff_cap_s,
        )
        grid_map(
            worker,
            [point for _, point in todo],
            jobs=self.jobs,
            on_error="collect",
            progress=_append,
        )
        return CampaignSummary(
            campaign=self.name,
            total=len(all_points),
            ran=counts["ok"] + counts["failed"],
            ok=counts["ok"],
            failed=counts["failed"],
            skipped=skipped,
            duplicates=duplicates,
            quarantined=repair.quarantined,
        )
