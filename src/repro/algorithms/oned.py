"""1D baselines: 1D tensor parallelism and FSDP (Section 4.3).

Both run on a single ring of chips, so they reach only two of a torus
chip's four ICI links (half the bandwidth of a 2D mesh) and their
communication traffic grows linearly with the chip count — the paper's
motivation for 2D TP. Both overlap communication with computation using
Wang's SendRecv decomposition, as in the paper's evaluation setup.

* **1D TP** (sequence-parallel style): either the input is all-gathered
  along the ring before multiplying with the output-sharded weight, or
  partial outputs are reduce-scattered after multiplying with the
  input-sharded weight. The implementation picks whichever flowing
  matrix is smaller.
* **FSDP**: the batch is sharded; the weight shards are all-gathered
  right before the GeMM (and gradient shards reduce-scattered, which
  has identical cost by symmetry, so the timed plane models the
  gather).
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.algorithms.base import (
    DistributedGeMM,
    GeMMConfig,
    register,
)
from repro.comm.ops import ring_allgather, ring_reducescatter
from repro.core.dataflow import Dataflow
from repro.hw.params import HardwareParams
from repro.mesh.sharding import shard_cols, shard_rows
from repro.sim.engine import LINK_H
from repro.sim.program import Program, ProgramBuilder


def _pipeline(
    builder: ProgramBuilder,
    label: str,
    ring: int,
    step_bytes: float,
    groups: int,
    dims_for_group,
) -> None:
    """Wang-style SendRecv pipeline over one ring.

    ``dims_for_group(size)`` returns the kernel dims of a GeMM covering
    ``size`` of the ring's ``ring`` shards.
    """
    bounds = [g * ring // groups for g in range(groups + 1)]
    hops: List[int] = []
    prev = None
    loop = builder.mark()
    for h in range(1, ring):
        prev = builder.sendrecv(
            f"sendrecv_{label}[{h}]",
            step_bytes,
            LINK_H,
            deps=[prev] if prev is not None else [],
        )
        hops.append(prev)
    builder.motif(loop, ring - 1)
    gemm = None
    loop = builder.mark()
    for g in range(groups):
        size = bounds[g + 1] - bounds[g]
        if size <= 0:
            continue
        deps = []
        last_shard = bounds[g + 1] - 1
        if last_shard >= 1:
            deps.append(hops[last_shard - 1])
        if gemm is not None:
            deps.append(gemm)
        m, n, k = dims_for_group(size)
        gemm = builder.gemm(f"gemm[{g}]", m, n, k, deps=deps)
    builder.motif(loop, groups)


def _canonical_1d(cfg: GeMMConfig) -> GeMMConfig:
    """Canonical configuration of the 1D ring algorithms.

    Both builders have a *fixed* sharding strategy: they read only the
    logical shape and the ring length, never ``dataflow`` or
    ``transposed``, and they merge their pipelines into
    ``max(1, min(slices, ring))`` GeMM groups. Every dataflow and
    transposition variant — and any slice count at or above the ring —
    therefore builds a byte-identical program.
    """
    groups = max(1, min(cfg.slices, cfg.mesh.size))
    if (
        groups == cfg.slices
        and cfg.dataflow is Dataflow.OS
        and not cfg.transposed
    ):
        return cfg
    return dataclasses.replace(
        cfg, dataflow=Dataflow.OS, slices=groups, transposed=False
    )


@register
class OneDTensorParallel(DistributedGeMM):
    """1D TP over a ring, with sequence-parallel style collectives."""

    name = "1dtp"

    def canonical_config(self, cfg: GeMMConfig) -> GeMMConfig:
        return _canonical_1d(cfg)

    def build_program(self, cfg: GeMMConfig, hw: HardwareParams) -> Program:
        builder = ProgramBuilder(hw)
        ring = cfg.mesh.size
        shape = cfg.shape
        groups = max(1, min(cfg.slices, ring))
        if shape.a_bytes <= shape.c_bytes:
            # Gather the input along the ring; weight is output-sharded.
            step_bytes = shape.a_bytes / ring
            m_chunk = max(1, shape.m // ring)

            def dims(size: int):
                return (m_chunk * size, max(1, shape.n // ring), shape.k)

            _pipeline(builder, "a", ring, step_bytes, groups, dims)
        else:
            # Weight is input-sharded; reduce-scatter the partial
            # outputs. The pipeline is the mirrored decomposition:
            # partial GeMMs feed accumulate-and-forward SendRecvs.
            step_bytes = shape.c_bytes / ring
            m_chunk = max(1, shape.m // ring)
            bounds = [g * ring // groups for g in range(groups + 1)]
            prev_hop = None
            gemm = None
            total_hops = ring - 1
            hop_bounds = [g * total_hops // groups for g in range(groups + 1)]
            for g in range(groups):
                size = bounds[g + 1] - bounds[g]
                if size <= 0:
                    continue
                deps = [gemm] if gemm is not None else []
                gemm = builder.gemm(
                    f"gemm[{g}]",
                    m_chunk * size,
                    shape.n,
                    max(1, shape.k // ring),
                    deps=deps,
                )
                for h in range(hop_bounds[g], hop_bounds[g + 1]):
                    hop_deps = [gemm]
                    if prev_hop is not None:
                        hop_deps.append(prev_hop)
                    prev_hop = builder.sendrecv(
                        f"sendrecv_c[{h}]", step_bytes, LINK_H, deps=hop_deps
                    )
        return builder.build(algorithm=self.name, config=cfg)

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: GeMMConfig
    ) -> np.ndarray:
        """Reference: ``C = A @ B`` on a ring of ``cfg.chips`` chips."""
        ring = cfg.mesh.size
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
        if cfg.shape.a_bytes <= cfg.shape.c_bytes:
            a_shards = shard_rows(a, ring)
            b_shards = shard_cols(b, ring)
            gathered = ring_allgather(
                [a_shards[r] for r in range(ring)], axis=0
            )
            c_parts = [gathered[r] @ b_shards[r] for r in range(ring)]
            return np.concatenate(c_parts, axis=1)
        a_shards = shard_cols(a, ring)
        b_shards = shard_rows(b, ring)
        partials = [a_shards[r] @ b_shards[r] for r in range(ring)]
        scattered = ring_reducescatter(partials, axis=0)
        return np.concatenate(scattered, axis=0)


@register
class FSDPGeMM(DistributedGeMM):
    """Fully-sharded data parallelism over a ring."""

    name = "fsdp"

    def canonical_config(self, cfg: GeMMConfig) -> GeMMConfig:
        return _canonical_1d(cfg)

    def build_program(self, cfg: GeMMConfig, hw: HardwareParams) -> Program:
        builder = ProgramBuilder(hw)
        ring = cfg.mesh.size
        shape = cfg.shape
        groups = max(1, min(cfg.slices, ring))
        step_bytes = shape.b_bytes / ring
        m_local = max(1, shape.m // ring)
        k_chunk = max(1, shape.k // ring)

        def dims(size: int):
            return (m_local, shape.n, k_chunk * size)

        _pipeline(builder, "w", ring, step_bytes, groups, dims)
        return builder.build(algorithm=self.name, config=cfg)

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: GeMMConfig
    ) -> np.ndarray:
        """Reference: ``C = A @ B`` with batch-sharded A, gathered B."""
        ring = cfg.mesh.size
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
        a_shards = shard_rows(a, ring)
        b_shards = shard_rows(b, ring)
        gathered_b = ring_allgather([b_shards[r] for r in range(ring)], axis=0)
        c_parts = [a_shards[r] @ gathered_b[r] for r in range(ring)]
        return np.concatenate(c_parts, axis=0)
