"""Cannon's algorithm baseline (Section 2.3.2).

The classic systolic 2D GeMM: an initial *skew* pre-shifts row ``i`` of
``A`` by ``i`` positions and column ``j`` of ``B`` by ``j`` positions,
after which ``P`` iterations of multiply-then-shift (single-hop
SendRecvs in both directions) complete the product. Its two limitations
drive the paper's comparison: the skew is pure extra traffic, and only
square meshes are supported — so when the matrix sizes are imbalanced
Cannon cannot pick a traffic-minimizing mesh shape.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.algorithms.base import DistributedGeMM, GeMMConfig, register
from repro.core.dataflow import Dataflow
from repro.hw.params import HardwareParams
from repro.mesh.sharding import gather_matrix, shard_matrix, zeros_like_sharded
from repro.sim.engine import LINK_H, LINK_V
from repro.sim.program import Program, ProgramBuilder


@register
class CannonGeMM(DistributedGeMM):
    """Skew-and-shift systolic 2D GeMM (output-stationary only)."""

    name = "cannon"

    def check_support(self, cfg: GeMMConfig) -> Optional[str]:
        if not cfg.mesh.is_square:
            return f"Cannon requires a square mesh, got {cfg.mesh}"
        if cfg.dataflow is not Dataflow.OS:
            return "Cannon is an output-stationary algorithm"
        return None

    def canonical_config(self, cfg: GeMMConfig) -> GeMMConfig:
        """Cannon's iteration count is the mesh side; the builder
        reads neither ``slices`` nor ``transposed`` (the skew-and-shift
        schedule is symmetric), so those knobs share one program."""
        if cfg.slices == 1 and not cfg.transposed:
            return cfg
        return dataclasses.replace(cfg, slices=1, transposed=False)

    def build_program(self, cfg: GeMMConfig, hw: HardwareParams) -> Program:
        reason = self.check_support(cfg)
        if reason:
            raise ValueError(reason)
        builder = ProgramBuilder(hw)
        side = cfg.mesh.rows
        chips = cfg.mesh.size
        a_shard = cfg.shape.a_bytes / chips
        b_shard = cfg.shape.b_bytes / chips
        m = max(1, cfg.shape.m // side)
        n = max(1, cfg.shape.n // side)
        k = max(1, cfg.shape.k // side)

        # Skew: the worst chip moves its shard floor(P/2) hops (the
        # torus halves the worst-case distance). Both directions skew
        # in parallel on their own links.
        skew_hops = side // 2
        skew_a = builder.sendrecv("skew_a", a_shard, LINK_H, hops=skew_hops)
        skew_b = builder.sendrecv("skew_b", b_shard, LINK_V, hops=skew_hops)

        prev_shift_a, prev_shift_b = skew_a, skew_b
        prev_gemm = None
        # The last step emits no shifts, so only the first side - 1
        # iterations are annotated (the compiled engine would reject an
        # uneven tail instance anyway).
        loop = builder.mark()
        for step in range(side):
            if step == side - 1:
                builder.motif(loop, side - 1)
            deps = [prev_shift_a, prev_shift_b]
            if prev_gemm is not None:
                deps.append(prev_gemm)
            prev_gemm = builder.gemm(f"gemm[{step}]", m, n, k, deps=deps)
            if step < side - 1:
                prev_shift_a = builder.sendrecv(
                    f"shift_a[{step}]", a_shard, LINK_H, deps=[prev_shift_a]
                )
                prev_shift_b = builder.sendrecv(
                    f"shift_b[{step}]", b_shard, LINK_V, deps=[prev_shift_b]
                )
        return builder.build(algorithm=self.name, config=cfg)

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: GeMMConfig
    ) -> np.ndarray:
        """Skew + systolic shifts on numpy shards: ``C = A @ B``."""
        reason = self.check_support(cfg)
        if reason:
            raise ValueError(reason)
        mesh = cfg.mesh
        side = mesh.rows
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
        a_sh = shard_matrix(a, mesh)
        b_sh = shard_matrix(b, mesh)
        c_sh = zeros_like_sharded(
            (a.shape[0], b.shape[1]), mesh, dtype=np.result_type(a, b)
        )
        # Skew: row i of A shifts left by i; column j of B shifts up by j.
        a_cur = {
            (i, j): a_sh.shard((i, (j + i) % side)) for i, j in mesh.coords()
        }
        b_cur = {
            (i, j): b_sh.shard(((i + j) % side, j)) for i, j in mesh.coords()
        }
        for _step in range(side):
            for coord in mesh.coords():
                c_sh.shards[coord] += a_cur[coord] @ b_cur[coord]
            a_cur = {
                (i, j): a_cur[(i, (j + 1) % side)] for i, j in mesh.coords()
            }
            b_cur = {
                (i, j): b_cur[((i + 1) % side, j)] for i, j in mesh.coords()
            }
        return gather_matrix(c_sh)
