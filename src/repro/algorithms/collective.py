"""Collective 2D GeMM baseline (Section 2.3.4, Figure 2b).

One full AllGather per gathered direction, a single local GeMM, and a
full ReduceScatter per scattered direction. The two collectives in
different directions run in parallel (different links), but nothing
overlaps with the GeMM computation — the algorithm's defining
limitation. MeshSlice degenerates to this algorithm at slice count 1
(minus the slicing copies).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import (
    DistributedGeMM,
    GeMMConfig,
    abft_epilogue,
    abft_payload_factor,
    collective_local_dims,
    flow_ops,
    matrix_bytes,
    register,
)
from repro.comm.ops import ag_col, ag_row, rds_col, rds_row
from repro.core.dataflow import Dataflow
from repro.core.gemm import local_gemm
from repro.hw.params import HardwareParams
from repro.mesh.sharding import gather_matrix, shard_matrix
from repro.sim.engine import LINK_H, LINK_V
from repro.sim.program import Program, ProgramBuilder


@register
class CollectiveGeMM(DistributedGeMM):
    """AG/RdS 2D GeMM without communication-computation overlap."""

    name = "collective"

    def check_support(self, cfg: GeMMConfig) -> Optional[str]:
        if cfg.slices != 1:
            return "collective 2D GeMM has no granularity knob (slices must be 1)"
        return None

    def build_program(self, cfg: GeMMConfig, hw: HardwareParams) -> Program:
        builder = ProgramBuilder(hw)
        chips = cfg.mesh.size
        (col_op, col_mat), (row_op, row_mat) = flow_ops(
            cfg.dataflow, cfg.transposed
        )
        directions = [
            (col_op, col_mat, LINK_H, cfg.mesh.cols),
            (row_op, row_mat, LINK_V, cfg.mesh.rows),
        ]
        encode = {}
        if cfg.abft:
            for mat in ("a", "b"):
                elements = matrix_bytes(cfg.shape, mat) / (
                    chips * cfg.shape.dtype_bytes
                )
                encode[mat] = builder.checksum(f"abft_encode_{mat}", elements)
        gemm_deps = []
        for op, mat, link, ring in directions:
            if op != "ag":
                continue
            shard_bytes = (
                matrix_bytes(cfg.shape, mat)
                * abft_payload_factor(cfg, mat)
                / chips
            )
            deps = [encode[mat]] if mat in encode else []
            gemm_deps.append(
                builder.allgather(f"ag_{mat}", ring, shard_bytes, link, deps=deps)
            )
        gemm_deps += [e for e in encode.values() if e not in gemm_deps]
        m, n, k = collective_local_dims(cfg)
        gemm = builder.gemm("gemm", m, n, k, deps=gemm_deps)
        tail = [gemm]
        for op, mat, link, ring in directions:
            if op != "rds":
                continue
            shard_bytes = (
                matrix_bytes(cfg.shape, mat)
                * abft_payload_factor(cfg, mat)
                / chips
            )
            tail.append(
                builder.reducescatter(
                    f"rds_{mat}", ring, shard_bytes, link, deps=[gemm]
                )
            )
        if cfg.abft:
            abft_epilogue(builder, cfg, hw, tail)
        return builder.build(algorithm=self.name, config=cfg)

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: GeMMConfig
    ) -> np.ndarray:
        """Figure 2b executed on numpy shards.

        Same operand orientations as the MeshSlice functional plane:
        OS computes ``A @ B``, LS computes ``A @ B.T`` with B stored
        ``N x K``, RS computes ``A.T @ B`` with A stored ``K x M``.
        """
        if cfg.transposed:
            raise NotImplementedError(
                "functional plane covers non-transposed variants"
            )
        mesh = cfg.mesh
        a_sh = shard_matrix(a, mesh)
        b_sh = shard_matrix(b, mesh)
        if cfg.dataflow is Dataflow.OS:
            a_full = ag_col(a_sh.shards, mesh, axis=1)
            b_full = ag_row(b_sh.shards, mesh, axis=0)
            out = {
                coord: local_gemm(a_full[coord], b_full[coord])
                for coord in mesh.coords()
            }
            return _assemble(out, mesh, (a.shape[0], b.shape[1]))
        if cfg.dataflow is Dataflow.LS:
            b_full = ag_row(b_sh.shards, mesh, axis=0)
            partial = {
                coord: local_gemm(a_sh.shard(coord), b_full[coord].T)
                for coord in mesh.coords()
            }
            out = rds_col(partial, mesh, axis=1)
            return _assemble(out, mesh, (a.shape[0], b.shape[0]))
        if cfg.dataflow is Dataflow.RS:
            a_full = ag_col(a_sh.shards, mesh, axis=1)
            partial = {
                coord: local_gemm(a_full[coord].T, b_sh.shard(coord))
                for coord in mesh.coords()
            }
            out = rds_row(partial, mesh, axis=0)
            return _assemble(out, mesh, (a.shape[1], b.shape[1]))
        raise ValueError(f"unknown dataflow {cfg.dataflow!r}")


def _assemble(shards, mesh, global_shape) -> np.ndarray:
    from repro.mesh.sharding import ShardedMatrix

    return gather_matrix(
        ShardedMatrix(mesh=mesh, shards=shards, global_shape=global_shape)
    )
