"""Common abstractions for distributed GeMM algorithm implementations.

Every algorithm provides two planes:

* a **functional** execution over numpy shards (bit-exact, used to
  verify correctness against local matmul), and
* a **timed** execution: it builds a :class:`repro.sim.Program` for one
  representative chip, which the simulator runs to produce the paper's
  performance metrics.

:func:`flow_ops` encodes which matrices flow in which torus direction
under each dataflow, and with which collective (AllGather for inputs,
ReduceScatter for outputs) — the information that determines an
algorithm's traffic cost (Section 2.3.1).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, Optional, Tuple, Type

import numpy as np

from repro.core.dataflow import Dataflow, sliced_dimension
from repro.core.gemm import GeMMShape
from repro.hw.params import HardwareParams
from repro.mesh.topology import Mesh2D
from repro.sim.chip import gemm_cost
from repro.sim.program import Program, ProgramBuilder


@dataclasses.dataclass(frozen=True)
class GeMMConfig:
    """One distributed GeMM execution configuration.

    Attributes:
        shape: Logical problem ``C[M,N] = L[M,K] R[K,N]``.
        mesh: The 2D chip mesh (1D algorithms use ``mesh.size`` chips
            in a single ring).
        dataflow: Which matrix stays stationary.
        slices: Granularity knob: MeshSlice's slice count ``S``, and
            the unrolled iteration count for SUMMA and Wang
            (Section 4.2 sets those equal for fairness).
        transposed: Use the transposed dataflow variant (Section 3.2.1):
            all matrices transposed and the two flow directions flipped.
        abft: Protect the GeMM with ABFT checksums (:mod:`repro.abft`):
            the timed plane charges checksum encode/verify passes,
            enlarged collective payloads, and an expected-recompute
            epilogue driven by ``sdc_rate``.
        sdc_rate: Expected silent-data-corruption rate per protected
            operation, driving the ABFT recompute epilogue's
            probability (ignored when ``abft`` is false).
    """

    shape: GeMMShape
    mesh: Mesh2D
    dataflow: Dataflow = Dataflow.OS
    slices: int = 1
    transposed: bool = False
    abft: bool = False
    sdc_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.slices < 1:
            raise ValueError(f"slices must be >= 1, got {self.slices}")
        if not 0.0 <= self.sdc_rate <= 1.0:
            raise ValueError(f"sdc_rate must be in [0, 1], got {self.sdc_rate}")

    def __hash__(self) -> int:
        # Configurations key every memoized cost-model and simulation
        # lookup; cache the (frozen) field hash instead of rehashing
        # shape and mesh on each call.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(
                (self.shape, self.mesh, self.dataflow, self.slices,
                 self.transposed, self.abft, self.sdc_rate)
            )
            object.__setattr__(self, "_hash", h)
        return h

    def __getstate__(self):
        # The cached hash covers an enum (identity-hashed); never ship
        # it to another process.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    @property
    def chips(self) -> int:
        return self.mesh.size

    @property
    def flops_per_chip(self) -> float:
        return self.shape.flops / self.chips


#: One flowing matrix in one torus direction: ("ag"|"rds", "a"|"b"|"c").
FlowOp = Tuple[str, str]

_FLOW_TABLE = {
    Dataflow.OS: (("ag", "a"), ("ag", "b")),
    Dataflow.LS: (("rds", "c"), ("ag", "b")),
    Dataflow.RS: (("ag", "a"), ("rds", "c")),
}


def flow_ops(dataflow: Dataflow, transposed: bool = False) -> Tuple[FlowOp, FlowOp]:
    """The (inter-column, inter-row) communication of each dataflow.

    Returns a pair of ``(collective, matrix)`` tuples: the first for the
    inter-column direction (communication within row rings), the second
    for the inter-row direction (within column rings). Inputs flow via
    AllGather; outputs flow via ReduceScatter. The transposed variant
    flips the two directions.
    """
    col_op, row_op = _FLOW_TABLE[dataflow]
    if transposed:
        return row_op, col_op
    return col_op, row_op


def matrix_bytes(shape: GeMMShape, matrix: str) -> float:
    """Size of the logical matrix ``"a"``, ``"b"``, or ``"c"``."""
    if matrix == "a":
        return shape.a_bytes
    if matrix == "b":
        return shape.b_bytes
    if matrix == "c":
        return shape.c_bytes
    raise ValueError(f"unknown matrix {matrix!r}")


def abft_payload_factor(cfg: GeMMConfig, matrix: str) -> float:
    """Collective payload growth of a flowing matrix under ABFT.

    The checksum row appended to each local ``A`` shard grows its
    flowing rows from ``m_loc`` to ``m_loc + 1``; the checksum column
    on ``B`` grows ``n_loc`` likewise; a flowing output carries both.
    Returns ``1.0`` when ``cfg.abft`` is off.
    """
    if not cfg.abft:
        return 1.0
    m_loc, n_loc, _ = collective_local_dims(cfg)
    if matrix == "a":
        return 1.0 + 1.0 / m_loc
    if matrix == "b":
        return 1.0 + 1.0 / n_loc
    if matrix == "c":
        return (1.0 + 1.0 / m_loc) * (1.0 + 1.0 / n_loc)
    raise ValueError(f"unknown matrix {matrix!r}")


def abft_epilogue(
    builder: ProgramBuilder,
    cfg: GeMMConfig,
    hw: HardwareParams,
    deps: Tuple[int, ...],
) -> int:
    """Append the ABFT verify-and-recompute epilogue to a program.

    One checksum pass re-sums the accumulated local output block
    against its carried row/column checksums (the data is read for the
    row sums and again for the column sums, hence the factor 2), then
    an expected-cost recompute of the full local block models the
    fallback for detected-uncorrectable corruption: its probability is
    the per-operation SDC rate times the number of protected
    operations, capped at 1.
    """
    out_elements = float(cfg.shape.m) * cfg.shape.n / cfg.mesh.size
    verify = builder.checksum("abft_verify_c", 2.0 * out_elements, deps=deps)
    probability = min(1.0, cfg.sdc_rate * abft_protected_ops(cfg))
    m, n, k = collective_local_dims(cfg)
    return builder.expected_compute(
        "abft_recompute", gemm_cost(m, n, k, hw), probability, deps=[verify]
    )


def abft_protected_ops(cfg: GeMMConfig) -> int:
    """Operations exposed to silent corruption in one protected GeMM.

    Per slice (or unrolled iteration): one local partial GeMM plus one
    collective per torus direction whose ring is non-trivial. Scales
    the expected-recompute probability of the ABFT verify epilogue.
    """
    collectives = sum(1 for ring in (cfg.mesh.cols, cfg.mesh.rows) if ring > 1)
    return cfg.slices * (1 + collectives)


def traffic_seconds(cfg: GeMMConfig, hw: HardwareParams) -> Tuple[float, float]:
    """Pure transfer-time lower bound per direction (Section 2.3.1).

    Returns ``(inter_column, inter_row)`` times: for a matrix of size
    ``sizeof(M)`` flowing among ``P_dir`` chips of a ring,
    ``(P_dir - 1) * sizeof(M) / (P_r * P_c) / bw``.
    """
    (col_op, row_op) = flow_ops(cfg.dataflow, cfg.transposed)
    chips = cfg.mesh.size
    bw = hw.ring_bandwidth
    col_time = (
        (cfg.mesh.cols - 1) * matrix_bytes(cfg.shape, col_op[1]) / chips / bw
    )
    row_time = (
        (cfg.mesh.rows - 1) * matrix_bytes(cfg.shape, row_op[1]) / chips / bw
    )
    return col_time, row_time


class DistributedGeMM(abc.ABC):
    """A distributed GeMM algorithm (timed plane plus optional functional).

    Subclasses set ``name`` and implement :meth:`build_program`;
    :meth:`check_support` reports configuration constraints (e.g.
    Cannon's square-mesh requirement).
    """

    name: str = "abstract"

    @abc.abstractmethod
    def build_program(self, cfg: GeMMConfig, hw: HardwareParams) -> Program:
        """Build the representative-chip activity DAG for ``cfg``."""

    def check_support(self, cfg: GeMMConfig) -> Optional[str]:
        """Why ``cfg`` is unsupported, or ``None`` if it is supported."""
        return None

    def supports(self, cfg: GeMMConfig) -> bool:
        return self.check_support(cfg) is None

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: GeMMConfig
    ) -> np.ndarray:
        """Bit-exact numpy execution (optional; see each algorithm)."""
        raise NotImplementedError(
            f"{self.name} does not provide a functional implementation"
        )

    def canonical_config(self, cfg: GeMMConfig) -> GeMMConfig:
        """The canonical representative of ``cfg``'s equivalence class.

        Contract: ``build_program(canonical_config(cfg), hw)`` emits a
        program whose activities and shared capacities are
        **bit-identical** to ``build_program(cfg, hw)`` for every
        ``hw`` — the simulation caches key on the canonical form, so
        any weaker equivalence (same makespan but different labels,
        say) would leak one configuration's trace to another.

        The default is the identity. Algorithms whose builders ignore
        or clamp knobs override it: Cannon's iteration count is fixed
        by the mesh side, and the SendRecv-pipeline algorithms clamp
        the slice count to their decomposed ring length.
        """
        return cfg

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: Dict[str, Type[DistributedGeMM]] = {}


def register(cls: Type[DistributedGeMM]) -> Type[DistributedGeMM]:
    """Class decorator registering an algorithm under its ``name``."""
    if cls.name in _REGISTRY:
        raise ValueError(f"algorithm {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_algorithm(name: str) -> DistributedGeMM:
    """Instantiate a registered algorithm by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}")


def algorithm_names() -> Tuple[str, ...]:
    """Names of all registered algorithms."""
    return tuple(sorted(_REGISTRY))


def effective_problem(cfg: GeMMConfig) -> Tuple[GeMMShape, Dataflow]:
    """The problem actually executed after applying transposition.

    The transposed variant of a dataflow (Section 3.2.1) transposes all
    matrices and flips the flow directions. Transposition maps OS to
    itself and exchanges LS and RS (transposing ``C = A Bᵀ`` gives
    ``Cᵀ = B Aᵀ``, a right-stationary form). The effective shape is the
    transposed logical shape.
    """
    if not cfg.transposed:
        return cfg.shape, cfg.dataflow
    swapped = {
        Dataflow.OS: Dataflow.OS,
        Dataflow.LS: Dataflow.RS,
        Dataflow.RS: Dataflow.LS,
    }
    return cfg.shape.transposed(), swapped[cfg.dataflow]


def collective_local_dims(cfg: GeMMConfig) -> Tuple[int, int, int]:
    """Local GeMM kernel dimensions of the Collective algorithm.

    After the full AllGathers, each chip multiplies (per dataflow, with
    ``(m, n, k)`` the effective problem dims and ``P_r x P_c`` the
    mesh): OS ``(m/P_r, n/P_c, k)``, LS ``(m/P_r, n, k/P_c)``,
    RS ``(m, n/P_c, k/P_r)``.
    """
    shape, dataflow = effective_problem(cfg)
    rows, cols = cfg.mesh.rows, cfg.mesh.cols
    m, n, k = shape.m, shape.n, shape.k
    if dataflow is Dataflow.OS:
        return (_div(m, rows), _div(n, cols), k)
    if dataflow is Dataflow.LS:
        return (_div(m, rows), n, _div(k, cols))
    if dataflow is Dataflow.RS:
        return (m, _div(n, cols), _div(k, rows))
    raise ValueError(f"unknown dataflow {dataflow!r}")


def sliced_local_dims(cfg: GeMMConfig, slices: int) -> Tuple[int, int, int]:
    """Local kernel dimensions when the sliced dimension is split S ways.

    MeshSlice, SUMMA (with unrolled iteration count S), and Wang all
    partition the same logical dimension — the one the gathered inputs
    or scattered outputs span (K for OS, N for LS, M for RS).
    """
    shape, dataflow = effective_problem(cfg)
    m, n, k = collective_local_dims(cfg)
    dim = sliced_dimension(dataflow)
    if dim == "k":
        return (m, n, _div(k, slices))
    if dim == "n":
        return (m, _div(n, slices), k)
    return (_div(m, slices), n, k)


def _div(extent: int, parts: int) -> int:
    """Integer division, rounding up so degenerate splits stay positive."""
    return max(1, -(-extent // parts))
