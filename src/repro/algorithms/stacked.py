"""3D-cluster GeMM algorithms: 2.5D GeMM and MeshSlice+DP (Section 7).

The paper's closing comparison pits two ways of using a third torus
dimension of ``c`` replicas:

* **2.5D GeMM** [28]: Cannon-based. The base mesh must be square
  (``P x P x c``); the inputs are replicated ``c`` ways along the third
  dimension, each replica layer computes ``1/c`` of the contraction
  with ``P / c`` systolic shift steps, and the partial outputs are
  reduced across the replica dimension. Replication and the square-base
  constraint are its traffic handicaps.
* **MeshSlice+DP**: data parallelism along the third dimension — each
  of the ``c`` 2D meshes trains ``1/c`` of the batch with MeshSlice,
  and the weight gradients are all-reduced across replicas. Any
  ``P_r x P_c`` base shape is allowed, so the mesh can be
  traffic-optimal.

Both are provided in functional (numpy, bit-exact) and timed
(simulator program) forms. The timed plane models the replica dimension
as a third ring sharing the vertical link budget (a 3D torus gives each
chip six links; we conservatively let the replica ring borrow the
vertical direction's second link, halving neither 2D ring).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

import numpy as np

from repro.algorithms.base import GeMMConfig
from repro.algorithms.cannon import CannonGeMM
from repro.algorithms.meshslice import MeshSliceGeMM
from repro.comm.cost import CommCostModel
from repro.core.dataflow import Dataflow
from repro.core.gemm import GeMMShape
from repro.hw.params import HardwareParams
from repro.mesh.topology import Mesh2D
from repro.sim.engine import LINK_H, LINK_V
from repro.sim.program import Program, ProgramBuilder

#: Resource name of the replica-dimension ring (3D torus third axis).
LINK_D = "link_d"


@dataclasses.dataclass(frozen=True)
class StackedConfig:
    """Configuration of a GeMM on a 3D ``base x copies`` cluster.

    Attributes:
        shape: The logical GeMM.
        base: The 2D base mesh (must be square for 2.5D).
        copies: Replication factor ``c`` along the third dimension.
        slices: MeshSlice slice count (ignored by 2.5D).
    """

    shape: GeMMShape
    base: Mesh2D
    copies: int
    slices: int = 1

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ValueError(f"copies must be >= 1, got {self.copies}")
        if self.slices < 1:
            raise ValueError(f"slices must be >= 1, got {self.slices}")

    @property
    def chips(self) -> int:
        return self.base.size * self.copies


class TwoPointFiveDGeMM:
    """The 2.5D matrix multiplication algorithm [28]."""

    name = "2.5d"

    def check_support(self, cfg: StackedConfig) -> Optional[str]:
        if not cfg.base.is_square:
            return f"2.5D GeMM requires a square base mesh, got {cfg.base}"
        side = cfg.base.rows
        if side % cfg.copies != 0:
            return (
                f"replication factor {cfg.copies} must divide the base "
                f"side {side}"
            )
        return None

    def per_chip_traffic_bytes(self, cfg: StackedConfig) -> float:
        """Shift traffic per chip: ``(P/c) * (|A| + |B|) / P^2``.

        This is the quantity the paper's Section 7 example reports
        (1.6 GB for the GPT-3 FC layer on 16x16x4).
        """
        reason = self.check_support(cfg)
        if reason:
            raise ValueError(reason)
        side = cfg.base.rows
        shifts = max(1, side // cfg.copies)
        return shifts * (cfg.shape.a_bytes + cfg.shape.b_bytes) / (side * side)

    def build_program(self, cfg: StackedConfig, hw: HardwareParams) -> Program:
        """Timed plane: skew + P/c shifts + replica reduce-scatter."""
        reason = self.check_support(cfg)
        if reason:
            raise ValueError(reason)
        builder = ProgramBuilder(hw)
        side = cfg.base.rows
        chips = side * side
        a_shard = cfg.shape.a_bytes / chips
        b_shard = cfg.shape.b_bytes / chips
        c_shard = cfg.shape.c_bytes / chips
        steps = max(1, side // cfg.copies)
        m = max(1, cfg.shape.m // side)
        n = max(1, cfg.shape.n // side)
        k = max(1, cfg.shape.k // side)

        # Replicating the inputs onto the c layers: a broadcast along
        # the replica ring (both inputs move; the ring pipelines them).
        replicate = None
        if cfg.copies > 1:
            cost = self.costs(hw).allgather(cfg.copies, (a_shard + b_shard))
            replicate = builder.comm_on("replicate_ab", cost, (LINK_D,))

        skew_deps = [replicate] if replicate is not None else []
        skew_a = builder.sendrecv(
            "skew_a", a_shard, LINK_H, deps=skew_deps, hops=side // 2
        )
        skew_b = builder.sendrecv(
            "skew_b", b_shard, LINK_V, deps=skew_deps, hops=side // 2
        )
        prev_a, prev_b, gemm = skew_a, skew_b, None
        # Annotate the uniform prefix (the last step emits no shifts).
        loop = builder.mark()
        for step in range(steps):
            if step == steps - 1:
                builder.motif(loop, steps - 1)
            deps = [prev_a, prev_b]
            if gemm is not None:
                deps.append(gemm)
            # Each replica layer covers K/c of the contraction in P/c
            # steps, i.e. K/P per step and per chip.
            gemm = builder.gemm(f"gemm[{step}]", m, n, k, deps=deps)
            if step < steps - 1:
                prev_a = builder.sendrecv(
                    f"shift_a[{step}]", a_shard, LINK_H, deps=[prev_a]
                )
                prev_b = builder.sendrecv(
                    f"shift_b[{step}]", b_shard, LINK_V, deps=[prev_b]
                )
        if cfg.copies > 1:
            cost = self.costs(hw).reducescatter(cfg.copies, c_shard)
            builder.comm_on(
                "reduce_c", cost, (LINK_D,),
                deps=[gemm] if gemm is not None else (),
            )
        return builder.build(algorithm=self.name, config=cfg)

    @staticmethod
    def costs(hw: HardwareParams) -> CommCostModel:
        return CommCostModel(hw)

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: StackedConfig
    ) -> np.ndarray:
        """Bit-exact 2.5D execution: ``C = A @ B``.

        Each replica layer ``l`` handles the contraction slab
        ``K_l = [l K/c, (l+1) K/c)`` with Cannon over the base mesh,
        and the layers' partial outputs are summed (the replica-ring
        reduction).
        """
        reason = self.check_support(cfg)
        if reason:
            raise ValueError(reason)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
        k = a.shape[1]
        if k % cfg.copies != 0:
            raise ValueError(
                f"contraction {k} must divide by copies {cfg.copies}"
            )
        slab = k // cfg.copies
        cannon = CannonGeMM()
        total = None
        for layer in range(cfg.copies):
            a_slab = a[:, layer * slab:(layer + 1) * slab]
            b_slab = b[layer * slab:(layer + 1) * slab, :]
            layer_cfg = GeMMConfig(
                GeMMShape(a.shape[0], b.shape[1], slab),
                cfg.base,
                Dataflow.OS,
            )
            partial = cannon.functional(a_slab, b_slab, layer_cfg)
            total = partial if total is None else total + partial
        return total


class MeshSliceDPGeMM:
    """MeshSlice on each 2D mesh plus data parallelism across replicas."""

    name = "meshslice+dp"

    def check_support(self, cfg: StackedConfig) -> Optional[str]:
        if cfg.shape.m % cfg.copies != 0:
            return (
                f"batch dimension {cfg.shape.m} must divide by the DP "
                f"factor {cfg.copies}"
            )
        return None

    def per_copy_shape(self, cfg: StackedConfig) -> GeMMShape:
        return GeMMShape(
            m=cfg.shape.m // cfg.copies,
            n=cfg.shape.n,
            k=cfg.shape.k,
            dtype_bytes=cfg.shape.dtype_bytes,
        )

    def per_chip_traffic_bytes(
        self, cfg: StackedConfig, dataflow: Dataflow = Dataflow.LS
    ) -> float:
        """2D flowing traffic plus the DP weight-gradient all-reduce."""
        from repro.algorithms.base import flow_ops, matrix_bytes

        reason = self.check_support(cfg)
        if reason:
            raise ValueError(reason)
        shape = self.per_copy_shape(cfg)
        chips = cfg.base.size
        (col_op, col_mat), (row_op, row_mat) = flow_ops(dataflow)
        col = (cfg.base.cols - 1) * matrix_bytes(shape, col_mat) / chips
        row = (cfg.base.rows - 1) * matrix_bytes(shape, row_mat) / chips
        dp = 2.0 * (cfg.copies - 1) / cfg.copies * cfg.shape.b_bytes / chips
        return col + row + dp

    def build_program(
        self,
        cfg: StackedConfig,
        hw: HardwareParams,
        dataflow: Dataflow = Dataflow.LS,
    ) -> Program:
        """Timed plane: the 2D MeshSlice program plus an overlapped DP
        gradient all-reduce on the replica ring."""
        reason = self.check_support(cfg)
        if reason:
            raise ValueError(reason)
        mesh_cfg = GeMMConfig(
            self.per_copy_shape(cfg), cfg.base, dataflow, slices=cfg.slices
        )
        program = MeshSliceGeMM().build_program(mesh_cfg, hw)
        if cfg.copies > 1:
            # All-reduce = RdS + AG of the local weight-gradient shard
            # over the replica ring; it overlaps the GeMM (classic DP).
            builder = ProgramBuilder.extending(program, hw)
            grad_shard = cfg.shape.b_bytes / cfg.base.size
            costs = CommCostModel(hw)
            rds = costs.reducescatter(cfg.copies, grad_shard / cfg.copies)
            ag = costs.allgather(cfg.copies, grad_shard / cfg.copies)
            first = builder.comm_on("dp_rds_w", rds, (LINK_D,))
            builder.comm_on("dp_ag_w", ag, (LINK_D,), deps=[first])
            program = builder.build(**program.meta)
        return program

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: StackedConfig
    ) -> np.ndarray:
        """Bit-exact MeshSlice+DP: each replica multiplies its batch
        slab with the full weight; results concatenate along M."""
        reason = self.check_support(cfg)
        if reason:
            raise ValueError(reason)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
        slab = a.shape[0] // cfg.copies
        meshslice = MeshSliceGeMM()
        parts: List[np.ndarray] = []
        for replica in range(cfg.copies):
            a_slab = a[replica * slab:(replica + 1) * slab, :]
            copy_cfg = GeMMConfig(
                GeMMShape(slab, b.shape[1], a.shape[1]),
                cfg.base,
                Dataflow.OS,
                slices=cfg.slices,
            )
            parts.append(meshslice.functional(a_slab, b, copy_cfg))
        return np.concatenate(parts, axis=0)


def square_bases(chips: int, copies: int) -> List[Mesh2D]:
    """Square base meshes available for 2.5D on a cluster."""
    if chips % copies != 0:
        return []
    base_chips = chips // copies
    side = math.isqrt(base_chips)
    if side * side != base_chips:
        return []
    return [Mesh2D(side, side)]
