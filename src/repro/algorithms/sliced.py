"""One-sided sliced GeMM (Brock & Golin, "Slicing Is All You Need").

The universal one-sided algorithm: instead of ring collectives, every
chip *gets* exactly the operand windows its next partial product needs
directly from their owners' memory — windows may span owner shard
boundaries, which is what makes the algorithm shape-agnostic — and
closes each slice epoch with a single fence. Synchronization therefore
scales with the slice count, not the ring size: a get epoch pays zero
per-step syncs where a ring collective pays ``P - 1``, which is the
regime (latency-bound small shards, large meshes) where slicing beats
the collectives.

Timed plane: the MeshSlice program shape with every AllGather replaced
by a get epoch + fence and every ReduceScatter by an accumulate epoch
+ fence (:class:`repro.comm.onesided.OneSidedCostModel`). One-sided
addressing also needs no local slicing copies — the window *is* the
slice. Functional plane: windowed one-sided gets over sharded numpy,
bit-exact vs ``A @ B``.

ABFT is structurally unsupported: checksum rows/columns are appended at
shard granularity, and a windowed get slices through them, so
:meth:`check_support` rejects ``abft=True`` with a structured reason
instead of silently dropping protection (see ``docs/algorithms.md``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.algorithms.base import (
    DistributedGeMM,
    GeMMConfig,
    effective_problem,
    flow_ops,
    matrix_bytes,
    register,
    sliced_local_dims,
)
from repro.comm import onesided
from repro.comm.onesided import OneSidedCostModel
from repro.core.dataflow import Dataflow, sliced_extent
from repro.core.gemm import local_gemm
from repro.hw.params import HardwareParams
from repro.mesh.sharding import gather_matrix, shard_matrix, ShardedMatrix
from repro.mesh.topology import Mesh2D
from repro.sim.engine import LINK_H, LINK_V
from repro.sim.program import Program, ProgramBuilder

#: The structured reason one-sided algorithms reject ABFT configs.
ABFT_UNSUPPORTED = (
    "ABFT checksums do not survive one-sided transfers: windowed "
    "gets/puts address sub-shard ranges that slice through the "
    "shard-granularity checksum rows/columns"
)


@register
class SlicedGeMM(DistributedGeMM):
    """One-sided sliced 2D GeMM over get/put epochs."""

    name = "sliced"

    def check_support(self, cfg: GeMMConfig) -> Optional[str]:
        if cfg.abft:
            return ABFT_UNSUPPORTED
        shape, dataflow = effective_problem(cfg)
        extent = sliced_extent(shape, dataflow)
        for parts in (cfg.mesh.rows, cfg.mesh.cols):
            local = extent // parts
            if local < 1 or local % cfg.slices != 0:
                return (
                    f"slice count {cfg.slices} does not divide the local "
                    f"extent {local} of the sliced dimension"
                )
        return None

    def build_program(self, cfg: GeMMConfig, hw: HardwareParams) -> Program:
        builder = ProgramBuilder(hw)
        costs = OneSidedCostModel.for_hw(hw)
        chips = cfg.mesh.size
        slices = cfg.slices
        (col_op, col_mat), (row_op, row_mat) = flow_ops(
            cfg.dataflow, cfg.transposed
        )
        directions = [
            (col_op, col_mat, LINK_H, cfg.mesh.cols),
            (row_op, row_mat, LINK_V, cfg.mesh.rows),
        ]
        m, n, k = sliced_local_dims(cfg, slices)

        # Gather side: one get epoch per slice per flowing input — the
        # window addressing replaces MeshSlice's local slicing copies,
        # so the loop body is epoch + fence only.
        fence_ids: List[List[int]] = []  # [direction][s] -> fence id
        for op, mat, link, ring in directions:
            if op != "ag":
                fence_ids.append([])
                continue
            sub_bytes = matrix_bytes(cfg.shape, mat) / (chips * slices)
            fences = []
            loop = builder.mark()
            for s in range(slices):
                epoch = builder.comm_on(
                    f"get_{mat}[{s}]", costs.epoch(ring, sub_bytes), (link,)
                )
                fences.append(
                    builder.comm_on(
                        f"fence_{mat}[{s}]", costs.fence(ring), (link,),
                        deps=[epoch],
                    )
                )
            builder.motif(loop, slices)
            fence_ids.append(fences)

        loop = builder.mark()
        for s in range(slices):
            gemm = builder.gemm(
                f"gemm[{s}]", m, n, k,
                deps=[fences[s] for fences in fence_ids if fences],
            )
            for op, mat, link, ring in directions:
                if op != "rds":
                    continue
                sub_bytes = matrix_bytes(cfg.shape, mat) / (chips * slices)
                acc = builder.comm_on(
                    f"acc_{mat}[{s}]",
                    costs.accumulate_epoch(ring, sub_bytes),
                    (link,),
                    deps=[gemm],
                )
                builder.comm_on(
                    f"fence_{mat}[{s}]", costs.fence(ring), (link,),
                    deps=[acc],
                )
        builder.motif(loop, slices)
        return builder.build(algorithm=self.name, config=cfg)

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: GeMMConfig
    ) -> np.ndarray:
        """One-sided numpy execution, bit-exact vs the collectives.

        OS runs the full sliced loop with windowed gets (windows span
        owner shard boundaries); LS/RS gather their flowing input with
        gets and scatter partial outputs with one-sided accumulates
        (the slice count is a timed-plane granularity knob there).
        """
        if cfg.transposed:
            raise NotImplementedError(
                "functional plane covers non-transposed variants"
            )
        mesh = cfg.mesh
        if cfg.dataflow is Dataflow.OS:
            return _functional_os(a, b, mesh, cfg.slices)
        if cfg.dataflow is Dataflow.LS:
            return _functional_ls(a, b, mesh)
        if cfg.dataflow is Dataflow.RS:
            return _functional_rs(a, b, mesh)
        raise ValueError(f"unknown dataflow {cfg.dataflow!r}")


def _owner_windows(start: int, stop: int, local: int):
    """Owner ranks and shard-local windows covering ``[start, stop)``.

    The universal-addressing core: a global window decomposes into one
    (rank, local window) get per owner shard it intersects.
    """
    rank = start // local
    while start < stop:
        end = min(stop, (rank + 1) * local)
        yield rank, (start - rank * local, end - rank * local)
        start, rank = end, rank + 1


def _functional_os(
    a: np.ndarray, b: np.ndarray, mesh: Mesh2D, slices: int
) -> np.ndarray:
    a_sh = shard_matrix(a, mesh)
    b_sh = shard_matrix(b, mesh)
    big_k = a.shape[1]
    a_cols = big_k // mesh.cols  # A shard K extent
    b_rows = big_k // mesh.rows  # B shard K extent
    out = {
        coord: np.zeros(
            (a_sh.shard_shape[0], b_sh.shard_shape[1]), dtype=a.dtype
        )
        for coord in mesh.coords()
    }
    for s in range(slices):
        lo = s * big_k // slices
        hi = (s + 1) * big_k // slices
        for i, j in mesh.coords():
            a_win = np.concatenate(
                [
                    onesided.get(a_sh.shards, mesh, (i, jj), cols=win)
                    for jj, win in _owner_windows(lo, hi, a_cols)
                ],
                axis=1,
            )
            b_win = np.concatenate(
                [
                    onesided.get(b_sh.shards, mesh, (ii, j), rows=win)
                    for ii, win in _owner_windows(lo, hi, b_rows)
                ],
                axis=0,
            )
            out[(i, j)] += local_gemm(a_win, b_win)
    return _assemble(out, mesh, (a.shape[0], b.shape[1]))


def _functional_ls(a: np.ndarray, b: np.ndarray, mesh: Mesh2D) -> np.ndarray:
    """Left-stationary: ``A @ B.T`` with B stored ``N x K``."""
    a_sh = shard_matrix(a, mesh)
    b_sh = shard_matrix(b, mesh)
    big_n = b.shape[0]
    out = {
        coord: np.zeros(
            (a_sh.shard_shape[0], big_n // mesh.cols), dtype=a.dtype
        )
        for coord in mesh.coords()
    }
    chunk = big_n // mesh.cols
    for i, j in mesh.coords():
        b_panel = onesided.gather_get(
            b_sh.shards, mesh, tuple((ii, j) for ii in range(mesh.rows)),
            axis=0,
        )
        partial = local_gemm(a_sh.shard((i, j)), b_panel.T)
        for jj in range(mesh.cols):
            out = onesided.accumulate(
                out, mesh, (i, jj),
                partial[:, jj * chunk:(jj + 1) * chunk],
            )
    return _assemble(out, mesh, (a.shape[0], big_n))


def _functional_rs(a: np.ndarray, b: np.ndarray, mesh: Mesh2D) -> np.ndarray:
    """Right-stationary: ``A.T @ B`` with A stored ``K x M``."""
    a_sh = shard_matrix(a, mesh)
    b_sh = shard_matrix(b, mesh)
    big_m = a.shape[1]
    out = {
        coord: np.zeros(
            (big_m // mesh.rows, b_sh.shard_shape[1]), dtype=a.dtype
        )
        for coord in mesh.coords()
    }
    chunk = big_m // mesh.rows
    for i, j in mesh.coords():
        a_panel = onesided.gather_get(
            a_sh.shards, mesh, tuple((i, jj) for jj in range(mesh.cols)),
            axis=1,
        )
        partial = local_gemm(a_panel.T, b_sh.shard((i, j)))
        for ii in range(mesh.rows):
            out = onesided.accumulate(
                out, mesh, (ii, j),
                partial[ii * chunk:(ii + 1) * chunk, :],
            )
    return _assemble(out, mesh, (big_m, b.shape[1]))


def _assemble(shards, mesh, global_shape) -> np.ndarray:
    return gather_matrix(
        ShardedMatrix(mesh=mesh, shards=shards, global_shape=global_shape)
    )
