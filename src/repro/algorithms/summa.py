"""SUMMA baseline (Section 2.3.3, Figure 2a).

SUMMA loops over panels of the gathered dimension; each iteration
broadcasts one panel of each flowing input within its ring (and, for
LS/RS dataflows, reduces partial outputs to the panel's owner). The
broadcasts/reduces are *pipelined fine-grain* transfers: a panel is
split into D packets streamed over the ring in ``P + D - 1``
synchronized stages, so each operation pays ``P - 1`` bubble stages
and one synchronization per stage — the source of SUMMA's O(P^2)
synchronization overhead that dominates at large mesh sizes
(Section 5.1.2).

Following the paper's methodology (Section 4.2), the timed plane uses
loop unrolling: the iteration count is set to the MeshSlice slice count
of the configuration. The functional plane uses the classical iteration
count (a common multiple of the mesh dimensions) so panels align with
shard boundaries.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.algorithms.base import (
    DistributedGeMM,
    GeMMConfig,
    abft_epilogue,
    abft_payload_factor,
    flow_ops,
    matrix_bytes,
    register,
    sliced_local_dims,
)
from repro.comm.ops import bcast_col, bcast_row, reduce_col, reduce_row
from repro.core.dataflow import Dataflow
from repro.core.gemm import local_gemm
from repro.hw.params import HardwareParams
from repro.mesh.sharding import gather_matrix, shard_matrix, zeros_like_sharded
from repro.mesh.topology import Coord, Mesh2D
from repro.sim.engine import LINK_H, LINK_V
from repro.sim.program import Program, ProgramBuilder

#: Maximum fine-grain packet size of the pipelined bcast/reduce transfers.
#: Calibrated so that SUMMA's per-stage synchronizations dominate at
#: large mesh sizes (Figure 10) while small clusters stay competitive.
DEFAULT_PACKET_BYTES = 256 * 1024


@register
class SummaGeMM(DistributedGeMM):
    """Panel-broadcast 2D GeMM with fine-grain pipelined transfers."""

    name = "summa"

    def __init__(self, packet_bytes: float = DEFAULT_PACKET_BYTES):
        if packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        self.packet_bytes = packet_bytes

    def _packets(self, payload_bytes: float, ring: int) -> int:
        """Packets per broadcast: enough to keep every ring link busy
        (at least ``ring`` packets), finer for very large payloads."""
        by_size = int(math.ceil(payload_bytes / self.packet_bytes))
        return max(1, ring, by_size)

    def build_program(self, cfg: GeMMConfig, hw: HardwareParams) -> Program:
        builder = ProgramBuilder(hw)
        chips = cfg.mesh.size
        iterations = cfg.slices
        (col_op, col_mat), (row_op, row_mat) = flow_ops(
            cfg.dataflow, cfg.transposed
        )
        directions = [
            (col_op, col_mat, LINK_H, cfg.mesh.cols),
            (row_op, row_mat, LINK_V, cfg.mesh.rows),
        ]
        m, n, k = sliced_local_dims(cfg, iterations)
        encode = []
        if cfg.abft:
            for mat in ("a", "b"):
                elements = matrix_bytes(cfg.shape, mat) / (
                    chips * cfg.shape.dtype_bytes
                )
                encode.append(builder.checksum(f"abft_encode_{mat}", elements))
        tail = []
        loop = builder.mark()
        for step in range(iterations):
            deps = list(encode) if step == 0 else []
            for op, mat, link, ring in directions:
                if op != "ag":
                    continue
                # Each iteration broadcasts one panel: the per-ring
                # share of the flowing matrix divided over iterations.
                payload = (
                    matrix_bytes(cfg.shape, mat)
                    * abft_payload_factor(cfg, mat)
                    * ring
                    / (chips * iterations)
                )
                deps.append(
                    builder.broadcast(
                        f"bcast_{mat}[{step}]",
                        ring,
                        payload,
                        self._packets(payload, ring),
                        link,
                        deps=list(encode) if step == 0 else (),
                    )
                )
            gemm = builder.gemm(f"gemm[{step}]", m, n, k, deps=deps)
            tail = [gemm]
            for op, mat, link, ring in directions:
                if op != "rds":
                    continue
                payload = (
                    matrix_bytes(cfg.shape, mat)
                    * abft_payload_factor(cfg, mat)
                    * ring
                    / (chips * iterations)
                )
                tail.append(
                    builder.reduce(
                        f"reduce_{mat}[{step}]",
                        ring,
                        payload,
                        self._packets(payload, ring),
                        link,
                        deps=[gemm],
                    )
                )
        builder.motif(loop, iterations)
        if cfg.abft:
            abft_epilogue(builder, cfg, hw, tail)
        return builder.build(algorithm=self.name, config=cfg)

    # ------------------------------------------------------------ functional

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: GeMMConfig
    ) -> np.ndarray:
        """Figure 2a executed on numpy shards.

        Operand orientations match the MeshSlice functional plane. The
        iteration count is the least common multiple of the mesh
        dimensions (panels must align with shard boundaries), so
        ``cfg.slices`` is not used here.
        """
        if cfg.transposed:
            raise NotImplementedError(
                "functional plane covers non-transposed variants"
            )
        if cfg.dataflow is Dataflow.OS:
            return _summa_os(a, b, cfg.mesh)
        if cfg.dataflow is Dataflow.LS:
            return _summa_ls(a, b, cfg.mesh)
        if cfg.dataflow is Dataflow.RS:
            return _summa_rs(a, b, cfg.mesh)
        raise ValueError(f"unknown dataflow {cfg.dataflow!r}")


def _iterations(extent: int, mesh: Mesh2D) -> int:
    """The classical SUMMA iteration count for a panel dimension."""
    count = math.lcm(mesh.rows, mesh.cols)
    if extent % count != 0:
        raise ValueError(
            f"panel dimension {extent} must divide by lcm(P_r, P_c) = {count}"
        )
    return count


def _summa_os(a: np.ndarray, b: np.ndarray, mesh: Mesh2D) -> np.ndarray:
    """SUMMA OS: ``C = A @ B`` via panel broadcasts over K."""
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
    k = a.shape[1]
    steps = _iterations(k, mesh)
    kb = k // steps
    a_sh = shard_matrix(a, mesh)
    b_sh = shard_matrix(b, mesh)
    c_sh = zeros_like_sharded(
        (a.shape[0], b.shape[1]), mesh, dtype=np.result_type(a, b)
    )
    for p in range(steps):
        col_owner, col_off = divmod(p * kb, k // mesh.cols)
        roots: Dict[Coord, np.ndarray] = {
            (i, col_owner): a_sh.shard((i, col_owner))[:, col_off:col_off + kb]
            for i in range(mesh.rows)
        }
        a_panel = bcast_col(roots, mesh, col_owner)
        row_owner, row_off = divmod(p * kb, k // mesh.rows)
        roots = {
            (row_owner, j): b_sh.shard((row_owner, j))[row_off:row_off + kb, :]
            for j in range(mesh.cols)
        }
        b_panel = bcast_row(roots, mesh, row_owner)
        for coord in mesh.coords():
            c_sh.shards[coord] += local_gemm(a_panel[coord], b_panel[coord])
    return gather_matrix(c_sh)


def _summa_ls(a: np.ndarray, b: np.ndarray, mesh: Mesh2D) -> np.ndarray:
    """SUMMA LS: ``C = A @ B.T`` via panel broadcasts/reduces over N."""
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
    n = b.shape[0]
    steps = _iterations(n, mesh)
    nb = n // steps
    a_sh = shard_matrix(a, mesh)
    b_sh = shard_matrix(b, mesh)
    c_sh = zeros_like_sharded(
        (a.shape[0], n), mesh, dtype=np.result_type(a, b)
    )
    for p in range(steps):
        row_owner, row_off = divmod(p * nb, n // mesh.rows)
        roots: Dict[Coord, np.ndarray] = {
            (row_owner, j): b_sh.shard((row_owner, j))[row_off:row_off + nb, :]
            for j in range(mesh.cols)
        }
        b_panel = bcast_row(roots, mesh, row_owner)
        partial = {
            coord: local_gemm(a_sh.shard(coord), b_panel[coord].T)
            for coord in mesh.coords()
        }
        col_owner, col_off = divmod(p * nb, n // mesh.cols)
        reduced = reduce_col(partial, mesh, col_owner)
        for i in range(mesh.rows):
            c_sh.shards[(i, col_owner)][:, col_off:col_off + nb] += reduced[
                (i, col_owner)
            ]
    return gather_matrix(c_sh)


def _summa_rs(a: np.ndarray, b: np.ndarray, mesh: Mesh2D) -> np.ndarray:
    """SUMMA RS: ``C = A.T @ B`` via panel broadcasts/reduces over M."""
    if a.shape[0] != b.shape[0]:
        raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
    m = a.shape[1]
    steps = _iterations(m, mesh)
    mb = m // steps
    a_sh = shard_matrix(a, mesh)
    b_sh = shard_matrix(b, mesh)
    c_sh = zeros_like_sharded(
        (m, b.shape[1]), mesh, dtype=np.result_type(a, b)
    )
    for p in range(steps):
        col_owner, col_off = divmod(p * mb, m // mesh.cols)
        roots: Dict[Coord, np.ndarray] = {
            (i, col_owner): a_sh.shard((i, col_owner))[:, col_off:col_off + mb]
            for i in range(mesh.rows)
        }
        a_panel = bcast_col(roots, mesh, col_owner)
        partial = {
            coord: local_gemm(a_panel[coord].T, b_sh.shard(coord))
            for coord in mesh.coords()
        }
        row_owner, row_off = divmod(p * mb, m // mesh.rows)
        reduced = reduce_row(partial, mesh, row_owner)
        for j in range(mesh.cols):
            c_sh.shards[(row_owner, j)][row_off:row_off + mb, :] += reduced[
                (row_owner, j)
            ]
    return gather_matrix(c_sh)
