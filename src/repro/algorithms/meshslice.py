"""MeshSlice: timed algorithm implementation (Section 3.1, Figure 5).

Builds the representative-chip program of the MeshSlice 2D GeMM: an
``S``-iteration loop where each iteration slices the local shards,
runs *partial* AllGathers of the sub-shards in both torus directions,
computes a partial GeMM, and (for LS/RS dataflows) reduce-scatters the
partial outputs back into the stationary output's slice positions.
Communication-computation overlap, the non-overlapped prologue (the
first iteration's gathers) and epilogue (the last iteration's GeMM or
scatter) all emerge from the dependency structure plus the simulator's
core/link resources — exactly the paper's Figure 4 timeline.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.algorithms.base import (
    DistributedGeMM,
    GeMMConfig,
    abft_epilogue,
    abft_payload_factor,
    effective_problem,
    flow_ops,
    matrix_bytes,
    register,
    sliced_local_dims,
)
from repro.core.dataflow import sliced_extent
from repro.core.meshslice import meshslice_gemm
from repro.hw.params import HardwareParams
from repro.sim.engine import LINK_H, LINK_V
from repro.sim.program import Program, ProgramBuilder


@register
class MeshSliceGeMM(DistributedGeMM):
    """The paper's contribution: sliced-collective 2D GeMM."""

    name = "meshslice"

    def check_support(self, cfg: GeMMConfig) -> Optional[str]:
        shape, dataflow = effective_problem(cfg)
        extent = sliced_extent(shape, dataflow)
        for parts in (cfg.mesh.rows, cfg.mesh.cols):
            local = extent // parts
            if local < 1 or local % cfg.slices != 0:
                return (
                    f"slice count {cfg.slices} does not divide the local "
                    f"extent {local} of the sliced dimension"
                )
        return None

    def build_program(self, cfg: GeMMConfig, hw: HardwareParams) -> Program:
        builder = ProgramBuilder(hw)
        chips = cfg.mesh.size
        slices = cfg.slices
        (col_op, col_mat), (row_op, row_mat) = flow_ops(
            cfg.dataflow, cfg.transposed
        )
        directions = [
            (col_op, col_mat, LINK_H, cfg.mesh.cols),
            (row_op, row_mat, LINK_V, cfg.mesh.rows),
        ]
        m, n, k = sliced_local_dims(cfg, slices)

        # ABFT: encode both operands' checksums up front (one streaming
        # pass per local shard); everything downstream depends on them.
        encode = {}
        if cfg.abft:
            for mat in ("a", "b"):
                elements = matrix_bytes(cfg.shape, mat) / (
                    chips * cfg.shape.dtype_bytes
                )
                encode[mat] = builder.checksum(f"abft_encode_{mat}", elements)

        # Input slicing only depends on the stationary local shards, so
        # all iterations' slice copies are issued up front; the core
        # executes them around the GeMMs (they are small HBM copies).
        # At S = 1 slicing is the identity, so MeshSlice degenerates to
        # exactly the Collective algorithm (Section 5.1.1).
        gather_ids: List[List[int]] = []  # [direction][s] -> AG activity
        for op, mat, link, ring in directions:
            if op != "ag":
                gather_ids.append([])
                continue
            shard_bytes = (
                matrix_bytes(cfg.shape, mat)
                * abft_payload_factor(cfg, mat)
                / (chips * slices)
            )
            ags = []
            loop = builder.mark()
            for s in range(slices):
                deps = [encode[mat]] if mat in encode else []
                if slices > 1:
                    deps = [
                        builder.slice_copy(
                            f"slice_{mat}[{s}]", shard_bytes, deps=deps
                        )
                    ]
                ags.append(
                    builder.allgather(
                        f"ag_{mat}[{s}]", ring, shard_bytes, link, deps=deps
                    )
                )
            builder.motif(loop, slices)
            gather_ids.append(ags)

        tail: List[int] = []
        loop = builder.mark()
        for s in range(slices):
            gemm_deps = [ags[s] for ags in gather_ids if ags]
            if s == 0:
                # A stationary operand's encode has no AG chain to ride.
                gemm_deps += [e for e in encode.values() if e not in gemm_deps]
            gemm = builder.gemm(f"gemm[{s}]", m, n, k, deps=gemm_deps)
            tail = [gemm]
            for op, mat, link, ring in directions:
                if op != "rds":
                    continue
                shard_bytes = (
                    matrix_bytes(cfg.shape, mat)
                    * abft_payload_factor(cfg, mat)
                    / (chips * slices)
                )
                rds = builder.reducescatter(
                    f"rds_{mat}[{s}]", ring, shard_bytes, link, deps=[gemm]
                )
                tail.append(rds)
                if slices > 1:
                    tail[-1] = builder.slice_copy(
                        f"unslice_{mat}[{s}]", shard_bytes, deps=[rds]
                    )
        builder.motif(loop, slices)

        if cfg.abft:
            abft_epilogue(builder, cfg, hw, tail)
        return builder.build(algorithm=self.name, config=cfg)

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: GeMMConfig
    ) -> np.ndarray:
        """Run the numpy reference (block size 1; see ``repro.core``)."""
        if cfg.transposed:
            raise NotImplementedError(
                "functional plane covers non-transposed variants"
            )
        return meshslice_gemm(a, b, cfg.mesh, cfg.dataflow, cfg.slices, block=1)
