"""Distributed GeMM algorithms: MeshSlice plus the paper's baselines."""

from repro.algorithms.base import (
    DistributedGeMM,
    GeMMConfig,
    algorithm_names,
    collective_local_dims,
    effective_problem,
    flow_ops,
    get_algorithm,
    matrix_bytes,
    register,
    sliced_local_dims,
    traffic_seconds,
)
from repro.algorithms.cannon import CannonGeMM
from repro.algorithms.collective import CollectiveGeMM
from repro.algorithms.meshslice import MeshSliceGeMM
from repro.algorithms.oned import FSDPGeMM, OneDTensorParallel
from repro.algorithms.sfc import SFCGeMM
from repro.algorithms.sliced import SlicedGeMM
from repro.algorithms.stacked import (
    MeshSliceDPGeMM,
    StackedConfig,
    TwoPointFiveDGeMM,
)
from repro.algorithms.summa import SummaGeMM
from repro.algorithms.wang import WangGeMM

#: Names of the 2D algorithms compared in the paper's Figures 9-12.
TWO_D_ALGORITHMS = ("cannon", "summa", "collective", "wang", "meshslice")

#: Names of the post-paper algorithm-zoo additions (ROADMAP item 3):
#: one-sided sliced GeMM and space-filling-curve GeMM.
ZOO_ALGORITHMS = ("sliced", "sfc")

#: Names of the 1D baselines (Section 4.3).
ONE_D_ALGORITHMS = ("1dtp", "fsdp")

__all__ = [
    "CannonGeMM",
    "CollectiveGeMM",
    "DistributedGeMM",
    "FSDPGeMM",
    "GeMMConfig",
    "MeshSliceDPGeMM",
    "MeshSliceGeMM",
    "ONE_D_ALGORITHMS",
    "OneDTensorParallel",
    "SFCGeMM",
    "SlicedGeMM",
    "StackedConfig",
    "SummaGeMM",
    "TWO_D_ALGORITHMS",
    "TwoPointFiveDGeMM",
    "WangGeMM",
    "ZOO_ALGORITHMS",
    "algorithm_names",
    "collective_local_dims",
    "effective_problem",
    "flow_ops",
    "get_algorithm",
    "matrix_bytes",
    "register",
    "sliced_local_dims",
    "traffic_seconds",
]
