"""Space-filling-curve GeMM (Georganas et al.).

Communication-avoiding 2.5D-style GeMM where output tiles are assigned
to chips along a generalized Hilbert curve over the tile grid
(:func:`repro.mesh.topology.hilbert_order`). Consecutive tiles on the
curve share a tile-row or tile-column, so a chip walking its curve
segment re-fetches an operand panel only when the curve turns into a
new row/column of the grid — the number of distinct tile-rows (and
tile-columns) a segment touches bounds its communication, and the
curve's locality makes that bound near the 2.5D lower bound without
requiring square meshes or perfect-power chip counts.

Panels are fetched with one-sided gets (one get per owner shard,
:meth:`repro.comm.onesided.OneSidedCostModel.panel`), so the algorithm
also inherits the zero-per-step-sync behaviour of the sliced family.
``cfg.slices`` is reinterpreted as the number of output tiles *per
chip*; the tile grid is ``(rows * a) x (cols * b)`` for the factor
pair ``a * b == slices`` that keeps the grid closest to square.

The functional plane computes every tile from windowed one-sided gets
and is bit-exact vs ``A @ B``. Output-stationary only (the curve
orders *output* tiles); ABFT is rejected for the same structural
reason as the sliced family (see ``docs/algorithms.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    DistributedGeMM,
    GeMMConfig,
    matrix_bytes,
    register,
)
from repro.algorithms.sliced import ABFT_UNSUPPORTED
from repro.comm import onesided
from repro.comm.onesided import OneSidedCostModel
from repro.core.dataflow import Dataflow
from repro.core.gemm import local_gemm
from repro.hw.params import HardwareParams
from repro.mesh.sharding import shard_matrix
from repro.mesh.topology import Coord, hilbert_order
from repro.sim.engine import LINK_H, LINK_V
from repro.sim.program import Program, ProgramBuilder


def tile_split(slices: int, rows: int, cols: int) -> Tuple[int, int]:
    """Factor ``slices`` into per-axis tile counts ``(a, b)``.

    Picks the factor pair ``a * b == slices`` whose tile grid
    ``(rows * a) x (cols * b)`` is closest to square — squarer grids
    give the Hilbert curve more locality to exploit. Deterministic:
    ties break toward the smaller ``a``.
    """
    if slices < 1:
        raise ValueError(f"slices must be >= 1, got {slices}")
    best = None
    for a in range(1, slices + 1):
        if slices % a != 0:
            continue
        b = slices // a
        score = abs(rows * a - cols * b)
        if best is None or score < best[0]:
            best = (score, a, b)
    return best[1], best[2]


@register
class SFCGeMM(DistributedGeMM):
    """Hilbert-curve-ordered communication-avoiding 2D GeMM."""

    name = "sfc"

    def check_support(self, cfg: GeMMConfig) -> Optional[str]:
        if cfg.abft:
            return ABFT_UNSUPPORTED
        if cfg.transposed:
            return "the curve orders output tiles of the untransposed problem"
        if cfg.dataflow is not Dataflow.OS:
            return (
                "space-filling-curve ordering is output-stationary: the "
                f"curve walks output tiles, not {cfg.dataflow.value} partials"
            )
        rows, cols = cfg.mesh.rows, cfg.mesh.cols
        a, b = tile_split(cfg.slices, rows, cols)
        grid_r, grid_c = rows * a, cols * b
        m, n, k = cfg.shape.m, cfg.shape.n, cfg.shape.k
        if m % grid_r != 0 or n % grid_c != 0:
            return (
                f"tile grid {grid_r}x{grid_c} (slices={cfg.slices}) does "
                f"not divide the {m}x{n} output"
            )
        if k % rows != 0 or k % cols != 0:
            return f"K={k} is not shardable over the {rows}x{cols} mesh"
        return None

    def build_program(self, cfg: GeMMConfig, hw: HardwareParams) -> Program:
        builder = ProgramBuilder(hw)
        costs = OneSidedCostModel.for_hw(hw)
        rows, cols = cfg.mesh.rows, cfg.mesh.cols
        a, b = tile_split(cfg.slices, rows, cols)
        grid_r, grid_c = rows * a, cols * b
        segments = _curve_segments(grid_r, grid_c, cfg.slices)

        # Simulate the worst chip: the segment touching the most panel
        # volume (distinct tile-rows weigh an A panel, distinct
        # tile-cols a B panel). Ties break toward the lowest rank so
        # the program is deterministic.
        a_panel = matrix_bytes(cfg.shape, "a") / grid_r
        b_panel = matrix_bytes(cfg.shape, "b") / grid_c
        segment = max(
            segments,
            key=lambda seg: (
                len({ti for ti, _ in seg}) * a_panel
                + len({tj for _, tj in seg}) * b_panel,
                -segments.index(seg),
            ),
        )

        m, n, k = cfg.shape.m // grid_r, cfg.shape.n // grid_c, cfg.shape.k
        row_fence: Dict[int, int] = {}  # tile-row -> fence activity id
        col_fence: Dict[int, int] = {}
        for ti, tj in segment:
            if ti not in row_fence:
                fetch = builder.comm_on(
                    f"panel_a[{ti}]",
                    costs.panel(cols, a_panel / cols, costs.mean_ring_hops(cols)),
                    (LINK_H,),
                )
                row_fence[ti] = builder.comm_on(
                    f"fence_a[{ti}]", costs.fence(cols), (LINK_H,), deps=[fetch]
                )
            if tj not in col_fence:
                fetch = builder.comm_on(
                    f"panel_b[{tj}]",
                    costs.panel(rows, b_panel / rows, costs.mean_ring_hops(rows)),
                    (LINK_V,),
                )
                col_fence[tj] = builder.comm_on(
                    f"fence_b[{tj}]", costs.fence(rows), (LINK_V,), deps=[fetch]
                )
            builder.gemm(
                f"gemm[{ti},{tj}]", m, n, k,
                deps=[row_fence[ti], col_fence[tj]],
            )
        return builder.build(algorithm=self.name, config=cfg)

    def functional(
        self, a_mat: np.ndarray, b_mat: np.ndarray, cfg: GeMMConfig
    ) -> np.ndarray:
        """Every tile computed from windowed one-sided panel gets."""
        if cfg.transposed:
            raise NotImplementedError(
                "functional plane covers non-transposed variants"
            )
        if cfg.dataflow is not Dataflow.OS:
            raise NotImplementedError(
                "space-filling-curve GeMM is output-stationary"
            )
        mesh = cfg.mesh
        rows, cols = mesh.rows, mesh.cols
        a, b = tile_split(cfg.slices, rows, cols)
        grid_r, grid_c = rows * a, cols * b
        big_m, big_n = a_mat.shape[0], b_mat.shape[1]
        th, tw = big_m // grid_r, big_n // grid_c
        a_sh = shard_matrix(a_mat, mesh)
        b_sh = shard_matrix(b_mat, mesh)
        out = np.zeros((big_m, big_n), dtype=a_mat.dtype)
        for segment in _curve_segments(grid_r, grid_c, cfg.slices):
            for ti, tj in segment:
                # The tile's A rows live inside one mesh-row of owners
                # (th divides the shard height); the K extent spans all
                # mesh columns — one get per owner shard.
                bi, lo = divmod(ti, a)
                a_panel = np.concatenate(
                    [
                        onesided.get(
                            a_sh.shards, mesh, (bi, jj),
                            rows=(lo * th, (lo + 1) * th),
                        )
                        for jj in range(cols)
                    ],
                    axis=1,
                )
                bj, lo = divmod(tj, b)
                b_panel = np.concatenate(
                    [
                        onesided.get(
                            b_sh.shards, mesh, (ii, bj),
                            cols=(lo * tw, (lo + 1) * tw),
                        )
                        for ii in range(rows)
                    ],
                    axis=0,
                )
                out[ti * th:(ti + 1) * th, tj * tw:(tj + 1) * tw] = local_gemm(
                    a_panel, b_panel
                )
        return out


def _curve_segments(
    grid_r: int, grid_c: int, per_chip: int
) -> List[List[Coord]]:
    """Consecutive Hilbert-curve runs of ``per_chip`` tiles, one per chip."""
    order = hilbert_order(grid_r, grid_c)
    return [
        list(order[start:start + per_chip])
        for start in range(0, len(order), per_chip)
    ]
