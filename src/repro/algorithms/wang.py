"""Wang et al. decomposition baseline (Section 2.3.4, [34]).

Wang's algorithm partitions the collective communication of *one*
torus direction into point-to-point SendRecv transfers that are
software-pipelined with partial GeMMs; the collective in the other
direction remains a blocking prologue (for a gathered input) or
epilogue (for scattered outputs). This overlaps roughly half of the
communication — the gap to MeshSlice, which partitions both directions.

The decomposed direction is chosen as the one with the larger traffic
cost (the profitable one to overlap). Loop unrolling (Section 4.2)
merges the natural ``P - 1`` pipeline steps into ``min(S, P)`` larger
GeMM groups, matching MeshSlice's granularity for fairness.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.algorithms.base import (
    DistributedGeMM,
    GeMMConfig,
    collective_local_dims,
    effective_problem,
    flow_ops,
    matrix_bytes,
    register,
)
from repro.comm.ops import ag_row, shift_col
from repro.core.dataflow import Dataflow, sliced_dimension
from repro.hw.params import HardwareParams
from repro.mesh.sharding import gather_matrix, shard_matrix, zeros_like_sharded
from repro.sim.engine import LINK_H, LINK_V
from repro.sim.program import Program, ProgramBuilder


@register
class WangGeMM(DistributedGeMM):
    """Single-direction SendRecv decomposition of Collective 2D GeMM."""

    name = "wang"

    def _split_directions(self, cfg: GeMMConfig):
        """The (decomposed, blocking) torus directions of ``cfg``.

        The decomposed direction is the one with the larger traffic
        cost — the profitable one to overlap.
        """
        chips = cfg.mesh.size
        (col_op, col_mat), (row_op, row_mat) = flow_ops(
            cfg.dataflow, cfg.transposed
        )
        directions = [
            (col_op, col_mat, LINK_H, cfg.mesh.cols),
            (row_op, row_mat, LINK_V, cfg.mesh.rows),
        ]

        def traffic(direction) -> float:
            op, mat, _link, ring = direction
            return (ring - 1) * matrix_bytes(cfg.shape, mat) / chips

        decomposed = max(directions, key=traffic)
        blocking = directions[1 - directions.index(decomposed)]
        return decomposed, blocking

    def canonical_config(self, cfg: GeMMConfig) -> GeMMConfig:
        """Clamp ``slices`` to the decomposed ring length.

        The builder merges the pipeline into
        ``min(slices, dec_ring)`` GeMM groups, so every slice count at
        or above the decomposed ring builds the same program.
        """
        (_op, _mat, _link, dec_ring), _blocking = self._split_directions(cfg)
        groups = max(1, min(cfg.slices, dec_ring))
        if groups == cfg.slices:
            return cfg
        return dataclasses.replace(cfg, slices=groups)

    def build_program(self, cfg: GeMMConfig, hw: HardwareParams) -> Program:
        builder = ProgramBuilder(hw)
        chips = cfg.mesh.size
        decomposed, blocking = self._split_directions(cfg)

        # Blocking collective of the non-decomposed direction.
        prologue: List[int] = []
        if blocking[3] > 1:
            op, mat, link, ring = blocking
            shard_bytes = matrix_bytes(cfg.shape, mat) / chips
            if op == "ag":
                prologue.append(
                    builder.allgather(f"ag_{mat}", ring, shard_bytes, link)
                )
        dec_op, dec_mat, dec_link, dec_ring = decomposed
        step_bytes = matrix_bytes(cfg.shape, dec_mat) / chips
        groups = max(1, min(cfg.slices, dec_ring))
        bounds = [g * dec_ring // groups for g in range(groups + 1)]

        _shape, eff_dataflow = effective_problem(cfg)
        full_dims = collective_local_dims(cfg)
        split_dim = {"m": 0, "n": 1, "k": 2}[sliced_dimension(eff_dataflow)]

        def group_dims(size: int):
            dims = list(full_dims)
            dims[split_dim] = max(1, dims[split_dim] * size // dec_ring)
            return tuple(dims)

        if dec_op == "ag":
            # SendRecv pipeline delivers shard h at hop h (shard 0 is
            # local); GeMM group g needs every shard below bounds[g+1].
            hops: List[int] = []
            prev = None
            loop = builder.mark()
            for h in range(1, dec_ring):
                prev = builder.sendrecv(
                    f"sendrecv_{dec_mat}[{h}]",
                    step_bytes,
                    dec_link,
                    deps=[prev] if prev is not None else [],
                )
                hops.append(prev)
            builder.motif(loop, dec_ring - 1)
            gemm = None
            loop = builder.mark()
            for g in range(groups):
                size = bounds[g + 1] - bounds[g]
                if size <= 0:
                    continue
                deps = list(prologue)
                last_shard = bounds[g + 1] - 1
                if last_shard >= 1:
                    deps.append(hops[last_shard - 1])
                if gemm is not None:
                    deps.append(gemm)
                m, n, k = group_dims(size)
                gemm = builder.gemm(f"gemm[{g}]", m, n, k, deps=deps)
            builder.motif(loop, groups)
            self._blocking_epilogue(builder, cfg, blocking, [gemm])
        else:
            # Decomposed ReduceScatter: partial GeMMs feed a chain of
            # accumulate-and-forward SendRecvs; the tail of the chain is
            # the non-overlapped epilogue.
            total_hops = dec_ring - 1
            hop_bounds = [g * total_hops // groups for g in range(groups + 1)]
            prev_hop = None
            gemm = None
            loop = builder.mark()
            for g in range(groups):
                size = bounds[g + 1] - bounds[g]
                if size <= 0:
                    continue
                deps = list(prologue)
                if gemm is not None:
                    deps.append(gemm)
                m, n, k = group_dims(size)
                gemm = builder.gemm(f"gemm[{g}]", m, n, k, deps=deps)
                for h in range(hop_bounds[g], hop_bounds[g + 1]):
                    hop_deps = [gemm]
                    if prev_hop is not None:
                        hop_deps.append(prev_hop)
                    prev_hop = builder.sendrecv(
                        f"sendrecv_{dec_mat}[{h}]",
                        step_bytes,
                        dec_link,
                        deps=hop_deps,
                    )
            builder.motif(loop, groups)
            self._blocking_epilogue(builder, cfg, blocking, [gemm])
        return builder.build(algorithm=self.name, config=cfg)

    @staticmethod
    def _blocking_epilogue(
        builder: ProgramBuilder, cfg: GeMMConfig, blocking, deps: List[Optional[int]]
    ) -> None:
        op, mat, link, ring = blocking
        if op != "rds" or ring <= 1:
            return
        shard_bytes = matrix_bytes(cfg.shape, mat) / cfg.mesh.size
        builder.reducescatter(
            f"rds_{mat}", ring, shard_bytes, link,
            deps=[d for d in deps if d is not None],
        )

    # ------------------------------------------------------------ functional

    def functional(
        self, a: np.ndarray, b: np.ndarray, cfg: GeMMConfig
    ) -> np.ndarray:
        """OS-dataflow reference: ``C = A @ B``.

        All-gathers ``B`` within column rings up front, then circulates
        the local ``A`` shards around each row ring, accumulating the
        partial product that matches the currently-held shard — the
        SendRecv decomposition of the ``A`` AllGather.
        """
        if cfg.dataflow is not Dataflow.OS or cfg.transposed:
            raise NotImplementedError(
                "functional Wang reference covers the OS dataflow"
            )
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
        mesh = cfg.mesh
        k = a.shape[1]
        block_k = k // mesh.cols
        a_sh = shard_matrix(a, mesh)
        b_sh = shard_matrix(b, mesh)
        b_full = ag_row(b_sh.shards, mesh, axis=0)
        c_sh = zeros_like_sharded(
            (a.shape[0], b.shape[1]), mesh, dtype=np.result_type(a, b)
        )
        a_cur = dict(a_sh.shards)
        for step in range(mesh.cols):
            for i, j in mesh.coords():
                src_col = (j + step) % mesh.cols
                rows = slice(src_col * block_k, (src_col + 1) * block_k)
                c_sh.shards[(i, j)] += a_cur[(i, j)] @ b_full[(i, j)][rows, :]
            if step < mesh.cols - 1:
                a_cur = shift_col(a_cur, mesh, 1)
        return gather_matrix(c_sh)
