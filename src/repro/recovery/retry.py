"""Capped-retry / exponential-backoff response to transient outages.

The flat outage model of :class:`repro.faults.FaultPlan` charges one
fixed dead time (``hw.link_retry_timeout``) plus one retransmission per
outage — the behaviour of a transport that always succeeds on the
second try. Real fabrics retry with backoff, and a link that keeps
failing is eventually declared *down*. :class:`RetryPolicy` is that
state machine, made explicit and deterministic:

* an outage triggers retry attempt 1 after ``base_backoff`` seconds;
* each further attempt waits ``backoff_factor`` times longer, capped
  at ``max_backoff`` (classic truncated exponential backoff);
* every attempt retransmits the full (degraded) transfer and succeeds
  independently with the plan's outage probability;
* after ``max_retries`` failed attempts the link is declared
  permanently dead — the fault plan marks the activity, and the engine
  surfaces a structured ``SimFailure`` the instant the retry budget
  exhausts (see ``repro.sim.engine.Engine.run_with_failures``).

The machine is evaluated at plan-application time from the plan's
seeded ``random.Random`` stream, so a given (plan, program) pair
always produces the same retry history, bit for bit.

This module imports nothing from the rest of the package so that
``repro.faults`` can use it without an import cycle.
"""

from __future__ import annotations

import dataclasses
import random


@dataclasses.dataclass(frozen=True)
class RetryEpisode:
    """Outcome of one outage's retry sequence.

    Attributes:
        dead_seconds: Total backoff (synchronization-stall) time.
        retransmit_seconds: Total retransmission time over all
            attempts (each attempt resends the full transfer).
        attempts: Retry attempts made (including the failed ones).
        exhausted: Whether the retry budget ran out — the link is then
            declared permanently down.
    """

    dead_seconds: float
    retransmit_seconds: float
    attempts: int
    exhausted: bool

    @property
    def delay_seconds(self) -> float:
        """Total extra time the episode adds to the activity."""
        return self.dead_seconds + self.retransmit_seconds


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Truncated exponential backoff with a capped retry budget.

    Attributes:
        max_retries: Retry attempts before the link is declared dead
            (>= 0; zero means the first outage is immediately fatal).
        base_backoff: Wait before the first retry (seconds).
        backoff_factor: Multiplier between consecutive waits (>= 1).
        max_backoff: Upper bound of any single wait (seconds).
    """

    max_retries: int = 5
    base_backoff: float = 500e-6
    backoff_factor: float = 2.0
    max_backoff: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_backoff < 0.0:
            raise ValueError("base_backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff < self.base_backoff:
            raise ValueError("max_backoff must be >= base_backoff")

    def backoff(self, attempt: int) -> float:
        """Wait before retry ``attempt`` (0-based), truncated."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(
            self.base_backoff * self.backoff_factor**attempt, self.max_backoff
        )

    def total_backoff(self) -> float:
        """Dead time of a fully exhausted retry sequence."""
        return sum(self.backoff(i) for i in range(self.max_retries))

    def episode(
        self,
        rng: random.Random,
        transfer_seconds: float,
        failure_rate: float,
    ) -> RetryEpisode:
        """Run the state machine for one outage.

        Args:
            rng: The fault plan's seeded stream; one draw per attempt.
            transfer_seconds: Cost of one (degraded) retransmission.
            failure_rate: Probability that an attempt fails again.
        """
        dead = 0.0
        sent = 0.0
        for attempt in range(self.max_retries):
            dead += self.backoff(attempt)
            sent += transfer_seconds
            if rng.random() >= failure_rate:
                return RetryEpisode(dead, sent, attempt + 1, False)
        return RetryEpisode(dead, sent, self.max_retries, True)
