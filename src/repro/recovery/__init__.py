"""Recovery policies: what the system does after a fault.

:mod:`repro.faults` injects failures; this package answers them, at
the three time scales a real training system operates on:

* **microseconds** — :class:`RetryPolicy`, a capped-retry /
  exponential-backoff state machine for transient link outages
  (replacing the flat ``link_retry_timeout`` penalty); an exhausted
  budget declares the link dead and the engine surfaces a structured
  ``SimFailure``;
* **minutes** — elastic reconfiguration: :func:`retune_degraded`
  drains the dead chip's row or column and re-tunes the shrunk torus;
  :mod:`~repro.recovery.elastic` prices the transition itself, timing
  the reshard migration (every chip's shards moving to the new
  layout) as a real program over the collective or one-sided comm
  plane — including same-shape spare replacement and shape-changing
  reshapes (``4x4 -> 3x5``);
* **days** — :class:`CheckpointModel`, the analytical Young/Daly
  checkpoint-restart model; the :mod:`~repro.recovery.policy` goodput
  closed forms comparing restart / degrade / replace / reshape; and
  :func:`simulate_lifetime`, a seeded renewal simulation of the whole
  multi-day run that prices what the closed forms cannot — failure
  clustering, repair queues, chained degradations, and spare-pool
  exhaustion — with a structured JSONL event log.

Surfaces: the memoized ``degraded_retune`` stage in ``repro.perf``,
the ``ablation-recovery`` and ``ablation-elastic`` experiment grids,
and the ``meshslice recovery`` / ``meshslice elastic`` CLI
subcommands.
"""

from repro.recovery.checkpoint import CheckpointModel, cluster_mtbf
from repro.recovery.degraded import (
    DegradedRetune,
    NoSurvivingMeshError,
    degraded_meshes,
    retune_degraded,
)
from repro.recovery.elastic import (
    MIGRATION_PLANES,
    ReshardPlan,
    build_migration_program,
    migration_payload_bytes,
    migration_seconds,
    overlap_pieces,
)
from repro.recovery.lifetime import (
    POLICIES,
    LifetimeEvent,
    LifetimeResult,
    LifetimeSpec,
    TableElasticPlanner,
    TunedElasticPlanner,
    simulate_lifetime,
)
from repro.recovery.policy import (
    ClusterReliability,
    GoodputEstimate,
    degrade_goodput,
    replace_goodput,
    reshape_goodput,
    restart_goodput,
)
from repro.recovery.retry import RetryEpisode, RetryPolicy

__all__ = [
    "CheckpointModel",
    "ClusterReliability",
    "DegradedRetune",
    "GoodputEstimate",
    "LifetimeEvent",
    "LifetimeResult",
    "LifetimeSpec",
    "MIGRATION_PLANES",
    "NoSurvivingMeshError",
    "POLICIES",
    "ReshardPlan",
    "RetryEpisode",
    "RetryPolicy",
    "TableElasticPlanner",
    "TunedElasticPlanner",
    "build_migration_program",
    "cluster_mtbf",
    "degrade_goodput",
    "degraded_meshes",
    "migration_payload_bytes",
    "migration_seconds",
    "overlap_pieces",
    "replace_goodput",
    "reshape_goodput",
    "restart_goodput",
    "retune_degraded",
    "simulate_lifetime",
]
