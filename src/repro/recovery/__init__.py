"""Recovery policies: what the system does after a fault.

:mod:`repro.faults` injects failures; this package answers them, at
the three time scales a real training system operates on:

* **microseconds** — :class:`RetryPolicy`, a capped-retry /
  exponential-backoff state machine for transient link outages
  (replacing the flat ``link_retry_timeout`` penalty); an exhausted
  budget declares the link dead and the engine surfaces a structured
  ``SimFailure``;
* **minutes** — :func:`retune_degraded`, degraded-mesh
  reconfiguration: drain the dead chip's row or column, re-form the
  torus on the shrunk shape, and re-run the autotuner's exhaustive
  shape/slice search on the surviving candidates;
* **days** — :class:`CheckpointModel`, the analytical Young/Daly
  checkpoint-restart model, and the :mod:`~repro.recovery.policy`
  goodput estimates comparing restart-and-wait against
  degrade-and-continue for multi-day runs.

Surfaces: the memoized ``degraded_retune`` stage in ``repro.perf``,
the ``ablation-recovery`` experiment grid, and the
``meshslice recovery`` CLI subcommand.
"""

from repro.recovery.checkpoint import CheckpointModel, cluster_mtbf
from repro.recovery.degraded import (
    DegradedRetune,
    degraded_meshes,
    retune_degraded,
)
from repro.recovery.policy import (
    ClusterReliability,
    GoodputEstimate,
    degrade_goodput,
    restart_goodput,
)
from repro.recovery.retry import RetryEpisode, RetryPolicy

__all__ = [
    "CheckpointModel",
    "ClusterReliability",
    "DegradedRetune",
    "GoodputEstimate",
    "RetryEpisode",
    "RetryPolicy",
    "cluster_mtbf",
    "degrade_goodput",
    "degraded_meshes",
    "restart_goodput",
    "retune_degraded",
]
