"""Seeded multi-failure lifetime simulation of elastic recovery.

The closed forms in :mod:`repro.recovery.policy` price one failure per
repair window and charge reconfiguration as a constant. This module
simulates the whole multi-day run as a seeded renewal process instead:
failure arrivals are sampled at the *current* cluster rate (``running
chips / chip MTBF``, so a shrunk torus fails less often), every
reconfiguration is charged its simulated reshard-migration program
(:mod:`repro.recovery.elastic`), repairs complete on their own clock
and can overlap new failures, and a spare pool can run dry — all the
dynamics the single-cycle algebra cannot express.

Checkpoint economics stay analytic: while the cluster runs with ``n``
chips, work banks at the Young/Daly optimal goodput of a
:class:`~repro.recovery.checkpoint.CheckpointModel` at that chip
count's MTBF. The checkpoint model is the *exact* renewal expectation
of rollback, re-execution, and restart charges, so sampling individual
checkpoint segments would only add Monte-Carlo noise around the same
mean; the simulator samples what the closed forms genuinely cannot —
failure clustering, repair queues, chained degradations, and spare
exhaustion. This hybrid is also what makes the cross-check in the
acceptance tests sharp: with zero spares and a large MTBF the
simulated ``restart``/``degrade`` goodputs converge to
:func:`~repro.recovery.policy.restart_goodput` /
:func:`~repro.recovery.policy.degrade_goodput` to within a fraction
of a percent.

Determinism follows the FaultSpec convention: all randomness flows
through one ``random.Random(seed)`` consumed in a fixed order (the
next failure arrival is redrawn after every state change — valid
because the exponential is memoryless), so the event log is
byte-identical across processes, hash seeds, and worker counts.

Policies (``POLICIES``):

* ``restart`` — idle through every repair window; chips do not fail
  while paused, so this reproduces the classic up/down renewal cycle.
* ``degrade`` — drop a row/column per outstanding failure (chained
  through the planner), migrate shards to each shrunk torus, restore
  when repairs complete; idles only when no survivor shape exists.
* ``replace`` — a spare adopts the dead coordinate after a
  same-shape replacement migration; repaired chips refill the pool;
  when the pool is dry the cluster idles until the next repair, which
  goes straight into the hole.
* ``reshape`` — re-factor the surviving chip count into the best
  torus (e.g. ``4x4 -> 3x5``), keeping every healthy chip working
  instead of draining a whole line.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
from typing import Dict, List, Optional, Tuple

from repro.mesh.topology import Mesh2D
from repro.obs.registry import registry as _metrics
from repro.recovery.checkpoint import CheckpointModel
from repro.recovery.policy import ClusterReliability

#: The elastic policies the lifetime simulator can apply.
POLICIES: Tuple[str, ...] = ("restart", "degrade", "replace", "reshape")

_SECONDS_PER_DAY = 86400.0


@dataclasses.dataclass(frozen=True)
class LifetimeSpec:
    """One lifetime simulation's operational parameters.

    Attributes:
        policy: One of :data:`POLICIES`.
        duration_days: Simulated wall-clock horizon (> 0).
        spares: Spare chips available to the ``replace`` policy
            (ignored by the other policies).
        seed: Seed of the failure-arrival process (FaultSpec
            convention: one ``random.Random(seed)``, fixed draw order).
    """

    policy: str
    duration_days: float
    spares: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        if self.duration_days <= 0.0:
            raise ValueError(
                f"duration_days must be positive, got {self.duration_days}"
            )
        if self.spares < 0:
            raise ValueError(f"spares must be non-negative, got {self.spares}")


@dataclasses.dataclass(frozen=True)
class LifetimeEvent:
    """One entry of the structured lifetime event log.

    Attributes:
        seq: Monotone event number (stable sort key).
        time: Simulated wall-clock seconds of the event.
        kind: ``"failure"`` | ``"repair"`` | ``"transition"`` |
            ``"spare-exhausted"`` | ``"end"``.
        action: What the policy did (``"degrade"``, ``"restore"``,
            ``"replace"``, ``"reshape"``, ``"idle"``, ``"run"``, ...).
        mesh: The running torus after the event (``"RxC"``), or
            ``None`` while idle.
        rate: Goodput rate after the event (full-rate fraction,
            checkpoint overhead included).
        running: Chips actively training after the event.
        in_repair: Chips currently in the repair shop.
        spares: Spare chips remaining in the pool.
        charge_seconds: Rate-zero reconfiguration wall-time this event
            charged (restart + simulated migration).
        banked_seconds: Cumulative full-rate-equivalent work so far.
    """

    seq: int
    time: float
    kind: str
    action: str
    mesh: Optional[str]
    rate: float
    running: int
    in_repair: int
    spares: int
    charge_seconds: float
    banked_seconds: float

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        return json.dumps(
            dataclasses.asdict(self), sort_keys=True, separators=(",", ":")
        )


@dataclasses.dataclass(frozen=True)
class LifetimeResult:
    """Outcome of one simulated lifetime.

    ``goodput`` is banked full-rate-equivalent seconds over elapsed
    wall seconds — directly comparable to
    :class:`~repro.recovery.policy.GoodputEstimate.goodput`.
    """

    policy: str
    seed: int
    wall_seconds: float
    banked_seconds: float
    goodput: float
    failures: int
    repairs: int
    transitions: int
    spares_consumed: int
    exhaustions: int
    idle_seconds: float
    min_running: int
    events: Tuple[LifetimeEvent, ...]
    trajectory: Tuple[Tuple[float, float], ...]

    def event_log_jsonl(self) -> str:
        """The full event log as canonical JSONL (newline-terminated)."""
        return "".join(event.to_json() + "\n" for event in self.events)

    def summary(self) -> Dict[str, object]:
        """Scalar summary (canonical-JSON-friendly) for tables/campaigns."""
        return {
            "policy": self.policy,
            "seed": self.seed,
            "wall_seconds": self.wall_seconds,
            "goodput": self.goodput,
            "failures": self.failures,
            "repairs": self.repairs,
            "transitions": self.transitions,
            "spares_consumed": self.spares_consumed,
            "exhaustions": self.exhaustions,
            "idle_seconds": self.idle_seconds,
            "min_running": self.min_running,
        }


class TableElasticPlanner:
    """A dictionary-driven planner for tests and closed-form checks.

    Args:
        mesh: The full torus.
        step_seconds: Full-mesh step (or block) time; only ratios
            matter to the simulator.
        degraded: Mapping of outstanding-failure count to
            ``(mesh, step_seconds)``; missing counts mean "no
            survivor" (the simulator idles).
        reshaped: Mapping of alive chip count to
            ``(mesh, step_seconds)``.
        migration_seconds: Flat per-transition migration charge
            (``0.0`` reproduces the closed forms' free migration).
    """

    def __init__(
        self,
        mesh: Mesh2D,
        step_seconds: float,
        degraded: Optional[Dict[int, Tuple[Mesh2D, float]]] = None,
        reshaped: Optional[Dict[int, Tuple[Mesh2D, float]]] = None,
        migration_seconds: float = 0.0,
    ):
        if step_seconds <= 0.0:
            raise ValueError("step_seconds must be positive")
        if migration_seconds < 0.0:
            raise ValueError("migration_seconds must be non-negative")
        self.mesh = mesh
        self.step_seconds = step_seconds
        self._degraded = dict(degraded or {})
        self._reshaped = dict(reshaped or {})
        self._migration = migration_seconds

    def full(self) -> Tuple[Mesh2D, float]:
        return self.mesh, self.step_seconds

    def degraded(self, failures: int) -> Optional[Tuple[Mesh2D, float]]:
        return self._degraded.get(failures)

    def reshaped(self, alive: int) -> Optional[Tuple[Mesh2D, float]]:
        return self._reshaped.get(alive)

    def migration(self, source: Mesh2D, target: Mesh2D) -> float:
        return self._migration


class TunedElasticPlanner:
    """A planner backed by the autotuner and the simulated comm plane.

    Step times come from real tuning searches (full mesh, chained
    degraded drops, reshaped factorizations); migration charges come
    from simulating :class:`~repro.recovery.elastic.ReshardPlan`
    programs. A :class:`~repro.service.store.PlanStore` warm-starts
    and deduplicates the searches exactly like the tuning service: a
    lifetime that revisits the same transition shape hits the store
    instead of re-searching, and ``mode="tune"`` misses are seeded
    from the nearest stored neighbor.

    Imports of :mod:`repro.service` are deferred to call time — the
    service layer executes degraded retunes through this package, so a
    module-level import would be circular.
    """

    def __init__(
        self,
        model,
        batch_size: int,
        hw,
        mesh: Mesh2D,
        *,
        plane: str = "onesided",
        store=None,
        engine: Optional[str] = None,
        max_slices: int = 64,
    ):
        from repro.recovery.elastic import (
            MIGRATION_PLANES,
            migration_payload_bytes,
        )

        if plane not in MIGRATION_PLANES:
            raise ValueError(
                f"unknown migration plane {plane!r}; "
                f"expected one of {MIGRATION_PLANES}"
            )
        self.model = model
        self.batch_size = batch_size
        self.hw = hw
        self.mesh = mesh
        self.plane = plane
        self.store = store
        self.engine = engine
        self.max_slices = max_slices
        self._payload = migration_payload_bytes(model, batch_size, hw)
        self._full: Optional[Tuple[Mesh2D, float]] = None
        self._degraded_cache: Dict[int, Optional[Tuple[Mesh2D, float]]] = {}
        self._reshaped_cache: Dict[int, Optional[Tuple[Mesh2D, float]]] = {}

    # ------------------------------------------------------------ resolution

    def _resolve(self, request):
        """Store-backed request resolution (the service's warm path)."""
        from repro.service import execute, warm_tune

        canonical = request.canonical()
        if self.store is not None:
            stored = self.store.load(canonical)
            if stored is not None:
                return stored
            if canonical.mode == "tune":
                neighbor = self.store.nearest_neighbor(canonical)
                if neighbor is not None:
                    _metrics().inc("service.warmstart.seeded")
                    result = warm_tune(
                        canonical.model,
                        canonical.batch,
                        canonical.chips,
                        canonical.hw,
                        neighbor_mesh=neighbor.result.mesh,
                        optimize_dataflow=canonical.optimize_dataflow,
                        min_mesh_dim=canonical.min_mesh_dim,
                        max_slices=canonical.max_slices,
                        abft=canonical.abft,
                        sdc_rate=canonical.sdc_rate,
                    )
                    self.store.save(canonical, result)
                    return result
        result = execute(canonical)
        if self.store is not None:
            self.store.save(canonical, result)
        return result

    def _tune(self, chips: int, min_mesh_dim: int) -> Optional[Tuple[Mesh2D, float]]:
        from repro.service import TuneRequest

        try:
            result = self._resolve(
                TuneRequest(
                    model=self.model,
                    batch=self.batch_size,
                    hw=self.hw,
                    mode="tune",
                    chips=chips,
                    min_mesh_dim=min_mesh_dim,
                    max_slices=self.max_slices,
                    engine=self.engine,
                )
            )
        except ValueError:
            return None
        return result.mesh, result.block_seconds

    # -------------------------------------------------------------- planner

    def full(self) -> Tuple[Mesh2D, float]:
        if self._full is None:
            tuned = self._tune(self.mesh.size, min_mesh_dim=2)
            if tuned is None:
                raise ValueError(
                    f"no tunable full configuration for {self.mesh}"
                )
            self._full = tuned
        return self._full

    def degraded(self, failures: int) -> Optional[Tuple[Mesh2D, float]]:
        """Chained row/column drops: one retune per outstanding failure."""
        if failures not in self._degraded_cache:
            from repro.recovery.degraded import NoSurvivingMeshError
            from repro.service import TuneRequest

            mesh = self.full()[0]
            plan: Optional[Tuple[Mesh2D, float]] = None
            try:
                for _ in range(failures):
                    retune = self._resolve(
                        TuneRequest(
                            model=self.model,
                            batch=self.batch_size,
                            hw=self.hw,
                            mode="degraded",
                            mesh=mesh,
                            dead=(0, 0),
                            max_slices=self.max_slices,
                            engine=self.engine,
                        )
                    )
                    mesh = retune.mesh
                    plan = (retune.mesh, retune.block_seconds)
            except NoSurvivingMeshError:
                plan = None
            self._degraded_cache[failures] = plan
        return self._degraded_cache[failures]

    def reshaped(self, alive: int) -> Optional[Tuple[Mesh2D, float]]:
        if alive not in self._reshaped_cache:
            plan = self._tune(alive, min_mesh_dim=1) if alive >= 2 else None
            self._reshaped_cache[alive] = plan
        return self._reshaped_cache[alive]

    def migration(self, source: Mesh2D, target: Mesh2D) -> float:
        from repro.recovery.elastic import ReshardPlan, migration_seconds

        plan = ReshardPlan(source, target, self._payload, self.plane)
        return migration_seconds(plan, self.hw, self.engine)


def simulate_lifetime(
    planner,
    reliability: ClusterReliability,
    spec: LifetimeSpec,
    checkpoint_seconds: float,
    restart_seconds: float = 0.0,
) -> LifetimeResult:
    """Run one seeded lifetime under ``spec.policy``.

    Args:
        planner: Anything with the planner protocol —
            ``full() -> (mesh, step)``,
            ``degraded(failures) -> Optional[(mesh, step)]``,
            ``reshaped(alive) -> Optional[(mesh, step)]``,
            ``migration(source, target) -> seconds``
            (:class:`TableElasticPlanner` or
            :class:`TunedElasticPlanner`).
        reliability: Failure/repair characteristics; ``chips`` must
            equal the planner's full-mesh size.
        spec: Policy, horizon, spare pool, and seed.
        checkpoint_seconds: Checkpoint write cost (Young/Daly model).
        restart_seconds: Checkpoint reload cost. Charged inside the
            checkpoint goodput factor while running, and again per
            reconfiguration transition (every transition reloads from
            checkpoint on the new shape, mirroring
            :func:`~repro.recovery.policy.degrade_goodput`).

    Only *running* chips fail (training stress model): a restart-idled
    cluster draws no failures, and drained or spare chips are not at
    risk — exactly the closed forms' assumptions, which is what makes
    the large-MTBF cross-check exact.
    """
    full_mesh, full_step = planner.full()
    if full_mesh.size != reliability.chips:
        raise ValueError(
            f"reliability.chips={reliability.chips} does not match the "
            f"planner's full mesh {full_mesh} ({full_mesh.size} chips)"
        )
    if full_step <= 0.0:
        raise ValueError("full-mesh step_seconds must be positive")

    horizon = spec.duration_days * _SECONDS_PER_DAY
    rng = random.Random(spec.seed)
    chip_mtbf = reliability.chip_mtbf
    rho = reliability.repair_seconds

    ckpt_cache: Dict[int, float] = {}

    def ckpt_factor(running: int) -> float:
        if running < 1:
            return 0.0
        factor = ckpt_cache.get(running)
        if factor is None:
            model = CheckpointModel(
                mtbf=chip_mtbf / running,
                checkpoint_seconds=checkpoint_seconds,
                restart_seconds=restart_seconds,
            )
            factor = ckpt_cache[running] = model.optimal_goodput()
        return factor

    # ---------------------------------------------------------------- state
    t = 0.0
    banked = 0.0
    idle_seconds = 0.0
    holes = 0  # chips dead (replace: dead coordinates not yet refilled)
    spares = spec.spares
    repairs: List[float] = []  # sorted completion times
    cur: Optional[Tuple[Mesh2D, float]] = (full_mesh, full_step)
    last_mesh = full_mesh  # layout the shards currently live in
    cur_action = "run"
    events: List[LifetimeEvent] = []
    trajectory: List[Tuple[float, float]] = []
    failures = repairs_done = transitions = consumed = exhaustions = 0
    min_running = full_mesh.size

    def rate() -> float:
        if cur is None:
            return 0.0
        mesh, step = cur
        return (full_step / step) * ckpt_factor(mesh.size)

    def record(kind: str, action: str, charge: float = 0.0) -> None:
        events.append(
            LifetimeEvent(
                seq=len(events),
                time=t,
                kind=kind,
                action=action,
                mesh=f"{cur[0].rows}x{cur[0].cols}" if cur else None,
                rate=cur_rate,
                running=cur[0].size if cur else 0,
                in_repair=len(repairs),
                spares=spares,
                charge_seconds=charge,
                banked_seconds=banked,
            )
        )

    def desired() -> Tuple[Optional[Tuple[Mesh2D, float]], str]:
        """What the policy wants to run given the outstanding holes."""
        if holes == 0:
            return (full_mesh, full_step), "restore" if cur != (
                full_mesh,
                full_step,
            ) else "run"
        if spec.policy == "degrade":
            plan = planner.degraded(holes)
            return (plan, "degrade") if plan else (None, "idle")
        if spec.policy == "reshape":
            plan = planner.reshaped(full_mesh.size - holes)
            return (plan, "reshape") if plan else (None, "idle")
        # restart always idles; replace with holes > 0 is exhausted.
        return None, "idle"

    cur_rate = rate()
    trajectory.append((t, cur_rate))
    record("transition", "run")

    def retarget(replacement: bool = False) -> None:
        """Move to the policy's desired state, charging the transition."""
        nonlocal t, cur, cur_rate, last_mesh, cur_action, transitions
        target, action = desired()
        if replacement and target is not None:
            action = "replace"
        if target == cur and not (replacement and target is not None):
            return
        charge = 0.0
        if target is not None:
            migrate = replacement or target[0] != last_mesh
            if migrate:
                source = last_mesh if not replacement else target[0]
                charge = restart_seconds + planner.migration(
                    source, target[0]
                )
                t += charge
            last_mesh = target[0]
        cur = target
        cur_action = action
        new_rate = rate()
        changed = new_rate != cur_rate
        cur_rate = new_rate
        if changed:
            trajectory.append((t, cur_rate))
        transitions += 1
        record("transition", action, charge)

    def next_failure() -> float:
        if cur is None or cur[0].size == 0:
            return math.inf
        return t + rng.expovariate(cur[0].size / chip_mtbf)

    fail_at = next_failure()

    # ----------------------------------------------------------- event loop
    while t < horizon:
        repair_at = repairs[0] if repairs else math.inf
        te = min(horizon, fail_at, repair_at)
        if te > t:
            banked += cur_rate * (te - t)
            if cur_rate == 0.0:
                idle_seconds += te - t
            t = te
        if t >= horizon:
            break
        if repair_at <= fail_at:
            # ---------------------------------------------- repair completes
            repairs.pop(0)
            repairs_done += 1
            record("repair", cur_action)
            if spec.policy == "replace":
                if holes > 0:
                    holes -= 1  # straight into the hole
                    retarget(replacement=True)
                else:
                    spares += 1  # back to the pool
            else:
                holes -= 1
                retarget()
        else:
            # ------------------------------------------------- a chip fails
            failures += 1
            holes += 1
            repairs.append(t + rho)
            repairs.sort()
            record("failure", cur_action)
            if spec.policy == "replace" and holes > 0:
                if spares > 0:
                    spares -= 1
                    consumed += 1
                    holes -= 1
                    retarget(replacement=True)
                else:
                    exhaustions += 1
                    record("spare-exhausted", "idle")
                    retarget()
            else:
                retarget()
        if cur is not None:
            min_running = min(min_running, cur[0].size)
        fail_at = next_failure()

    wall = max(t, horizon)
    goodput = banked / wall if wall > 0 else 0.0
    record("end", cur_action)

    reg = _metrics()
    reg.inc("elastic.lifetimes", labels={"policy": spec.policy})
    reg.inc("elastic.failures", failures)
    reg.inc("elastic.repairs", repairs_done)
    reg.inc("elastic.transitions", transitions, labels={"policy": spec.policy})
    reg.inc("elastic.spares_consumed", consumed)
    reg.inc("elastic.exhaustions", exhaustions)
    reg.observe("elastic.lifetime.goodput", goodput)

    return LifetimeResult(
        policy=spec.policy,
        seed=spec.seed,
        wall_seconds=wall,
        banked_seconds=banked,
        goodput=goodput,
        failures=failures,
        repairs=repairs_done,
        transitions=transitions,
        spares_consumed=consumed,
        exhaustions=exhaustions,
        idle_seconds=idle_seconds,
        min_running=min_running,
        events=tuple(events),
        trajectory=tuple(trajectory),
    )
