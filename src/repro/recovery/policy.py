"""Recovery-policy goodput: what fraction of the cluster's time is kept.

Combines the per-step simulation (how long one training step takes on
a given mesh) with the analytical checkpoint model
(:mod:`repro.recovery.checkpoint`) into end-to-end *goodput* — useful,
kept work per wall-clock second, expressed as a fraction of the ideal
failure-free full-mesh throughput — for the two recovery policies the
``meshslice recovery`` surface compares:

* **restart**: on any failure, roll back to the last checkpoint and
  wait out the repair; the cluster is idle while the chip is replaced.
  Goodput = (uptime fraction of the repair cycle) x (checkpoint-
  restart goodput at the Young/Daly-optimal interval).
* **degrade**: on a chip failure, reconfigure onto the shrunk torus
  (:mod:`repro.recovery.degraded`), keep training at the degraded
  step rate until the repair completes, then reconfigure back. The
  repair window produces work at ``step_full / step_degraded`` of the
  full rate instead of none; both transitions cost a restart (reload
  from checkpoint on the new shape).
* **replace**: a spare chip adopts the dead coordinate immediately;
  the only downtime per failure is the reconfiguration itself —
  checkpoint reload plus the simulated replacement migration
  (:mod:`repro.recovery.elastic`). The closed form assumes the spare
  pool never runs dry; finite pools are what the lifetime simulator
  (:mod:`repro.recovery.lifetime`) prices.
* **reshape**: re-factor the surviving ``P - 1`` chips into the best
  torus (e.g. ``4x4 -> 3x5``) for the repair window — the same cycle
  algebra as degrade, but the shrunk rate keeps every healthy chip
  and both transitions additionally pay the simulated reshard
  migration.

All policies model failures as a renewal process: exponential
failures at the cluster MTBF ``M``, deterministic repair time ``rho``,
so a mean cycle is ``M + rho`` seconds of wall clock (``M`` plus the
swap time for replace). Within the *up* portion the checkpoint model
accounts for rollback losses; the shrunk portion is treated as
failure-free (a second failure inside one repair window is
second-order at realistic MTBFs — the lifetime simulator drops that
approximation).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.recovery.checkpoint import CheckpointModel, cluster_mtbf


@dataclasses.dataclass(frozen=True)
class ClusterReliability:
    """Failure and repair characteristics of one cluster.

    Attributes:
        chip_mtbf: Per-chip mean time between failures, seconds.
        chips: Cluster size; the cluster MTBF is ``chip_mtbf / chips``.
        repair_seconds: Time to replace/repair a failed chip (>= 0).
    """

    chip_mtbf: float
    chips: int
    repair_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.repair_seconds < 0.0:
            raise ValueError("repair_seconds must be non-negative")
        # chip_mtbf / chips validation happens in cluster_mtbf.
        cluster_mtbf(self.chip_mtbf, self.chips)

    @property
    def mtbf(self) -> float:
        """Cluster mean time between failures, seconds."""
        return cluster_mtbf(self.chip_mtbf, self.chips)

    @property
    def availability(self) -> float:
        """Up fraction of the mean failure-repair cycle."""
        return self.mtbf / (self.mtbf + self.repair_seconds)


@dataclasses.dataclass(frozen=True)
class GoodputEstimate:
    """End-to-end goodput of one recovery policy on one cluster.

    Attributes:
        policy: ``"restart"``, ``"degrade"``, ``"replace"``, or
            ``"reshape"``.
        goodput: Useful kept work per wall-clock second, as a fraction
            of the ideal failure-free full-mesh rate (in ``(0, 1]``).
        checkpoint_interval: The Young/Daly-optimal interval used
            (seconds of useful work between checkpoints).
        checkpoint_goodput: The checkpoint-restart factor alone
            (rollback + checkpoint-write overhead, no repair idling).
        step_seconds: Full-mesh step time the estimate is relative to.
        degraded_step_seconds: Shrunk-mesh step time (``None`` for the
            restart and replace policies).
        migration_seconds: Simulated reshard-migration charge per
            transition (``None`` for the policies that predate
            elastic migration).
    """

    policy: str
    goodput: float
    checkpoint_interval: float
    checkpoint_goodput: float
    step_seconds: float
    degraded_step_seconds: Optional[float] = None
    migration_seconds: Optional[float] = None

    @property
    def effective_step_seconds(self) -> float:
        """Wall-clock seconds per banked step at this goodput."""
        return self.step_seconds / self.goodput

    @property
    def steps_per_hour(self) -> float:
        return 3600.0 / self.effective_step_seconds


def _checkpointing(model: CheckpointModel) -> Tuple[float, float]:
    """(optimal interval, goodput factor) of the checkpoint model."""
    interval = model.optimal_interval()
    return interval, model.goodput(interval)


def restart_goodput(
    step_seconds: float,
    reliability: ClusterReliability,
    checkpoint_seconds: float,
    restart_seconds: float = 0.0,
) -> GoodputEstimate:
    """Goodput of checkpoint-restart with idle repair windows."""
    if step_seconds <= 0.0:
        raise ValueError("step_seconds must be positive")
    model = CheckpointModel(
        mtbf=reliability.mtbf,
        checkpoint_seconds=checkpoint_seconds,
        restart_seconds=restart_seconds,
    )
    interval, ckpt = _checkpointing(model)
    return GoodputEstimate(
        policy="restart",
        goodput=reliability.availability * ckpt,
        checkpoint_interval=interval,
        checkpoint_goodput=ckpt,
        step_seconds=step_seconds,
    )


def degrade_goodput(
    step_seconds: float,
    degraded_step_seconds: float,
    reliability: ClusterReliability,
    checkpoint_seconds: float,
    restart_seconds: float = 0.0,
) -> GoodputEstimate:
    """Goodput of degraded-mesh continuation through repair windows.

    During the mean cycle of ``M + rho`` wall-clock seconds the
    cluster banks ``M x ckpt`` full-rate seconds while healthy plus
    ``rho x (step_full / step_degraded)`` full-rate-equivalent seconds
    on the shrunk torus, minus two reconfiguration restarts (failover
    and failback, each a checkpoint reload).
    """
    if step_seconds <= 0.0:
        raise ValueError("step_seconds must be positive")
    if degraded_step_seconds < step_seconds:
        raise ValueError(
            "degraded_step_seconds cannot beat the full mesh "
            f"({degraded_step_seconds} < {step_seconds})"
        )
    model = CheckpointModel(
        mtbf=reliability.mtbf,
        checkpoint_seconds=checkpoint_seconds,
        restart_seconds=restart_seconds,
    )
    interval, ckpt = _checkpointing(model)
    M = reliability.mtbf
    rho = reliability.repair_seconds
    relative_rate = step_seconds / degraded_step_seconds
    banked = M * ckpt + rho * relative_rate - 2.0 * restart_seconds
    goodput = max(0.0, banked) / (M + rho)
    return GoodputEstimate(
        policy="degrade",
        goodput=min(1.0, goodput),
        checkpoint_interval=interval,
        checkpoint_goodput=ckpt,
        step_seconds=step_seconds,
        degraded_step_seconds=degraded_step_seconds,
    )


def replace_goodput(
    step_seconds: float,
    reliability: ClusterReliability,
    checkpoint_seconds: float,
    restart_seconds: float = 0.0,
    migration_seconds: float = 0.0,
) -> GoodputEstimate:
    """Goodput of spare-pool replacement with an inexhaustible pool.

    Each failure costs only the swap: a checkpoint reload plus the
    simulated replacement migration (the spare fetching the dead
    chip's shard; see :mod:`repro.recovery.elastic`). The mean cycle
    is ``M`` up-seconds banking at the checkpoint goodput plus the
    swap downtime — the repair shop refills the pool off the critical
    path, so ``repair_seconds`` never appears. Finite pools (and
    exhaustion under failure bursts) are the lifetime simulator's
    territory.
    """
    if step_seconds <= 0.0:
        raise ValueError("step_seconds must be positive")
    if migration_seconds < 0.0:
        raise ValueError("migration_seconds must be non-negative")
    model = CheckpointModel(
        mtbf=reliability.mtbf,
        checkpoint_seconds=checkpoint_seconds,
        restart_seconds=restart_seconds,
    )
    interval, ckpt = _checkpointing(model)
    M = reliability.mtbf
    swap = restart_seconds + migration_seconds
    return GoodputEstimate(
        policy="replace",
        goodput=ckpt * M / (M + swap),
        checkpoint_interval=interval,
        checkpoint_goodput=ckpt,
        step_seconds=step_seconds,
        migration_seconds=migration_seconds,
    )


def reshape_goodput(
    step_seconds: float,
    reshaped_step_seconds: float,
    reliability: ClusterReliability,
    checkpoint_seconds: float,
    restart_seconds: float = 0.0,
    migration_seconds: float = 0.0,
) -> GoodputEstimate:
    """Goodput of reshaping onto the surviving chips' best torus.

    The degrade cycle algebra with two differences: the repair window
    runs at the *reshaped* rate (every healthy chip keeps working —
    ``P - 1`` chips instead of a drained line), and each of the two
    transitions pays the simulated reshard migration on top of the
    checkpoint reload.
    """
    if step_seconds <= 0.0:
        raise ValueError("step_seconds must be positive")
    if reshaped_step_seconds < step_seconds:
        raise ValueError(
            "reshaped_step_seconds cannot beat the full mesh "
            f"({reshaped_step_seconds} < {step_seconds})"
        )
    if migration_seconds < 0.0:
        raise ValueError("migration_seconds must be non-negative")
    model = CheckpointModel(
        mtbf=reliability.mtbf,
        checkpoint_seconds=checkpoint_seconds,
        restart_seconds=restart_seconds,
    )
    interval, ckpt = _checkpointing(model)
    M = reliability.mtbf
    rho = reliability.repair_seconds
    relative_rate = step_seconds / reshaped_step_seconds
    transition = restart_seconds + migration_seconds
    banked = M * ckpt + rho * relative_rate - 2.0 * transition
    goodput = max(0.0, banked) / (M + rho)
    return GoodputEstimate(
        policy="reshape",
        goodput=min(1.0, goodput),
        checkpoint_interval=interval,
        checkpoint_goodput=ckpt,
        step_seconds=step_seconds,
        degraded_step_seconds=reshaped_step_seconds,
        migration_seconds=migration_seconds,
    )
