"""Degraded-mesh reconfiguration: route around a dead chip and re-tune.

A 2D torus cannot heal a single dead chip by rerouting: the dead chip
sits on one row ring and one column ring, and a ring with a hole is a
line — every collective crossing it would serialize. The standard
recovery (mirroring how TPU pod slices are resized around a failed
host) instead *drains the whole row or column* containing the dead
chip and re-forms the wrap-around links between its neighbors, leaving
a smaller but fully functional ``(rows-1) x cols`` or
``rows x (cols-1)`` torus.

Which of the two to drop is a tuning question — the shrunk shapes have
different ring sizes, different per-chip shards, and different optimal
slice counts — so :func:`retune_degraded` runs the autotuner's
exhaustive shape/slice search restricted to the surviving candidates
and returns the faster configuration. Because dropping row ``i`` gives
the same logical torus for every ``i``, the result depends only on the
mesh shape, never on *which* chip died.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.autotuner.search import TuningResult, tune_model
from repro.hw.params import HardwareParams
from repro.mesh.topology import Coord, Mesh2D
from repro.models.config import LLMConfig
from repro.obs.registry import registry as _metrics


class NoSurvivingMeshError(ValueError):
    """A degraded retune was asked for a mesh with no survivor shape.

    Raised by :func:`retune_degraded` when :func:`degraded_meshes`
    returns no candidates (a 1x1 mesh losing its only chip). Callers
    that can fall back — e.g. the lifetime simulator idling until a
    repair — catch this by name instead of pattern-matching a generic
    ``ValueError`` from deep inside the tuner.
    """


def degraded_meshes(mesh: Mesh2D, dead: Coord) -> Tuple[Mesh2D, ...]:
    """The valid shrunk tori after chip ``dead`` dies on ``mesh``.

    Returns the drop-row and drop-column candidates (one of the two
    when the mesh has a single row or column). A 1x1 mesh has no
    survivors: the result is the *empty* tuple — a structured "no
    candidates" the caller can branch on — not an error. Only an
    off-mesh ``dead`` coordinate raises.
    """
    if not mesh.contains(dead):
        raise ValueError(f"dead chip {dead} is not on mesh {mesh}")
    candidates = []
    if mesh.rows > 1:
        candidates.append(mesh.without_row(dead[0]))
    if mesh.cols > 1:
        candidates.append(mesh.without_col(dead[1]))
    return tuple(candidates)


@dataclasses.dataclass(frozen=True)
class DegradedRetune:
    """The autotuned configuration of a mesh degraded by one dead chip.

    Attributes:
        original: The healthy mesh.
        dead: The failed chip's coordinate on ``original``.
        dropped: ``"row"`` or ``"col"`` — which line was drained.
        result: Full autotuner output on the surviving candidates;
            ``result.mesh`` is the chosen shrunk torus and
            ``result.block_seconds`` its tuned FC block time.
    """

    original: Mesh2D
    dead: Coord
    dropped: str
    result: TuningResult

    @property
    def mesh(self) -> Mesh2D:
        return self.result.mesh

    @property
    def block_seconds(self) -> float:
        return self.result.block_seconds

    @property
    def surviving_chips(self) -> int:
        return self.result.mesh.size


def retune_degraded(
    model: LLMConfig,
    batch_size: int,
    mesh: Mesh2D,
    dead: Coord,
    hw: HardwareParams,
    max_slices: int = 64,
) -> DegradedRetune:
    """Re-tune ``model`` on the torus surviving chip ``dead``'s death.

    Runs the autotuner's exhaustive slice-count search on every
    surviving candidate shape (drop the dead chip's row vs. its
    column) and picks the faster tuned configuration — exactly the
    search the healthy mesh was tuned with, restricted to the shrunk
    candidates.

    Raises:
        NoSurvivingMeshError: When no shrunk candidate exists (a 1x1
            mesh); ``ValueError`` when ``dead`` is not on ``mesh``.
    """
    candidates = degraded_meshes(mesh, dead)
    if not candidates:
        raise NoSurvivingMeshError(
            f"mesh {mesh} has no surviving configuration after "
            f"chip {dead} dies"
        )
    _metrics().inc(
        "recovery.degraded_retunes",
        labels={"mesh": f"{mesh.rows}x{mesh.cols}"},
    )
    result = tune_model(
        model,
        batch_size,
        mesh.size,
        hw,
        mesh_candidates=candidates,
        max_slices=max_slices,
    )
    dropped = "row" if result.mesh.rows == mesh.rows - 1 else "col"
    return DegradedRetune(
        original=mesh, dead=dead, dropped=dropped, result=result
    )
