"""Analytical checkpoint-restart model (Young/Daly optimal interval).

A multi-day training run on a failure-prone cluster checkpoints every
``tau`` seconds of useful work, and on a failure rolls back to the last
checkpoint, pays a restart cost, and re-executes the lost work. The
classical first-order analysis (Young 1974; refined by Daly 2006) gives
the interval minimizing expected lost time:

* **Young**: ``tau* = sqrt(2 * delta * M)`` where ``delta`` is the
  checkpoint write cost and ``M`` the mean time between failures.
* **Daly** (higher order, with the checkpoint cost subtracted)::

      tau* = sqrt(2 delta M) * [1 + (1/3) sqrt(delta / 2M)
                                  + (1/9) (delta / 2M)] - delta

  valid for ``delta < 2M``, else ``tau* = M``.

Both approximate the exact optimum of the renewal-reward model with
exponentially distributed failures, which this module also evaluates
directly: a segment of ``tau`` useful seconds plus a ``delta``-second
checkpoint, restart cost ``R`` after each failure, has expected
wall-clock time (Daly 2006, eq. 13)::

    E[T](tau) = M * exp(R / M) * (exp((tau + delta) / M) - 1)

and *goodput* — the fraction of wall-clock spent on useful, kept
work — is ``tau / E[T](tau)``. :meth:`CheckpointModel.optimal_interval`
maximizes that goodput numerically (deterministic golden-section
search); tests pin it within 1% of the closed-form Young/Daly optimum
in the ``delta << M`` regime where the approximations hold.

Assumptions: failures are Poisson (memoryless, rate ``1/M``), failures
can also strike during checkpoints and restarts, checkpoint cost is
independent of the interval, and rollback loses on average half a
segment (implicit in the renewal model). ``M`` here is the *cluster*
MTBF — a cluster of ``n`` chips with per-chip MTBF ``m`` has
``M = m / n``.
"""

from __future__ import annotations

import dataclasses
import math

#: Golden ratio step of the deterministic section search.
_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0


@dataclasses.dataclass(frozen=True)
class CheckpointModel:
    """Checkpoint-restart economics of one cluster configuration.

    Attributes:
        mtbf: Cluster mean time between failures, seconds (> 0).
        checkpoint_seconds: Cost of writing one checkpoint (> 0).
        restart_seconds: Cost of one restart — detection, rescheduling,
            checkpoint load — before re-execution begins (>= 0).
    """

    mtbf: float
    checkpoint_seconds: float
    restart_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0.0:
            raise ValueError("mtbf must be positive")
        if self.checkpoint_seconds <= 0.0:
            raise ValueError("checkpoint_seconds must be positive")
        if self.restart_seconds < 0.0:
            raise ValueError("restart_seconds must be non-negative")

    # ------------------------------------------------------------ closed forms

    @property
    def young_interval(self) -> float:
        """Young's first-order optimal interval ``sqrt(2 delta M)``."""
        return math.sqrt(2.0 * self.checkpoint_seconds * self.mtbf)

    @property
    def daly_interval(self) -> float:
        """Daly's higher-order optimal interval (see module docstring)."""
        delta, M = self.checkpoint_seconds, self.mtbf
        if delta >= 2.0 * M:
            return M
        ratio = delta / (2.0 * M)
        return (
            math.sqrt(2.0 * delta * M)
            * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0)
            - delta
        )

    # ------------------------------------------------------------ exact model

    def expected_wall_seconds(self, interval: float) -> float:
        """Expected wall-clock to bank ``interval`` useful seconds.

        The renewal-reward expectation ``M e^{R/M} (e^{(tau+delta)/M} - 1)``
        for exponential failures striking work, checkpoints, and
        restarts alike.
        """
        if interval <= 0.0:
            raise ValueError("interval must be positive")
        M = self.mtbf
        exponent = (interval + self.checkpoint_seconds) / M
        return M * math.exp(self.restart_seconds / M) * math.expm1(exponent)

    def goodput(self, interval: float) -> float:
        """Fraction of wall-clock spent on useful, kept work in ``(0, 1)``."""
        return interval / self.expected_wall_seconds(interval)

    def optimal_interval(self) -> float:
        """The interval maximizing :meth:`goodput` (exact model).

        Deterministic golden-section search on a bracket spanning two
        decades around the Young interval (the optimum of the exact
        model lies between Young's and Daly's estimates for any
        ``delta < 2M``, and near ``M`` beyond).
        """
        anchor = max(self.young_interval, self.daly_interval, self.mtbf * 1e-9)
        lo, hi = anchor / 100.0, anchor * 100.0
        # Keep the exponent sane: beyond ~40 MTBFs the goodput is
        # numerically zero anyway.
        hi = min(hi, 40.0 * self.mtbf)
        if hi <= lo:
            hi = 2.0 * lo
        a, b = lo, hi
        c = b - _INVPHI * (b - a)
        d = a + _INVPHI * (b - a)
        fc, fd = self.goodput(c), self.goodput(d)
        for _ in range(200):
            if fc >= fd:
                b, d, fd = d, c, fc
                c = b - _INVPHI * (b - a)
                fc = self.goodput(c)
            else:
                a, c, fc = c, d, fd
                d = a + _INVPHI * (b - a)
                fd = self.goodput(d)
            if b - a <= 1e-12 * max(1.0, b):
                break
        return (a + b) / 2.0

    def optimal_goodput(self) -> float:
        """Goodput at the numerically optimal interval."""
        return self.goodput(self.optimal_interval())

    def expected_total_wall(self, useful_seconds: float) -> float:
        """Expected wall-clock for a run of ``useful_seconds`` of work
        checkpointed at the optimal interval."""
        if useful_seconds < 0.0:
            raise ValueError("useful_seconds must be non-negative")
        if useful_seconds == 0.0:
            return 0.0
        return useful_seconds / self.optimal_goodput()


def cluster_mtbf(chip_mtbf: float, chips: int) -> float:
    """Cluster MTBF of ``chips`` independent chips: ``m / n``.

    With per-chip exponential failures at rate ``1/m`` the cluster's
    first failure is exponential at rate ``n/m``.
    """
    if chip_mtbf <= 0.0:
        raise ValueError("chip_mtbf must be positive")
    if chips < 1:
        raise ValueError("chips must be >= 1")
    return chip_mtbf / chips
