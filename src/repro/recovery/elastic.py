"""Elastic mesh transitions as timed reshard-migration programs.

PR 3's recovery policies charge reconfiguration as a flat restart
constant. This module replaces that constant with the real thing: when
a torus changes shape (degrade, restore, reshape) or a spare chip takes
over a dead coordinate, every chip's weight/optimizer/activation shards
must move from the old layout to the new one — and that movement is
just another communication program the cluster simulator can time,
with the same launch/transfer/sync decomposition, HBM contention, and
link-overlap policy as the training step itself.

Two migration planes mirror the two GeMM families:

* ``"collective"`` — the shards are re-blocked with ring AllGathers
  along each axis whose partitioning changed, then each chip slices
  its new shard out of the gathered block. Simple and synchronous, but
  an axis change replicates the full block over the ring.
* ``"onesided"`` — each chip posts one RDMA get per overlapping
  source owner (the new block boundaries intersect at most
  ``floor(old/new) + 1`` old intervals per axis), routed at the mean
  min-wrap torus distance, then closes the epoch with one log-depth
  fence. No per-step synchronization and no replication: only the
  bytes that actually change owners cross the wires.

Replacement (``source == target``, a spare chip adopting a dead
coordinate) moves only the dead chip's shard: the spare refills it
from the peers of one ring — the row ring when the mesh has more than
one column, otherwise the column ring — which models the common
neighbor-striped checkpoint placement.

:func:`migration_seconds` simulates the built program and memoizes the
makespan per (plan, hardware, engine), so lifetime simulations that
revisit the same transition thousands of times pay for one simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.comm.cost import CommCost
from repro.comm.onesided import OneSidedCostModel
from repro.hw.params import HardwareParams
from repro.mesh.topology import Mesh2D
from repro.models.config import LLMConfig
from repro.obs.registry import registry as _metrics
from repro.perf.cache import memoize
from repro.sim.cluster import simulate
from repro.sim.engine import LINK_H, LINK_V
from repro.sim.program import Program, ProgramBuilder

#: The two comm planes a migration program can ride on.
MIGRATION_PLANES: Tuple[str, ...] = ("collective", "onesided")

#: fp32 Adam first and second moments carried per weight element.
OPTIMIZER_BYTES_PER_PARAM = 8.0


def overlap_pieces(source_parts: int, target_parts: int) -> int:
    """Owners one target block can intersect along one re-blocked axis.

    An axis sharded into ``source_parts`` equal intervals is re-sharded
    into ``target_parts``; one new interval (width ``1/target_parts``
    of the axis) crosses at most ``floor(source/target) + 1`` old
    intervals, and never more than ``source_parts``. This is the
    per-axis fan-in of the one-sided migration: the worst-case chip
    posts this many gets per axis.
    """
    if source_parts < 1 or target_parts < 1:
        raise ValueError(
            "partition counts must be >= 1, got "
            f"{source_parts} -> {target_parts}"
        )
    return min(source_parts, source_parts // target_parts + 1)


@dataclasses.dataclass(frozen=True)
class ReshardPlan:
    """One elastic transition's data movement, ready to build and time.

    Attributes:
        source: The layout the shards currently live in.
        target: The layout they must land in. Equal to ``source`` for a
            spare replacement (only the dead chip's shard moves).
        payload_bytes: Total bytes that must land re-sharded across the
            whole cluster (weights + optimizer state + activation
            checkpoints; see :func:`migration_payload_bytes`).
        plane: ``"collective"`` or ``"onesided"``.
    """

    source: Mesh2D
    target: Mesh2D
    payload_bytes: float
    plane: str = "onesided"

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be non-negative, got {self.payload_bytes}"
            )
        if self.plane not in MIGRATION_PLANES:
            raise ValueError(
                f"unknown migration plane {self.plane!r}; "
                f"expected one of {MIGRATION_PLANES}"
            )

    @property
    def is_replacement(self) -> bool:
        """Whether this is a same-shape spare swap-in."""
        return self.source == self.target

    @property
    def source_shard_bytes(self) -> float:
        """Bytes one chip owns under the source layout."""
        return self.payload_bytes / self.source.size

    @property
    def target_shard_bytes(self) -> float:
        """Bytes one chip owns under the target layout."""
        return self.payload_bytes / self.target.size

    @property
    def pieces(self) -> int:
        """Worst-case gets one chip posts on the one-sided plane."""
        if self.is_replacement:
            return max(1, _stripe_ring(self.source) - 1)
        return overlap_pieces(self.source.rows, self.target.rows) * (
            overlap_pieces(self.source.cols, self.target.cols)
        )


def _stripe_ring(mesh: Mesh2D) -> int:
    """The ring a chip's checkpoint stripe lives on (for replacement)."""
    return mesh.cols if mesh.cols > 1 else mesh.rows


def _axis_mean_hops(extent: int) -> float:
    """Mean min-wrap hop count along one torus axis of ``extent`` chips."""
    return sum(min(d, extent - d) for d in range(extent)) / extent


def build_migration_program(plan: ReshardPlan, hw: HardwareParams) -> Program:
    """The timed activity DAG of one reshard migration.

    The program is the representative chip's schedule, like every GeMM
    program: the worst-case chip of the *target* layout fetches or
    gathers its new shard, writes it back through the slicing-copy
    path, and synchronizes. Simulate with :func:`repro.sim.simulate`
    (or use :func:`migration_seconds` for the memoized makespan).
    """
    builder = ProgramBuilder(hw)
    if plan.plane == "onesided":
        _onesided_migration(builder, plan)
    else:
        _collective_migration(builder, plan)
    return builder.build(
        kind="reshard",
        plane=plan.plane,
        source=(plan.source.rows, plan.source.cols),
        target=(plan.target.rows, plan.target.cols),
        payload_bytes=plan.payload_bytes,
    )


def _onesided_migration(builder: ProgramBuilder, plan: ReshardPlan) -> None:
    """One-sided plane: per-owner gets, local write-back, one fence.

    A get's route decomposes into horizontal plus vertical min-wrap
    hops (dimension-ordered torus routing), so the transfer is split
    into one activity per link direction: the horizontal leg carries
    the descriptor posts, the vertical leg only its wire time. The
    legs run concurrently — exactly the overlap the hardware gives
    independent link directions.
    """
    costs = OneSidedCostModel.for_hw(builder.hw)
    total = plan.target_shard_bytes if not plan.is_replacement else (
        plan.source_shard_bytes
    )
    pieces = plan.pieces
    if plan.is_replacement:
        ring = _stripe_ring(plan.source)
        mean_h = costs.mean_ring_hops(ring) if plan.source.cols > 1 else 0.0
        mean_v = costs.mean_ring_hops(ring) if plan.source.cols == 1 else 0.0
    else:
        mean_h = _axis_mean_hops(plan.target.cols)
        mean_v = _axis_mean_hops(plan.target.rows)
    horizontal = costs.panel(pieces, total / pieces, mean_h)
    deps = []
    if horizontal.total > 0 or total == 0:
        deps.append(
            builder.comm_on("reshard/get-h", horizontal, (LINK_H,))
        )
    if mean_v > 0 and total > 0:
        vertical = CommCost(
            launch=0.0,
            transfer=total * mean_v / builder.hw.ring_bandwidth,
            sync=0.0,
            hbm_bytes=0.0,
            syncs=0,
            wire_bytes=total * mean_v,
        )
        deps.append(builder.comm_on("reshard/get-v", vertical, (LINK_V,)))
    if not deps:
        deps.append(builder.barrier("reshard/noop", ()))
    copy = builder.slice_copy("reshard/writeback", total, deps=deps)
    builder.comm_on(
        "reshard/fence",
        costs.fence(plan.target.size),
        (LINK_H, LINK_V),
        deps=[copy],
    )


def _collective_migration(builder: ProgramBuilder, plan: ReshardPlan) -> None:
    """Collective plane: AllGather per changed axis, then local re-slice.

    Replacement gathers the dead chip's stripe over its checkpoint
    ring; a shape change gathers the source shard along every axis
    whose partitioning changed (the second gather moves the already
    row-gathered block, which is the honest replication cost of doing
    resharding with synchronous collectives).
    """
    deps = []
    if plan.is_replacement:
        ring = _stripe_ring(plan.source)
        link = LINK_H if plan.source.cols > 1 else LINK_V
        deps.append(
            builder.allgather(
                "reshard/ag-stripe",
                ring,
                plan.source_shard_bytes / max(1, ring),
                link,
            )
        )
    else:
        shard = plan.source_shard_bytes
        if plan.source.cols != plan.target.cols:
            deps.append(
                builder.allgather(
                    "reshard/ag-row", plan.source.cols, shard, LINK_H
                )
            )
            shard *= plan.source.cols
        if plan.source.rows != plan.target.rows:
            deps.append(
                builder.allgather(
                    "reshard/ag-col",
                    plan.source.rows,
                    shard,
                    LINK_V,
                    deps=tuple(deps),
                )
            )
    copy = builder.slice_copy(
        "reshard/writeback", plan.target_shard_bytes, deps=deps
    )
    builder.barrier("reshard/done", deps=[copy])


@memoize("reshard_migration")
def _migration_seconds(
    plan: ReshardPlan, hw: HardwareParams, engine: Optional[str]
) -> float:
    result = simulate(build_migration_program(plan, hw), hw, engine=engine)
    _metrics().inc(
        "elastic.migrations",
        labels={
            "plane": plan.plane,
            "kind": "replace" if plan.is_replacement else "reshard",
        },
    )
    _metrics().observe("elastic.migration_seconds", result.makespan)
    return result.makespan


def migration_seconds(
    plan: ReshardPlan,
    hw: HardwareParams,
    engine: Optional[str] = None,
) -> float:
    """Simulated wall-clock seconds of ``plan``'s migration program.

    Memoized per (plan, hardware, engine): lifetime simulations replay
    the same handful of transitions thousands of times and pay for one
    simulation each.
    """
    return _migration_seconds(plan, hw, engine)


def migration_payload_bytes(
    model: LLMConfig, batch_size: int, hw: HardwareParams
) -> float:
    """Bytes a transition must land re-sharded across the cluster.

    The training state that is layout-dependent: every FC weight in
    the compute dtype plus its two fp32 Adam moments, and one
    transformer activation checkpoint per layer for the in-flight
    batch (the standard recompute-from-layer-boundary checkpointing).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    weights = model.approx_params * (hw.dtype_bytes + OPTIMIZER_BYTES_PER_PARAM)
    activations = (
        float(model.tokens(batch_size)) * model.hidden * hw.dtype_bytes
        * model.num_layers
    )
    return weights + activations
