"""LLM inference workloads for 2D TP (Section 6).

The paper notes MeshSlice can also serve inference — Wang's algorithm
already runs in LLM inference clusters [21] — but inference GeMMs are
more likely to be *memory bound*: in the autoregressive decode phase
each step processes one token per sequence, so ``M`` equals the decode
batch (tiny) while the weights still must stream from HBM. This module
enumerates the prefill- and decode-phase FC GeMMs so the algorithms
and the autotuner can be evaluated on them.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.core.gemm import GeMMShape
from repro.hw.params import HardwareParams
from repro.models.config import LLMConfig
from repro.models.layers import fc_layers


@dataclasses.dataclass(frozen=True)
class InferenceWorkload:
    """One inference serving configuration.

    Attributes:
        model: The LLM.
        batch: Concurrent sequences.
        prompt_len: Prefill length (prefill GeMMs see
            ``batch * prompt_len`` rows).
        phase: ``"prefill"`` or ``"decode"`` (decode GeMMs see ``batch``
            rows — one new token per sequence).
    """

    model: LLMConfig
    batch: int
    prompt_len: int = 1024
    phase: str = "decode"

    def __post_init__(self) -> None:
        if self.batch < 1 or self.prompt_len < 1:
            raise ValueError("batch and prompt_len must be >= 1")
        if self.phase not in ("prefill", "decode"):
            raise ValueError(f"unknown phase {self.phase!r}")

    @property
    def rows(self) -> int:
        """``M`` of the phase's FC GeMMs."""
        if self.phase == "prefill":
            return self.batch * self.prompt_len
        return self.batch


def inference_gemms(
    workload: InferenceWorkload, dtype_bytes: int = 2
) -> List[Tuple[str, GeMMShape]]:
    """The forward FC GeMMs of one block for ``workload``."""
    return [
        (layer.name, layer.forward_shape(workload.rows, dtype_bytes))
        for layer in fc_layers(workload.model)
    ]


def arithmetic_intensity(shape: GeMMShape) -> float:
    """FLOPs per byte touched — the roofline position of a GeMM."""
    return shape.flops / shape.total_bytes


def is_memory_bound(shape: GeMMShape, hw: HardwareParams) -> bool:
    """Whether the GeMM sits below the chip's roofline ridge point.

    The ridge is ``effective_flops / hbm_bandwidth`` FLOPs per byte;
    decode-phase GeMMs (tiny M) fall far below it, prefill GeMMs far
    above — the distinction Section 6 says the autotuner must learn for
    inference.
    """
    ridge = hw.effective_flops / hw.hbm_bandwidth
    return arithmetic_intensity(shape) < ridge
