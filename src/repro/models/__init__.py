"""LLM model zoo and training workload descriptions."""

from repro.models.config import LLMConfig
from repro.models.layers import (
    PASSES,
    FCLayer,
    block_fc_flops,
    distinct_gemm_shapes,
    fc_layers,
)
from repro.models.conv import ConvLayer, conv2d_via_gemm, im2col
from repro.models.inference import (
    InferenceWorkload,
    inference_gemms,
    is_memory_bound,
)
from repro.models.memory import MemoryEstimate, max_feasible_batch, training_memory
from repro.models.moe import MoEConfig, expert_ffn_gemms
from repro.models.nonfc import nonfc_block_seconds, nonfc_model_seconds
from repro.models.zoo import (
    GPT3_175B,
    LLAMA2_70B,
    MEGATRON_NLG_530B,
    PALM_540B,
    get_model,
    model_names,
)

__all__ = [
    "ConvLayer",
    "FCLayer",
    "InferenceWorkload",
    "MemoryEstimate",
    "MoEConfig",
    "GPT3_175B",
    "LLAMA2_70B",
    "LLMConfig",
    "MEGATRON_NLG_530B",
    "PALM_540B",
    "PASSES",
    "block_fc_flops",
    "distinct_gemm_shapes",
    "fc_layers",
    "get_model",
    "model_names",
    "conv2d_via_gemm",
    "expert_ffn_gemms",
    "im2col",
    "inference_gemms",
    "is_memory_bound",
    "max_feasible_batch",
    "nonfc_block_seconds",
    "nonfc_model_seconds",
    "training_memory",
]
