"""The two LLMs the paper evaluates (Section 4.4)."""

from __future__ import annotations

from repro.models.config import LLMConfig

#: OpenAI GPT-3, 175B parameters [3].
GPT3_175B = LLMConfig(
    name="gpt3-175b",
    num_layers=96,
    hidden=12288,
    heads=96,
    head_dim=128,
    ffn_mult=4,
    seq_len=2048,
)

#: NVIDIA/Microsoft Megatron-Turing NLG, 530B parameters [27].
MEGATRON_NLG_530B = LLMConfig(
    name="megatron-nlg-530b",
    num_layers=105,
    hidden=20480,
    heads=128,
    head_dim=160,
    ffn_mult=4,
    seq_len=2048,
)

#: Meta's Llama 2 70B [29] — the Section 2.2 discussion's example of a
#: model trained with narrow (8-way) 1D TP. SwiGLU FFN of 28672.
LLAMA2_70B = LLMConfig(
    name="llama2-70b",
    num_layers=80,
    hidden=8192,
    heads=64,
    head_dim=128,
    seq_len=4096,
    ffn_dim_override=28672,
)

#: Google PaLM 540B — a second very-large dense model for scaling
#: studies beyond the paper's two targets.
PALM_540B = LLMConfig(
    name="palm-540b",
    num_layers=118,
    hidden=18432,
    heads=48,
    head_dim=256,
    ffn_mult=4,
    seq_len=2048,
)

_MODELS = {
    m.name: m
    for m in (GPT3_175B, MEGATRON_NLG_530B, LLAMA2_70B, PALM_540B)
}


def get_model(name: str) -> LLMConfig:
    """Look up a model by name.

    Raises:
        KeyError: if no model with that name exists.
    """
    try:
        return _MODELS[name]
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise KeyError(f"unknown model {name!r}; known: {known}")


def model_names() -> list:
    """Names of all registered models."""
    return sorted(_MODELS)
