"""Mixture-of-experts extension (Section 6).

The paper suggests combining MeshSlice 2D TP with expert parallelism
(EP): an MoE layer replaces the dense FFN with ``num_experts`` expert
FFNs of which each token visits ``top_k``; EP places experts on
different chip groups and routes tokens with all-to-all dispatch and
combine exchanges. This module models the resulting per-block workload:
the attention FC layers run exactly as in the dense model (2D TP over
the full mesh), while each expert's FFN GeMMs run 2D TP over the
``chips / ep`` chips of its group, with the two all-to-alls added.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.core.gemm import GeMMShape
from repro.hw.params import HardwareParams
from repro.models.config import LLMConfig


@dataclasses.dataclass(frozen=True)
class MoEConfig:
    """An MoE variant of a dense transformer.

    Attributes:
        base: The dense architecture (attention dims, layer count).
        num_experts: Experts per MoE layer.
        top_k: Experts each token is routed to.
        capacity_factor: Per-expert buffer slack over the mean load.
    """

    base: LLMConfig
    num_experts: int
    top_k: int = 2
    capacity_factor: float = 1.25

    def __post_init__(self) -> None:
        if self.num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        if not 1 <= self.top_k <= self.num_experts:
            raise ValueError("top_k must be in [1, num_experts]")
        if self.capacity_factor < 1.0:
            raise ValueError("capacity_factor must be >= 1")

    @property
    def name(self) -> str:
        return f"{self.base.name}-moe{self.num_experts}x{self.top_k}"

    def expert_tokens(self, tokens: int) -> int:
        """Tokens each expert processes (with capacity slack)."""
        mean = tokens * self.top_k / self.num_experts
        return max(1, int(mean * self.capacity_factor))


def expert_ffn_gemms(
    cfg: MoEConfig, tokens: int, dtype_bytes: int = 2
) -> List[Tuple[str, GeMMShape]]:
    """The forward FFN GeMMs of one expert for a global token count."""
    rows = cfg.expert_tokens(tokens)
    h, f = cfg.base.hidden, cfg.base.ffn_dim
    return [
        ("expert_ffn_in", GeMMShape(rows, f, h, dtype_bytes)),
        ("expert_ffn_out", GeMMShape(rows, h, f, dtype_bytes)),
    ]


def dispatch_bytes(cfg: MoEConfig, tokens: int, dtype_bytes: int = 2) -> float:
    """Total bytes of one all-to-all dispatch (or combine) exchange.

    Each routed token moves its ``hidden``-sized activation to its
    expert's group; ``top_k`` routes per token.
    """
    return float(tokens * cfg.top_k * cfg.base.hidden * dtype_bytes)


def alltoall_seconds(
    total_bytes: float, groups: int, chips: int, hw: HardwareParams
) -> float:
    """Ring-based all-to-all among ``groups`` expert groups.

    Each chip exchanges its share of the dispatch volume with the other
    groups; on a ring embedding this costs
    ``(groups - 1) / groups * total_bytes / chips / bw`` plus per-step
    synchronization.
    """
    if groups < 1 or chips < 1:
        raise ValueError("groups and chips must be >= 1")
    if groups == 1:
        return 0.0
    transfer = (groups - 1) / groups * total_bytes / chips / hw.ring_bandwidth
    return hw.t_launch + (groups - 1) * hw.t_sync + transfer


def moe_block_flops(cfg: MoEConfig, tokens: int) -> float:
    """Forward FC FLOPs of one MoE block (attention + routed experts)."""
    h, f = cfg.base.hidden, cfg.base.ffn_dim
    attention = 2.0 * tokens * h * (3 * h) + 2.0 * tokens * h * h
    expert_rows = cfg.num_experts * cfg.expert_tokens(tokens)
    experts = 2.0 * expert_rows * h * f + 2.0 * expert_rows * f * h
    return attention + experts
