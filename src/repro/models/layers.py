"""FC layers of a transformer block and their training GeMMs.

Each transformer block has four FC layers (Section 4.4): the QKV
projection and the attention output projection in multi-head attention,
and the two feed-forward matrices. Training one FC layer ``Y = X W``
runs three GeMMs — forward, backward-data (``X' = Y' Wᵀ``), and
backward-weight (``W' = Xᵀ Y'``) — whose dataflows are linked by the
stationary-matrix choice of the paper's Table 1 (implemented in
:mod:`repro.autotuner.dataflow`).
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.core.gemm import GeMMShape
from repro.models.config import LLMConfig

#: The three computations of one training step of one FC layer.
PASSES = ("fwd", "bwd_data", "bwd_weight")


@dataclasses.dataclass(frozen=True)
class FCLayer:
    """One fully-connected layer ``Y[T, out] = X[T, in] W[in, out]``."""

    name: str
    in_dim: int
    out_dim: int

    def __post_init__(self) -> None:
        if self.in_dim < 1 or self.out_dim < 1:
            raise ValueError(f"invalid FC layer {self}")

    def forward_shape(self, tokens: int, dtype_bytes: int = 2) -> GeMMShape:
        """The logical forward GeMM for ``tokens`` input rows."""
        return GeMMShape(
            m=tokens, n=self.out_dim, k=self.in_dim, dtype_bytes=dtype_bytes
        )

    def weight_bytes(self, dtype_bytes: int = 2) -> float:
        return float(self.in_dim * self.out_dim * dtype_bytes)


def fc_layers(model: LLMConfig) -> List[FCLayer]:
    """The four FC layers of one transformer block of ``model``."""
    h = model.hidden
    f = model.ffn_dim
    return [
        FCLayer("qkv", h, 3 * h),
        FCLayer("attn_out", h, h),
        FCLayer("ffn_in", h, f),
        FCLayer("ffn_out", f, h),
    ]


def distinct_gemm_shapes(
    model: LLMConfig, tokens: int, dtype_bytes: int = 2
) -> List[Tuple[str, GeMMShape]]:
    """The distinct (M, N, K) training GeMM shapes of one block.

    The 4 FC layers x 3 passes give 12 GeMMs. Shapes that coincide
    (e.g. the FFN output forward equals the FFN input backward-data)
    or are transposes of one another (identical compute and traffic,
    ``C`` vs ``Cᵀ``) collapse to the 8 distinct shapes per model that
    Figure 11 evaluates. Labels name one representative
    ``layer/pass`` per shape.
    """
    seen = {}
    for layer in fc_layers(model):
        fwd = layer.forward_shape(tokens, dtype_bytes)
        shapes = {
            "fwd": fwd,
            "bwd_data": GeMMShape(fwd.m, fwd.k, fwd.n, dtype_bytes),
            "bwd_weight": GeMMShape(fwd.k, fwd.n, fwd.m, dtype_bytes),
        }
        for pass_name, shape in shapes.items():
            key = (min(shape.m, shape.n), max(shape.m, shape.n), shape.k)
            if key not in seen:
                seen[key] = (f"{layer.name}/{pass_name}", shape)
    return list(seen.values())


def block_fc_flops(model: LLMConfig, tokens: int) -> float:
    """Total training FLOPs of the FC layers of one block.

    Forward, backward-data, and backward-weight each perform
    ``2 M N K`` FLOPs for each layer (Section 3.2.1: their compute
    demands are almost identical).
    """
    total = 0.0
    for layer in fc_layers(model):
        total += 3 * layer.forward_shape(tokens).flops
    return total
