"""LLM architecture descriptions (Section 4.4).

Transformer LLMs are stacks of identical blocks; each block has four FC
layers (two in multi-head attention, two in the feed-forward network),
which are the only communicating layers under tensor parallelism and
therefore the ones the distributed GeMM algorithms implement.
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class LLMConfig:
    """A decoder-only transformer configuration.

    Attributes:
        name: Model name.
        num_layers: Number of transformer blocks.
        hidden: Model (embedding) dimension ``H``.
        heads: Number of attention heads.
        head_dim: Per-head dimension ``D`` (``heads * head_dim`` may
            exceed ``hidden`` in some configs; the FC shapes follow
            ``hidden``).
        ffn_mult: Feed-forward expansion factor (4 for GPT-style FFNs).
        seq_len: Training sequence length ``S``.
        ffn_dim_override: Explicit feed-forward inner dimension for
            architectures whose FFN is not an integer multiple of the
            hidden size (e.g. LLaMA's SwiGLU FFNs).
    """

    name: str
    num_layers: int
    hidden: int
    heads: int
    head_dim: int
    ffn_mult: int = 4
    seq_len: int = 2048
    ffn_dim_override: Optional[int] = None

    def __post_init__(self) -> None:
        if min(self.num_layers, self.hidden, self.heads, self.head_dim) < 1:
            raise ValueError(f"invalid LLM config {self}")
        if self.ffn_mult < 1 or self.seq_len < 1:
            raise ValueError(f"invalid LLM config {self}")
        if self.ffn_dim_override is not None and self.ffn_dim_override < 1:
            raise ValueError(f"invalid LLM config {self}")

    @property
    def ffn_dim(self) -> int:
        """Feed-forward inner dimension."""
        if self.ffn_dim_override is not None:
            return self.ffn_dim_override
        return self.ffn_mult * self.hidden

    @property
    def approx_params(self) -> float:
        """Approximate parameter count of the FC layers (the bulk).

        Per block: QKV projection ``H x 3H``, attention output
        ``H x H``, and the two FFN matrices ``H x 4H`` and ``4H x H``.
        """
        per_block = (
            self.hidden * 3 * self.hidden
            + self.hidden * self.hidden
            + 2 * self.hidden * self.ffn_dim
        )
        return float(self.num_layers * per_block)

    def tokens(self, batch_size: int) -> int:
        """Global token count of one training step."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return batch_size * self.seq_len
