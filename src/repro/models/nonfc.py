"""Non-FC layer execution time estimate.

The paper benchmarks the non-FC layers (attention score/context
matmuls, softmax, layer norms, residuals, activation functions) on a
single real TPUv4, because under tensor parallelism they run
independently per chip with no communication (Section 4.4). Without
that hardware we substitute an analytical roofline estimate per chip:
matmul-shaped work is bounded by compute throughput, elementwise work
by HBM bandwidth. The estimate only shifts the end-to-end percentages
(Figure 9's 12.0%/23.4% speedups); the FC-layer comparison between
algorithms is unaffected. DESIGN.md records this substitution.
"""

from __future__ import annotations

from repro.hw.params import HardwareParams
from repro.models.config import LLMConfig


def attention_flops(model: LLMConfig, tokens: int) -> float:
    """FLOPs of the score (``Q Kᵀ``) and context (``A V``) matmuls.

    Per block: ``2 * tokens * seq_len * hidden`` each.
    """
    return 2 * (2.0 * tokens * model.seq_len * model.hidden)


def elementwise_bytes(model: LLMConfig, tokens: int) -> float:
    """HBM bytes of the memory-bound non-FC operations of one block.

    Counts, with read+write round trips at 2 bytes/element:

    * softmax over the ``heads x S x S`` score tensor (~3 passes),
    * two layer norms over ``tokens x hidden`` (~3 passes each),
    * two residual adds (~3 passes), and
    * the FFN activation over ``tokens x ffn_dim`` (~2 passes).
    """
    dtype = 2
    score_elems = tokens * model.seq_len * model.heads
    hidden_elems = tokens * model.hidden
    ffn_elems = tokens * model.ffn_dim
    softmax = 3 * score_elems
    norms = 2 * 3 * hidden_elems
    residuals = 2 * 3 * hidden_elems
    activation = 2 * ffn_elems
    return float(dtype * (softmax + norms + residuals + activation))


def nonfc_block_seconds(
    model: LLMConfig, tokens: int, chips: int, hw: HardwareParams
) -> float:
    """Per-chip time of one block's non-FC work, forward plus backward.

    The backward pass roughly doubles both the matmul and the
    elementwise work (standard 2x rule for recomputation-free
    training).
    """
    if chips < 1:
        raise ValueError("chips must be >= 1")
    matmul_seconds = attention_flops(model, tokens) / chips / hw.effective_flops
    memory_seconds = elementwise_bytes(model, tokens) / chips / hw.hbm_bandwidth
    forward = matmul_seconds + memory_seconds
    return 3.0 * forward  # fwd + ~2x bwd


def nonfc_model_seconds(
    model: LLMConfig, tokens: int, chips: int, hw: HardwareParams
) -> float:
    """Per-chip non-FC time of the whole model for one training step."""
    return model.num_layers * nonfc_block_seconds(model, tokens, chips, hw)
