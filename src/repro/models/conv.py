"""Convolutions as distributed GeMMs (Section 6).

The paper notes MeshSlice applies beyond FC layers: a convolution can
be lowered to a GeMM via im2col [6]. This module performs the lowering
— both the shape bookkeeping (so conv layers can be fed to the timing
plane and the autotuner) and the actual numpy im2col transformation
(so the functional plane can verify a distributed convolution
end-to-end against a direct implementation).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.core.gemm import GeMMShape


@dataclasses.dataclass(frozen=True)
class ConvLayer:
    """A 2D convolution layer (NCHW, square kernel).

    Attributes:
        in_channels: Input channels.
        out_channels: Output channels (filters).
        kernel: Kernel side length.
        stride: Stride.
        padding: Zero padding on each side.
    """

    in_channels: int
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel) < 1:
            raise ValueError(f"invalid conv layer {self}")
        if self.stride < 1 or self.padding < 0:
            raise ValueError(f"invalid conv layer {self}")

    def output_size(self, height: int, width: int) -> Tuple[int, int]:
        """Spatial output size for an input of ``height x width``."""
        out_h = (height + 2 * self.padding - self.kernel) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel) // self.stride + 1
        if out_h < 1 or out_w < 1:
            raise ValueError(
                f"kernel {self.kernel} does not fit input {height}x{width}"
            )
        return out_h, out_w

    def gemm_shape(
        self, batch: int, height: int, width: int, dtype_bytes: int = 2
    ) -> GeMMShape:
        """The im2col-lowered GeMM: patches x filters.

        ``M = batch * out_h * out_w`` patch rows, ``K = C_in * k^2``
        patch features, ``N = C_out`` filters.
        """
        out_h, out_w = self.output_size(height, width)
        return GeMMShape(
            m=batch * out_h * out_w,
            n=self.out_channels,
            k=self.in_channels * self.kernel * self.kernel,
            dtype_bytes=dtype_bytes,
        )


def im2col(x: np.ndarray, layer: ConvLayer) -> np.ndarray:
    """Lower an NCHW input to the patch matrix of the lowered GeMM.

    Returns an array of shape ``(N * out_h * out_w, C_in * k * k)``
    whose rows are the flattened receptive fields.
    """
    if x.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    if c != layer.in_channels:
        raise ValueError(f"input has {c} channels, layer expects {layer.in_channels}")
    out_h, out_w = layer.output_size(h, w)
    k, s, p = layer.kernel, layer.stride, layer.padding
    padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
    rows = np.empty((n * out_h * out_w, c * k * k), dtype=x.dtype)
    idx = 0
    for image in range(n):
        for oy in range(out_h):
            for ox in range(out_w):
                patch = padded[
                    image, :, oy * s:oy * s + k, ox * s:ox * s + k
                ]
                rows[idx] = patch.reshape(-1)
                idx += 1
    return rows


def conv2d_via_gemm(
    x: np.ndarray, weights: np.ndarray, layer: ConvLayer, gemm=None
) -> np.ndarray:
    """Compute a convolution through the lowered GeMM.

    Args:
        x: NCHW input.
        weights: Filters of shape ``(C_out, C_in, k, k)``.
        layer: The convolution description.
        gemm: Matmul implementation ``f(A, B) -> C``; defaults to
            numpy. Pass a distributed GeMM's functional form to run the
            convolution on the simulated mesh.

    Returns:
        NCHW output of shape ``(N, C_out, out_h, out_w)``.
    """
    if weights.shape != (
        layer.out_channels, layer.in_channels, layer.kernel, layer.kernel
    ):
        raise ValueError(f"weights shape {weights.shape} does not match {layer}")
    n = x.shape[0]
    out_h, out_w = layer.output_size(x.shape[2], x.shape[3])
    patches = im2col(x, layer)
    filters = weights.reshape(layer.out_channels, -1).T
    product = (gemm or np.matmul)(patches, filters)
    return (
        product.reshape(n, out_h, out_w, layer.out_channels)
        .transpose(0, 3, 1, 2)
    )


def conv2d_direct(
    x: np.ndarray, weights: np.ndarray, layer: ConvLayer
) -> np.ndarray:
    """Naive direct convolution, the reference for the lowering tests."""
    n = x.shape[0]
    out_h, out_w = layer.output_size(x.shape[2], x.shape[3])
    k, s, p = layer.kernel, layer.stride, layer.padding
    padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
    out = np.zeros((n, layer.out_channels, out_h, out_w), dtype=x.dtype)
    for image in range(n):
        for f in range(layer.out_channels):
            for oy in range(out_h):
                for ox in range(out_w):
                    window = padded[
                        image, :, oy * s:oy * s + k, ox * s:ox * s + k
                    ]
                    out[image, f, oy, ox] = np.sum(window * weights[f])
    return out
