"""Per-chip memory footprint of distributed training.

Section 2.1: tensor parallelism partitions *all* matrices of a layer,
so it has the smallest per-chip memory footprint of the three
parallelism types — and Section 2.2's weak-scaling argument rests on
the extra memory that more chips provide. This module estimates the
per-chip HBM footprint of a 2D-TP training configuration so the
autotuner can reject infeasible mesh/batch combinations.

Components (bytes per chip):

* **weights**: FC parameters sharded over the whole mesh.
* **gradients**: same sharding as the weights.
* **optimizer state**: Adam keeps two fp32 moments plus an fp32 master
  copy per parameter (the default ``optimizer_factor`` of 6 relative
  to bf16 weights).
* **activations**: each block stores its FC inputs for the backward
  pass; batch rows shard over mesh rows and feature columns over mesh
  columns.
* **communication buffers**: the gathered sub-shards MeshSlice holds
  per iteration (two directions, double-buffered).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.hw.params import HardwareParams
from repro.mesh.topology import Mesh2D
from repro.models.config import LLMConfig
from repro.models.layers import fc_layers


@dataclasses.dataclass(frozen=True)
class MemoryEstimate:
    """Per-chip memory footprint breakdown (bytes)."""

    weights: float
    gradients: float
    optimizer: float
    activations: float
    comm_buffers: float

    @property
    def total(self) -> float:
        return (
            self.weights
            + self.gradients
            + self.optimizer
            + self.activations
            + self.comm_buffers
        )

    def fits(self, hw: HardwareParams, reserve_fraction: float = 0.1) -> bool:
        """Whether the footprint fits the chip's HBM with headroom."""
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        return self.total <= hw.hbm_capacity * (1.0 - reserve_fraction)


def training_memory(
    model: LLMConfig,
    batch_size: int,
    mesh: Mesh2D,
    slices: int = 8,
    dtype_bytes: int = 2,
    optimizer_factor: float = 6.0,
    stored_activations_per_block: int = 2,
) -> MemoryEstimate:
    """Estimate the per-chip footprint of 2D-TP training.

    Args:
        model: The LLM.
        batch_size: Global batch (sequences); the whole model's layers
            are resident (no pipeline parallelism assumed here — divide
            externally for DP/PP hybrids).
        mesh: The TP mesh; all matrices shard over it.
        slices: MeshSlice slice count (sizes the gathered sub-shard
            buffers).
        dtype_bytes: Training dtype (2 for bf16).
        optimizer_factor: Optimizer bytes per weight byte.
        stored_activations_per_block: How many tokens x hidden tensors
            each block keeps for backward (2 = block input + FFN input;
            activation recomputation lowers this).
    """
    if slices < 1:
        raise ValueError("slices must be >= 1")
    chips = mesh.size
    tokens = model.tokens(batch_size)

    weight_bytes = sum(
        layer.weight_bytes(dtype_bytes) for layer in fc_layers(model)
    ) * model.num_layers
    weights = weight_bytes / chips
    gradients = weights
    optimizer = optimizer_factor * weights

    act_elems = stored_activations_per_block * tokens * model.hidden
    activations = model.num_layers * act_elems * dtype_bytes / chips

    # MeshSlice per-iteration gathered buffers: for the largest layer,
    # the two gathered operands are flowing_bytes / (chips * S) * ring,
    # double-buffered for software pipelining.
    largest = max(
        fc_layers(model), key=lambda layer: layer.in_dim * layer.out_dim
    )
    input_bytes = tokens * largest.in_dim * dtype_bytes
    weight_bytes_layer = largest.weight_bytes(dtype_bytes)
    gathered_col = input_bytes / chips / slices * mesh.cols
    gathered_row = weight_bytes_layer / chips / slices * mesh.rows
    comm_buffers = 2.0 * (gathered_col + gathered_row)

    return MemoryEstimate(
        weights=weights,
        gradients=gradients,
        optimizer=optimizer,
        activations=activations,
        comm_buffers=comm_buffers,
    )


def max_feasible_batch(
    model: LLMConfig,
    mesh: Mesh2D,
    hw: HardwareParams,
    slices: int = 8,
    reserve_fraction: float = 0.1,
    limit: int = 1 << 16,
) -> Optional[int]:
    """Largest batch whose footprint fits the chip's HBM.

    Binary-searches the monotone footprint; returns ``None`` when even
    batch 1 does not fit (the model is too large for this mesh).
    """
    def fits(batch: int) -> bool:
        return training_memory(model, batch, mesh, slices).fits(
            hw, reserve_fraction
        )

    if not fits(1):
        return None
    lo, hi = 1, 2
    while hi < limit and fits(hi):
        lo, hi = hi, hi * 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid
    return lo
