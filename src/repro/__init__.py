"""MeshSlice: efficient 2D tensor parallelism for distributed DNN training.

A from-scratch reproduction of the ISCA 2025 paper. The package is
organized in two planes that share the same algorithm descriptions:

* a **functional plane** (numpy, bit-exact) proving each distributed
  GeMM algorithm computes the right answer using only legal per-chip
  data movement, and
* a **timing plane** (a fluid discrete-event simulator of TPUv4-like
  clusters) reproducing the paper's performance evaluation.

Quickstart::

    import numpy as np
    from repro import Mesh2D, meshslice_os

    a, b = np.random.rand(64, 96), np.random.rand(96, 128)
    c = meshslice_os(a, b, Mesh2D(4, 2), slices=4)
    assert np.allclose(c, a @ b)

The timing plane is one import away — the stable entry points are
:func:`simulate` (run a built program on a hardware preset, optionally
under a :class:`FaultPlan`), :func:`tune` / :func:`robust_tune` (the
autotuner, nominal and fault-aware), and :func:`get_algorithm` /
:func:`algorithm_names` (the distributed GeMM algorithm registry)::

    from repro import TPUV4, get_algorithm, simulate

    alg = get_algorithm("meshslice")
    result = simulate(alg.build_program(cfg, TPUV4), TPUV4)

These heavier names load lazily (PEP 562), so ``import repro`` stays
cheap for functional-plane users.

See ``README.md`` and ``docs/`` for the architecture, ``DESIGN.md`` for
the system inventory, and ``EXPERIMENTS.md`` for the paper-vs-
reproduction results.
"""

from repro.core import (
    Dataflow,
    GeMMShape,
    meshslice_gemm,
    meshslice_ls,
    meshslice_os,
    meshslice_rs,
    slice_col,
    slice_row,
    valid_slice_counts,
)
from repro.hw import (
    GPU_LOGICAL_MESH,
    TPUV4,
    TPUV4_CLOUD_4X4,
    HardwareParams,
    get_preset,
)
from repro.mesh import Mesh2D, MeshExecutor, Ring1D, mesh_shapes

__version__ = "1.9.0"

#: Lazily-loaded stable API (PEP 562): name -> (module, attribute).
#: Importing these eagerly would pull the whole timing plane (and the
#: numpy functional checkers) into every ``import repro``.
_LAZY_EXPORTS = {
    "ABFTReport": ("repro.abft", "ABFTReport"),
    "CampaignRunner": ("repro.campaign", "CampaignRunner"),
    "CampaignSpec": ("repro.campaign", "CampaignSpec"),
    "CampaignStore": ("repro.campaign", "CampaignStore"),
    "CheckpointModel": ("repro.recovery", "CheckpointModel"),
    "FaultPlan": ("repro.faults", "FaultPlan"),
    "FaultSpec": ("repro.faults", "FaultSpec"),
    "HardFault": ("repro.faults", "HardFault"),
    "LifetimeResult": ("repro.recovery", "LifetimeResult"),
    "LifetimeSpec": ("repro.recovery", "LifetimeSpec"),
    "MetricsRegistry": ("repro.obs", "MetricsRegistry"),
    "NULL_PLAN": ("repro.faults", "NULL_PLAN"),
    "NULL_SDC_PLAN": ("repro.faults", "NULL_SDC_PLAN"),
    "PlanStore": ("repro.service", "PlanStore"),
    "ReshardPlan": ("repro.recovery", "ReshardPlan"),
    "SDCPlan": ("repro.faults", "SDCPlan"),
    "TableElasticPlanner": ("repro.recovery", "TableElasticPlanner"),
    "TunedElasticPlanner": ("repro.recovery", "TunedElasticPlanner"),
    "abft_gemm": ("repro.abft", "abft_gemm"),
    "sdc_injection": ("repro.faults", "sdc_injection"),
    "ProfileReport": ("repro.obs", "ProfileReport"),
    "RetryPolicy": ("repro.recovery", "RetryPolicy"),
    "RunMetrics": ("repro.obs", "RunMetrics"),
    "SimFailure": ("repro.sim.engine", "SimFailure"),
    "SimResult": ("repro.sim.cluster", "SimResult"),
    "Trace": ("repro.sim.trace", "Trace"),
    "TuneRequest": ("repro.service", "TuneRequest"),
    "TunerService": ("repro.service", "TunerService"),
    "algorithm_names": ("repro.algorithms", "algorithm_names"),
    "chip_down": ("repro.faults", "chip_down"),
    "get_algorithm": ("repro.algorithms", "get_algorithm"),
    "link_down": ("repro.faults", "link_down"),
    "profile_block": ("repro.obs", "profile_block"),
    "migration_seconds": ("repro.recovery", "migration_seconds"),
    "retune_degraded": ("repro.recovery", "retune_degraded"),
    "robust_tune": ("repro.autotuner", "robust_tune"),
    "simulate": ("repro.sim.cluster", "simulate"),
    "simulate_lifetime": ("repro.recovery", "simulate_lifetime"),
    "tune": ("repro.autotuner", "tune"),
}

__all__ = [
    "ABFTReport",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStore",
    "CheckpointModel",
    "Dataflow",
    "FaultPlan",
    "FaultSpec",
    "GPU_LOGICAL_MESH",
    "GeMMShape",
    "HardFault",
    "HardwareParams",
    "LifetimeResult",
    "LifetimeSpec",
    "Mesh2D",
    "MeshExecutor",
    "MetricsRegistry",
    "NULL_PLAN",
    "NULL_SDC_PLAN",
    "PlanStore",
    "ReshardPlan",
    "SDCPlan",
    "TableElasticPlanner",
    "TunedElasticPlanner",
    "ProfileReport",
    "RetryPolicy",
    "Ring1D",
    "RunMetrics",
    "SimFailure",
    "SimResult",
    "TPUV4",
    "TPUV4_CLOUD_4X4",
    "Trace",
    "TuneRequest",
    "TunerService",
    "abft_gemm",
    "algorithm_names",
    "chip_down",
    "get_algorithm",
    "get_preset",
    "link_down",
    "mesh_shapes",
    "meshslice_gemm",
    "migration_seconds",
    "meshslice_ls",
    "meshslice_os",
    "meshslice_rs",
    "profile_block",
    "retune_degraded",
    "robust_tune",
    "sdc_injection",
    "simulate",
    "simulate_lifetime",
    "slice_col",
    "slice_row",
    "tune",
    "valid_slice_counts",
    "__version__",
]


def __getattr__(name):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
