"""MeshSlice: efficient 2D tensor parallelism for distributed DNN training.

A from-scratch reproduction of the ISCA 2025 paper. The package is
organized in two planes that share the same algorithm descriptions:

* a **functional plane** (numpy, bit-exact) proving each distributed
  GeMM algorithm computes the right answer using only legal per-chip
  data movement, and
* a **timing plane** (a fluid discrete-event simulator of TPUv4-like
  clusters) reproducing the paper's performance evaluation.

Quickstart::

    import numpy as np
    from repro import Mesh2D, meshslice_os

    a, b = np.random.rand(64, 96), np.random.rand(96, 128)
    c = meshslice_os(a, b, Mesh2D(4, 2), slices=4)
    assert np.allclose(c, a @ b)

See ``README.md`` and ``docs/`` for the architecture, ``DESIGN.md`` for
the system inventory, and ``EXPERIMENTS.md`` for the paper-vs-
reproduction results.
"""

from repro.core import (
    Dataflow,
    GeMMShape,
    meshslice_gemm,
    meshslice_ls,
    meshslice_os,
    meshslice_rs,
    slice_col,
    slice_row,
    valid_slice_counts,
)
from repro.hw import (
    GPU_LOGICAL_MESH,
    TPUV4,
    TPUV4_CLOUD_4X4,
    HardwareParams,
    get_preset,
)
from repro.mesh import Mesh2D, MeshExecutor, Ring1D, mesh_shapes

__version__ = "1.0.0"

__all__ = [
    "Dataflow",
    "GPU_LOGICAL_MESH",
    "GeMMShape",
    "HardwareParams",
    "Mesh2D",
    "MeshExecutor",
    "Ring1D",
    "TPUV4",
    "TPUV4_CLOUD_4X4",
    "get_preset",
    "mesh_shapes",
    "meshslice_gemm",
    "meshslice_ls",
    "meshslice_os",
    "meshslice_rs",
    "slice_col",
    "slice_row",
    "valid_slice_counts",
    "__version__",
]
