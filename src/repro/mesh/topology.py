"""2D torus and 1D ring topologies of accelerator chips.

A 2D tensor-parallel cluster is a mesh of ``rows x cols`` chips connected
as a 2D torus (Section 2.2): every row of chips forms a ring over the
horizontal ICI links and every column forms a ring over the vertical
links. 1D baselines (1D TP, FSDP) run on a single ring.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from typing import Iterator, List, Tuple

Coord = Tuple[int, int]

#: Logical rank layouts a :class:`Mesh2D` can enumerate its chips in.
#: ``row-major`` is the physical order; ``hilbert`` and ``morton`` are
#: the space-filling-curve layouts the SFC GeMM algorithm uses to
#: assign work with 2D locality (Georganas et al., PAPERS.md).
LAYOUTS = ("row-major", "hilbert", "morton")


def layout_names() -> Tuple[str, ...]:
    """Names of the supported logical rank layouts."""
    return LAYOUTS


@dataclasses.dataclass(frozen=True)
class Mesh2D:
    """A 2D torus of ``rows x cols`` chips.

    Chip ``(i, j)`` sits at row ``i`` (0-based, top) and column ``j``.
    Rings: row ``i`` is the ring of chips ``(i, 0) .. (i, cols-1)``
    connected over inter-column (horizontal) links; column ``j`` is the
    ring of chips ``(0, j) .. (rows-1, j)`` connected over inter-row
    (vertical) links.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"mesh must be at least 1x1, got {self.rows}x{self.cols}")

    @property
    def size(self) -> int:
        """Total number of chips in the mesh."""
        return self.rows * self.cols

    @property
    def is_square(self) -> bool:
        """Whether the mesh is square (required by Cannon's algorithm)."""
        return self.rows == self.cols

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    def transposed(self) -> "Mesh2D":
        """The mesh with rows and columns exchanged."""
        return Mesh2D(self.cols, self.rows)

    def without_row(self, i: int) -> "Mesh2D":
        """The degraded mesh after dropping row ``i`` entirely.

        When a chip dies, torus rerouting cannot heal its row and
        column rings (a ring with a hole is a line); the standard
        recovery drains the whole row and re-forms the wrap-around
        links between rows ``i - 1`` and ``i + 1``, leaving a smaller
        but fully functional torus. Which row died does not matter —
        the surviving topology is ``(rows-1) x cols`` regardless.
        """
        self._check_row(i)
        if self.rows == 1:
            raise ValueError(f"cannot drop the only row of {self}")
        return Mesh2D(self.rows - 1, self.cols)

    def without_col(self, j: int) -> "Mesh2D":
        """The degraded mesh after dropping column ``j`` entirely.

        See :meth:`without_row`; the surviving topology is
        ``rows x (cols-1)``.
        """
        self._check_col(j)
        if self.cols == 1:
            raise ValueError(f"cannot drop the only column of {self}")
        return Mesh2D(self.rows, self.cols - 1)

    def with_replacement(self, dead: Coord, spare: int = 0) -> "Mesh2D":
        """The mesh after a spare chip takes over ``dead``'s position.

        Spare-pool repair: the failed chip is swapped for spare number
        ``spare`` (0-based index into the pool) which assumes the dead
        chip's logical coordinate, so the torus keeps its full
        ``rows x cols`` shape — only the dead chip's shards must be
        refilled onto the spare (a timed migration program, see
        :mod:`repro.recovery.elastic`), not the whole layout.
        """
        self._check_coord(dead)
        if spare < 0:
            raise ValueError(f"spare index must be non-negative, got {spare}")
        return Mesh2D(self.rows, self.cols)

    def reshape(self, rows: int, cols: int) -> "Mesh2D":
        """A shape-changing reconfiguration of this torus.

        Unlike :meth:`without_row`/:meth:`without_col` — which can only
        drain a full line — a reshape re-forms the torus on *any*
        target shape (chips are drawn from or returned to the spare
        pool as the sizes differ): the elastic transition that keeps
        ``P - 1`` chips training after one death by re-forming e.g. a
        4x4 into a 3x5. Every chip's shards move to their new owners
        under the target layout, which is what the reshard migration
        programs in :mod:`repro.recovery.elastic` charge for.
        """
        if rows < 1 or cols < 1:
            raise ValueError(
                f"cannot reshape {self} to {rows}x{cols}: "
                "both dimensions must be at least 1"
            )
        return Mesh2D(rows, cols)

    def mean_torus_distance(self) -> float:
        """Mean min-wrap hop count between two uniformly random chips.

        The expected routing distance of one shard move in a reshard
        migration, where source and destination owners are effectively
        uncorrelated. Per-axis mean of ``min(d, n - d)`` over all
        offsets ``d``, summed over the two axes.
        """

        def axis_mean(n: int) -> float:
            return sum(min(d, n - d) for d in range(n)) / n

        return axis_mean(self.rows) + axis_mean(self.cols)

    def coords(self) -> Iterator[Coord]:
        """Iterate over all chip coordinates in row-major order."""
        for i in range(self.rows):
            for j in range(self.cols):
                yield (i, j)

    def contains(self, coord: Coord) -> bool:
        i, j = coord
        return 0 <= i < self.rows and 0 <= j < self.cols

    def row_ring(self, i: int) -> List[Coord]:
        """Chips of row ``i`` in ring order (horizontal ring)."""
        self._check_row(i)
        return [(i, j) for j in range(self.cols)]

    def col_ring(self, j: int) -> List[Coord]:
        """Chips of column ``j`` in ring order (vertical ring)."""
        self._check_col(j)
        return [(i, j) for i in range(self.rows)]

    def right_neighbor(self, coord: Coord) -> Coord:
        """Next chip in the row ring (wraps around the torus)."""
        i, j = self._check_coord(coord)
        return (i, (j + 1) % self.cols)

    def left_neighbor(self, coord: Coord) -> Coord:
        i, j = self._check_coord(coord)
        return (i, (j - 1) % self.cols)

    def down_neighbor(self, coord: Coord) -> Coord:
        """Next chip in the column ring (wraps around the torus)."""
        i, j = self._check_coord(coord)
        return ((i + 1) % self.rows, j)

    def up_neighbor(self, coord: Coord) -> Coord:
        i, j = self._check_coord(coord)
        return ((i - 1) % self.rows, j)

    def layout(self, name: str = "row-major") -> Tuple[Coord, ...]:
        """Rank-to-coordinate bijection of one logical layout.

        ``layout(name)[p]`` is the physical coordinate of logical rank
        ``p``. ``row-major`` reproduces :meth:`coords`; ``hilbert`` and
        ``morton`` order the chips along a space-filling curve so that
        consecutive ranks stay physically close — the property the SFC
        GeMM algorithm exploits to keep a rank's tile neighbourhood on
        nearby chips.
        """
        if name == "row-major":
            return tuple(self.coords())
        if name == "hilbert":
            return hilbert_order(self.rows, self.cols)
        if name == "morton":
            return morton_order(self.rows, self.cols)
        raise ValueError(
            f"unknown layout {name!r}; known: {', '.join(LAYOUTS)}"
        )

    def rank_of(self, coord: Coord, layout: str = "row-major") -> int:
        """Logical rank of ``coord`` under ``layout`` (inverse of it)."""
        i, j = self._check_coord(coord)
        if layout == "row-major":
            return i * self.cols + j
        return self.layout(layout).index((i, j))

    def torus_distance(self, src: Coord, dst: Coord) -> int:
        """Minimum hop count between any two chips of the torus.

        Sum of the per-axis minimum wrap distances — the routing
        distance a one-sided get/put between arbitrary chips pays.
        """
        (si, sj), (di, dj) = self._check_coord(src), self._check_coord(dst)
        down, right = (di - si) % self.rows, (dj - sj) % self.cols
        return min(down, self.rows - down) + min(right, self.cols - right)

    def ring_distance_row(self, src: Coord, dst: Coord) -> int:
        """Minimum hop count between two chips of the same row ring."""
        (si, sj), (di, dj) = self._check_coord(src), self._check_coord(dst)
        if si != di:
            raise ValueError(f"{src} and {dst} are not in the same row")
        forward = (dj - sj) % self.cols
        return min(forward, self.cols - forward)

    def ring_distance_col(self, src: Coord, dst: Coord) -> int:
        """Minimum hop count between two chips of the same column ring."""
        (si, sj), (di, dj) = self._check_coord(src), self._check_coord(dst)
        if sj != dj:
            raise ValueError(f"{src} and {dst} are not in the same column")
        forward = (di - si) % self.rows
        return min(forward, self.rows - forward)

    def _check_row(self, i: int) -> int:
        if not 0 <= i < self.rows:
            raise IndexError(f"row {i} out of range for {self}")
        return i

    def _check_col(self, j: int) -> int:
        if not 0 <= j < self.cols:
            raise IndexError(f"column {j} out of range for {self}")
        return j

    def _check_coord(self, coord: Coord) -> Coord:
        if not self.contains(coord):
            raise IndexError(f"coordinate {coord} out of range for {self}")
        return coord

    def __str__(self) -> str:
        return f"{self.rows}x{self.cols}"


@dataclasses.dataclass(frozen=True)
class Ring1D:
    """A 1D ring of chips, used by the 1D TP and FSDP baselines.

    In a physical torus a 1D ring only reaches two of a chip's four ICI
    links, which is why the paper's 1D baselines see half the bandwidth
    of a 2D mesh (Section 4.3).
    """

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"ring must have at least 1 chip, got {self.size}")

    def next_chip(self, rank: int) -> int:
        return (self._check(rank) + 1) % self.size

    def prev_chip(self, rank: int) -> int:
        return (self._check(rank) - 1) % self.size

    def ranks(self) -> Iterator[int]:
        return iter(range(self.size))

    def _check(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range for ring of {self.size}")
        return rank

    def __str__(self) -> str:
        return f"ring-{self.size}"


def factor_pairs(n: int) -> List[Tuple[int, int]]:
    """All ordered factorizations ``(rows, cols)`` of ``n``.

    These are the candidate mesh shapes the autotuner searches
    (Section 3.2.2). Includes the degenerate 1-row and 1-column shapes.
    """
    if n < 1:
        raise ValueError(f"cannot factor non-positive size {n}")
    pairs = []
    for rows in range(1, n + 1):
        if n % rows == 0:
            pairs.append((rows, n // rows))
    return pairs


def mesh_shapes(n: int, min_dim: int = 1) -> List[Mesh2D]:
    """Candidate :class:`Mesh2D` shapes for an ``n``-chip cluster.

    Args:
        n: Cluster size.
        min_dim: Minimum rows and columns (use 2 to exclude the
            degenerate 1D shapes, which a torus cannot realize as two
            distinct rings).
    """
    return [
        Mesh2D(r, c)
        for r, c in factor_pairs(n)
        if r >= min_dim and c >= min_dim
    ]


def square_mesh(n: int) -> Mesh2D:
    """The square mesh for ``n`` chips (Cannon's requirement).

    Raises:
        ValueError: if ``n`` is not a perfect square.
    """
    side = math.isqrt(n)
    if side * side != n:
        raise ValueError(f"Cannon's algorithm needs a square chip count, got {n}")
    return Mesh2D(side, side)


@functools.lru_cache(maxsize=None)
def hilbert_order(rows: int, cols: int) -> Tuple[Coord, ...]:
    """Generalized Hilbert curve over an arbitrary ``rows x cols`` grid.

    Visits every cell exactly once with unit steps (one diagonal step
    when both dimensions are odd), recursing on halved rectangles the
    way the classic Hilbert curve recurses on quadrants. Consecutive
    curve positions are therefore physically adjacent, which is the
    locality property the SFC GeMM's tile assignment relies on.
    """
    _check_grid(rows, cols)
    # Walk the long dimension first so the halving recursion terminates
    # on 1-wide strips instead of degenerating.
    if cols >= rows:
        walk = _gilbert(0, 0, 0, cols, rows, 0)
    else:
        walk = _gilbert(0, 0, rows, 0, 0, cols)
    order = tuple(walk)
    if len(order) != rows * cols:  # pragma: no cover - recursion invariant
        raise AssertionError("hilbert curve missed cells")
    return order


def _gilbert(
    i: int, j: int, ai: int, aj: int, bi: int, bj: int
) -> Iterator[Coord]:
    """One rectangle of the generalized Hilbert recursion.

    ``(ai, aj)`` is the major axis vector (the direction walked first),
    ``(bi, bj)`` the minor axis; ``(i, j)`` the rectangle's entry cell.
    """
    w, h = abs(ai + aj), abs(bi + bj)
    dai, daj = _sign(ai), _sign(aj)
    dbi, dbj = _sign(bi), _sign(bj)
    if h == 1:
        for _ in range(w):
            yield (i, j)
            i, j = i + dai, j + daj
        return
    if w == 1:
        for _ in range(h):
            yield (i, j)
            i, j = i + dbi, j + dbj
        return
    ai2, aj2 = ai // 2, aj // 2
    bi2, bj2 = bi // 2, bj // 2
    w2, h2 = abs(ai2 + aj2), abs(bi2 + bj2)
    if 2 * w > 3 * h:
        # Wide rectangle: split along the major axis only (two halves
        # walked head-to-tail); round the split to even for symmetry.
        if w2 % 2 and w > 2:
            ai2, aj2 = ai2 + dai, aj2 + daj
        yield from _gilbert(i, j, ai2, aj2, bi, bj)
        yield from _gilbert(i + ai2, j + aj2, ai - ai2, aj - aj2, bi, bj)
        return
    if h2 % 2 and h > 2:
        bi2, bj2 = bi2 + dbi, bj2 + dbj
    # Standard Hilbert U-shape: minor-axis strip up, major sweep
    # across, minor-axis strip back down (axes swapped in the wings).
    yield from _gilbert(i, j, bi2, bj2, ai2, aj2)
    yield from _gilbert(i + bi2, j + bj2, ai, aj, bi - bi2, bj - bj2)
    yield from _gilbert(
        i + (ai - dai) + (bi2 - dbi),
        j + (aj - daj) + (bj2 - dbj),
        -bi2, -bj2, -(ai - ai2), -(aj - aj2),
    )


def _sign(x: int) -> int:
    return (x > 0) - (x < 0)


@functools.lru_cache(maxsize=None)
def morton_order(rows: int, cols: int) -> Tuple[Coord, ...]:
    """Morton (Z-order) curve over a ``rows x cols`` grid.

    Cells sorted by their bit-interleaved coordinate code (column bit
    low, matching row-major tie-breaking on 1-row grids), restricted to
    in-bounds cells of the bounding power-of-two square. Cheaper to
    compute than Hilbert and almost as local on power-of-two grids; on
    ragged grids its quadrant seams cost longer jumps.
    """
    _check_grid(rows, cols)
    return tuple(
        sorted(
            ((i, j) for i in range(rows) for j in range(cols)),
            key=lambda c: _morton_code(c[0], c[1]),
        )
    )


def _morton_code(i: int, j: int) -> int:
    code, bit = 0, 0
    while (i >> bit) or (j >> bit):
        code |= ((j >> bit) & 1) << (2 * bit)
        code |= ((i >> bit) & 1) << (2 * bit + 1)
        bit += 1
    return code


def curve_length(order: Tuple[Coord, ...]) -> int:
    """Total Manhattan distance walked along an ordering of grid cells.

    The locality figure of merit of a rank layout: row-major pays a
    full row width at every row seam, while a Hilbert order of the same
    grid walks unit steps — ``len(order) - 1`` in total.
    """
    return sum(
        abs(a[0] - b[0]) + abs(a[1] - b[1])
        for a, b in zip(order, order[1:])
    )


def _check_grid(rows: int, cols: int) -> None:
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")


def divisors(n: int) -> List[int]:
    """Positive divisors of ``n`` in ascending order."""
    if n < 1:
        raise ValueError(f"divisors of non-positive {n} undefined")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]
