"""Sharding global matrices onto a 2D mesh of chips.

In 2D TP every matrix is partitioned along both dimensions
(Section 2.3.1): on a mesh of ``P_r x P_c`` chips, matrix ``A`` is split
into shards ``A_ij`` and shard ``A_ij`` lives on chip ``(i, j)``. This
module provides the functional (numpy) representation of such sharded
matrices, used by the bit-exact algorithm implementations and the tests
that pin them to ``numpy.matmul``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from repro.mesh.topology import Coord, Mesh2D


@dataclasses.dataclass
class ShardedMatrix:
    """A global matrix distributed block-wise over a :class:`Mesh2D`.

    Attributes:
        mesh: The mesh the matrix is distributed on.
        shards: Mapping from chip coordinate to its local block.
        global_shape: Shape of the assembled matrix.
    """

    mesh: Mesh2D
    shards: Dict[Coord, np.ndarray]
    global_shape: Tuple[int, int]

    @property
    def shard_shape(self) -> Tuple[int, int]:
        """Shape of each local shard."""
        rows, cols = self.global_shape
        return (rows // self.mesh.rows, cols // self.mesh.cols)

    def shard(self, coord: Coord) -> np.ndarray:
        """The local block of chip ``coord``."""
        return self.shards[coord]

    def copy(self) -> "ShardedMatrix":
        """Deep copy (shards are copied, mesh is shared)."""
        return ShardedMatrix(
            mesh=self.mesh,
            shards={c: s.copy() for c, s in self.shards.items()},
            global_shape=self.global_shape,
        )


def shardable(shape: Tuple[int, int], mesh: Mesh2D) -> bool:
    """Whether a matrix of ``shape`` divides evenly over ``mesh``."""
    rows, cols = shape
    return rows % mesh.rows == 0 and cols % mesh.cols == 0


def shard_matrix(matrix: np.ndarray, mesh: Mesh2D) -> ShardedMatrix:
    """Partition ``matrix`` block-wise onto ``mesh``.

    Row blocks go to mesh rows and column blocks to mesh columns, the
    paper's "partition the two outermost dimensions" sharding rule
    (Section 3.2.1).

    Raises:
        ValueError: if the matrix does not divide evenly.
    """
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2D matrix, got shape {matrix.shape}")
    if not shardable(matrix.shape, mesh):
        raise ValueError(
            f"matrix of shape {matrix.shape} does not divide over mesh {mesh}"
        )
    block_r = matrix.shape[0] // mesh.rows
    block_c = matrix.shape[1] // mesh.cols
    shards = {}
    for i, j in mesh.coords():
        block = matrix[i * block_r:(i + 1) * block_r, j * block_c:(j + 1) * block_c]
        shards[(i, j)] = np.ascontiguousarray(block)
    return ShardedMatrix(mesh=mesh, shards=shards, global_shape=matrix.shape)


def gather_matrix(sharded: ShardedMatrix) -> np.ndarray:
    """Reassemble the global matrix from its shards."""
    mesh = sharded.mesh
    row_blocks = []
    for i in range(mesh.rows):
        row_blocks.append(
            np.concatenate([sharded.shard((i, j)) for j in range(mesh.cols)], axis=1)
        )
    return np.concatenate(row_blocks, axis=0)


def zeros_like_sharded(
    global_shape: Tuple[int, int], mesh: Mesh2D, dtype: np.dtype = np.float64
) -> ShardedMatrix:
    """A sharded all-zeros matrix of ``global_shape`` on ``mesh``."""
    if not shardable(global_shape, mesh):
        raise ValueError(
            f"shape {global_shape} does not divide over mesh {mesh}"
        )
    block = (global_shape[0] // mesh.rows, global_shape[1] // mesh.cols)
    shards = {coord: np.zeros(block, dtype=dtype) for coord in mesh.coords()}
    return ShardedMatrix(mesh=mesh, shards=shards, global_shape=global_shape)


def shard_rows(matrix: np.ndarray, parts: int) -> Dict[int, np.ndarray]:
    """1D row-sharding of ``matrix`` into ``parts`` blocks (ring baselines)."""
    if matrix.shape[0] % parts != 0:
        raise ValueError(
            f"{matrix.shape[0]} rows do not divide into {parts} parts"
        )
    block = matrix.shape[0] // parts
    return {
        r: np.ascontiguousarray(matrix[r * block:(r + 1) * block])
        for r in range(parts)
    }


def shard_cols(matrix: np.ndarray, parts: int) -> Dict[int, np.ndarray]:
    """1D column-sharding of ``matrix`` into ``parts`` blocks."""
    if matrix.shape[1] % parts != 0:
        raise ValueError(
            f"{matrix.shape[1]} columns do not divide into {parts} parts"
        )
    block = matrix.shape[1] // parts
    return {
        r: np.ascontiguousarray(matrix[:, r * block:(r + 1) * block])
        for r in range(parts)
    }
