"""Topologies (2D torus, 1D ring) and matrix sharding."""

from repro.mesh.sharding import (
    ShardedMatrix,
    gather_matrix,
    shard_cols,
    shard_matrix,
    shard_rows,
    shardable,
    zeros_like_sharded,
)
from repro.mesh.executor import ChipRuntime, DeadlockError, MeshExecutor
from repro.mesh.topology import (
    LAYOUTS,
    Coord,
    Mesh2D,
    Ring1D,
    curve_length,
    divisors,
    factor_pairs,
    hilbert_order,
    layout_names,
    mesh_shapes,
    morton_order,
    square_mesh,
)

__all__ = [
    "ChipRuntime",
    "Coord",
    "DeadlockError",
    "LAYOUTS",
    "MeshExecutor",
    "Mesh2D",
    "Ring1D",
    "ShardedMatrix",
    "curve_length",
    "divisors",
    "factor_pairs",
    "gather_matrix",
    "hilbert_order",
    "layout_names",
    "mesh_shapes",
    "morton_order",
    "shard_cols",
    "shard_matrix",
    "shard_rows",
    "shardable",
    "square_mesh",
    "zeros_like_sharded",
]
