"""Topologies (2D torus, 1D ring) and matrix sharding."""

from repro.mesh.sharding import (
    ShardedMatrix,
    gather_matrix,
    shard_cols,
    shard_matrix,
    shard_rows,
    shardable,
    zeros_like_sharded,
)
from repro.mesh.executor import ChipRuntime, DeadlockError, MeshExecutor
from repro.mesh.topology import (
    Coord,
    Mesh2D,
    Ring1D,
    divisors,
    factor_pairs,
    mesh_shapes,
    square_mesh,
)

__all__ = [
    "ChipRuntime",
    "Coord",
    "DeadlockError",
    "MeshExecutor",
    "Mesh2D",
    "Ring1D",
    "ShardedMatrix",
    "divisors",
    "factor_pairs",
    "gather_matrix",
    "mesh_shapes",
    "shard_cols",
    "shard_matrix",
    "shard_rows",
    "shardable",
    "square_mesh",
    "zeros_like_sharded",
]
