"""Per-chip SPMD programs for the mesh executor.

These re-express the paper's Figure 5 pseudocode as literal per-chip
programs over :class:`repro.mesh.executor.ChipRuntime` — each chip sees
only its own shards and communicates exclusively through neighbour
sends — providing an execution path independent of the dictionary-based
functional plane. The tests check all three against each other and
against local matmul.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.slicing import (
    set_slice_col,
    set_slice_row,
    slice_col,
    slice_row,
)
from repro.mesh.executor import ChipRuntime, MeshExecutor
from repro.mesh.sharding import gather_matrix, shard_matrix, ShardedMatrix
from repro.mesh.topology import Coord, Mesh2D


def meshslice_os_program(slices: int, block: int = 1):
    """Figure 5 (left): the output-stationary MeshSlice chip program.

    The chip input is a ``(A_ij, B_ij)`` pair; the output is the local
    ``C_ij`` shard.
    """

    def program(chip: ChipRuntime, local):
        a_shard, b_shard = local
        c_shard = np.zeros(
            (a_shard.shape[0], b_shard.shape[1]),
            dtype=np.result_type(a_shard, b_shard),
        )
        for s in range(slices):
            a_sub = slice_col(a_shard, slices, s, block)
            b_sub = slice_row(b_shard, slices, s, block)
            a_full = yield chip.ring_allgather(
                "row", a_sub, concat_axis=1, tag=f"a{s}"
            )
            b_full = yield chip.ring_allgather(
                "col", b_sub, concat_axis=0, tag=f"b{s}"
            )
            c_shard += a_full @ b_full
        return c_shard

    return program


def meshslice_ls_program(slices: int, block: int = 1):
    """Figure 5 (center): the left-stationary MeshSlice chip program.

    Computes ``C = A @ B.T`` with ``B`` stored ``N x K``.
    """

    def program(chip: ChipRuntime, local):
        a_shard, b_shard = local
        # Local C shard is (M / P_r) x (N / P_c); B is sharded N over
        # mesh rows, so C's local column extent follows from the mesh.
        n_local = b_shard.shape[0] * chip.mesh.rows // chip.mesh.cols
        c_shard = np.zeros(
            (a_shard.shape[0], n_local),
            dtype=np.result_type(a_shard, b_shard),
        )
        for s in range(slices):
            b_sub = slice_row(b_shard, slices, s, block)
            b_full = yield chip.ring_allgather(
                "col", b_sub, concat_axis=0, tag=f"b{s}"
            )
            partial = a_shard @ b_full.T
            c_sub = yield chip.ring_reducescatter(
                "row", partial, split_axis=1, tag=f"c{s}"
            )
            set_slice_col(c_shard, slices, s, c_sub, block=block)
        return c_shard

    return program


def meshslice_rs_program(slices: int, block: int = 1):
    """Figure 5 (right): the right-stationary MeshSlice chip program.

    Computes ``C = A.T @ B`` with ``A`` stored ``K x M``.
    """

    def program(chip: ChipRuntime, local):
        a_shard, b_shard = local
        m_local = a_shard.shape[1] * chip.mesh.cols // chip.mesh.rows
        c_shard = np.zeros(
            (m_local, b_shard.shape[1]),
            dtype=np.result_type(a_shard, b_shard),
        )
        for s in range(slices):
            a_sub = slice_col(a_shard, slices, s, block)
            a_full = yield chip.ring_allgather(
                "row", a_sub, concat_axis=1, tag=f"a{s}"
            )
            partial = a_full.T @ b_shard
            c_sub = yield chip.ring_reducescatter(
                "col", partial, split_axis=0, tag=f"c{s}"
            )
            set_slice_row(c_shard, slices, s, c_sub, block=block)
        return c_shard

    return program


def cannon_program():
    """Cannon's algorithm as a per-chip program (square meshes).

    Skew and shifts are explicit multi-hop SendRecvs — the executor
    variant of :class:`repro.algorithms.cannon.CannonGeMM`.
    """

    def program(chip: ChipRuntime, local):
        a_shard, b_shard = local
        i, j = chip.coord
        side = chip.mesh.rows
        # Skew: shift A left by i hops, B up by j hops.
        for hop in range(i):
            a_shard = yield chip.send_recv("left", a_shard, tag=f"skew_a{hop}")
        for hop in range(j):
            b_shard = yield chip.send_recv("up", b_shard, tag=f"skew_b{hop}")
        c_shard = np.zeros(
            (a_shard.shape[0], b_shard.shape[1]),
            dtype=np.result_type(a_shard, b_shard),
        )
        for step in range(side):
            c_shard += a_shard @ b_shard
            if step < side - 1:
                a_shard = yield chip.send_recv("left", a_shard, tag=f"sa{step}")
                b_shard = yield chip.send_recv("up", b_shard, tag=f"sb{step}")
        return c_shard

    return program


def run_spmd_gemm(
    program_factory,
    a: np.ndarray,
    b: np.ndarray,
    mesh: Mesh2D,
    c_shape,
) -> np.ndarray:
    """Shard inputs, execute a chip program, gather the output."""
    executor = MeshExecutor(mesh)
    a_sh = shard_matrix(a, mesh)
    b_sh = shard_matrix(b, mesh)
    inputs: Dict[Coord, object] = {
        coord: (a_sh.shard(coord), b_sh.shard(coord))
        for coord in mesh.coords()
    }
    outputs = executor.run(program_factory, inputs)
    sharded = ShardedMatrix(mesh=mesh, shards=outputs, global_shape=c_shape)
    return gather_matrix(sharded)
