"""SPMD mesh executor: per-chip programs with explicit message passing.

The paper's real implementation expresses MeshSlice as a JAX
``shard_map`` program — the same per-chip code running on every chip of
the mesh, communicating through collectives. This module is that
substrate's stand-in: a small runtime that executes a *chip function*
once per mesh coordinate, giving each invocation a :class:`ChipRuntime`
handle whose only communication facilities are neighbour sends/receives
and ring collectives built on them.

Unlike :mod:`repro.comm.ops` (which operates on global shard
dictionaries), the executor enforces SPMD locality *by construction*:
chip code receives only its own shard and a runtime handle, and every
byte it learns beyond that arrives through an explicit ``send``. The
tests re-express MeshSlice through this runtime and check it against
both the dictionary-based implementation and plain matmul, closing the
loop between the paper's pseudocode and an executable per-chip program.

The scheduler is deterministic: chips run as cooperative generators in
row-major order; a chip blocks on ``recv`` until the matching message
arrives. Deadlocks (every live chip blocked) are detected and reported.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.mesh.topology import Coord, Mesh2D


class DeadlockError(RuntimeError):
    """Every unfinished chip is blocked on a receive."""


@dataclasses.dataclass
class _Message:
    payload: object
    tag: str


class ChipRuntime:
    """The communication handle given to per-chip SPMD code.

    Chip code is written as a generator-based coroutine: communication
    methods return *request* objects that must be ``yield``-ed; the
    yield expression evaluates to the operation's result. Example::

        def program(chip, shard):
            right = yield chip.send_recv("right", shard, tag="shift")
            ...

    Attributes:
        coord: This chip's mesh coordinate.
        mesh: The mesh being executed on.
    """

    def __init__(self, coord: Coord, mesh: Mesh2D, executor: "MeshExecutor"):
        self.coord = coord
        self.mesh = mesh
        self._executor = executor

    # Directions map to torus neighbours.
    _NEIGHBOURS = {
        "right": "right_neighbor",
        "left": "left_neighbor",
        "down": "down_neighbor",
        "up": "up_neighbor",
    }

    def neighbour(self, direction: str) -> Coord:
        """The adjacent chip in ``direction`` (wrapping the torus)."""
        try:
            method = self._NEIGHBOURS[direction]
        except KeyError:
            known = ", ".join(sorted(self._NEIGHBOURS))
            raise ValueError(f"unknown direction {direction!r}; known: {known}")
        return getattr(self.mesh, method)(self.coord)

    def send_recv(self, direction: str, payload: object, tag: str):
        """Send ``payload`` to the ``direction`` neighbour and receive
        the matching message from the opposite neighbour.

        This is the torus SendRecv primitive every ring algorithm is
        built from; yielding the returned request gives the received
        payload.
        """
        return _SendRecv(direction=direction, payload=payload, tag=tag)

    # ------------------------------------------------- ring collectives

    def ring_allgather(self, axis: str, chunk: np.ndarray, concat_axis: int, tag: str):
        """Ring AllGather along ``axis`` (``"row"`` ring moves data
        between columns; ``"col"`` ring between rows).

        Implemented purely with :meth:`send_recv` steps; yields the
        concatenation of all ring members' chunks in ring order.
        """
        return _Collective(
            kind="allgather", axis=axis, payload=chunk,
            concat_axis=concat_axis, tag=tag,
        )

    def ring_reducescatter(self, axis: str, partial: np.ndarray, split_axis: int, tag: str):
        """Ring ReduceScatter along ``axis``; yields this chip's summed
        chunk of the ring-wide partials."""
        return _Collective(
            kind="reducescatter", axis=axis, payload=partial,
            concat_axis=split_axis, tag=tag,
        )

    # -------------------------------------------------- ring geometry

    def ring_info(self, axis: str) -> Tuple[int, int]:
        """(this chip's rank, ring size) of its ``axis`` ring."""
        i, j = self.coord
        if axis == "row":
            return j, self.mesh.cols
        if axis == "col":
            return i, self.mesh.rows
        raise ValueError(f"unknown ring axis {axis!r} (use 'row' or 'col')")


@dataclasses.dataclass
class _SendRecv:
    direction: str
    payload: object
    tag: str


@dataclasses.dataclass
class _Collective:
    kind: str
    axis: str
    payload: np.ndarray
    concat_axis: int
    tag: str


#: A chip program: f(chip_runtime, local_input) -> generator yielding
#: communication requests and returning the chip's local output.
ChipProgram = Callable[[ChipRuntime, object], Iterator[object]]


class MeshExecutor:
    """Runs one SPMD program across every chip of a mesh."""

    def __init__(self, mesh: Mesh2D):
        self.mesh = mesh
        self._mailboxes: Dict[Tuple[Coord, str], collections.deque] = (
            collections.defaultdict(collections.deque)
        )
        self.messages_sent = 0
        self.bytes_sent = 0.0

    def run(
        self, program: ChipProgram, inputs: Dict[Coord, object]
    ) -> Dict[Coord, object]:
        """Execute ``program`` on every chip; returns per-chip outputs.

        Args:
            program: The per-chip generator function.
            inputs: Each chip's local input (e.g. its matrix shard).

        Raises:
            DeadlockError: if all unfinished chips are blocked on
                receives that can never be satisfied.
        """
        missing = [c for c in self.mesh.coords() if c not in inputs]
        if missing:
            raise ValueError(f"inputs missing for chips {missing[:4]}")
        chips = {
            coord: _ChipState(
                runtime=ChipRuntime(coord, self.mesh, self),
                generator=None,
            )
            for coord in self.mesh.coords()
        }
        for coord, state in chips.items():
            state.generator = _drive(program, state.runtime, inputs[coord])

        outputs: Dict[Coord, object] = {}
        live = dict(chips)
        while live:
            progressed = False
            for coord in list(live):
                state = live[coord]
                result = self._step(coord, state)
                if result is _BLOCKED:
                    continue
                progressed = True
                if result is not _RUNNING:
                    outputs[coord] = result.value
                    del live[coord]
            if live and not progressed:
                blocked = sorted(live)[:4]
                raise DeadlockError(
                    f"all {len(live)} unfinished chips are blocked; "
                    f"e.g. {blocked}"
                )
        return outputs

    def _step(self, coord: Coord, state: "_ChipState"):
        """Advance one chip by one communication round if possible."""
        request = state.pending
        if request is not None:
            source = state.pending_source
            queue = self._mailboxes[(coord, request.tag)]
            match = None
            for index, (sender, message) in enumerate(queue):
                if sender == source:
                    match = index
                    break
            if match is None:
                return _BLOCKED
            _sender, message = queue[match]
            del queue[match]
            state.pending = None
            state.pending_source = None
            return self._resume(coord, state, message.payload)
        return self._resume(coord, state, None)

    def _resume(self, coord: Coord, state: "_ChipState", value):
        try:
            request = state.generator.send(value)
        except StopIteration as stop:
            return _Finished(stop.value)
        if not isinstance(request, _SendRecv):
            raise TypeError(
                f"chip {coord} yielded {type(request).__name__}; chip "
                "programs must yield runtime requests"
            )
        destination = state.runtime.neighbour(request.direction)
        self._mailboxes[(destination, request.tag)].append(
            (coord, _Message(payload=request.payload, tag=request.tag))
        )
        self.messages_sent += 1
        self.bytes_sent += _payload_bytes(request.payload)
        # The matching receive comes from the opposite direction's
        # neighbour (the chip whose send targets us).
        opposite = {"right": "left", "left": "right", "up": "down", "down": "up"}
        state.pending = request
        state.pending_source = state.runtime.neighbour(
            opposite[request.direction]
        )
        return _RUNNING


@dataclasses.dataclass
class _ChipState:
    runtime: ChipRuntime
    generator: Optional[Iterator]
    pending: Optional[_SendRecv] = None
    pending_source: Optional[Coord] = None


def _payload_bytes(payload) -> float:
    """Wire bytes of a message payload (arrays, possibly nested)."""
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if isinstance(payload, (tuple, list)):
        return sum(_payload_bytes(item) for item in payload)
    return 0.0


class _Finished:
    def __init__(self, value):
        self.value = value


_RUNNING = object()
_BLOCKED = object()


def _drive(program: ChipProgram, chip: ChipRuntime, local_input):
    """Wrap a chip program, expanding collective requests into
    SendRecv step sequences."""
    gen = program(chip, local_input)
    try:
        request = next(gen)
    except StopIteration as stop:
        return stop.value
    while True:
        if isinstance(request, _Collective):
            result = yield from _run_collective(chip, request)
        elif isinstance(request, _SendRecv):
            result = yield request
        else:
            raise TypeError(
                f"chip program yielded unsupported {type(request).__name__}"
            )
        try:
            request = gen.send(result)
        except StopIteration as stop:
            return stop.value


def _run_collective(chip: ChipRuntime, request: _Collective):
    """Expand a ring collective into P-1 SendRecv steps."""
    rank, size = chip.ring_info(request.axis)
    forward = "right" if request.axis == "row" else "down"
    if request.kind == "allgather":
        chunks: Dict[int, np.ndarray] = {rank: request.payload}
        in_flight_rank, in_flight = rank, request.payload
        for step in range(size - 1):
            received = yield chip.send_recv(
                forward, (in_flight_rank, in_flight),
                tag=f"{request.tag}/ag{step}",
            )
            in_flight_rank, in_flight = received
            chunks[in_flight_rank] = in_flight
        ordered = [chunks[r] for r in range(size)]
        return np.concatenate(ordered, axis=request.concat_axis)
    if request.kind == "reducescatter":
        split = np.array_split(request.payload, size, axis=request.concat_axis)
        if len({c.shape for c in split}) != 1:
            raise ValueError(
                f"reduce-scatter axis {request.concat_axis} does not "
                f"divide evenly into {size} parts"
            )
        # The partial destined for chunk c starts at rank c+1 and
        # travels forward, accumulating local contributions.
        acc = split[(rank - 1) % size].copy()
        dest = (rank - 1) % size
        for step in range(size - 1):
            incoming_dest, incoming = yield chip.send_recv(
                forward, (dest, acc), tag=f"{request.tag}/rs{step}"
            )
            acc = incoming + split[incoming_dest]
            dest = incoming_dest
        if dest != rank:
            raise AssertionError("ring reduce-scatter misrouted a chunk")
        return acc
    raise ValueError(f"unknown collective kind {request.kind!r}")
