"""Content-keyed memoization for the simulation/experiment fast path.

Design-space exploration re-evaluates the same pure functions with the
same frozen-dataclass inputs thousands of times per sweep: the
autotuner's ``best_slice_count`` is called with identical
``(GeMMConfig, HardwareParams)`` pairs once per algorithm per mesh
candidate, ``plan_model`` once per algorithm per grid point, and the
simulator re-executes identical per-pass programs across mesh
candidates. Because every key type in the pipeline is a frozen
dataclass (``GeMMShape``, ``Mesh2D``, ``GeMMConfig``,
``HardwareParams``, ``LLMConfig``, ``LayerPlan``), exact content keys
are cheap: hashing a config is a handful of integer hashes.

This module provides the shared memoization machinery:

* :func:`memoize` — decorator turning a pure function into a cached
  one. Each cache is registered under a name so tests and benchmarks
  can inspect hit/miss counters.
* ``REPRO_NO_CACHE=1`` — environment kill switch, honored *per call*,
  so a single process can flip caching on and off (the equivalence and
  regression tests rely on this).
* :func:`cache_stats` / :func:`clear_caches` — introspection and reset.

Caches are unbounded: one full evaluation sweep creates a few thousand
entries of small frozen objects, far below any practical memory limit.
The caches are plain dicts, which makes them fork-friendly: worker
processes of the parallel grid runner inherit warm parent caches
through copy-on-write.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

#: Environment variable that disables every cache when set to a truthy
#: value ("1", "true", "yes", "on" — case-insensitive).
KILL_SWITCH_ENV = "REPRO_NO_CACHE"

_TRUTHY = ("1", "true", "yes", "on")

_F = TypeVar("_F", bound=Callable[..., Any])

#: All caches created via :func:`memoize`, by registration name.
_REGISTRY: Dict[str, "_MemoCache"] = {}


# The kill switch is honored per call, which puts one environment
# lookup on every cached-function invocation — tens of thousands per
# sweep. ``os.environ.get`` re-encodes the key string each time, so on
# CPython/POSIX we read the underlying bytes dict directly (kept in
# sync by ``os.environ.__setitem__``, which is what monkeypatch.setenv
# and CLI code use).
if os.name == "posix" and isinstance(
    getattr(os.environ, "_data", None), dict
):
    _ENV_DATA = os.environ._data
    _KILL_KEY = os.fsencode(KILL_SWITCH_ENV)

    def _kill_switch_value() -> str:
        raw = _ENV_DATA.get(_KILL_KEY)
        return "" if raw is None else os.fsdecode(raw)

else:  # pragma: no cover - non-CPython / non-POSIX fallback

    def _kill_switch_value() -> str:
        return os.environ.get(KILL_SWITCH_ENV, "")


def caching_enabled() -> bool:
    """Whether memoization is active (the kill switch is not set)."""
    value = _kill_switch_value()
    return not value or value.strip().lower() not in _TRUTHY


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters of one named cache."""

    name: str
    hits: int
    misses: int
    entries: int

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        calls = self.calls
        return self.hits / calls if calls else 0.0


class _MemoCache:
    """One named cache: a plain dict plus hit/miss counters."""

    __slots__ = ("name", "store", "hits", "misses")

    def __init__(self, name: str):
        self.name = name
        self.store: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self.store.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            name=self.name,
            hits=self.hits,
            misses=self.misses,
            entries=len(self.store),
        )


def memoize(name: str) -> Callable[[_F], _F]:
    """Cache a pure function on its (hashable) positional arguments.

    The decorated function must be called with positional arguments
    only; public wrappers with keyword defaults should normalize into a
    fully positional call (see ``best_slice_count`` for the idiom).
    This keeps keys canonical — ``f(a, b)`` and ``f(a, b=b)`` would
    otherwise occupy two cache slots.

    Registering two caches under one name raises, which catches
    accidental name collisions between modules.
    """
    if name in _REGISTRY:
        raise ValueError(f"cache {name!r} already registered")
    cache = _MemoCache(name)
    _REGISTRY[name] = cache

    def decorator(fn: _F) -> _F:
        store = cache.store

        def wrapper(*args: Any) -> Any:
            kill = _kill_switch_value()
            if kill and kill.strip().lower() in _TRUTHY:
                return fn(*args)
            try:
                value = store[args]
            except KeyError:
                cache.misses += 1
                value = store[args] = fn(*args)
                return value
            except TypeError:
                # Unhashable argument (caller-constructed list, etc.):
                # fall through to the uncached function.
                return fn(*args)
            cache.hits += 1
            return value

        wrapper.cache = cache  # type: ignore[attr-defined]
        wrapper.cache_clear = cache.clear  # type: ignore[attr-defined]
        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        wrapper.__name__ = getattr(fn, "__name__", name)
        wrapper.__doc__ = fn.__doc__
        return wrapper  # type: ignore[return-value]

    return decorator


def named_cache(name: str) -> _MemoCache:
    """Register and return a cache for manual get/put use.

    For call patterns :func:`memoize` cannot express — e.g. the
    content-addressed simulation store, whose key (a program
    fingerprint) is derived *inside* the cached computation rather
    than from the call arguments. The returned object exposes
    ``store`` (a plain dict) plus ``hits``/``misses`` counters; it
    participates in :func:`cache_stats` and :func:`clear_caches` like
    any decorated cache. Callers must honor :func:`caching_enabled`
    themselves.
    """
    if name in _REGISTRY:
        raise ValueError(f"cache {name!r} already registered")
    cache = _MemoCache(name)
    _REGISTRY[name] = cache
    return cache


def cache_stats(name: Optional[str] = None) -> Dict[str, CacheStats]:
    """Counters of one cache, or of every registered cache."""
    if name is not None:
        return {name: _REGISTRY[name].stats()}
    return {key: cache.stats() for key, cache in _REGISTRY.items()}


def clear_caches(names: Optional[Tuple[str, ...]] = None) -> None:
    """Empty caches and reset their counters (all by default)."""
    targets = _REGISTRY.values() if names is None else (
        _REGISTRY[n] for n in names
    )
    for cache in targets:
        cache.clear()


def registered_caches() -> Tuple[str, ...]:
    """Names of every cache created so far (import-order dependent)."""
    return tuple(_REGISTRY)
