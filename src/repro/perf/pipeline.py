"""Cached simulation pipeline: program build, whole-pass results, bounds.

The evaluation sweeps re-simulate the *same* distributed GeMM pass many
times: every mesh candidate of every algorithm at every cluster size
shares pass configurations with other grid points (weak and strong
scaling visit overlapping ``(algorithm, GeMMConfig, HardwareParams)``
triples, and ``best_block_run`` revisits identical passes across mesh
shapes). All three key types are frozen dataclasses, so whole simulated
pass results are memoized content-keyed here.

Two configurations that would simulate identically share one cache
entry through two canonicalization layers:

* **Canonical configuration keys.** Each algorithm maps a ``GeMMConfig``
  to the canonical representative of its equivalence class
  (:meth:`repro.algorithms.base.DistributedGeMM.canonical_config`):
  Cannon ignores ``slices`` entirely, and the SendRecv-pipeline
  algorithms (Wang, 1D TP, FSDP) clamp it to their decomposed ring
  length, so e.g. Wang at ``S = 64`` and ``S = 128`` on a 16-ring build
  byte-identical programs. The contract is *bit-identical programs*,
  never merely equal makespans — a cached ``SimResult`` is returned for
  every member of the class, spans and all.
* **Content-addressed simulations.** Below the config-keyed cache,
  results are stored under a fingerprint of the built program itself
  (activities, dependencies, resources, durations, metadata, shared
  capacities), so distinct configurations that happen to build
  identical programs — equivalent transposed shapes on symmetric
  meshes, knob values an algorithm ignores — still share one
  simulation.

Treat every returned object as immutable: cached ``Program`` and
``SimResult`` instances are shared between callers.

:func:`pass_lower_bound` is the certified bound used by the mesh-search
pruning in ``experiments.common``: activities holding the same
exclusive resource execute serially and never faster than their nominal
duration, so the largest per-resource sum of nominal durations (and the
total shared-resource units over capacity) cannot exceed the simulated
makespan. The bound is shrunk by one part in 1e9 so the engine's
epsilon completion threshold (1e-15 relative) can never certify a prune
of a run that would actually win or tie.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.algorithms import GeMMConfig, get_algorithm
from repro.faults.plan import FaultPlan
from repro.hw.params import HardwareParams
from repro.perf.cache import caching_enabled, memoize, named_cache
from repro.sim.cluster import SimResult, simulate
from repro.sim.program import Program

if TYPE_CHECKING:  # pragma: no cover - deferred to avoid perf <-> recovery cycle
    from repro.mesh.topology import Mesh2D
    from repro.models.config import LLMConfig
    from repro.recovery.degraded import DegradedRetune

#: Safety margin keeping the lower bound strictly conservative against
#: the engine's epsilon-relative completion threshold.
_BOUND_SAFETY = 1.0 - 1e-9


@memoize("built_program")
def _built_program(algorithm: str, cfg: GeMMConfig, hw: HardwareParams) -> Program:
    return get_algorithm(algorithm).build_program(cfg, hw)


def built_program(algorithm: str, cfg: GeMMConfig, hw: HardwareParams) -> Program:
    """The (shared, do-not-mutate) program of one pass configuration."""
    return _built_program(algorithm, cfg, hw)


@memoize("canonical_config")
def _canonical_config(algorithm: str, cfg: GeMMConfig) -> GeMMConfig:
    return get_algorithm(algorithm).canonical_config(cfg)


def canonical_pass_config(algorithm: str, cfg: GeMMConfig) -> GeMMConfig:
    """The canonical cache key of one pass configuration.

    Per-algorithm: the representative of ``cfg``'s equivalence class
    under the *bit-identical program* relation (see
    :meth:`repro.algorithms.base.DistributedGeMM.canonical_config`).
    """
    return _canonical_config(algorithm, cfg)


#: Content-addressed simulation store: program fingerprint -> SimResult.
_PROGRAM_RESULTS = named_cache("simulated_program")


def _program_fingerprint(program: Program, hw: HardwareParams):
    """A hashable content key of everything the simulation reads.

    Covers the activity list (order, labels, kinds, durations,
    dependencies, resources, metadata — spans carry the labels and
    metadata, and ``SimResult.flops_per_chip`` sums the ``flops``
    metadata), the shared capacities, and the hardware. Program-level
    ``meta`` is deliberately excluded: motif annotations only steer the
    compiled engine, whose spans are bit-identical by contract, and the
    embedded config is exactly the degree of freedom being collapsed.
    """
    return (
        hw,
        tuple(sorted(program.shared_capacities.items())),
        tuple(
            (
                act.aid,
                act.label,
                act.kind,
                act.duration,
                tuple(act.deps),
                act.exclusive,
                tuple(sorted(act.shared.items())),
                tuple(sorted(act.meta.items())),
            )
            for act in program.activities
        ),
    )


def _simulate_content_addressed(program: Program, hw: HardwareParams) -> SimResult:
    """Simulate ``program``, sharing results between identical programs."""
    if not caching_enabled():
        return simulate(program, hw)
    try:
        key = _program_fingerprint(program, hw)
    except TypeError:
        # Unhashable activity metadata: simulate without content
        # sharing (the config-keyed level above still caches it).
        return simulate(program, hw)
    store = _PROGRAM_RESULTS.store
    result = store.get(key)
    if result is None:
        _PROGRAM_RESULTS.misses += 1
        result = store[key] = simulate(program, hw)
    else:
        _PROGRAM_RESULTS.hits += 1
    return result


@memoize("simulated_pass")
def _simulated_pass(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams
) -> SimResult:
    return _simulate_content_addressed(_built_program(algorithm, cfg, hw), hw)


def simulated_pass(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams
) -> SimResult:
    """Simulate one pass configuration, reusing any cached result.

    The cache key is the *canonical* configuration, so every member of
    a canonical equivalence class (e.g. Wang slice counts above the
    decomposed ring) shares one bit-identical ``SimResult``. Treat the
    returned object as immutable. The engine (heap or compiled) is the
    process default; both produce bit-identical results, so cache
    entries are engine-agnostic.
    """
    return _simulated_pass(algorithm, _canonical_config(algorithm, cfg), hw)


@memoize("faulted_pass")
def _faulted_pass(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams, plan: FaultPlan
) -> SimResult:
    return simulate(_built_program(algorithm, cfg, hw), hw, faults=plan)


def faulted_pass(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams, plan: FaultPlan
) -> SimResult:
    """Simulate one pass under a fault plan (memoized, like the rest).

    Fault-plan ensembles revisit the same ``(algorithm, cfg, hw)``
    triple once per plan, and robust tuning revisits the same plan
    across mesh candidates, so results are content-keyed on all four.
    A null plan short-circuits to :func:`simulated_pass` — same cache
    entry, bit-identical result. Keys canonicalize like
    :func:`simulated_pass`: the plan perturbs only activity content,
    which is bit-identical across a canonical equivalence class.
    """
    cfg = _canonical_config(algorithm, cfg)
    if plan.is_null:
        return _simulated_pass(algorithm, cfg, hw)
    return _faulted_pass(algorithm, cfg, hw, plan)


@memoize("pass_lower_bound")
def _pass_lower_bound(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams
) -> float:
    program = _built_program(algorithm, cfg, hw)
    exclusive_totals: Dict[str, float] = {}
    shared_units: Dict[str, float] = {}
    # Longest dependency path, weighted by nominal durations: no
    # activity can finish before its full chain of predecessors, each
    # of which runs no faster than its nominal rate. Program builders
    # emit activities in topological order; if an out-of-order DAG ever
    # shows up, the path bound is simply skipped.
    dist: Dict[int, float] = {}
    path_bound = 0.0
    topo = True
    for act in program.activities:
        tail = 0.0
        if topo:
            for dep in act.deps:
                d = dist.get(dep)
                if d is None:
                    topo = False
                    break
                if d > tail:
                    tail = d
        duration = act.duration
        if topo:
            reach = tail + duration
            dist[act.aid] = reach
            if reach > path_bound:
                path_bound = reach
        for res in act.exclusive:
            exclusive_totals[res] = exclusive_totals.get(res, 0.0) + duration
        for res, demand in act.shared.items():
            shared_units[res] = shared_units.get(res, 0.0) + demand * duration
    bound = max(exclusive_totals.values(), default=0.0)
    if topo and path_bound > bound:
        bound = path_bound
    for res, units in shared_units.items():
        capacity = program.shared_capacities.get(res)
        if capacity and units / capacity > bound:
            bound = units / capacity
    return bound * _BOUND_SAFETY


def pass_lower_bound(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams
) -> float:
    """A certified lower bound on the simulated makespan of one pass.

    Keys canonicalize like :func:`simulated_pass`: the bound depends
    only on program content, which is bit-identical across a canonical
    equivalence class.
    """
    return _pass_lower_bound(algorithm, _canonical_config(algorithm, cfg), hw)


@memoize("degraded_retune")
def _degraded_retune(
    model: "LLMConfig",
    batch_size: int,
    mesh: "Mesh2D",
    dead: "Tuple[int, int]",
    hw: HardwareParams,
) -> "DegradedRetune":
    from repro.recovery.degraded import retune_degraded

    return retune_degraded(model, batch_size, mesh, dead, hw)


def degraded_retune_model(
    model: "LLMConfig",
    batch_size: int,
    mesh: "Mesh2D",
    dead: "Tuple[int, int]",
    hw: HardwareParams,
) -> "DegradedRetune":
    """Re-tune a model on the torus surviving one dead chip (memoized).

    The recovery ablation revisits the same ``(model, batch, mesh,
    hw)`` point for every policy and scale, and degraded tuning runs
    the full autotuner shape/slice search, so results are
    content-keyed like the rest of the pipeline (all key types are
    frozen dataclasses; ``dead`` is a plain coordinate tuple). The
    import is deferred: this module sits below ``repro.algorithms``
    and an eager ``repro.recovery`` import would cycle back through
    the autotuner.
    """
    return _degraded_retune(model, batch_size, mesh, dead, hw)


def degraded_retune(request, *args, **kwargs) -> "DegradedRetune":
    """Degraded re-tuning (unified-request entry point).

    Pass a single mode-"degraded" :class:`repro.service.TuneRequest`.
    The legacy positional form ``degraded_retune(model, batch, mesh,
    dead, hw)`` still works as a deprecated shim over
    :func:`degraded_retune_model`.
    """
    from repro.service.request import TuneRequest, execute

    if isinstance(request, TuneRequest):
        if args or kwargs:
            raise TypeError(
                "degraded_retune(TuneRequest) takes no further arguments"
            )
        return execute(request)
    import warnings

    warnings.warn(
        "degraded_retune(model, batch, mesh, dead, hw) with positional "
        "arguments is deprecated since 1.6.0; build a "
        "repro.service.TuneRequest(mode='degraded', ...) and call "
        "request.run()",
        DeprecationWarning,
        stacklevel=2,
    )
    return degraded_retune_model(request, *args, **kwargs)


def pass_compute_floor(flops: float, chips: int, hw: HardwareParams) -> float:
    """A build-free certified lower bound on one pass's makespan.

    Every algorithm executes the pass's full per-chip FLOPs
    (``flops / chips``) as kernels holding the exclusive core, and the
    chip model never times a kernel below ``flops / effective_flops``
    (MXU padding, launch overhead, and memory-boundedness only add
    time), so the simulated makespan cannot be smaller. Much looser
    than :func:`pass_lower_bound` but needs neither slice tuning nor a
    program build — the mesh search uses it as the certified
    placeholder for passes whose programs were not built yet.
    """
    return flops / chips / hw.effective_flops * _BOUND_SAFETY
