"""Cached simulation pipeline: program build, whole-pass results, bounds.

The evaluation sweeps re-simulate the *same* distributed GeMM pass many
times: every mesh candidate of every algorithm at every cluster size
shares pass configurations with other grid points (weak and strong
scaling visit overlapping ``(algorithm, GeMMConfig, HardwareParams)``
triples, and ``best_block_run`` revisits identical passes across mesh
shapes). All three key types are frozen dataclasses, so whole simulated
pass results are memoized content-keyed here.

Treat every returned object as immutable: cached ``Program`` and
``SimResult`` instances are shared between callers.

:func:`pass_lower_bound` is the certified bound used by the mesh-search
pruning in ``experiments.common``: activities holding the same
exclusive resource execute serially and never faster than their nominal
duration, so the largest per-resource sum of nominal durations (and the
total shared-resource units over capacity) cannot exceed the simulated
makespan. The bound is shrunk by one part in 1e9 so the engine's
epsilon completion threshold (1e-15 relative) can never certify a prune
of a run that would actually win or tie.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.algorithms import GeMMConfig, get_algorithm
from repro.faults.plan import FaultPlan
from repro.hw.params import HardwareParams
from repro.perf.cache import memoize
from repro.sim.cluster import SimResult, simulate
from repro.sim.program import Program

if TYPE_CHECKING:  # pragma: no cover - deferred to avoid perf <-> recovery cycle
    from repro.mesh.topology import Mesh2D
    from repro.models.config import LLMConfig
    from repro.recovery.degraded import DegradedRetune

#: Safety margin keeping the lower bound strictly conservative against
#: the engine's epsilon-relative completion threshold.
_BOUND_SAFETY = 1.0 - 1e-9


@memoize("built_program")
def _built_program(algorithm: str, cfg: GeMMConfig, hw: HardwareParams) -> Program:
    return get_algorithm(algorithm).build_program(cfg, hw)


def built_program(algorithm: str, cfg: GeMMConfig, hw: HardwareParams) -> Program:
    """The (shared, do-not-mutate) program of one pass configuration."""
    return _built_program(algorithm, cfg, hw)


@memoize("simulated_pass")
def _simulated_pass(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams
) -> SimResult:
    return simulate(_built_program(algorithm, cfg, hw), hw)


def simulated_pass(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams
) -> SimResult:
    """Simulate one pass configuration, reusing any cached result."""
    return _simulated_pass(algorithm, cfg, hw)


@memoize("faulted_pass")
def _faulted_pass(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams, plan: FaultPlan
) -> SimResult:
    return simulate(_built_program(algorithm, cfg, hw), hw, faults=plan)


def faulted_pass(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams, plan: FaultPlan
) -> SimResult:
    """Simulate one pass under a fault plan (memoized, like the rest).

    Fault-plan ensembles revisit the same ``(algorithm, cfg, hw)``
    triple once per plan, and robust tuning revisits the same plan
    across mesh candidates, so results are content-keyed on all four.
    A null plan short-circuits to :func:`simulated_pass` — same cache
    entry, bit-identical result.
    """
    if plan.is_null:
        return _simulated_pass(algorithm, cfg, hw)
    return _faulted_pass(algorithm, cfg, hw, plan)


@memoize("pass_lower_bound")
def _pass_lower_bound(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams
) -> float:
    program = _built_program(algorithm, cfg, hw)
    exclusive_totals: Dict[str, float] = {}
    shared_units: Dict[str, float] = {}
    # Longest dependency path, weighted by nominal durations: no
    # activity can finish before its full chain of predecessors, each
    # of which runs no faster than its nominal rate. Program builders
    # emit activities in topological order; if an out-of-order DAG ever
    # shows up, the path bound is simply skipped.
    dist: Dict[int, float] = {}
    path_bound = 0.0
    topo = True
    for act in program.activities:
        tail = 0.0
        if topo:
            for dep in act.deps:
                d = dist.get(dep)
                if d is None:
                    topo = False
                    break
                if d > tail:
                    tail = d
        duration = act.duration
        if topo:
            reach = tail + duration
            dist[act.aid] = reach
            if reach > path_bound:
                path_bound = reach
        for res in act.exclusive:
            exclusive_totals[res] = exclusive_totals.get(res, 0.0) + duration
        for res, demand in act.shared.items():
            shared_units[res] = shared_units.get(res, 0.0) + demand * duration
    bound = max(exclusive_totals.values(), default=0.0)
    if topo and path_bound > bound:
        bound = path_bound
    for res, units in shared_units.items():
        capacity = program.shared_capacities.get(res)
        if capacity and units / capacity > bound:
            bound = units / capacity
    return bound * _BOUND_SAFETY


def pass_lower_bound(
    algorithm: str, cfg: GeMMConfig, hw: HardwareParams
) -> float:
    """A certified lower bound on the simulated makespan of one pass."""
    return _pass_lower_bound(algorithm, cfg, hw)


@memoize("degraded_retune")
def _degraded_retune(
    model: "LLMConfig",
    batch_size: int,
    mesh: "Mesh2D",
    dead: "Tuple[int, int]",
    hw: HardwareParams,
) -> "DegradedRetune":
    from repro.recovery.degraded import retune_degraded

    return retune_degraded(model, batch_size, mesh, dead, hw)


def degraded_retune(
    model: "LLMConfig",
    batch_size: int,
    mesh: "Mesh2D",
    dead: "Tuple[int, int]",
    hw: HardwareParams,
) -> "DegradedRetune":
    """Re-tune a model on the torus surviving one dead chip (memoized).

    The recovery ablation revisits the same ``(model, batch, mesh,
    hw)`` point for every policy and scale, and degraded tuning runs
    the full autotuner shape/slice search, so results are
    content-keyed like the rest of the pipeline (all key types are
    frozen dataclasses; ``dead`` is a plain coordinate tuple). The
    import is deferred: this module sits below ``repro.algorithms``
    and an eager ``repro.recovery`` import would cycle back through
    the autotuner.
    """
    return _degraded_retune(model, batch_size, mesh, dead, hw)


def pass_compute_floor(flops: float, chips: int, hw: HardwareParams) -> float:
    """A build-free certified lower bound on one pass's makespan.

    Every algorithm executes the pass's full per-chip FLOPs
    (``flops / chips``) as kernels holding the exclusive core, and the
    chip model never times a kernel below ``flops / effective_flops``
    (MXU padding, launch overhead, and memory-boundedness only add
    time), so the simulated makespan cannot be smaller. Much looser
    than :func:`pass_lower_bound` but needs neither slice tuning nor a
    program build — the mesh search uses it as the certified
    placeholder for passes whose programs were not built yet.
    """
    return flops / chips / hw.effective_flops * _BOUND_SAFETY
