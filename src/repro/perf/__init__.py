"""Fast-path machinery for the simulation/experiment pipeline.

Two layers:

* :mod:`repro.perf.cache` — named, content-keyed memoization with
  hit/miss counters and the ``REPRO_NO_CACHE`` environment kill switch.
* :mod:`repro.perf.pipeline` — cached program builds, whole simulated
  pass results keyed ``(algorithm, GeMMConfig, HardwareParams)``, and
  certified makespan lower bounds for mesh-search pruning.

The pipeline names are exported lazily (PEP 562): low-level modules
like ``repro.sim.chip`` import ``repro.perf.cache``, which triggers
this package, and an eager pipeline import would cycle back through
``repro.algorithms`` into ``repro.sim``.
"""

from repro.perf.cache import (
    KILL_SWITCH_ENV,
    CacheStats,
    cache_stats,
    caching_enabled,
    clear_caches,
    memoize,
    registered_caches,
)

_PIPELINE_EXPORTS = (
    "built_program",
    "degraded_retune",
    "degraded_retune_model",
    "faulted_pass",
    "pass_compute_floor",
    "pass_lower_bound",
    "simulated_pass",
)

__all__ = [
    "KILL_SWITCH_ENV",
    "CacheStats",
    "cache_stats",
    "caching_enabled",
    "clear_caches",
    "memoize",
    "registered_caches",
    *_PIPELINE_EXPORTS,
]


def __getattr__(name):
    if name in _PIPELINE_EXPORTS:
        from repro.perf import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
