"""The MeshSlice LLM autotuner (Section 3.2)."""

from repro.autotuner.costmodel import (
    CostEstimate,
    best_slice_count,
    best_sliced_slice_count,
    collective_estimate,
    meshslice_estimate,
    sliced_estimate,
    valid_slice_counts_for,
)
from repro.autotuner.dataflow import (
    PASSES,
    STATIONARY_CHOICES,
    LayerPlan,
    PassPlan,
    choose_stationary,
    pass_plans,
    plan_layer,
    plan_model,
)
from repro.autotuner.search import (
    RobustTuningResult,
    TunedPass,
    TuningResult,
    robust_tune,
    robust_tune_model,
    tune,
    tune_mesh,
    tune_model,
)

__all__ = [
    "CostEstimate",
    "LayerPlan",
    "PASSES",
    "PassPlan",
    "RobustTuningResult",
    "STATIONARY_CHOICES",
    "TunedPass",
    "TuningResult",
    "best_slice_count",
    "best_sliced_slice_count",
    "choose_stationary",
    "collective_estimate",
    "meshslice_estimate",
    "pass_plans",
    "plan_layer",
    "plan_model",
    "robust_tune",
    "robust_tune_model",
    "sliced_estimate",
    "tune",
    "tune_mesh",
    "tune_model",
    "valid_slice_counts_for",
]
