"""Autotuner Phase 2: mesh shape and slice count co-optimization.

For every candidate mesh shape of the cluster, the autotuner tunes the
slice count ``S_i`` of each FC-layer training GeMM independently (their
optima do not interact, Section 3.2.2) using the analytical cost
models, then picks the mesh shape with the shortest total FC execution
time. The search space is small — a handful of integer factorizations
times a handful of divisors — so tuning completes in well under a
second.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import GeMMConfig
from repro.autotuner.costmodel import CostEstimate, best_slice_count
from repro.autotuner.dataflow import LayerPlan, PassPlan, plan_model
from repro.hw.params import HardwareParams
from repro.mesh.topology import Mesh2D, mesh_shapes
from repro.models.config import LLMConfig


@dataclasses.dataclass(frozen=True)
class TunedPass:
    """A tuned configuration for one training GeMM of one layer."""

    layer_name: str
    plan: PassPlan
    slices: int
    estimate: CostEstimate

    def config(self, mesh: Mesh2D) -> GeMMConfig:
        return GeMMConfig(
            shape=self.plan.shape,
            mesh=mesh,
            dataflow=self.plan.dataflow,
            slices=self.slices,
            transposed=self.plan.transposed,
        )


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Output of the full autotuner run.

    Attributes:
        mesh: The selected mesh shape.
        passes: Tuned per-layer, per-pass configurations (one block).
        block_seconds: Estimated FC execution time of one block.
        per_mesh_seconds: Estimated block time of every candidate shape
            (for reporting the shape sensitivity of Figure 13).
    """

    mesh: Mesh2D
    passes: Tuple[TunedPass, ...]
    block_seconds: float
    per_mesh_seconds: Dict[Tuple[int, int], float]

    def slices_for(self, layer_name: str, pass_name: str) -> int:
        for tuned in self.passes:
            if (
                tuned.layer_name == layer_name
                and tuned.plan.pass_name == pass_name
            ):
                return tuned.slices
        raise KeyError(f"no tuned pass {layer_name}/{pass_name}")


def tune_mesh(
    plans: Sequence[LayerPlan],
    mesh: Mesh2D,
    hw: HardwareParams,
    max_slices: int = 64,
) -> Tuple[List[TunedPass], float]:
    """Tune every pass's slice count for one fixed mesh shape."""
    tuned: List[TunedPass] = []
    total = 0.0
    for plan in plans:
        for pass_plan in plan.passes:
            cfg = GeMMConfig(
                shape=pass_plan.shape,
                mesh=mesh,
                dataflow=pass_plan.dataflow,
                slices=1,
                transposed=pass_plan.transposed,
            )
            slices, estimate = best_slice_count(cfg, hw, max_slices)
            tuned.append(
                TunedPass(
                    layer_name=plan.layer.name,
                    plan=pass_plan,
                    slices=slices,
                    estimate=estimate,
                )
            )
            total += estimate.total
    return tuned, total


def tune(
    model: LLMConfig,
    batch_size: int,
    chips: int,
    hw: HardwareParams,
    optimize_dataflow: bool = True,
    mesh_candidates: Optional[Sequence[Mesh2D]] = None,
    min_mesh_dim: int = 2,
    max_slices: int = 64,
) -> TuningResult:
    """Run both autotuner phases for an LLM training configuration.

    Args:
        model: The LLM architecture.
        batch_size: Global batch size (sequences).
        chips: Cluster size (number of accelerator chips).
        hw: Hardware parameters.
        optimize_dataflow: Phase-1 on/off (Table 2's comparison).
        mesh_candidates: Candidate torus shapes; defaults to all
            factorizations of ``chips`` with both dims >= ``min_mesh_dim``.
        max_slices: Upper bound of the slice-count search.
    """
    tokens = model.tokens(batch_size)
    plans = plan_model(model, tokens, optimize_dataflow=optimize_dataflow)
    if mesh_candidates is not None:
        candidates = list(mesh_candidates)
    else:
        candidates = mesh_shapes(chips, min_dim=min_mesh_dim)
    if not candidates:
        raise ValueError(f"no candidate mesh shapes for {chips} chips")

    best: Optional[TuningResult] = None
    per_mesh: Dict[Tuple[int, int], float] = {}
    for mesh in candidates:
        tuned, total = tune_mesh(plans, mesh, hw, max_slices)
        per_mesh[mesh.shape] = total
        if best is None or total < best.block_seconds:
            best = TuningResult(
                mesh=mesh,
                passes=tuple(tuned),
                block_seconds=total,
                per_mesh_seconds={},
            )
    return dataclasses.replace(best, per_mesh_seconds=per_mesh)
