"""Autotuner Phase 2: mesh shape and slice count co-optimization.

For every candidate mesh shape of the cluster, the autotuner tunes the
slice count ``S_i`` of each FC-layer training GeMM independently (their
optima do not interact, Section 3.2.2) using the analytical cost
models, then picks the mesh shape with the shortest total FC execution
time. The search space is small — a handful of integer factorizations
times a handful of divisors — so tuning completes in well under a
second.

:func:`robust_tune` adds a fault-aware mode on top: instead of the
nominal analytical block time, the mesh shape is chosen to minimize a
tail quantile (p95 by default) of the *simulated* block time over a
seeded ensemble of :class:`repro.faults.FaultPlan` realizations — the
deployment question "which shape degrades most gracefully when chips
straggle and links degrade", which the nominal tuner cannot see.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import GeMMConfig
from repro.autotuner.costmodel import CostEstimate, best_slice_count
from repro.autotuner.dataflow import LayerPlan, PassPlan, plan_model
from repro.faults import FaultPlan, FaultSpec
from repro.hw.params import HardwareParams
from repro.mesh.topology import Mesh2D, mesh_shapes
from repro.models.config import LLMConfig
from repro.obs.registry import registry as _metrics


@dataclasses.dataclass(frozen=True)
class TunedPass:
    """A tuned configuration for one training GeMM of one layer."""

    layer_name: str
    plan: PassPlan
    slices: int
    estimate: CostEstimate
    abft: bool = False
    sdc_rate: float = 0.0

    def config(self, mesh: Mesh2D) -> GeMMConfig:
        return GeMMConfig(
            shape=self.plan.shape,
            mesh=mesh,
            dataflow=self.plan.dataflow,
            slices=self.slices,
            transposed=self.plan.transposed,
            abft=self.abft,
            sdc_rate=self.sdc_rate,
        )


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Output of the full autotuner run.

    Attributes:
        mesh: The selected mesh shape.
        passes: Tuned per-layer, per-pass configurations (one block).
        block_seconds: Estimated FC execution time of one block.
        per_mesh_seconds: Estimated block time of every candidate shape
            (for reporting the shape sensitivity of Figure 13).
    """

    mesh: Mesh2D
    passes: Tuple[TunedPass, ...]
    block_seconds: float
    per_mesh_seconds: Dict[Tuple[int, int], float]

    def slices_for(self, layer_name: str, pass_name: str) -> int:
        for tuned in self.passes:
            if (
                tuned.layer_name == layer_name
                and tuned.plan.pass_name == pass_name
            ):
                return tuned.slices
        raise KeyError(f"no tuned pass {layer_name}/{pass_name}")


def tune_mesh(
    plans: Sequence[LayerPlan],
    mesh: Mesh2D,
    hw: HardwareParams,
    max_slices: int = 64,
    abft: bool = False,
    sdc_rate: float = 0.0,
) -> Tuple[List[TunedPass], float]:
    """Tune every pass's slice count for one fixed mesh shape.

    With ``abft=True`` the slice-count search optimizes the *protected*
    analytical estimate — checksum encodes, enlarged collective
    payloads, and the verify/expected-recompute epilogue all count.
    """
    tuned: List[TunedPass] = []
    total = 0.0
    for plan in plans:
        for pass_plan in plan.passes:
            cfg = GeMMConfig(
                shape=pass_plan.shape,
                mesh=mesh,
                dataflow=pass_plan.dataflow,
                slices=1,
                transposed=pass_plan.transposed,
                abft=abft,
                sdc_rate=sdc_rate,
            )
            slices, estimate = best_slice_count(cfg, hw, max_slices)
            tuned.append(
                TunedPass(
                    layer_name=plan.layer.name,
                    plan=pass_plan,
                    slices=slices,
                    estimate=estimate,
                    abft=abft,
                    sdc_rate=sdc_rate,
                )
            )
            total += estimate.total
    return tuned, total


def tune_model(
    model: LLMConfig,
    batch_size: int,
    chips: int,
    hw: HardwareParams,
    optimize_dataflow: bool = True,
    mesh_candidates: Optional[Sequence[Mesh2D]] = None,
    min_mesh_dim: int = 2,
    max_slices: int = 64,
    abft: bool = False,
    sdc_rate: float = 0.0,
) -> TuningResult:
    """Run both autotuner phases for an LLM training configuration.

    Args:
        model: The LLM architecture.
        batch_size: Global batch size (sequences).
        chips: Cluster size (number of accelerator chips).
        hw: Hardware parameters.
        optimize_dataflow: Phase-1 on/off (Table 2's comparison).
        mesh_candidates: Candidate torus shapes; defaults to all
            factorizations of ``chips`` with both dims >= ``min_mesh_dim``.
        max_slices: Upper bound of the slice-count search.
        abft: Tune for ABFT-protected GeMMs (checksum overhead counts).
        sdc_rate: Per-protected-op silent-corruption probability used
            by the expected-recompute term of the protected estimate.
    """
    tokens = model.tokens(batch_size)
    plans = plan_model(model, tokens, optimize_dataflow=optimize_dataflow)
    if mesh_candidates is not None:
        candidates = list(mesh_candidates)
    else:
        candidates = mesh_shapes(chips, min_dim=min_mesh_dim)
    if not candidates:
        raise ValueError(f"no candidate mesh shapes for {chips} chips")

    best: Optional[TuningResult] = None
    per_mesh: Dict[Tuple[int, int], float] = {}
    for mesh in candidates:
        tuned, total = tune_mesh(
            plans, mesh, hw, max_slices, abft=abft, sdc_rate=sdc_rate
        )
        per_mesh[mesh.shape] = total
        if best is None or total < best.block_seconds:
            best = TuningResult(
                mesh=mesh,
                passes=tuple(tuned),
                block_seconds=total,
                per_mesh_seconds={},
            )
    reg = _metrics()
    reg.inc("tuner.runs", labels={"model": model.name})
    reg.inc("tuner.meshes_searched", float(len(candidates)))
    return dataclasses.replace(best, per_mesh_seconds=per_mesh)


# --------------------------------------------------------------- robust mode


@dataclasses.dataclass(frozen=True)
class RobustTuningResult:
    """Output of :func:`robust_tune`.

    Attributes:
        mesh: The mesh shape minimizing the robust objective.
        passes: Tuned per-layer, per-pass configurations (slice counts
            are tuned nominally; the mesh choice is what the fault
            ensemble decides).
        quantile: The optimized tail quantile (0.95 = p95).
        robust_seconds: The optimized objective — the ensemble
            ``quantile`` of the simulated FC block time on ``mesh``.
        mean_seconds: Ensemble mean block time on ``mesh``.
        nominal_seconds: Simulated block time on ``mesh`` with no
            faults (the clean baseline the inflation is judged against).
        per_mesh_robust: Robust objective of every candidate shape.
        fault_plans: The sampled ensemble (reproducible from the spec).
    """

    mesh: Mesh2D
    passes: Tuple[TunedPass, ...]
    quantile: float
    robust_seconds: float
    mean_seconds: float
    nominal_seconds: float
    per_mesh_robust: Dict[Tuple[int, int], float]
    fault_plans: Tuple[FaultPlan, ...]

    @property
    def inflation(self) -> float:
        """Robust over nominal block time (>= 1 for any valid plan)."""
        if self.nominal_seconds <= 0:
            return 1.0
        return self.robust_seconds / self.nominal_seconds


def _quantile(values: Sequence[float], q: float) -> float:
    """The empirical ``q``-quantile (nearest-rank, upper)."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def robust_tune_model(
    model: LLMConfig,
    batch_size: int,
    chips: int,
    hw: HardwareParams,
    spec: FaultSpec,
    ensemble: int = 16,
    quantile: float = 0.95,
    algorithm: str = "meshslice",
    optimize_dataflow: bool = True,
    mesh_candidates: Optional[Sequence[Mesh2D]] = None,
    min_mesh_dim: int = 2,
    max_slices: int = 64,
    abft: bool = False,
    sdc_rate: float = 0.0,
) -> RobustTuningResult:
    """Pick the mesh shape minimizing a tail quantile under faults.

    Per candidate shape, slice counts are tuned with the nominal
    analytical models (faults rescale every slice count's cost roughly
    alike, so the per-pass optima barely move), then the full block is
    *simulated* under each plan of a seeded fault ensemble and the
    shape with the smallest ``quantile`` of those block times wins.
    With a null ``spec`` every ensemble member equals the clean
    simulation, so the search degrades to picking the simulated-best
    shape. All fault sampling derives from ``spec.seed``: the same
    call returns the same result, bit for bit.

    Args:
        spec: Cluster-level fault description (see
            :class:`repro.faults.FaultSpec`).
        ensemble: Number of sampled fault plans.
        quantile: Tail quantile to minimize (nearest-rank; 0.95 = p95).
        algorithm: Distributed GeMM algorithm to simulate (the slice
            tuning always uses MeshSlice's shared analytical model, as
            the evaluation's fairness rule does).

    Raises:
        ValueError: if no candidate mesh supports the algorithm.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    from repro.algorithms import get_algorithm
    from repro.perf.pipeline import faulted_pass, simulated_pass

    tokens = model.tokens(batch_size)
    plans = plan_model(model, tokens, optimize_dataflow=optimize_dataflow)
    if mesh_candidates is not None:
        candidates = list(mesh_candidates)
    else:
        candidates = mesh_shapes(chips, min_dim=min_mesh_dim)
    if not candidates:
        raise ValueError(f"no candidate mesh shapes for {chips} chips")
    fault_plans = spec.ensemble(chips, hw, ensemble)
    alg = get_algorithm(algorithm)

    best_mesh: Optional[Mesh2D] = None
    best_tuned: List[TunedPass] = []
    best_robust = 0.0
    best_mean = 0.0
    per_mesh: Dict[Tuple[int, int], float] = {}
    for mesh in candidates:
        tuned, _estimate = tune_mesh(
            plans, mesh, hw, max_slices, abft=abft, sdc_rate=sdc_rate
        )
        configs = [t.config(mesh) for t in tuned]
        if any(alg.check_support(cfg) for cfg in configs):
            continue
        totals = [
            sum(faulted_pass(algorithm, cfg, hw, plan).makespan
                for cfg in configs)
            for plan in fault_plans
        ]
        robust = _quantile(totals, quantile)
        per_mesh[mesh.shape] = robust
        if best_mesh is None or robust < best_robust:
            best_mesh = mesh
            best_tuned = tuned
            best_robust = robust
            best_mean = sum(totals) / len(totals)
    if best_mesh is None:
        raise ValueError(
            f"no candidate mesh supports {algorithm!r} at {chips} chips"
        )
    nominal = sum(
        simulated_pass(algorithm, t.config(best_mesh), hw).makespan
        for t in best_tuned
    )
    reg = _metrics()
    reg.inc("tuner.robust_runs", labels={"model": model.name})
    reg.inc("tuner.meshes_searched", float(len(candidates)))
    reg.inc(
        "tuner.ensemble_simulations",
        float(len(fault_plans) * len(per_mesh)),
    )
    return RobustTuningResult(
        mesh=best_mesh,
        passes=tuple(best_tuned),
        quantile=quantile,
        robust_seconds=best_robust,
        mean_seconds=best_mean,
        nominal_seconds=nominal,
        per_mesh_robust=per_mesh,
        fault_plans=fault_plans,
    )


# ------------------------------------------------------- deprecated shims


def _legacy_warning(name: str) -> None:
    import warnings

    warnings.warn(
        f"{name}(model, batch, ...) with positional arguments is "
        f"deprecated since 1.6.0; build a repro.service.TuneRequest "
        f"and call request.run() (or serve it through "
        f"repro.service.TunerService)",
        DeprecationWarning,
        stacklevel=3,
    )


def tune(request, *args, **kwargs) -> TuningResult:
    """Tune a nominal configuration (unified-request entry point).

    Pass a single :class:`repro.service.TuneRequest` (any mode-"tune"
    request). The legacy positional form ``tune(model, batch, chips,
    hw, ...)`` still works as a deprecated shim over
    :func:`tune_model`.
    """
    from repro.service.request import TuneRequest, execute

    if isinstance(request, TuneRequest):
        if args or kwargs:
            raise TypeError(
                "tune(TuneRequest) takes no further arguments"
            )
        return execute(request)
    _legacy_warning("tune")
    return tune_model(request, *args, **kwargs)


def robust_tune(request, *args, **kwargs) -> RobustTuningResult:
    """Fault-aware tuning (unified-request entry point).

    Pass a single mode-"robust" :class:`repro.service.TuneRequest`.
    The legacy positional form ``robust_tune(model, batch, chips, hw,
    spec, ...)`` still works as a deprecated shim over
    :func:`robust_tune_model`.
    """
    from repro.service.request import TuneRequest, execute

    if isinstance(request, TuneRequest):
        if args or kwargs:
            raise TypeError(
                "robust_tune(TuneRequest) takes no further arguments"
            )
        return execute(request)
    _legacy_warning("robust_tune")
    return robust_tune_model(request, *args, **kwargs)
