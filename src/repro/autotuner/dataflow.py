"""Autotuner Phase 1: dataflow and sharding selection (Section 3.2.1).

For each FC layer ``Y = X W`` the autotuner keeps the *largest* of the
three matrices stationary across all three training GeMMs, which picks
one row of the paper's Table 1:

=========  ==================  =====================  =====================
Dataflow   Forward             Backward data          Backward weight
=========  ==================  =====================  =====================
Y-stn      ``Y = OS(X, W)``    ``X' = LS(Y', W)``     ``W' = RS(X, Y')``
X-stn      ``Y = LS(X, Wᵀ)``   ``X' = OS(Y', Wᵀ)``    ``W'ᵀ = RS(Y', X)``
W-stn      ``Y = RS(Xᵀ, W)``   ``X'ᵀ = LS(W, Y')``    ``W' = OS(Xᵀ, Y')``
=========  ==================  =====================  =====================

Each row guarantees that (1) the largest matrix never moves, (2) a
matrix and its gradient flow in the same direction in all three
computations, and (3) no runtime transpositions are needed. The
shardings follow mechanically: matrix rows are sharded over mesh rows
and matrix columns over mesh columns.

A per-layer *transposed* variant (all matrices transposed, flow
directions flipped) exists for every row; :func:`plan_model` applies
the paper's heuristic — use the non-transposed variant unless the
layer's input would need a transposition — by tracking the orientation
of the activations flowing between layers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.dataflow import Dataflow
from repro.core.gemm import GeMMShape
from repro.models.config import LLMConfig
from repro.models.layers import FCLayer, fc_layers
from repro.perf.cache import memoize

#: Stationary-matrix choices (rows of Table 1).
STATIONARY_CHOICES = ("Y", "X", "W")

#: The three training computations of one FC layer.
PASSES = ("fwd", "bwd_data", "bwd_weight")


@dataclasses.dataclass(frozen=True)
class PassPlan:
    """The execution plan of one training GeMM of one FC layer.

    Attributes:
        pass_name: ``"fwd"``, ``"bwd_data"``, or ``"bwd_weight"``.
        shape: The logical GeMM actually computed (already oriented so
            that no runtime transposition is needed).
        dataflow: The 2D dataflow that keeps the chosen matrix
            stationary for this pass.
        transposed: Whether this is the transposed dataflow variant.
    """

    pass_name: str
    shape: GeMMShape
    dataflow: Dataflow
    transposed: bool = False


@dataclasses.dataclass(frozen=True)
class LayerPlan:
    """Phase-1 output for one FC layer."""

    layer: FCLayer
    stationary: str
    passes: Tuple[PassPlan, ...]

    def pass_plan(self, pass_name: str) -> PassPlan:
        for plan in self.passes:
            if plan.pass_name == pass_name:
                return plan
        raise KeyError(f"no pass {pass_name!r} in plan for {self.layer.name}")


def choose_stationary(tokens: int, in_dim: int, out_dim: int) -> str:
    """Pick the stationary matrix: the largest of X, W, Y.

    Ties break toward ``Y`` (the transpose-free default), then ``X``.
    """
    sizes = {
        "Y": tokens * out_dim,
        "X": tokens * in_dim,
        "W": in_dim * out_dim,
    }
    return max(STATIONARY_CHOICES[::-1], key=lambda s: (sizes[s], s == "Y", s == "X"))


def pass_plans(
    stationary: str,
    tokens: int,
    in_dim: int,
    out_dim: int,
    dtype_bytes: int = 2,
    transposed: bool = False,
) -> Tuple[PassPlan, ...]:
    """The Table 1 row for one stationary choice.

    Shapes are given in the orientation actually computed, e.g. the
    X-stationary backward-weight computes ``W'ᵀ = Y'ᵀ X`` as an
    ``(N, K, M)`` product.
    """
    if stationary not in STATIONARY_CHOICES:
        raise ValueError(f"unknown stationary choice {stationary!r}")
    m, n, k = tokens, out_dim, in_dim
    table: Dict[str, List[Tuple[str, Dataflow, Tuple[int, int, int]]]] = {
        "Y": [
            ("fwd", Dataflow.OS, (m, n, k)),
            ("bwd_data", Dataflow.LS, (m, k, n)),
            ("bwd_weight", Dataflow.RS, (k, n, m)),
        ],
        "X": [
            ("fwd", Dataflow.LS, (m, n, k)),
            ("bwd_data", Dataflow.OS, (m, k, n)),
            ("bwd_weight", Dataflow.RS, (n, k, m)),
        ],
        "W": [
            ("fwd", Dataflow.RS, (m, n, k)),
            ("bwd_data", Dataflow.LS, (k, m, n)),
            ("bwd_weight", Dataflow.OS, (k, n, m)),
        ],
    }
    plans = []
    for pass_name, dataflow, dims in table[stationary]:
        shape = GeMMShape(*dims, dtype_bytes=dtype_bytes)
        if transposed:
            shape = shape.transposed()
        plans.append(
            PassPlan(
                pass_name=pass_name,
                shape=shape,
                dataflow=dataflow,
                transposed=transposed,
            )
        )
    return tuple(plans)


def _variant_orientation(stationary: str, transposed: bool) -> Tuple[str, str]:
    """(consumed, produced) activation orientation of a variant.

    The non-transposed Y-stn and X-stn rows consume and produce
    activations in normal orientation; the non-transposed W-stn row
    consumes a transposed input (``Y = RS(Xᵀ, W)``) but produces a
    normal output. Transposing a variant flips both.
    """
    consumed, produced = ("T", "N") if stationary == "W" else ("N", "N")
    if transposed:
        flip = {"N": "T", "T": "N"}
        consumed, produced = flip[consumed], flip[produced]
    return consumed, produced


def plan_layer(
    layer: FCLayer,
    tokens: int,
    stationary: Optional[str] = None,
    dtype_bytes: int = 2,
    input_orientation: str = "N",
) -> Tuple[LayerPlan, str]:
    """Plan one layer; returns the plan and the output orientation.

    Applies the transposition heuristic: defaults to the non-transposed
    variant, switching to the transposed variant only when the layer's
    input arrives in the orientation the non-transposed variant cannot
    consume.
    """
    if stationary is None:
        stationary = choose_stationary(tokens, layer.in_dim, layer.out_dim)
    consumed, produced = _variant_orientation(stationary, transposed=False)
    transposed = consumed != input_orientation
    if transposed:
        consumed, produced = _variant_orientation(stationary, transposed=True)
    plan = LayerPlan(
        layer=layer,
        stationary=stationary,
        passes=pass_plans(
            stationary,
            tokens,
            layer.in_dim,
            layer.out_dim,
            dtype_bytes=dtype_bytes,
            transposed=transposed,
        ),
    )
    return plan, produced


@memoize("plan_model")
def _plan_model(
    model: LLMConfig,
    tokens: int,
    optimize_dataflow: bool,
    dtype_bytes: int,
) -> Tuple[LayerPlan, ...]:
    plans = []
    orientation = "N"
    for layer in fc_layers(model):
        stationary = None if optimize_dataflow else "Y"
        plan, orientation = plan_layer(
            layer,
            tokens,
            stationary=stationary,
            dtype_bytes=dtype_bytes,
            input_orientation=orientation,
        )
        plans.append(plan)
    return tuple(plans)


def plan_model(
    model: LLMConfig,
    tokens: int,
    optimize_dataflow: bool = True,
    dtype_bytes: int = 2,
) -> List[LayerPlan]:
    """Phase-1 plans for the four FC layers of one transformer block.

    With ``optimize_dataflow=False`` every layer uses the Y-stationary
    default (the transpose-free baseline of Table 2). Plans are
    memoized on ``(model, tokens, optimize_dataflow, dtype_bytes)`` —
    the figure runners re-plan the same ``(model, batch)`` point once
    per algorithm — with a fresh list returned per call so callers may
    slice and extend it freely.
    """
    return list(_plan_model(model, tokens, optimize_dataflow, dtype_bytes))
