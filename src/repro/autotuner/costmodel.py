"""Autotuner Phase 2 cost models (Section 3.2.2).

Closed-form estimates of MeshSlice execution time, built from the
linear communication model

    ``cost_op = t_launch + (P - 1) * (t_sync + sizeof(shard) / bw)``

and the analytical compute model (local FLOPs over effective
throughput). The per-layer execution time follows the paper's
three-part decomposition::

    total = prologue + (S - 1) * steady_state + epilogue

where the prologue is the first iteration's communication that software
pipelining cannot hide (the longest of the leading AllGathers), the
steady state is the longest of the per-iteration operations (the
partial GeMM on the core, or either direction's collective on its
link), and the epilogue is the last iteration's trailing work (the
partial GeMM, plus the final ReduceScatter for LS/RS dataflows).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Tuple

from repro.algorithms.base import (
    GeMMConfig,
    abft_payload_factor,
    abft_protected_ops,
    collective_local_dims,
    effective_problem,
    flow_ops,
    matrix_bytes,
    sliced_local_dims,
)
from repro.comm.cost import CommCostModel
from repro.comm.onesided import OneSidedCostModel
from repro.core.dataflow import sliced_extent
from repro.hw.params import HardwareParams
from repro.mesh.topology import divisors
from repro.perf.cache import memoize
from repro.sim.chip import checksum_cost, gemm_cost, slice_cost


def _abft_overheads(
    cfg: GeMMConfig, hw: HardwareParams
) -> Tuple[float, float]:
    """ABFT (prologue, epilogue) seconds of one protected GeMM.

    Mirrors the program builders: both operands are checksum-encoded
    up front (prologue), and the output is verified — plus recomputed
    with the expected-value probability of at least one silent flip —
    after the last iteration (epilogue). Zero for unprotected configs.
    """
    if not cfg.abft:
        return 0.0, 0.0
    chips = cfg.mesh.size
    encode = 0.0
    for mat in ("a", "b"):
        elements = matrix_bytes(cfg.shape, mat) / (chips * cfg.shape.dtype_bytes)
        encode += checksum_cost(elements, hw).seconds
    out_elements = float(cfg.shape.m) * cfg.shape.n / chips
    epilogue = checksum_cost(2.0 * out_elements, hw).seconds
    probability = min(1.0, cfg.sdc_rate * abft_protected_ops(cfg))
    m, n, k = collective_local_dims(cfg)
    epilogue += probability * gemm_cost(m, n, k, hw).seconds
    return encode, epilogue


@dataclasses.dataclass(frozen=True)
class CostEstimate:
    """Analytical execution-time estimate of one distributed GeMM."""

    prologue: float
    steady: float
    epilogue: float
    slices: int
    flops_per_chip: float

    @property
    def total(self) -> float:
        return self.prologue + max(self.slices - 1, 0) * self.steady + self.epilogue

    def flop_utilization(self, hw: HardwareParams) -> float:
        if self.total <= 0:
            return 0.0
        return self.flops_per_chip / (self.total * hw.peak_flops)


@memoize("meshslice_estimate")
def _meshslice_estimate(cfg: GeMMConfig, hw: HardwareParams) -> CostEstimate:
    costs = CommCostModel.for_hw(hw)
    chips = cfg.mesh.size
    slices = cfg.slices
    (col_op, col_mat), (row_op, row_mat) = flow_ops(cfg.dataflow, cfg.transposed)
    directions = [
        (col_op, col_mat, cfg.mesh.cols),
        (row_op, row_mat, cfg.mesh.rows),
    ]

    ag_costs = []
    rds_costs = []
    core_extra = 0.0
    comm_hbm_bytes = 0.0
    comm_transfer = 0.0
    for op, mat, ring in directions:
        shard_bytes = (
            matrix_bytes(cfg.shape, mat)
            * abft_payload_factor(cfg, mat)
            / (chips * slices)
        )
        if slices > 1:
            core_extra += slice_cost(shard_bytes, hw).seconds
        if ring <= 1:
            continue
        if op == "ag":
            cost = costs.allgather(ring, shard_bytes)
            ag_costs.append(cost)
        else:
            cost = costs.reducescatter(ring, shard_bytes)
            rds_costs.append(cost)
        comm_hbm_bytes += cost.hbm_bytes
        comm_transfer += cost.transfer

    def contended_total(cost) -> float:
        """Op duration with the logical-mesh NIC bound (Section 6).

        While the directions' transfers overlap they share the NIC, so
        an op's transfer cannot beat the work-conserving time of the
        *combined* wire traffic; synchronization and launch remain
        per-op serial terms.
        """
        if not hw.has_shared_nic:
            return cost.total
        contended = max(
            cost.transfer,
            comm_transfer * hw.ring_bandwidth / hw.nic_bandwidth,
        )
        return cost.launch + cost.sync + contended

    ag_times = [contended_total(c) for c in ag_costs]
    rds_times = [contended_total(c) for c in rds_costs]

    m, n, k = sliced_local_dims(cfg, slices)
    gemm = gemm_cost(m, n, k, hw)
    core_iter = gemm.seconds + core_extra
    abft_prologue, abft_epilogue = _abft_overheads(cfg, hw)

    if hw.overlap_collectives:
        prologue = max(ag_times, default=0.0)
        # HBM roofline of one overlapped iteration: the NIC's collective
        # traffic and the GeMM's tile traffic share the HBM, so a
        # steady-state iteration can take no less time than moving all
        # of those bytes. Dominates for memory-bound (inference-decode)
        # GeMMs, where slicing therefore stops paying off (Section 6).
        hbm_iter = (gemm.hbm_bytes + comm_hbm_bytes) / hw.hbm_bandwidth
        steady = max([core_iter, hbm_iter] + ag_times + rds_times)
        epilogue = core_iter + sum(rds_times)
    else:
        # Without overlap every iteration serializes its operations.
        iteration = sum(ag_times) + core_iter + sum(rds_times)
        prologue = 0.0
        steady = iteration
        epilogue = iteration
    return CostEstimate(
        prologue=prologue + abft_prologue,
        steady=steady,
        epilogue=epilogue + abft_epilogue,
        slices=slices,
        flops_per_chip=cfg.shape.flops / chips,
    )


def meshslice_estimate(cfg: GeMMConfig, hw: HardwareParams) -> CostEstimate:
    """Estimate the MeshSlice program of ``cfg`` without simulating it.

    Memoized on ``(cfg, hw)``: the slice-count search and the mesh-shape
    search both re-request identical estimates many times per sweep.
    """
    return _meshslice_estimate(cfg, hw)


@memoize("sliced_estimate")
def _sliced_estimate(cfg: GeMMConfig, hw: HardwareParams) -> CostEstimate:
    if cfg.abft:
        raise ValueError(
            "one-sided sliced GeMM does not support ABFT configurations"
        )
    costs = OneSidedCostModel.for_hw(hw)
    chips = cfg.mesh.size
    slices = cfg.slices
    (col_op, col_mat), (row_op, row_mat) = flow_ops(cfg.dataflow, cfg.transposed)
    directions = [
        (col_op, col_mat, cfg.mesh.cols),
        (row_op, row_mat, cfg.mesh.rows),
    ]

    ag_costs = []
    rds_costs = []
    comm_hbm_bytes = 0.0
    comm_transfer = 0.0
    for op, mat, ring in directions:
        if ring <= 1:
            continue
        sub_bytes = matrix_bytes(cfg.shape, mat) / (chips * slices)
        if op == "ag":
            cost = costs.epoch(ring, sub_bytes) + costs.fence(ring)
            ag_costs.append(cost)
        else:
            cost = costs.accumulate_epoch(ring, sub_bytes) + costs.fence(ring)
            rds_costs.append(cost)
        comm_hbm_bytes += cost.hbm_bytes
        comm_transfer += cost.transfer

    def contended_total(cost) -> float:
        """Epoch duration with the logical-mesh NIC bound (Section 6)."""
        if not hw.has_shared_nic:
            return cost.total
        contended = max(
            cost.transfer,
            comm_transfer * hw.ring_bandwidth / hw.nic_bandwidth,
        )
        return cost.launch + cost.sync + contended

    ag_times = [contended_total(c) for c in ag_costs]
    rds_times = [contended_total(c) for c in rds_costs]

    # Window addressing replaces MeshSlice's local slicing copies, so
    # there is no per-slice core extra — the iteration's core time is
    # the partial GeMM alone.
    m, n, k = sliced_local_dims(cfg, slices)
    gemm = gemm_cost(m, n, k, hw)
    core_iter = gemm.seconds

    if hw.overlap_collectives:
        prologue = max(ag_times, default=0.0)
        hbm_iter = (gemm.hbm_bytes + comm_hbm_bytes) / hw.hbm_bandwidth
        steady = max([core_iter, hbm_iter] + ag_times + rds_times)
        epilogue = core_iter + sum(rds_times)
    else:
        iteration = sum(ag_times) + core_iter + sum(rds_times)
        prologue = 0.0
        steady = iteration
        epilogue = iteration
    return CostEstimate(
        prologue=prologue,
        steady=steady,
        epilogue=epilogue,
        slices=slices,
        flops_per_chip=cfg.shape.flops / chips,
    )


def sliced_estimate(cfg: GeMMConfig, hw: HardwareParams) -> CostEstimate:
    """Estimate the one-sided sliced program of ``cfg`` analytically.

    The one-sided analogue of :func:`meshslice_estimate`, mirroring
    ``SlicedGeMM.build_program``: each flowing input's per-slice
    AllGather becomes a get epoch plus an epoch-closing fence, each
    ReduceScatter an accumulate epoch plus fence, and the local slicing
    copies disappear (the get window *is* the slice). The sync
    economics therefore differ structurally from the ring collectives —
    ``ceil(log2 P)`` fence rounds per slice instead of ``P - 1`` ring
    steps — which is why the one-sided slice-count optimum diverges
    from MeshSlice's in latency-bound regimes. Memoized on
    ``(cfg, hw)`` like the MeshSlice estimate.
    """
    return _sliced_estimate(cfg, hw)


@memoize("best_sliced_slice_count")
def _best_sliced_slice_count(
    cfg: GeMMConfig, hw: HardwareParams, max_slices: int
) -> Tuple[int, CostEstimate]:
    best: Tuple[int, CostEstimate] = (1, None)
    for s in valid_slice_counts_for(cfg, max_slices):
        candidate = dataclasses.replace(cfg, slices=s)
        estimate = sliced_estimate(candidate, hw)
        if best[1] is None or estimate.total < best[1].total:
            best = (s, estimate)
    return best


def best_sliced_slice_count(
    cfg: GeMMConfig, hw: HardwareParams, max_slices: int = 64
) -> Tuple[int, CostEstimate]:
    """Pick the S minimizing the *one-sided* analytical estimate.

    The ``sliced`` algorithm's own granularity tuner: fences amortize
    differently from ring synchronization, so borrowing MeshSlice's S
    (the pre-elastic behaviour) systematically under-slices one-sided
    programs on latency-bound hardware. Memoized like
    :func:`best_slice_count`.
    """
    return _best_sliced_slice_count(cfg, hw, max_slices)


def collective_estimate(cfg: GeMMConfig, hw: HardwareParams) -> CostEstimate:
    """Estimate the Collective 2D GeMM (the S = 1 degenerate case)."""
    base = dataclasses.replace(cfg, slices=1)
    costs = CommCostModel.for_hw(hw)
    chips = cfg.mesh.size
    (col_op, col_mat), (row_op, row_mat) = flow_ops(cfg.dataflow, cfg.transposed)
    ag_times, rds_times = [], []
    for op, mat, ring in (
        (col_op, col_mat, cfg.mesh.cols),
        (row_op, row_mat, cfg.mesh.rows),
    ):
        if ring <= 1:
            continue
        shard_bytes = (
            matrix_bytes(cfg.shape, mat)
            * abft_payload_factor(cfg, mat)
            / chips
        )
        if op == "ag":
            ag_times.append(costs.allgather(ring, shard_bytes).total)
        else:
            rds_times.append(costs.reducescatter(ring, shard_bytes).total)
    m, n, k = collective_local_dims(base)
    gemm = gemm_cost(m, n, k, hw)
    abft_prologue, abft_epilogue = _abft_overheads(base, hw)
    return CostEstimate(
        prologue=max(ag_times, default=0.0) + abft_prologue,
        steady=0.0,
        epilogue=gemm.seconds + max(rds_times, default=0.0) + abft_epilogue,
        slices=1,
        flops_per_chip=cfg.shape.flops / chips,
    )


def valid_slice_counts_for(
    cfg: GeMMConfig, max_slices: int = 64
) -> List[int]:
    """Slice counts compatible with ``cfg``'s mesh and sliced dimension.

    ``S`` must divide the sliced dimension's local extent on both the
    row and the column partitioning (Section 3.1.2); the search is
    capped at ``max_slices`` since larger counts only add overhead.
    """
    shape, dataflow = effective_problem(cfg)
    extent = sliced_extent(shape, dataflow)
    if extent % cfg.mesh.rows != 0 or extent % cfg.mesh.cols != 0:
        return [1]
    g = math.gcd(extent // cfg.mesh.rows, extent // cfg.mesh.cols)
    return [s for s in divisors(g) if s <= max_slices] or [1]


@memoize("best_slice_count")
def _best_slice_count(
    cfg: GeMMConfig, hw: HardwareParams, max_slices: int
) -> Tuple[int, CostEstimate]:
    best: Tuple[int, CostEstimate] = (1, None)
    for s in valid_slice_counts_for(cfg, max_slices):
        # dataclasses.replace keeps every other knob (abft, sdc_rate,
        # ...) so protection overhead shapes the slice-count optimum.
        candidate = dataclasses.replace(cfg, slices=s)
        estimate = meshslice_estimate(candidate, hw)
        if best[1] is None or estimate.total < best[1].total:
            best = (s, estimate)
    return best


def best_slice_count(
    cfg: GeMMConfig, hw: HardwareParams, max_slices: int = 64
) -> Tuple[int, CostEstimate]:
    """Exhaustively pick the S minimizing the analytical estimate.

    Memoized on ``(cfg, hw, max_slices)``: every algorithm that shares
    MeshSlice's autotuned S re-tunes the same base configuration once
    per mesh candidate.
    """
    return _best_slice_count(cfg, hw, max_slices)
