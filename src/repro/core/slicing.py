"""MeshSlice's blocked shard slicing (Section 3.1.2, Algorithm 2).

``slice_col(X, S, s)`` extracts the ``s``-th of ``S`` interleaved
sub-shards of ``X`` along its column dimension: every ``S``-th block of
``B`` contiguous columns, where ``B`` is an architecture-dependent block
size chosen for contiguous memory access (TPUs access memory in 128x8
chunks, so the paper uses B = 8). ``slice_row`` is the symmetric
operation on rows.

The interleaved (strided) selection — rather than contiguous chunking —
is what makes the partial AllGathers of different chips' sub-shards
line up into matching global index sets (the proof in Section 3.1.2):
for every chip the local selection is "columns whose index mod S*B
falls in block s", so the gathered sequences select the same global
indices on the A side and the B side.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.mesh.topology import divisors


def valid_slice_counts(local_extent: int, block: int) -> List[int]:
    """Slice counts ``S`` usable for a shard dimension of ``local_extent``.

    The user can choose any ``S`` from the divisors of ``C / B``
    (Algorithm 2), where ``C`` is the local shard extent and ``B`` the
    block size.

    Raises:
        ValueError: if ``block`` does not divide ``local_extent``.
    """
    if local_extent % block != 0:
        raise ValueError(
            f"block size {block} does not divide shard extent {local_extent}"
        )
    return divisors(local_extent // block)


def _check_sliceable(extent: int, slices: int, s: int, block: int) -> None:
    if slices < 1:
        raise ValueError(f"slice count must be >= 1, got {slices}")
    if not 0 <= s < slices:
        raise ValueError(f"slice index {s} out of range for S={slices}")
    if block < 1:
        raise ValueError(f"block size must be >= 1, got {block}")
    if extent % (slices * block) != 0:
        raise ValueError(
            f"extent {extent} is not divisible by S*B = {slices}*{block}; "
            f"choose S from valid_slice_counts()"
        )


def slice_col(x: np.ndarray, slices: int, s: int, block: int = 8) -> np.ndarray:
    """Extract the ``s``-th column sub-shard of ``x`` (Algorithm 2).

    Args:
        x: Local shard of shape ``(R, C)``.
        slices: Total slice count ``S``.
        s: Sub-shard index in ``[0, S)``.
        block: Contiguity block size ``B``.

    Returns:
        Array of shape ``(R, C / S)`` holding every ``S``-th block of
        ``B`` columns, starting at block ``s``.
    """
    if x.ndim != 2:
        raise ValueError(f"expected 2D shard, got shape {x.shape}")
    rows, cols = x.shape
    _check_sliceable(cols, slices, s, block)
    grouped = x.reshape(rows, cols // (slices * block), slices, block)
    return np.ascontiguousarray(grouped[:, :, s, :].reshape(rows, cols // slices))


def slice_row(x: np.ndarray, slices: int, s: int, block: int = 8) -> np.ndarray:
    """Extract the ``s``-th row sub-shard of ``x``.

    Symmetric to :func:`slice_col`: every ``S``-th block of ``B`` rows.
    """
    if x.ndim != 2:
        raise ValueError(f"expected 2D shard, got shape {x.shape}")
    rows, cols = x.shape
    _check_sliceable(rows, slices, s, block)
    grouped = x.reshape(rows // (slices * block), slices, block, cols)
    return np.ascontiguousarray(grouped[:, s, :, :].reshape(rows // slices, cols))


def set_slice_col(
    x: np.ndarray, slices: int, s: int, value: np.ndarray, block: int = 8
) -> None:
    """Write ``value`` into the positions of column sub-shard ``s`` of ``x``.

    The in-place inverse of :func:`slice_col`, used by the LS/RS
    dataflows to store each iteration's ReduceScatter result back into
    the stationary output shard.
    """
    rows, cols = x.shape
    _check_sliceable(cols, slices, s, block)
    expected = (rows, cols // slices)
    if value.shape != expected:
        raise ValueError(f"value shape {value.shape} != sub-shard shape {expected}")
    view = x.reshape(rows, cols // (slices * block), slices, block)
    view[:, :, s, :] = value.reshape(rows, cols // (slices * block), block)


def set_slice_row(
    x: np.ndarray, slices: int, s: int, value: np.ndarray, block: int = 8
) -> None:
    """Write ``value`` into the positions of row sub-shard ``s`` of ``x``."""
    rows, cols = x.shape
    _check_sliceable(rows, slices, s, block)
    expected = (rows // slices, cols)
    if value.shape != expected:
        raise ValueError(f"value shape {value.shape} != sub-shard shape {expected}")
    view = x.reshape(rows // (slices * block), slices, block, cols)
    view[:, s, :, :] = value.reshape(rows // (slices * block), block, cols)


def unslice_col(
    sub_shards: List[np.ndarray], block: int = 8
) -> np.ndarray:
    """Reassemble a shard from all of its ``S`` column sub-shards.

    Inverse of applying :func:`slice_col` for every ``s``; useful for
    round-trip testing and for assembling gathered results.
    """
    slices = len(sub_shards)
    if slices == 0:
        raise ValueError("need at least one sub-shard")
    rows, sub_cols = sub_shards[0].shape
    out = np.empty((rows, sub_cols * slices), dtype=sub_shards[0].dtype)
    for s, sub in enumerate(sub_shards):
        if sub.shape != (rows, sub_cols):
            raise ValueError("sub-shards must all have the same shape")
        set_slice_col(out, slices, s, sub, block=block)
    return out


def unslice_row(
    sub_shards: List[np.ndarray], block: int = 8
) -> np.ndarray:
    """Reassemble a shard from all of its ``S`` row sub-shards."""
    slices = len(sub_shards)
    if slices == 0:
        raise ValueError("need at least one sub-shard")
    sub_rows, cols = sub_shards[0].shape
    out = np.empty((sub_rows * slices, cols), dtype=sub_shards[0].dtype)
    for s, sub in enumerate(sub_shards):
        if sub.shape != (sub_rows, cols):
            raise ValueError("sub-shards must all have the same shape")
        set_slice_row(out, slices, s, sub, block=block)
    return out
