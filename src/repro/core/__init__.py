"""The MeshSlice algorithm: slicing, dataflows, and functional GeMM."""

from repro.core.dataflow import (
    Dataflow,
    flowing_bytes,
    operand_shapes,
    sliced_dimension,
    sliced_extent,
)
from repro.core.gemm import GeMMShape, local_gemm
from repro.core.meshslice import (
    meshslice_gemm,
    meshslice_ls,
    meshslice_os,
    meshslice_rs,
)
from repro.core.slicing import (
    set_slice_col,
    set_slice_row,
    slice_col,
    slice_row,
    unslice_col,
    unslice_row,
    valid_slice_counts,
)

__all__ = [
    "Dataflow",
    "GeMMShape",
    "flowing_bytes",
    "local_gemm",
    "meshslice_gemm",
    "meshslice_ls",
    "meshslice_os",
    "meshslice_rs",
    "operand_shapes",
    "set_slice_col",
    "set_slice_row",
    "slice_col",
    "slice_row",
    "sliced_dimension",
    "sliced_extent",
    "unslice_col",
    "unslice_row",
    "valid_slice_counts",
]
