"""2D GeMM dataflows (Section 2.3.1, Figure 1).

A 2D GeMM keeps one of the three matrices stationary in its chips and
moves the other two, one per torus direction:

* **OS** (output-stationary): computes ``C = A B``. ``A`` flows
  inter-column (within row rings, gathered by ``AG_col``), ``B`` flows
  inter-row (within column rings, ``AG_row``).
* **LS** (left-stationary): computes ``C = A Bᵀ``. ``B`` flows
  inter-row (``AG_row``) and the partial outputs flow inter-column
  (``RdS_col``).
* **RS** (right-stationary): computes ``C = Aᵀ B``. ``A`` flows
  inter-column (``AG_col``) and partial outputs flow inter-row
  (``RdS_row``).

The logical problem is always ``C[M,N] = L[M,K] R[K,N]``; LS physically
stores the right operand transposed (``N x K``) and RS stores the left
operand transposed (``K x M``), which is exactly how the autotuner's
Table 1 avoids runtime transpositions.
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.core.gemm import GeMMShape


class Dataflow(enum.Enum):
    """The three 2D GeMM dataflows."""

    OS = "output-stationary"
    LS = "left-stationary"
    RS = "right-stationary"

    def __str__(self) -> str:
        return self.name


def operand_shapes(
    shape: GeMMShape, dataflow: Dataflow
) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]:
    """Physical (rows, cols) of the stored A, B, and C operands.

    For the logical product ``C[M,N] = L[M,K] R[K,N]``:

    * OS stores ``A = L`` as ``M x K`` and ``B = R`` as ``K x N``.
    * LS stores ``A = L`` as ``M x K`` and ``B = Rᵀ`` as ``N x K``.
    * RS stores ``A = Lᵀ`` as ``K x M`` and ``B = R`` as ``K x N``.
    """
    m, n, k = shape.m, shape.n, shape.k
    if dataflow is Dataflow.OS:
        return (m, k), (k, n), (m, n)
    if dataflow is Dataflow.LS:
        return (m, k), (n, k), (m, n)
    if dataflow is Dataflow.RS:
        return (k, m), (k, n), (m, n)
    raise ValueError(f"unknown dataflow {dataflow!r}")


def flowing_bytes(shape: GeMMShape, dataflow: Dataflow) -> Tuple[float, float]:
    """Sizes of the matrices that flow (inter-column, inter-row), in bytes.

    The inter-column matrix is communicated within row rings (``col``
    subscript in the paper) and the inter-row matrix within column
    rings. These sizes drive the traffic-cost mesh-shape optimization
    of Section 2.3.1.
    """
    if dataflow is Dataflow.OS:
        return shape.a_bytes, shape.b_bytes
    if dataflow is Dataflow.LS:
        return shape.c_bytes, shape.b_bytes
    if dataflow is Dataflow.RS:
        return shape.a_bytes, shape.c_bytes
    raise ValueError(f"unknown dataflow {dataflow!r}")


def sliced_dimension(dataflow: Dataflow) -> str:
    """Which logical GeMM dimension MeshSlice slices for this dataflow.

    OS slices the contraction dimension ``K``; LS slices ``N`` (the
    gathered ``B`` rows and scattered ``C`` columns); RS slices ``M``.
    """
    if dataflow is Dataflow.OS:
        return "k"
    if dataflow is Dataflow.LS:
        return "n"
    if dataflow is Dataflow.RS:
        return "m"
    raise ValueError(f"unknown dataflow {dataflow!r}")


def sliced_extent(shape: GeMMShape, dataflow: Dataflow) -> int:
    """Extent of the dimension MeshSlice slices for this dataflow."""
    return getattr(shape, sliced_dimension(dataflow))
