"""GeMM problem descriptions shared by all algorithm implementations."""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.faults import sdc as _sdc


def local_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One chip's local partial-block matmul.

    Every functional algorithm routes its per-chip products through this
    helper so that :func:`repro.faults.sdc.sdc_injection` can model an
    MXU datapath upset corrupting the accumulate. Outside an injection
    context this is exactly ``a @ b``.
    """
    return _sdc.corrupt_block("gemm", a @ b)


@dataclasses.dataclass(frozen=True)
class GeMMShape:
    """The shape of one distributed GeMM problem ``C[M,N] = A[M,K] B[K,N]``.

    ``M``, ``N``, and ``K`` always refer to the *logical* product
    ``C = A B`` regardless of the dataflow used to compute it (LS and RS
    dataflows physically store a transposed operand, but the problem
    they solve is still an ``M x N x K`` product).

    Attributes:
        m: Rows of the output.
        n: Columns of the output.
        k: Contraction dimension.
        dtype_bytes: Bytes per element.
    """

    m: int
    n: int
    k: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise ValueError(f"GeMM dimensions must be positive, got {self}")
        if self.dtype_bytes < 1:
            raise ValueError("dtype_bytes must be positive")

    @property
    def flops(self) -> float:
        """Total floating-point operations (multiply-accumulate counted as 2)."""
        return 2.0 * self.m * self.n * self.k

    @property
    def a_bytes(self) -> float:
        """Size of the left input ``A`` (M x K)."""
        return float(self.m * self.k * self.dtype_bytes)

    @property
    def b_bytes(self) -> float:
        """Size of the right input ``B`` (K x N)."""
        return float(self.k * self.n * self.dtype_bytes)

    @property
    def c_bytes(self) -> float:
        """Size of the output ``C`` (M x N)."""
        return float(self.m * self.n * self.dtype_bytes)

    @property
    def total_bytes(self) -> float:
        return self.a_bytes + self.b_bytes + self.c_bytes

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.m, self.n, self.k)

    def transposed(self) -> "GeMMShape":
        """The shape of the transposed problem ``Cᵀ = Bᵀ Aᵀ``."""
        return GeMMShape(m=self.n, n=self.m, k=self.k, dtype_bytes=self.dtype_bytes)

    def __str__(self) -> str:
        return f"({self.m}x{self.n}x{self.k})"
