"""The MeshSlice 2D GeMM algorithm, functional form (Figure 5).

These implementations execute the exact per-chip program of the paper's
Figure 5 pseudocode on numpy shards: blocked slicing of the local
shards, *partial* AllGathers/ReduceScatters of the sub-shards over the
row/column rings, and partial GeMMs accumulated (OS) or scattered back
into the stationary output's slice positions (LS/RS). They are the
bit-exact reference against which the tests verify the algorithm's
correctness claims (Section 3.1.1-3.1.2); the timed counterpart lives
in :mod:`repro.algorithms.meshslice`.

Semantics (matching Figure 2/5):

* ``meshslice_os(A, B)``  computes ``C = A @ B``    (A: MxK, B: KxN)
* ``meshslice_ls(A, B)``  computes ``C = A @ B.T``  (A: MxK, B: NxK)
* ``meshslice_rs(A, B)``  computes ``C = A.T @ B``  (A: KxM, B: KxN)
"""

from __future__ import annotations

import numpy as np

from repro.comm.ops import ag_col, ag_row, rds_col, rds_row
from repro.core.dataflow import Dataflow
from repro.core.gemm import local_gemm
from repro.core.slicing import (
    set_slice_col,
    set_slice_row,
    slice_col,
    slice_row,
)
from repro.mesh.sharding import gather_matrix, shard_matrix, zeros_like_sharded
from repro.mesh.topology import Mesh2D


def meshslice_os(
    a: np.ndarray,
    b: np.ndarray,
    mesh: Mesh2D,
    slices: int,
    block: int = 1,
) -> np.ndarray:
    """Output-stationary MeshSlice: ``C = A @ B``.

    Slices the contraction dimension ``K``: iteration ``s`` all-gathers
    the ``s``-th column sub-shards of ``A`` within each row ring and the
    ``s``-th row sub-shards of ``B`` within each column ring, then
    accumulates the partial product into the stationary local output.

    Args:
        a: Global left input, shape ``(M, K)``.
        b: Global right input, shape ``(K, N)``.
        mesh: The 2D chip mesh.
        slices: Slice count ``S``. ``S * block`` must divide both
            ``K / P_r`` and ``K / P_c``.
        block: Memory block size ``B`` of Algorithm 2.

    Returns:
        The global output ``C`` of shape ``(M, N)``.
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
    a_sh = shard_matrix(a, mesh)
    b_sh = shard_matrix(b, mesh)
    c_sh = zeros_like_sharded(
        (a.shape[0], b.shape[1]), mesh, dtype=np.result_type(a, b)
    )
    for s in range(slices):
        a_sub = {
            coord: slice_col(a_sh.shard(coord), slices, s, block)
            for coord in mesh.coords()
        }
        b_sub = {
            coord: slice_row(b_sh.shard(coord), slices, s, block)
            for coord in mesh.coords()
        }
        a_gathered = ag_col(a_sub, mesh, axis=1)
        b_gathered = ag_row(b_sub, mesh, axis=0)
        for coord in mesh.coords():
            c_sh.shards[coord] += local_gemm(a_gathered[coord], b_gathered[coord])
    return gather_matrix(c_sh)


def meshslice_ls(
    a: np.ndarray,
    b: np.ndarray,
    mesh: Mesh2D,
    slices: int,
    block: int = 1,
) -> np.ndarray:
    """Left-stationary MeshSlice: ``C = A @ B.T``.

    Slices the ``N`` dimension: iteration ``s`` all-gathers the ``s``-th
    row sub-shards of ``B`` within each column ring, multiplies against
    the stationary ``A`` shard, and reduce-scatters the partial result
    into the ``s``-th column slice of the output within each row ring.

    Args:
        a: Global left input, shape ``(M, K)`` — stationary.
        b: Global right input stored transposed, shape ``(N, K)``.
        mesh: The 2D chip mesh.
        slices: Slice count ``S``. ``S * block`` must divide both
            ``N / P_r`` and ``N / P_c``.
        block: Memory block size ``B``.

    Returns:
        The global output ``C = A @ B.T`` of shape ``(M, N)``.
    """
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
    a_sh = shard_matrix(a, mesh)
    b_sh = shard_matrix(b, mesh)
    c_sh = zeros_like_sharded(
        (a.shape[0], b.shape[0]), mesh, dtype=np.result_type(a, b)
    )
    for s in range(slices):
        b_sub = {
            coord: slice_row(b_sh.shard(coord), slices, s, block)
            for coord in mesh.coords()
        }
        b_gathered = ag_row(b_sub, mesh, axis=0)
        partial = {
            coord: local_gemm(a_sh.shard(coord), b_gathered[coord].T)
            for coord in mesh.coords()
        }
        scattered = rds_col(partial, mesh, axis=1)
        for coord in mesh.coords():
            set_slice_col(
                c_sh.shards[coord], slices, s, scattered[coord], block=block
            )
    return gather_matrix(c_sh)


def meshslice_rs(
    a: np.ndarray,
    b: np.ndarray,
    mesh: Mesh2D,
    slices: int,
    block: int = 1,
) -> np.ndarray:
    """Right-stationary MeshSlice: ``C = A.T @ B``.

    The symmetric twin of :func:`meshslice_ls`: slices the ``M``
    dimension, all-gathers ``A`` column sub-shards within row rings, and
    reduce-scatters partials into row slices of the output within column
    rings.

    Args:
        a: Global left input stored transposed, shape ``(K, M)``.
        b: Global right input, shape ``(K, N)`` — stationary.
        mesh: The 2D chip mesh.
        slices: Slice count ``S``. ``S * block`` must divide both
            ``M / P_r`` and ``M / P_c``.
        block: Memory block size ``B``.

    Returns:
        The global output ``C = A.T @ B`` of shape ``(M, N)``.
    """
    if a.shape[0] != b.shape[0]:
        raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")
    a_sh = shard_matrix(a, mesh)
    b_sh = shard_matrix(b, mesh)
    c_sh = zeros_like_sharded(
        (a.shape[1], b.shape[1]), mesh, dtype=np.result_type(a, b)
    )
    for s in range(slices):
        a_sub = {
            coord: slice_col(a_sh.shard(coord), slices, s, block)
            for coord in mesh.coords()
        }
        a_gathered = ag_col(a_sub, mesh, axis=1)
        partial = {
            coord: local_gemm(a_gathered[coord].T, b_sh.shard(coord))
            for coord in mesh.coords()
        }
        scattered = rds_row(partial, mesh, axis=0)
        for coord in mesh.coords():
            set_slice_row(
                c_sh.shards[coord], slices, s, scattered[coord], block=block
            )
    return gather_matrix(c_sh)


def meshslice_gemm(
    a: np.ndarray,
    b: np.ndarray,
    mesh: Mesh2D,
    dataflow: Dataflow,
    slices: int,
    block: int = 1,
) -> np.ndarray:
    """Dispatch to the MeshSlice dataflow variant.

    See the module docstring for the operand orientation each dataflow
    expects.
    """
    if dataflow is Dataflow.OS:
        return meshslice_os(a, b, mesh, slices, block)
    if dataflow is Dataflow.LS:
        return meshslice_ls(a, b, mesh, slices, block)
    if dataflow is Dataflow.RS:
        return meshslice_rs(a, b, mesh, slices, block)
    raise ValueError(f"unknown dataflow {dataflow!r}")
