"""Huang-Abraham checksum encoding and block verification.

The encoding: ``A⁺ = [A; 1ᵀA]`` appends a checksum *row* (column sums)
to the left operand and ``B⁺ = [B, B·1]`` a checksum *column* (row
sums) to the right operand. Their product is the fully-checksummed

    ``C⁺ = A⁺ B⁺ = [[C, C·1], [1ᵀC, 1ᵀC·1]]``

so the data block's row sums, column sums, and total each appear twice
— once recomputable from the data, once carried through the GeMM. The
invariant is linear, so it survives slicing the contraction dimension,
partial all-gathers, and accumulation over slices: *every* partial
block of a sliced 2D GeMM is independently verifiable.

Verification compares the two copies as residuals. A single corrupted
data element at ``(r, c)`` dirties exactly row residual ``r`` and
column residual ``c`` and is reconstructed from its row checksum; a
single corrupted checksum entry dirties exactly one residual and is
recomputed from the (intact) data. Anything else is declared
uncorrectable and left to the caller to recompute. Every repair is
re-verified and rolled back if the block is still dirty, so a
``corrected`` verdict certifies a clean block.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np


def augment_a(a: np.ndarray) -> np.ndarray:
    """Append the checksum row (column sums) to a left-operand shard."""
    if a.ndim != 2:
        raise ValueError(f"expected a 2D shard, got shape {a.shape}")
    return np.vstack([a, a.sum(axis=0, keepdims=True)])


def augment_b(b: np.ndarray) -> np.ndarray:
    """Append the checksum column (row sums) to a right-operand shard."""
    if b.ndim != 2:
        raise ValueError(f"expected a 2D shard, got shape {b.shape}")
    return np.hstack([b, b.sum(axis=1, keepdims=True)])


def augmented_product(c: np.ndarray) -> np.ndarray:
    """The fully-checksummed block a clean ``A⁺ @ B⁺`` would produce.

    Used to rebuild an uncorrectable block after recomputing its data.
    """
    out = np.empty((c.shape[0] + 1, c.shape[1] + 1), dtype=c.dtype)
    out[:-1, :-1] = c
    out[:-1, -1] = c.sum(axis=1)
    out[-1, :-1] = c.sum(axis=0)
    out[-1, -1] = c.sum()
    return out


def strip(c_aug: np.ndarray) -> np.ndarray:
    """The data block of a checksummed block (drops both checksums)."""
    return np.ascontiguousarray(c_aug[:-1, :-1])


def residuals(
    c_aug: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Row, column, and corner residuals of a checksummed block.

    Each residual is *recomputed sum minus carried checksum*; all three
    are exactly zero for a clean block (when sums are exact, e.g.
    integer-valued data — float rounding needs the ``tol`` of
    :func:`verify_block`).
    """
    data = c_aug[:-1, :-1]
    row_res = data.sum(axis=1) - c_aug[:-1, -1]
    col_res = data.sum(axis=0) - c_aug[-1, :-1]
    corner_res = float(data.sum() - c_aug[-1, -1])
    return row_res, col_res, corner_res


@dataclasses.dataclass(frozen=True)
class BlockVerdict:
    """Outcome of verifying (and maybe repairing) one checksummed block.

    Attributes:
        status: ``"clean"`` (no residual exceeded ``tol``),
            ``"corrected"`` (one data element reconstructed in place),
            ``"checksum_repaired"`` (a checksum entry recomputed from
            intact data), or ``"uncorrectable"`` (block left untouched;
            the caller must recompute it).
        bad_rows: Row indices whose residual exceeded ``tol``.
        bad_cols: Column indices whose residual exceeded ``tol``.
        corner_bad: Whether the total-sum residual exceeded ``tol``.
        location: ``(row, col)`` of the corrected data element, if any.
    """

    status: str
    bad_rows: Tuple[int, ...] = ()
    bad_cols: Tuple[int, ...] = ()
    corner_bad: bool = False
    location: Optional[Tuple[int, int]] = None


def _is_clean(c_aug: np.ndarray, tol: float) -> bool:
    row_res, col_res, corner_res = residuals(c_aug)
    # NaN residuals (an exponent-bit flip can produce inf - inf) must
    # read as dirty, so test "within tol" and negate.
    return (
        bool(np.all(np.abs(row_res) <= tol))
        and bool(np.all(np.abs(col_res) <= tol))
        and abs(corner_res) <= tol
    )


def verify_block(c_aug: np.ndarray, tol: float = 0.0) -> BlockVerdict:
    """Verify one checksummed block, repairing it in place if possible.

    Single-error repairs reconstruct the damaged entry from the
    *other* copy of its sum rather than subtracting a residual delta,
    so a flip that produced NaN/inf is recovered exactly too. Every
    repair is re-verified; a still-dirty block is rolled back and
    declared uncorrectable. ``tol`` bounds the residual magnitude
    considered clean (keep the default ``0.0`` for exact — e.g.
    integer-valued — data; float rounding of re-ordered sums needs a
    small positive tolerance).
    """
    if c_aug.ndim != 2 or c_aug.shape[0] < 2 or c_aug.shape[1] < 2:
        raise ValueError(f"expected a checksummed 2D block, got {c_aug.shape}")
    if tol < 0:
        raise ValueError("tol must be non-negative")
    row_res, col_res, corner_res = residuals(c_aug)
    bad_rows = tuple(int(i) for i in np.flatnonzero(~(np.abs(row_res) <= tol)))
    bad_cols = tuple(int(j) for j in np.flatnonzero(~(np.abs(col_res) <= tol)))
    corner_bad = not abs(corner_res) <= tol
    if not bad_rows and not bad_cols and not corner_bad:
        return BlockVerdict(status="clean")

    data = c_aug[:-1, :-1]
    snapshot = c_aug.copy()
    status = "uncorrectable"
    location: Optional[Tuple[int, int]] = None
    if len(bad_rows) == 1 and len(bad_cols) == 1:
        # One data element: rebuild it from its row checksum minus the
        # row's other (intact) elements.
        r, c = bad_rows[0], bad_cols[0]
        others = data[r, np.arange(data.shape[1]) != c].sum()
        data[r, c] = c_aug[r, -1] - others
        status, location = "corrected", (r, c)
    elif len(bad_rows) == 1 and not bad_cols and not corner_bad:
        # A dirty corner would mean the *data* of row r is corrupted
        # consistently with its checksum (an operand flip propagated
        # into a single row) — only a clean corner certifies the
        # checksum entry itself as the culprit.
        r = bad_rows[0]
        c_aug[r, -1] = data[r, :].sum()
        status = "checksum_repaired"
    elif len(bad_cols) == 1 and not bad_rows and not corner_bad:
        c = bad_cols[0]
        c_aug[-1, c] = data[:, c].sum()
        status = "checksum_repaired"
    elif not bad_rows and not bad_cols:
        c_aug[-1, -1] = data.sum()
        status = "checksum_repaired"

    if status != "uncorrectable" and not _is_clean(c_aug, tol):
        c_aug[:] = snapshot
        status, location = "uncorrectable", None
    return BlockVerdict(
        status=status,
        bad_rows=bad_rows,
        bad_cols=bad_cols,
        corner_bad=corner_bad,
        location=location,
    )
