"""Algorithm-based fault tolerance for the 2D GeMM functional plane.

Classic Huang-Abraham checksums adapted to MeshSlice's sharded, sliced
execution: every shard of ``A`` carries an appended checksum row (its
column sums) and every shard of ``B`` an appended checksum column (its
row sums). Both ride along the contraction dimension unchanged through
``slice_col``/``slice_row`` and the ring collectives, so each partial
block product — and the block it accumulates into — satisfies a local
linear invariant that detects, locates, and corrects silent data
corruption injected by :mod:`repro.faults.sdc`.

* :mod:`repro.abft.checksums` — encode/verify/correct one block;
* :mod:`repro.abft.gemm` — protected functional GeMMs
  (:func:`abft_gemm` over the meshslice/summa/collective algorithms)
  returning the corrected result plus an :class:`ABFTReport`.

The timed counterpart is ``GeMMConfig(abft=True, sdc_rate=...)``: the
program builders charge checksum encode/verify FLOPs, enlarged
collective payloads, and an expected-recompute epilogue so the
autotuner optimizes block shapes *under* ABFT overhead.
"""

from repro.abft.checksums import (
    BlockVerdict,
    augment_a,
    augment_b,
    augmented_product,
    residuals,
    strip,
    verify_block,
)
from repro.abft.gemm import (
    ABFTReport,
    abft_collective_os,
    abft_gemm,
    abft_meshslice_os,
    abft_summa_os,
)

__all__ = [
    "ABFTReport",
    "BlockVerdict",
    "abft_collective_os",
    "abft_gemm",
    "abft_meshslice_os",
    "abft_summa_os",
    "augment_a",
    "augment_b",
    "augmented_product",
    "residuals",
    "strip",
    "verify_block",
]
