"""ABFT-protected functional 2D GeMMs: inject → detect → correct.

Each ``abft_*`` function runs an algorithm's output-stationary
functional plane over *checksummed* shards — the encode happens before,
and verification after, an optional :func:`repro.faults.sdc.sdc_injection`
window, so injected bit flips land inside the protected computation
while encode/verify themselves are modeled as reliable. Per-chip
verification repairs single-element corruption in place
(:func:`repro.abft.checksums.verify_block`) and falls back to a flagged
recomputation of the guilty block from the global operands for
multi-error cases. The returned :class:`ABFTReport` tallies verdicts
and carries the injector's flip events for end-to-end escape analysis.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.abft.checksums import (
    BlockVerdict,
    augment_a,
    augment_b,
    augmented_product,
    strip,
    verify_block,
)
from repro.comm.ops import ag_col, ag_row, bcast_col, bcast_row
from repro.core.gemm import local_gemm
from repro.core.slicing import slice_col, slice_row
from repro.faults.sdc import SDCPlan, sdc_injection
from repro.mesh.sharding import ShardedMatrix, gather_matrix, shard_matrix
from repro.mesh.topology import Coord, Mesh2D
from repro.obs.registry import registry as _metrics

Shards = Dict[Coord, np.ndarray]


@dataclasses.dataclass(frozen=True)
class ABFTReport:
    """Verification outcome of one protected GeMM.

    Attributes:
        verdicts: Per-chip block verdict (post-repair; a block that was
            recomputed keeps its ``uncorrectable`` verdict).
        flips: Bit flips the injection context actually produced.
    """

    verdicts: Dict[Coord, BlockVerdict]
    flips: Tuple

    def count(self, status: str) -> int:
        """Number of blocks whose verdict was ``status``."""
        return sum(1 for v in self.verdicts.values() if v.status == status)

    @property
    def blocks(self) -> int:
        return len(self.verdicts)

    @property
    def clean(self) -> int:
        return self.count("clean")

    @property
    def corrected(self) -> int:
        return self.count("corrected")

    @property
    def checksum_repaired(self) -> int:
        return self.count("checksum_repaired")

    @property
    def recomputed(self) -> int:
        """Blocks recomputed after an uncorrectable verdict."""
        return self.count("uncorrectable")


def _check_os_inputs(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"contraction mismatch: A {a.shape} vs B {b.shape}")


def _augmented_shards(
    a: np.ndarray, b: np.ndarray, mesh: Mesh2D
) -> Tuple[Shards, Shards]:
    """Shard both operands and append their checksums per shard."""
    a_sh = shard_matrix(np.asarray(a, dtype=np.float64), mesh)
    b_sh = shard_matrix(np.asarray(b, dtype=np.float64), mesh)
    a_aug = {coord: augment_a(a_sh.shard(coord)) for coord in mesh.coords()}
    b_aug = {coord: augment_b(b_sh.shard(coord)) for coord in mesh.coords()}
    return a_aug, b_aug


def _zero_blocks(a: np.ndarray, b: np.ndarray, mesh: Mesh2D) -> Shards:
    m_loc = a.shape[0] // mesh.rows
    n_loc = b.shape[1] // mesh.cols
    return {
        coord: np.zeros((m_loc + 1, n_loc + 1), dtype=np.float64)
        for coord in mesh.coords()
    }


def _finish(
    c_aug: Shards,
    a: np.ndarray,
    b: np.ndarray,
    mesh: Mesh2D,
    flips: Tuple,
    tol: float,
) -> Tuple[np.ndarray, ABFTReport]:
    """Verify every block, recompute the uncorrectable ones, assemble."""
    m_loc = a.shape[0] // mesh.rows
    n_loc = b.shape[1] // mesh.cols
    metrics = _metrics()
    verdicts: Dict[Coord, BlockVerdict] = {}
    for coord in mesh.coords():
        verdict = verify_block(c_aug[coord], tol=tol)
        verdicts[coord] = verdict
        metrics.inc("abft.blocks_verified")
        if verdict.status == "corrected":
            metrics.inc("abft.corrected_in_place")
        elif verdict.status == "checksum_repaired":
            metrics.inc("abft.checksum_repaired")
        elif verdict.status == "uncorrectable":
            # Flagged recomputation of the guilty block, straight from
            # the global operands (no rings to re-corrupt it).
            i, j = coord
            data = a[i * m_loc:(i + 1) * m_loc, :] @ b[:, j * n_loc:(j + 1) * n_loc]
            c_aug[coord] = augmented_product(data)
            metrics.inc("abft.blocks_recomputed")
    result = gather_matrix(
        ShardedMatrix(
            mesh=mesh,
            shards={coord: strip(c_aug[coord]) for coord in mesh.coords()},
            global_shape=(a.shape[0], b.shape[1]),
        )
    )
    return result, ABFTReport(verdicts=verdicts, flips=tuple(flips))


def abft_meshslice_os(
    a: np.ndarray,
    b: np.ndarray,
    mesh: Mesh2D,
    slices: int = 1,
    block: int = 1,
    plan: Optional[SDCPlan] = None,
    tol: float = 0.0,
) -> Tuple[np.ndarray, ABFTReport]:
    """Checksummed output-stationary MeshSlice: ``C = A @ B``.

    The checksum row/column ride the non-sliced edge of each shard, so
    ``slice_col``/``slice_row`` and the partial all-gathers propagate
    them unchanged and every per-slice partial product is itself
    checksummed. ``plan`` opens an SDC injection window around the
    sliced loop (encode and verify stay outside it).
    """
    _check_os_inputs(a, b)
    a_aug, b_aug = _augmented_shards(a, b, mesh)
    c_aug = _zero_blocks(a, b, mesh)
    with sdc_injection(plan) as injector:
        for s in range(slices):
            a_sub = {
                coord: slice_col(a_aug[coord], slices, s, block)
                for coord in mesh.coords()
            }
            b_sub = {
                coord: slice_row(b_aug[coord], slices, s, block)
                for coord in mesh.coords()
            }
            a_gathered = ag_col(a_sub, mesh, axis=1)
            b_gathered = ag_row(b_sub, mesh, axis=0)
            for coord in mesh.coords():
                c_aug[coord] += local_gemm(a_gathered[coord], b_gathered[coord])
    return _finish(c_aug, a, b, mesh, injector.events, tol)


def abft_summa_os(
    a: np.ndarray,
    b: np.ndarray,
    mesh: Mesh2D,
    plan: Optional[SDCPlan] = None,
    tol: float = 0.0,
) -> Tuple[np.ndarray, ABFTReport]:
    """Checksummed SUMMA OS: panel broadcasts of checksummed shards.

    Panels slice the contraction dimension, so each broadcast carries
    the full checksum row (A panels) or column (B panels) and every
    per-panel partial product is checksummed. The iteration count is
    the classical ``lcm(P_r, P_c)``, as in the unprotected functional.
    """
    _check_os_inputs(a, b)
    k = a.shape[1]
    steps = math.lcm(mesh.rows, mesh.cols)
    if k % steps != 0:
        raise ValueError(
            f"panel dimension {k} must divide by lcm(P_r, P_c) = {steps}"
        )
    kb = k // steps
    a_aug, b_aug = _augmented_shards(a, b, mesh)
    c_aug = _zero_blocks(a, b, mesh)
    with sdc_injection(plan) as injector:
        for p in range(steps):
            col_owner, col_off = divmod(p * kb, k // mesh.cols)
            roots: Shards = {
                (i, col_owner): a_aug[(i, col_owner)][:, col_off:col_off + kb]
                for i in range(mesh.rows)
            }
            a_panel = bcast_col(roots, mesh, col_owner)
            row_owner, row_off = divmod(p * kb, k // mesh.rows)
            roots = {
                (row_owner, j): b_aug[(row_owner, j)][row_off:row_off + kb, :]
                for j in range(mesh.cols)
            }
            b_panel = bcast_row(roots, mesh, row_owner)
            for coord in mesh.coords():
                c_aug[coord] += local_gemm(a_panel[coord], b_panel[coord])
    return _finish(c_aug, a, b, mesh, injector.events, tol)


def abft_collective_os(
    a: np.ndarray,
    b: np.ndarray,
    mesh: Mesh2D,
    plan: Optional[SDCPlan] = None,
    tol: float = 0.0,
) -> Tuple[np.ndarray, ABFTReport]:
    """Checksummed collective 2D GeMM: one full AG pair, one product."""
    _check_os_inputs(a, b)
    a_aug, b_aug = _augmented_shards(a, b, mesh)
    c_aug = _zero_blocks(a, b, mesh)
    with sdc_injection(plan) as injector:
        a_full = ag_col(a_aug, mesh, axis=1)
        b_full = ag_row(b_aug, mesh, axis=0)
        for coord in mesh.coords():
            c_aug[coord] += local_gemm(a_full[coord], b_full[coord])
    return _finish(c_aug, a, b, mesh, injector.events, tol)


def abft_gemm(
    a: np.ndarray,
    b: np.ndarray,
    mesh: Mesh2D,
    algorithm: str = "meshslice",
    slices: int = 1,
    block: int = 1,
    plan: Optional[SDCPlan] = None,
    tol: float = 0.0,
) -> Tuple[np.ndarray, ABFTReport]:
    """Dispatch to an algorithm's ABFT-protected functional GeMM.

    Computes ``C = A @ B`` (output-stationary orientation) under
    checksum protection; see the per-algorithm functions for details.
    ``slices``/``block`` only apply to ``meshslice``.
    """
    if algorithm == "meshslice":
        return abft_meshslice_os(a, b, mesh, slices, block, plan=plan, tol=tol)
    if algorithm == "summa":
        return abft_summa_os(a, b, mesh, plan=plan, tol=tol)
    if algorithm == "collective":
        return abft_collective_os(a, b, mesh, plan=plan, tol=tol)
    raise ValueError(
        f"no ABFT functional for algorithm {algorithm!r}; "
        "choose meshslice, summa, or collective"
    )
