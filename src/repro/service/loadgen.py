"""Load generator: replay a zipf-distributed tuning query mix.

Production tuner traffic is heavy-tailed — a handful of (model, chips)
configurations dominate while a long tail of variants trickles in.
The load generator models that as a zipf draw over a catalog of
distinct requests, replays the mix through a :class:`TunerService`,
and reports served throughput against the cold ``tune()`` baseline
(every cache cleared per query). The serve/replay CLI and the
``BENCH_service.json`` benchmark both run through this module, so the
numbers they report are the same measurement.

Everything is seeded: the same ``(catalog, queries, seed)`` triple
produces the same query sequence, which is what lets the benchmark's
throughput floor and the CI smoke leg assert against live runs.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Dict, List, Sequence, Union

from repro.hw.params import HardwareParams
from repro.hw.presets import TPUV4
from repro.models.config import LLMConfig
from repro.models.zoo import get_model
from repro.perf.cache import clear_caches
from repro.service.request import TuneRequest, execute
from repro.service.server import TunerService
from repro.service.store import PlanStore

__all__ = ["LoadReport", "default_catalog", "run_load", "zipf_mix"]


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run.

    Attributes:
        queries: Queries replayed through the service.
        unique: Distinct canonical requests in the mix.
        elapsed_s: Wall-clock seconds serving the whole mix.
        throughput_qps: Served queries per second.
        cold_seconds_per_query: Mean cold ``execute`` latency over the
            distinct requests, all caches cleared per measurement.
        speedup: Served throughput over the cold baseline's
            (``cold_seconds_per_query * throughput_qps``).
        stats: The service's closing :meth:`TunerService.stats`
            snapshot (hit rates, prune ratio, latency tails).
    """

    queries: int
    unique: int
    elapsed_s: float
    throughput_qps: float
    cold_seconds_per_query: float
    speedup: float
    stats: Dict[str, float]


def default_catalog(
    models: Sequence[Union[str, LLMConfig]] = ("gpt3-175b", "llama2-70b"),
    chip_counts: Sequence[int] = (16, 32, 64),
    batches: Sequence[int] = (8,),
    hw: HardwareParams = TPUV4,
) -> List[TuneRequest]:
    """A catalog of distinct nominal tuning requests.

    The cross product (model x chips x batch) mirrors a deployment
    sweep; adjacent chip counts are what gives the warm-start tier
    neighbors to seed from.
    """
    catalog: List[TuneRequest] = []
    for model in models:
        if isinstance(model, str):
            model = get_model(model)
        for chips in chip_counts:
            for batch in batches:
                catalog.append(
                    TuneRequest(
                        model=model, batch=batch, chips=chips, hw=hw
                    )
                )
    return catalog


def zipf_mix(
    catalog: Sequence[TuneRequest],
    queries: int,
    seed: int = 0,
    exponent: float = 1.1,
) -> List[TuneRequest]:
    """Draw a seeded zipf-weighted query sequence from the catalog.

    Catalog position is popularity rank: entry ``i`` is drawn with
    weight ``1 / (i + 1) ** exponent``.
    """
    if not catalog:
        raise ValueError("catalog is empty")
    if queries < 1:
        raise ValueError("queries must be >= 1")
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(catalog))]
    rng = random.Random(seed)
    return rng.choices(list(catalog), weights=weights, k=queries)


def cold_baseline(requests: Sequence[TuneRequest]) -> float:
    """Mean cold ``execute`` seconds over the given requests.

    Every measurement starts from nothing: all ``repro.perf`` caches
    are cleared first, so this is the per-query cost the service's
    store/memory/dedup tiers exist to amortize.
    """
    if not requests:
        return 0.0
    total = 0.0
    for request in requests:
        clear_caches()
        started = time.perf_counter()
        execute(request)
        total += time.perf_counter() - started
    clear_caches()
    return total / len(requests)


def run_load(
    mix: Sequence[TuneRequest],
    store: Union[PlanStore, str, None],
    workers: int = 4,
    warm_start: bool = True,
    measure_cold: bool = True,
) -> LoadReport:
    """Replay a query mix through a fresh service and report throughput.

    The cold baseline is measured first (over the distinct requests in
    the mix), then every cache is cleared so the service run earns its
    own hits.
    """
    unique: Dict[str, TuneRequest] = {}
    for request in mix:
        unique.setdefault(request.cache_key(), request)
    cold = cold_baseline(list(unique.values())) if measure_cold else 0.0

    with TunerService(store, workers=workers, warm_start=warm_start) as svc:
        started = time.perf_counter()
        svc.serve_many(list(mix))
        elapsed = time.perf_counter() - started
        stats = svc.stats()

    throughput = len(mix) / elapsed if elapsed > 0 else 0.0
    speedup = cold * throughput if cold > 0 else 0.0
    return LoadReport(
        queries=len(mix),
        unique=len(unique),
        elapsed_s=elapsed,
        throughput_qps=throughput,
        cold_seconds_per_query=cold,
        speedup=speedup,
        stats=stats,
    )
