"""Warm-started mesh/slice search seeded from a stored neighbor.

A production tuning service sees near-duplicate queries: the same
model swept across chip counts, re-tuned per deployment. The mesh the
autotuner picks is stable under such sweeps — the best aspect ratio at
1024 chips is almost always the best (or next-best) at 2048 — so a
stored neighbor's choice is an excellent *visit order* for the
branch-and-bound over candidate shapes: evaluate the neighbor-shaped
candidate first, establish a tight incumbent, then abort every other
candidate's pass-by-pass accumulation the moment its partial sum
exceeds the incumbent.

The warm search is an *ordering and pruning* optimization only — it
returns bit-identical ``mesh``, ``passes``, and ``block_seconds`` to
:func:`repro.autotuner.search.tune_model`:

* partial block times accumulate per-pass in the exact plan order
  ``tune_mesh`` uses, so completed candidates produce the same float
  sums bit for bit;
* a candidate is abandoned only when its partial sum *strictly*
  exceeds the incumbent (analytical pass costs are nonnegative, so the
  completed total could not have beaten it) or when it ties the
  incumbent from a later original position (the cold search breaks
  exact ties toward the earlier ``mesh_shapes`` index, so a later tie
  could not have won either);
* the winner is chosen by ``(block_seconds, original index)`` — the
  same ordering the cold search's strict-inequality update induces.

``per_mesh_seconds`` is the one reporting field allowed to differ: it
covers only the candidates the warm search finished. Pruning work is
counted under ``service.warmstart.*`` so the serving layer can report
the measured prune ratio.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import GeMMConfig
from repro.autotuner.costmodel import best_slice_count
from repro.autotuner.dataflow import plan_model
from repro.autotuner.search import TunedPass, TuningResult
from repro.hw.params import HardwareParams
from repro.mesh.topology import Mesh2D, mesh_shapes
from repro.models.config import LLMConfig
from repro.obs.registry import registry as _metrics

__all__ = ["warm_order", "warm_tune"]


def warm_order(
    candidates: Sequence[Mesh2D], neighbor: Mesh2D
) -> List[int]:
    """Candidate indices ordered by aspect-ratio distance to ``neighbor``.

    Distance is ``|log2(rows/cols) - log2(rows'/cols')|`` — the shapes
    a power-of-two sweep maps onto each other. Ties keep the original
    ``mesh_shapes`` order, so a degenerate neighbor still yields a
    deterministic visit order.
    """
    target = math.log2(neighbor.rows / neighbor.cols)
    ranked = sorted(
        range(len(candidates)),
        key=lambda i: (
            abs(math.log2(candidates[i].rows / candidates[i].cols) - target),
            i,
        ),
    )
    return ranked


def warm_tune(
    model: LLMConfig,
    batch_size: int,
    chips: int,
    hw: HardwareParams,
    neighbor_mesh: Optional[Mesh2D],
    optimize_dataflow: bool = True,
    min_mesh_dim: int = 2,
    max_slices: int = 64,
    abft: bool = False,
    sdc_rate: float = 0.0,
) -> TuningResult:
    """Phase-2 search seeded by a stored neighbor's chosen mesh.

    With ``neighbor_mesh=None`` there is nothing to seed from and the
    search degenerates to the cold visit order (still pruning once the
    first candidate completes). The selected mesh, tuned passes, and
    block time are bit-identical to ``tune_model`` either way.
    """
    tokens = model.tokens(batch_size)
    plans = plan_model(model, tokens, optimize_dataflow=optimize_dataflow)
    candidates = mesh_shapes(chips, min_dim=min_mesh_dim)
    if not candidates:
        raise ValueError(f"no candidate mesh shapes for {chips} chips")
    if neighbor_mesh is not None:
        order = warm_order(candidates, neighbor_mesh)
    else:
        order = list(range(len(candidates)))

    pass_plans = [
        (plan.layer.name, pass_plan)
        for plan in plans
        for pass_plan in plan.passes
    ]
    passes_per_mesh = len(pass_plans)

    best: Optional[TuningResult] = None
    best_index = -1
    per_mesh: Dict[Tuple[int, int], float] = {}
    tunings = 0
    prunes = 0
    for index in order:
        mesh = candidates[index]
        tuned: List[TunedPass] = []
        total = 0.0
        aborted = False
        for position, (layer_name, pass_plan) in enumerate(pass_plans):
            cfg = GeMMConfig(
                shape=pass_plan.shape,
                mesh=mesh,
                dataflow=pass_plan.dataflow,
                slices=1,
                transposed=pass_plan.transposed,
                abft=abft,
                sdc_rate=sdc_rate,
            )
            slices, estimate = best_slice_count(cfg, hw, max_slices)
            tunings += 1
            tuned.append(
                TunedPass(
                    layer_name=layer_name,
                    plan=pass_plan,
                    slices=slices,
                    estimate=estimate,
                    abft=abft,
                    sdc_rate=sdc_rate,
                )
            )
            total += estimate.total
            if best is not None and (
                total > best.block_seconds
                or (total >= best.block_seconds and index > best_index)
            ):
                # Pass costs are nonnegative: this candidate can no
                # longer strictly beat the incumbent, and on an exact
                # tie the cold search keeps the earlier index anyway.
                prunes += passes_per_mesh - (position + 1)
                aborted = True
                break
        if aborted:
            continue
        per_mesh[mesh.shape] = total
        if (
            best is None
            or total < best.block_seconds
            or (total == best.block_seconds and index < best_index)
        ):
            best = TuningResult(
                mesh=mesh,
                passes=tuple(tuned),
                block_seconds=total,
                per_mesh_seconds={},
            )
            best_index = index

    reg = _metrics()
    reg.inc("tuner.runs", labels={"model": model.name})
    reg.inc("tuner.meshes_searched", float(len(candidates)))
    reg.inc("service.warmstart.runs")
    reg.inc("service.warmstart.pass_tunings", float(tunings))
    reg.inc("service.warmstart.pass_prunes", float(prunes))
    return dataclasses.replace(best, per_mesh_seconds=per_mesh)
