"""The tuning service: concurrent front end over store + warm search.

:class:`TunerService` is the layer ROADMAP item 2 asks for — the
autotuner treated as a system serving traffic rather than a script.
Each submitted :class:`~repro.service.request.TuneRequest` resolves
through three tiers:

1. **memory** — results already served this process, keyed by the
   request's content address (sits on top of, not instead of, the
   ``repro.perf`` memoization the engine functions use internally);
2. **store** — the on-disk :class:`~repro.service.store.PlanStore`,
   shared across processes and sessions;
3. **search** — a real tuning run, warm-started from the nearest
   stored neighbor when one exists (``mode="tune"`` only; robust and
   degraded searches have no mesh-ordering prior worth seeding), and
   persisted back to the store on completion.

Identical in-flight requests are **coalesced**: the second submitter
of a key whose search is still running gets the same future, so a
thundering herd of duplicate queries costs one search and one store
write. Distinct requests run concurrently on a thread pool — tuning
is dominated by the numpy/simulator work already released by the
memoization layer's lock-free caches, so threads batch well.

Every tier is counted under ``service.*`` metrics (hit rates, queue
depth, warm-start pruning) and wall-clock service latency feeds the
``service.latency.p50_ms``/``p95_ms`` gauges — all surfaced by
:class:`repro.obs.ProfileReport`. Latency and queue metrics are
wall-clock by nature; they live only in the registry, never in store
records, so the byte-determinism contract is untouched.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.registry import registry as _metrics
from repro.service.request import TuneRequest, execute
from repro.service.store import PlanStore
from repro.service.warmstart import warm_tune

__all__ = ["TunerService"]


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


class TunerService:
    """Concurrent, deduplicating, store-backed tuning front end.

    Args:
        store: Plan-store root directory, an existing
            :class:`PlanStore`, or ``None`` for a memory-only service
            (no persistence, no warm starts).
        workers: Thread-pool width for distinct concurrent requests.
        warm_start: Seed ``mode="tune"`` searches from the nearest
            stored neighbor. Disabling forces every search cold
            (results are bit-identical either way; only the amount of
            pruning changes).

    Usable as a context manager; :meth:`close` drains the pool.
    """

    def __init__(
        self,
        store: Union[PlanStore, str, None] = None,
        workers: int = 4,
        warm_start: bool = True,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if isinstance(store, str):
            store = PlanStore(store)
        self.store: Optional[PlanStore] = store
        self.warm_start = warm_start
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="meshslice-serve"
        )
        self._lock = threading.Lock()
        self._memory: Dict[str, object] = {}
        self._inflight: Dict[str, "Future[object]"] = {}
        self._latencies: List[float] = []
        # Instance-scoped tallies: the registry counters are cumulative
        # across the whole process, but stats() reports THIS service.
        self._counts: Dict[str, int] = {
            "requests": 0, "memory": 0, "dedup": 0,
            "store_hits": 0, "store_misses": 0,
        }
        self._closed = False

    def _count(self, key: str) -> None:
        with self._lock:
            self._counts[key] += 1

    # -------------------------------------------------------------- serving

    def submit(self, request: TuneRequest) -> "Future[object]":
        """Enqueue one request; returns a future of its result.

        Requests sharing a canonical form share one future: the
        in-memory tier answers instantly, an in-flight duplicate
        piggybacks on the running search, and only a genuinely new
        request occupies a worker.
        """
        reg = _metrics()
        canonical = request.canonical()
        key = canonical.cache_key()
        reg.inc("service.requests")
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            self._counts["requests"] += 1
            if key in self._memory:
                self._counts["memory"] += 1
                reg.inc("service.memory.hits")
                done: "Future[object]" = Future()
                done.set_result(self._memory[key])
                return done
            inflight = self._inflight.get(key)
            if inflight is not None:
                self._counts["dedup"] += 1
                reg.inc("service.dedup.hits")
                return inflight
            future = self._pool.submit(self._resolve, canonical, key)
            self._inflight[key] = future
            depth = len(self._inflight)
        reg.set_gauge("service.queue.depth", float(depth))
        reg.observe("service.queue.depth.sample", float(depth))
        return future

    def serve(self, request: TuneRequest) -> object:
        """Resolve one request synchronously."""
        return self.submit(request).result()

    def serve_many(self, requests: Sequence[TuneRequest]) -> List[object]:
        """Resolve a batch; results in request order.

        All requests enter the queue before any result is awaited, so
        duplicates inside the batch coalesce and the rest spread over
        the pool.
        """
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    # ------------------------------------------------------------ resolution

    def _resolve(self, canonical: TuneRequest, key: str) -> object:
        reg = _metrics()
        started = time.perf_counter()
        try:
            result = None
            if self.store is not None:
                result = self.store.load(canonical)
            if result is not None:
                self._count("store_hits")
                reg.inc("service.store.hits")
            else:
                if self.store is not None:
                    self._count("store_misses")
                    reg.inc("service.store.misses")
                result = self._search(canonical)
                if self.store is not None:
                    self.store.save(canonical, result)
            with self._lock:
                self._memory[key] = result
            return result
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1e3
            with self._lock:
                self._inflight.pop(key, None)
                self._latencies.append(elapsed_ms)
                ordered = sorted(self._latencies)
                depth = len(self._inflight)
            reg.observe("service.latency_ms", elapsed_ms)
            reg.set_gauge(
                "service.latency.p50_ms", _percentile(ordered, 0.50)
            )
            reg.set_gauge(
                "service.latency.p95_ms", _percentile(ordered, 0.95)
            )
            reg.set_gauge("service.queue.depth", float(depth))

    def _search(self, canonical: TuneRequest) -> object:
        neighbor = None
        if (
            self.warm_start
            and canonical.mode == "tune"
            and self.store is not None
        ):
            neighbor = self.store.nearest_neighbor(canonical)
        if neighbor is None:
            return execute(canonical)
        _metrics().inc("service.warmstart.seeded")
        return warm_tune(
            canonical.model,
            canonical.batch,
            canonical.chips,
            canonical.hw,
            neighbor_mesh=neighbor.result.mesh,
            optimize_dataflow=canonical.optimize_dataflow,
            min_mesh_dim=canonical.min_mesh_dim,
            max_slices=canonical.max_slices,
            abft=canonical.abft,
            sdc_rate=canonical.sdc_rate,
        )

    # ------------------------------------------------------------- reporting

    def stats(self) -> Dict[str, float]:
        """Current service health: hit rates, pruning, latency tails.

        Hit counts are scoped to this service instance; the
        warm-start prune ratio comes from the process-wide
        ``service.warmstart.*`` counters (pruning happens inside the
        shared search functions).
        """
        reg = _metrics()
        tunings = reg.counter_value("service.warmstart.pass_tunings")
        prunes = reg.counter_value("service.warmstart.pass_prunes")
        considered = tunings + prunes
        with self._lock:
            counts = dict(self._counts)
            ordered = sorted(self._latencies)
            depth = float(len(self._inflight))
        looked_up = counts["store_hits"] + counts["store_misses"]
        return {
            "requests": float(counts["requests"]),
            "served_from_memory": float(counts["memory"]),
            "coalesced_inflight": float(counts["dedup"]),
            "store_hits": float(counts["store_hits"]),
            "store_misses": float(counts["store_misses"]),
            "store_hit_rate": (
                counts["store_hits"] / looked_up if looked_up else 0.0
            ),
            "warmstart_prune_ratio": (
                prunes / considered if considered else 0.0
            ),
            "latency_p50_ms": _percentile(ordered, 0.50),
            "latency_p95_ms": _percentile(ordered, 0.95),
            "queue_depth": depth,
        }

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Drain in-flight work and stop accepting submissions."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "TunerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
