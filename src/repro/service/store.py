"""On-disk content-addressed store of tuned plans.

The serving layer's durable tier: every completed tuning search is
written as one JSON record under the sha256 content address of its
canonical :class:`~repro.service.request.TuneRequest`
(:meth:`~repro.service.request.TuneRequest.cache_key`), layered *under*
the in-memory result cache exactly as the content-addressed program
store sits under the config-keyed memoization in ``repro.perf``.

Layout::

    <root>/<key[:2]>/<key>.json

Records are written atomically (temp file + ``os.replace``) and loaded
corruption-tolerantly: unreadable bytes, malformed JSON, schema
mismatches, and records whose embedded request no longer hashes to
their filename are all treated as cache *misses* (counted under
``service.store.corrupt``), never as errors — a half-written or
bit-rotted record can cost a redundant search but can never poison a
serving process.

Byte determinism is a contract: serializing the same canonical request
and result always produces identical bytes (sorted keys, no
timestamps, no environment), so two runs — or two concurrent workers —
that tune the same canonical config write the *same* record, and the
byte-determinism suite can diff stores across runs and ``--jobs``
settings. Search-path-dependent reporting (``per_mesh_seconds``) is
deliberately excluded: a warm-started search prunes hopeless meshes
early, so its per-mesh map is a subset of the cold search's, while the
chosen mesh, tuned passes, and block time are bit-equal either way.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.autotuner.costmodel import CostEstimate
from repro.autotuner.dataflow import PassPlan
from repro.autotuner.search import (
    RobustTuningResult,
    TunedPass,
    TuningResult,
)
from repro.core.dataflow import Dataflow
from repro.core.gemm import GeMMShape
from repro.mesh.topology import Mesh2D
from repro.obs.registry import registry as _metrics
from repro.service.request import SCHEMA_VERSION, TuneRequest

__all__ = [
    "PlanStore",
    "StoredPlan",
    "decode_result",
    "encode_record",
    "encode_result",
]


@dataclasses.dataclass(frozen=True)
class StoredPlan:
    """One decoded store record: the canonical request and its result."""

    key: str
    request: TuneRequest
    result: object


class PlanStore:
    """Content-addressed persistence for tuned plans.

    Thread-safe by construction: every mutation is a single atomic
    ``os.replace`` of an immutable record, concurrent writers of the
    same key write identical bytes, and readers only ever observe a
    complete record or none.

    ``max_records`` / ``max_bytes`` bound the store: when a save pushes
    it past either limit, the least-recently-used records (by file
    mtime; loads refresh it) are deleted until the store fits again,
    counted under ``service.store.evicted``. The just-written record is
    never evicted, even when it alone exceeds ``max_bytes``. Unbounded
    by default.
    """

    def __init__(
        self,
        root: str,
        max_records: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = str(root)
        self.max_records = max_records
        self.max_bytes = max_bytes
        os.makedirs(self.root, exist_ok=True)

    # ---------------------------------------------------------- addressing

    def path_for(self, key: str) -> str:
        """Record path of one content key (two-level fanout)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------ get/put

    def load(self, request: TuneRequest) -> Optional[object]:
        """The stored result of ``request``'s canonical form, if any."""
        key = request.cache_key()
        plan = self._read(key)
        if plan is not None and (
            self.max_records is not None or self.max_bytes is not None
        ):
            try:
                os.utime(self.path_for(key))
            except OSError:
                pass
        return plan.result if plan is not None else None

    def save(self, request: TuneRequest, result: object) -> str:
        """Persist one completed search; returns the record path.

        Identical canonical requests always serialize to identical
        bytes, so concurrent saves of one key are benign (last atomic
        replace wins with the same content).
        """
        canonical = request.canonical()
        key = canonical.cache_key()
        payload = encode_record(key, canonical, result)
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _metrics().inc("service.store.writes")
        self._evict(protect=path)
        return path

    def _evict(self, protect: str) -> None:
        """Delete LRU records until the store is within its bounds."""
        if self.max_records is None and self.max_bytes is None:
            return
        entries = []
        for path in self._record_paths():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
        count = len(entries)
        total = sum(size for _mtime, _path, size in entries)
        # Oldest first; path breaks mtime ties deterministically. The
        # protected (just-written) record is exempt, so a single
        # oversized record cannot empty the store chasing max_bytes.
        entries.sort()
        for _mtime, path, size in entries:
            over_records = (
                self.max_records is not None and count > self.max_records
            )
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not over_records and not over_bytes:
                return
            if path == protect:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            count -= 1
            total -= size
            _metrics().inc("service.store.evicted")
            try:
                os.rmdir(os.path.dirname(path))
            except OSError:
                pass  # shard directory still holds other records

    def _read(self, key: str) -> Optional[StoredPlan]:
        path = self.path_for(key)
        try:
            with open(path, "r") as handle:
                raw = handle.read()
        except OSError:
            return None
        plan = self._decode(key, raw)
        if plan is None:
            _metrics().inc("service.store.corrupt")
        return plan

    def _decode(self, key: str, raw: str) -> Optional[StoredPlan]:
        """Decode one record; ``None`` for anything not fully valid."""
        try:
            record = json.loads(raw)
            if (
                not isinstance(record, dict)
                or record.get("schema") != SCHEMA_VERSION
                or record.get("key") != key
            ):
                return None
            request = TuneRequest.from_dict(record["request"])
            if request.cache_key() != key:
                # The record's content no longer hashes to its address
                # (bit rot, or a hand-edited file): a miss, not a hit
                # for the wrong query.
                return None
            result = decode_result(record["result"], request)
        except (KeyError, TypeError, ValueError):
            return None
        return StoredPlan(key=key, request=request, result=result)

    # ----------------------------------------------------------- scanning

    def __len__(self) -> int:
        return sum(1 for _ in self._record_paths())

    def _record_paths(self) -> Iterator[str]:
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith("."):
                    yield os.path.join(shard_dir, name)

    def records(self) -> Iterator[StoredPlan]:
        """Every valid record, in deterministic (key) order."""
        for path in self._record_paths():
            key = os.path.basename(path)[: -len(".json")]
            plan = self._read(key)
            if plan is not None:
                yield plan

    def nearest_neighbor(
        self, request: TuneRequest
    ) -> Optional[StoredPlan]:
        """The warm-start seed: same search, nearest other chip count.

        A neighbor must match everything that shapes the mesh/slice
        search space except the cluster size — same model, hardware,
        mode, Phase-1 setting, slice bound, mesh-dim floor, and ABFT
        knobs; the batch may differ (it scales every candidate's cost
        roughly alike, so the neighbor's chosen shape remains a good
        ordering prior). Among matches the smallest ``|log2(chips) -
        log2(target)|`` wins, ties toward fewer chips — production
        sweeps step in powers of two, so "adjacent chip count" means
        one doubling away.
        """
        import math

        target = request.canonical()
        best: Optional[Tuple[float, int, StoredPlan]] = None
        for plan in self.records():
            cand = plan.request
            if (
                cand.mode != target.mode
                or cand.model.name != target.model.name
                or cand.hw != target.hw
                or cand.chips == target.chips
                or cand.optimize_dataflow != target.optimize_dataflow
                or cand.min_mesh_dim != target.min_mesh_dim
                or cand.max_slices != target.max_slices
                or cand.abft != target.abft
                or cand.sdc_rate != target.sdc_rate
            ):
                continue
            distance = abs(math.log2(cand.chips) - math.log2(target.chips))
            rank = (distance, cand.chips)
            if best is None or rank < (best[0], best[1]):
                best = (distance, cand.chips, plan)
        return best[2] if best is not None else None


# ------------------------------------------------------------- the codec


def encode_record(key: str, request: TuneRequest, result: object) -> str:
    """The canonical record bytes of one completed search."""
    record = {
        "schema": SCHEMA_VERSION,
        "key": key,
        "request": request.to_dict(),
        "result": encode_result(result),
    }
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def encode_result(result: object) -> Dict[str, Any]:
    """Serialize any of the three mode result objects."""
    if isinstance(result, TuningResult):
        return {"kind": "tune", **_encode_tuning(result)}
    if isinstance(result, RobustTuningResult):
        return {
            "kind": "robust",
            "mesh": list(result.mesh.shape),
            "passes": [_encode_pass(p) for p in result.passes],
            "quantile": result.quantile,
            "robust_seconds": result.robust_seconds,
            "mean_seconds": result.mean_seconds,
            "nominal_seconds": result.nominal_seconds,
            "per_mesh_robust": _encode_per_mesh(result.per_mesh_robust),
        }
    from repro.recovery.degraded import DegradedRetune

    if isinstance(result, DegradedRetune):
        return {
            "kind": "degraded",
            "original": list(result.original.shape),
            "dead": list(result.dead),
            "dropped": result.dropped,
            "result": _encode_tuning(result.result),
        }
    raise TypeError(f"cannot encode result type {type(result).__name__}")


def decode_result(data: Dict[str, Any], request: TuneRequest) -> object:
    """Inverse of :func:`encode_result`.

    ``request`` (canonical) supplies the context a record omits
    because it is reproducible: robust mode's fault-plan ensemble is
    re-sampled from the spec's seed rather than stored.
    """
    kind = data["kind"]
    if kind == "tune":
        return _decode_tuning(data)
    if kind == "robust":
        fault_plans = request.spec.ensemble(
            request.chips, request.hw, request.ensemble
        )
        return RobustTuningResult(
            mesh=Mesh2D(*data["mesh"]),
            passes=tuple(_decode_pass(p) for p in data["passes"]),
            quantile=data["quantile"],
            robust_seconds=data["robust_seconds"],
            mean_seconds=data["mean_seconds"],
            nominal_seconds=data["nominal_seconds"],
            per_mesh_robust=_decode_per_mesh(data["per_mesh_robust"]),
            fault_plans=fault_plans,
        )
    if kind == "degraded":
        from repro.recovery.degraded import DegradedRetune

        return DegradedRetune(
            original=Mesh2D(*data["original"]),
            dead=tuple(data["dead"]),
            dropped=data["dropped"],
            result=_decode_tuning(data["result"]),
        )
    raise ValueError(f"unknown result kind {kind!r}")


def _encode_tuning(result: TuningResult) -> Dict[str, Any]:
    # per_mesh_seconds is reporting-only and search-path dependent
    # (warm-started searches prune candidates); excluding it keeps
    # records byte-identical across warm and cold searches.
    return {
        "mesh": list(result.mesh.shape),
        "passes": [_encode_pass(p) for p in result.passes],
        "block_seconds": result.block_seconds,
    }


def _decode_tuning(data: Dict[str, Any]) -> TuningResult:
    return TuningResult(
        mesh=Mesh2D(*data["mesh"]),
        passes=tuple(_decode_pass(p) for p in data["passes"]),
        block_seconds=data["block_seconds"],
        per_mesh_seconds={},
    )


def _encode_pass(tuned: TunedPass) -> Dict[str, Any]:
    shape = tuned.plan.shape
    estimate = tuned.estimate
    return {
        "layer": tuned.layer_name,
        "pass": tuned.plan.pass_name,
        "shape": [shape.m, shape.n, shape.k, shape.dtype_bytes],
        "dataflow": tuned.plan.dataflow.name,
        "transposed": tuned.plan.transposed,
        "slices": tuned.slices,
        "estimate": [
            estimate.prologue,
            estimate.steady,
            estimate.epilogue,
            estimate.slices,
            estimate.flops_per_chip,
        ],
        "abft": tuned.abft,
        "sdc_rate": tuned.sdc_rate,
    }


def _decode_pass(data: Dict[str, Any]) -> TunedPass:
    m, n, k, dtype_bytes = data["shape"]
    prologue, steady, epilogue, slices, flops = data["estimate"]
    return TunedPass(
        layer_name=data["layer"],
        plan=PassPlan(
            pass_name=data["pass"],
            shape=GeMMShape(m=m, n=n, k=k, dtype_bytes=dtype_bytes),
            dataflow=Dataflow[data["dataflow"]],
            transposed=data["transposed"],
        ),
        slices=data["slices"],
        estimate=CostEstimate(
            prologue=prologue,
            steady=steady,
            epilogue=epilogue,
            slices=slices,
            flops_per_chip=flops,
        ),
        abft=data["abft"],
        sdc_rate=data["sdc_rate"],
    )


def _encode_per_mesh(
    per_mesh: Dict[Tuple[int, int], float]
) -> List[List[Any]]:
    return [
        [rows, cols, seconds]
        for (rows, cols), seconds in sorted(per_mesh.items())
    ]


def _decode_per_mesh(data: List[List[Any]]) -> Dict[Tuple[int, int], float]:
    return {(rows, cols): seconds for rows, cols, seconds in data}
