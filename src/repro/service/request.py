"""The unified tuning request schema: one object, every tuner entry.

Production traffic hits the autotuner through three historical entry
points — :func:`repro.autotuner.tune` (nominal), ``robust_tune``
(fault-aware), and the memoized ``degraded_retune`` stage — each with
its own positional signature. :class:`TuneRequest` replaces all three
call shapes with one keyword-only dataclass that the CLI, the Python
API, and the serving layer (:mod:`repro.service.server`) all share:

* :meth:`TuneRequest.canonical` collapses every knob the requested
  mode ignores (the request-level analogue of
  :meth:`repro.algorithms.base.DistributedGeMM.canonical_config`), so
  near-duplicate production queries collapse onto one cache identity;
* :meth:`TuneRequest.cache_key` hashes the canonical JSON form into
  the content address used by the in-memory result cache and the
  on-disk :class:`repro.service.store.PlanStore`;
* :func:`execute` dispatches a request to the engine function of its
  mode and returns the mode's result object.

The legacy positional signatures keep working as deprecation shims —
``tune(model, batch, chips, hw)`` still runs, with a
``DeprecationWarning`` pointing here.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
from typing import Any, Dict, Optional, Tuple

from repro.faults.hard import HardFault
from repro.faults.spec import FaultSpec
from repro.hw.params import HardwareParams
from repro.mesh.topology import Mesh2D
from repro.models.config import LLMConfig

#: The three tuning modes a request can ask for.
MODES = ("tune", "robust", "degraded")

#: Version of the canonical JSON schema; bump on incompatible change
#: so stored plans from older layouts are treated as misses, never
#: misread.
SCHEMA_VERSION = 1

# Keyword-only construction documents the API redesign contract; the
# dataclass kw_only knob only exists on Python 3.10+, so on 3.9 the
# fields are merely defaulted (the field order below keeps that legal).
_KW_ONLY = {"kw_only": True} if sys.version_info >= (3, 10) else {}


@dataclasses.dataclass(frozen=True, **_KW_ONLY)
class TuneRequest:
    """One autotuning query, whatever the mode.

    Attributes:
        model: The LLM architecture to tune.
        batch: Global batch size (sequences).
        hw: Hardware parameters of the target cluster.
        mode: ``"tune"`` (nominal autotuner), ``"robust"`` (tail-
            quantile search over a fault ensemble), or ``"degraded"``
            (re-tune on the torus surviving one dead chip).
        chips: Cluster size; ignored by ``"degraded"`` (the surviving
            ``mesh`` fixes it).
        optimize_dataflow: Autotuner Phase-1 on/off.
        min_mesh_dim: Smallest torus dimension considered.
        max_slices: Upper bound of the slice-count search.
        abft: Tune for ABFT-protected GeMMs.
        sdc_rate: Silent-corruption rate driving the ABFT recompute
            term; meaningless (and canonicalized away) without
            ``abft``.
        algorithm: Distributed GeMM algorithm simulated by robust
            mode; nominal and degraded tuning always use the shared
            analytical models.
        spec: Fault ensemble description (robust mode only).
        ensemble: Number of sampled fault plans (robust mode only).
        quantile: Tail quantile minimized by robust mode.
        mesh: The original (pre-failure) torus of degraded mode.
        dead: Coordinates of the dead chip in degraded mode.
        engine: Simulation engine hint (``"heap"``/``"compiled"``).
            Execution-only: both engines are bit-identical by
            contract, so the hint never enters the cache key.
    """

    model: LLMConfig
    batch: int
    hw: HardwareParams
    mode: str = "tune"
    chips: int = 0
    optimize_dataflow: bool = True
    min_mesh_dim: int = 2
    max_slices: int = 64
    abft: bool = False
    sdc_rate: float = 0.0
    algorithm: str = "meshslice"
    spec: Optional[FaultSpec] = None
    ensemble: int = 16
    quantile: float = 0.95
    mesh: Optional[Mesh2D] = None
    dead: Optional[Tuple[int, int]] = None
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.max_slices < 1:
            raise ValueError("max_slices must be >= 1")
        if not 0.0 <= self.sdc_rate <= 1.0:
            raise ValueError("sdc_rate must be in [0, 1]")
        if self.mode in ("tune", "robust") and self.chips < 1:
            raise ValueError(f"{self.mode} mode needs chips >= 1")
        if self.mode == "robust":
            if self.spec is None:
                raise ValueError("robust mode needs a fault spec")
            if self.ensemble < 1:
                raise ValueError("ensemble must be >= 1")
            if not 0.0 < self.quantile <= 1.0:
                raise ValueError("quantile must be in (0, 1]")
        if self.mode == "degraded":
            if self.mesh is None or self.dead is None:
                raise ValueError(
                    "degraded mode needs the original mesh and the "
                    "dead chip's coordinates"
                )
            if self.dead not in self.mesh.coords():
                raise ValueError(
                    f"dead chip {self.dead} outside {self.mesh}"
                )

    # ------------------------------------------------------ canonical form

    def canonical(self) -> "TuneRequest":
        """The representative of this request's equivalence class.

        Two requests that must produce identical results share one
        canonical form: every knob the mode ignores is reset to its
        default, ``sdc_rate`` collapses to 0 without ABFT (the
        protected estimate is the only reader), degraded mode derives
        ``chips`` from the surviving mesh, and the engine hint is
        dropped entirely (engines are bit-identical by contract).
        """
        replacements: Dict[str, Any] = {"engine": None}
        if not self.abft:
            replacements["sdc_rate"] = 0.0
        if self.mode != "robust":
            replacements.update(
                algorithm="meshslice", spec=None, ensemble=16,
                quantile=0.95,
            )
        if self.mode == "degraded":
            # The memoized degraded stage runs with the tuner defaults;
            # only (model, batch, mesh, dead, hw) key it.
            replacements.update(
                chips=self.mesh.size,
                optimize_dataflow=True, min_mesh_dim=2, max_slices=64,
                abft=False, sdc_rate=0.0,
            )
        else:
            replacements.update(mesh=None, dead=None)
        canonical = dataclasses.replace(self, **replacements)
        return self if canonical == self else canonical

    def cache_key(self) -> str:
        """Content address of the canonical form (sha256 hex digest)."""
        payload = json.dumps(
            self.canonical().to_dict(),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (stable schema; see ``from_dict``)."""
        return {
            "schema": SCHEMA_VERSION,
            "mode": self.mode,
            "model": _encode_dataclass(self.model),
            "batch": self.batch,
            "chips": self.chips,
            "hw": _encode_dataclass(self.hw),
            "optimize_dataflow": self.optimize_dataflow,
            "min_mesh_dim": self.min_mesh_dim,
            "max_slices": self.max_slices,
            "abft": self.abft,
            "sdc_rate": self.sdc_rate,
            "algorithm": self.algorithm,
            "spec": _encode_spec(self.spec),
            "ensemble": self.ensemble,
            "quantile": self.quantile,
            "mesh": list(self.mesh.shape) if self.mesh else None,
            "dead": list(self.dead) if self.dead else None,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneRequest":
        """Build a request from a dict (CLI query files, store records).

        ``model`` and ``hw`` accept either a registry name
        (``"gpt3-175b"``, ``"tpuv4-sim"``) or the full field dict the
        serializer emits, so handwritten query files stay short.
        """
        schema = data.get("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported TuneRequest schema {schema!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known - {"schema"}
        if unknown:
            raise ValueError(
                f"unknown TuneRequest fields: {sorted(unknown)}"
            )
        kwargs: Dict[str, Any] = {
            key: value
            for key, value in data.items()
            if key in known and value is not None
        }
        if "model" in kwargs:
            kwargs["model"] = _decode_model(kwargs["model"])
        if "hw" in kwargs:
            kwargs["hw"] = _decode_hw(kwargs["hw"])
        if "spec" in kwargs:
            kwargs["spec"] = _decode_spec(kwargs["spec"])
        if "mesh" in kwargs:
            kwargs["mesh"] = Mesh2D(*kwargs["mesh"])
        if "dead" in kwargs:
            kwargs["dead"] = tuple(kwargs["dead"])
        return cls(**kwargs)

    def run(self):
        """Execute this request directly (no store, no service)."""
        return execute(self)


# ------------------------------------------------------------ field codecs


def _encode_dataclass(value: Any) -> Dict[str, Any]:
    """Flat frozen dataclass -> field dict (LLMConfig, HardwareParams)."""
    return {
        field.name: getattr(value, field.name)
        for field in dataclasses.fields(value)
    }


def _decode_model(value: Any) -> LLMConfig:
    if isinstance(value, LLMConfig):
        return value
    if isinstance(value, str):
        from repro.models import get_model

        return get_model(value)
    return LLMConfig(**value)


def _decode_hw(value: Any) -> HardwareParams:
    if isinstance(value, HardwareParams):
        return value
    if isinstance(value, str):
        from repro.hw import get_preset

        return get_preset(value)
    return HardwareParams(**value)


def _encode_spec(spec: Optional[FaultSpec]) -> Optional[Dict[str, Any]]:
    if spec is None:
        return None
    data = _encode_dataclass(spec)
    if spec.retry_policy is not None:
        data["retry_policy"] = _encode_dataclass(spec.retry_policy)
    data["hard_faults"] = [
        _encode_dataclass(fault) for fault in spec.hard_faults
    ]
    return data


def _decode_spec(value: Any) -> FaultSpec:
    if isinstance(value, FaultSpec):
        return value
    data = dict(value)
    if data.get("retry_policy") is not None:
        from repro.recovery.retry import RetryPolicy

        data["retry_policy"] = RetryPolicy(**data["retry_policy"])
    data["hard_faults"] = tuple(
        HardFault(**fault) for fault in data.get("hard_faults") or ()
    )
    return FaultSpec(**data)


# --------------------------------------------------------------- dispatch


def execute(request: TuneRequest):
    """Run one request through the engine function of its mode.

    This is the cold path — no plan store, no request coalescing; the
    serving layer (:class:`repro.service.server.TunerService`) wraps it
    with both. Returns the mode's native result object:
    :class:`~repro.autotuner.TuningResult`,
    :class:`~repro.autotuner.RobustTuningResult`, or
    :class:`~repro.recovery.degraded.DegradedRetune`.
    """
    if request.engine is not None:
        from repro.sim.compiled import set_default_engine

        set_default_engine(request.engine)
    request = request.canonical()
    if request.mode == "tune":
        from repro.autotuner.search import tune_model

        return tune_model(
            request.model,
            request.batch,
            request.chips,
            request.hw,
            optimize_dataflow=request.optimize_dataflow,
            min_mesh_dim=request.min_mesh_dim,
            max_slices=request.max_slices,
            abft=request.abft,
            sdc_rate=request.sdc_rate,
        )
    if request.mode == "robust":
        from repro.autotuner.search import robust_tune_model

        return robust_tune_model(
            request.model,
            request.batch,
            request.chips,
            request.hw,
            spec=request.spec,
            ensemble=request.ensemble,
            quantile=request.quantile,
            algorithm=request.algorithm,
            optimize_dataflow=request.optimize_dataflow,
            min_mesh_dim=request.min_mesh_dim,
            max_slices=request.max_slices,
            abft=request.abft,
            sdc_rate=request.sdc_rate,
        )
    from repro.perf.pipeline import degraded_retune_model

    return degraded_retune_model(
        request.model, request.batch, request.mesh, request.dead, request.hw
    )
