"""Tuner-as-a-service: unified requests, persistent plans, serving.

The pieces, bottom to top:

* :class:`TuneRequest` / :func:`execute` — the one request schema all
  tuner entry points share (:mod:`repro.service.request`);
* :class:`PlanStore` — on-disk content-addressed plan persistence
  (:mod:`repro.service.store`);
* :func:`warm_tune` — neighbor-seeded branch-and-bound
  (:mod:`repro.service.warmstart`);
* :class:`TunerService` — the concurrent, deduplicating front end
  (:mod:`repro.service.server`);
* :func:`run_load` / :func:`zipf_mix` — the load generator behind
  ``meshslice serve --replay`` and ``BENCH_service.json``
  (:mod:`repro.service.loadgen`).
"""

from repro.service.loadgen import (
    LoadReport,
    default_catalog,
    run_load,
    zipf_mix,
)
from repro.service.request import MODES, TuneRequest, execute
from repro.service.server import TunerService
from repro.service.store import PlanStore, StoredPlan
from repro.service.warmstart import warm_tune

__all__ = [
    "LoadReport",
    "MODES",
    "PlanStore",
    "StoredPlan",
    "TuneRequest",
    "TunerService",
    "default_catalog",
    "execute",
    "run_load",
    "warm_tune",
    "zipf_mix",
]
