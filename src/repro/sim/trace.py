"""Trace analysis: aggregating spans into the paper's reported metrics.

:class:`Trace` wraps one simulated span list and exposes every
aggregation in one place: the communication-time breakdown of Figure 10
(launch / transfer / sync, overlapped plus non-overlapped), per-resource
busy time, an ASCII timeline renderer in the spirit of the paper's
Figure 4, and Chrome/Perfetto trace export (span tracks plus derived
per-resource occupancy counter tracks).

The module-level delegates deprecated in 1.3 (``comm_breakdown``,
``busy_time``, ``compute_time``, ``kind_durations``,
``to_chrome_trace``, ``write_chrome_trace``) were **removed** in 1.6 —
call the :class:`Trace` methods instead
(``Trace.from_spans(spans).breakdown()`` and friends).
:func:`ascii_timeline` remains supported as the one convenience
renderer for bare span lists.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.sim.engine import CORE, LINK_H, LINK_V, Span, makespan

#: Default resource lanes of the ASCII timeline (Figure 4's rows).
DEFAULT_LANES: Tuple[Tuple[str, str], ...] = (
    ("compute", CORE),
    ("inter-col", LINK_H),
    ("inter-row", LINK_V),
)


@dataclasses.dataclass(frozen=True)
class CommBreakdown:
    """Total communication time split the way Figure 10 reports it."""

    launch: float
    transfer: float
    sync: float

    @property
    def total(self) -> float:
        return self.launch + self.transfer + self.sync

    def relative_to(self, compute_seconds: float) -> "CommBreakdown":
        """Each component divided by the computation time."""
        if compute_seconds <= 0:
            raise ValueError("compute_seconds must be positive")
        return CommBreakdown(
            launch=self.launch / compute_seconds,
            transfer=self.transfer / compute_seconds,
            sync=self.sync / compute_seconds,
        )

    def __add__(self, other: "CommBreakdown") -> "CommBreakdown":
        return CommBreakdown(
            launch=self.launch + other.launch,
            transfer=self.transfer + other.transfer,
            sync=self.sync + other.sync,
        )


ZERO_BREAKDOWN = CommBreakdown(0.0, 0.0, 0.0)


@dataclasses.dataclass(frozen=True)
class Trace:
    """One simulated execution's spans, with every aggregation on it."""

    spans: Tuple[Span, ...]

    @classmethod
    def from_spans(cls, spans: Iterable[Span]) -> "Trace":
        """Build a trace from any span iterable (consumed once)."""
        return cls(spans=tuple(spans))

    @property
    def makespan(self) -> float:
        """End time of the last span (0 for an empty trace)."""
        return makespan(self.spans)

    def breakdown(self) -> CommBreakdown:
        """Nominal launch/transfer/sync totals of all comm spans.

        Uses the components recorded when the operation was modelled,
        not the (possibly contention-stretched) wall-clock span,
        matching the paper's definition of total (overlapped plus
        non-overlapped) communication time.
        """
        launch = transfer = sync = 0.0
        for span in self.spans:
            if span.kind != "comm":
                continue
            launch += float(span.meta.get("launch", 0.0))
            transfer += float(span.meta.get("transfer", 0.0))
            sync += float(span.meta.get("sync", 0.0))
        return CommBreakdown(launch=launch, transfer=transfer, sync=sync)

    def busy_time(self, resource: str) -> float:
        """Total wall-clock time ``resource`` was held by any span."""
        intervals = sorted(
            (s.start, s.end) for s in self.spans if resource in s.exclusive
        )
        total = 0.0
        cursor = None
        for start, end in intervals:
            if cursor is None or start > cursor:
                total += end - start
                cursor = end
            elif end > cursor:
                total += end - cursor
                cursor = end
        return total

    def compute_time(self) -> float:
        """Total wall-clock time spent in GeMM compute spans."""
        return sum(s.duration for s in self.spans if s.kind == "compute")

    def kind_durations(self) -> Dict[str, float]:
        """Total span duration per activity kind."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.kind] = totals.get(span.kind, 0.0) + span.duration
        return totals

    def timeline(
        self,
        width: int = 100,
        lanes: Sequence[Tuple[str, str]] = DEFAULT_LANES,
    ) -> str:
        """Render the spans as an ASCII Gantt chart (one row per lane).

        Each lane shows when its exclusive resource was busy; this is
        the textual analogue of the paper's Figure 4 timelines.
        """
        end = self.makespan
        if end <= 0:
            return "(empty timeline)"
        label_width = max(len(name) for name, _ in lanes) + 1
        scale = width / end
        lines = []
        for name, resource in lanes:
            row = [" "] * width
            for span in self.spans:
                if resource not in span.exclusive or span.duration <= 0:
                    continue
                lo = min(int(span.start * scale), width - 1)
                hi = min(max(int(span.end * scale), lo + 1), width)
                char = "#" if span.kind == "compute" else (
                    "." if span.kind == "slice" else "="
                )
                for x in range(lo, hi):
                    row[x] = char
            lines.append(f"{name:<{label_width}}|{''.join(row)}|")
        lines.append(
            f"{'':<{label_width}} 0{'':{width - 12}}{end * 1e3:9.3f} ms"
        )
        return "\n".join(lines)

    def counter_events(self) -> List[Dict[str, object]]:
        """Derived occupancy counter tracks (``ph: "C"`` events).

        One counter series per exclusive resource: how many spans hold
        the resource at each transition instant. Chrome/Perfetto render
        these as area charts below the span tracks, making contention
        (occupancy > 1 on a queued resource) visible at a glance.
        Deterministic: resources and transition times are emitted in
        sorted order.
        """
        transitions: Dict[str, Dict[float, int]] = {}
        for span in self.spans:
            for resource in span.exclusive:
                deltas = transitions.setdefault(resource, {})
                deltas[span.start] = deltas.get(span.start, 0) + 1
                deltas[span.end] = deltas.get(span.end, 0) - 1
        events: List[Dict[str, object]] = []
        for resource in sorted(transitions):
            level = 0
            for time in sorted(transitions[resource]):
                delta = transitions[resource][time]
                if not delta:  # a start and an end cancel out
                    continue
                level += delta
                events.append(
                    {
                        "name": f"busy:{resource}",
                        "ph": "C",
                        "pid": 1,
                        "ts": time * 1e6,
                        "args": {"busy": level},
                    }
                )
        return events

    def to_chrome(self) -> List[Dict[str, object]]:
        """Convert the spans to Chrome tracing's JSON event format.

        Load the result (after ``json.dump``) in ``chrome://tracing``
        or Perfetto to inspect a simulated timeline interactively.
        Each exclusive resource becomes a track (``tid``); activities
        without exclusive resources land on a ``"free"`` track. Times
        are emitted in microseconds, as the format requires. The span
        events are followed by the :meth:`counter_events` occupancy
        tracks.
        """
        track_ids: Dict[str, int] = {}
        events: List[Dict[str, object]] = []

        def track(resource: str) -> int:
            if resource not in track_ids:
                track_ids[resource] = len(track_ids) + 1
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 1,
                        "tid": track_ids[resource],
                        "args": {"name": resource},
                    }
                )
            return track_ids[resource]

        for span in self.spans:
            resources = span.exclusive or ("free",)
            for resource in resources:
                events.append(
                    {
                        "name": span.label,
                        "cat": span.kind,
                        "ph": "X",
                        "pid": 1,
                        "tid": track(resource),
                        "ts": span.start * 1e6,
                        "dur": span.duration * 1e6,
                        "args": {
                            key: value
                            for key, value in span.meta.items()
                            if isinstance(value, (int, float, str, bool))
                        },
                    }
                )
        events.extend(self.counter_events())
        return events

    def write_chrome(self, path: str) -> None:
        """Write a Chrome/Perfetto-loadable trace file."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle)


def ascii_timeline(
    spans: Sequence[Span],
    width: int = 100,
    lanes: Sequence[Tuple[str, str]] = DEFAULT_LANES,
) -> str:
    """ASCII Gantt chart of a span list (:meth:`Trace.timeline`)."""
    return Trace.from_spans(spans).timeline(width=width, lanes=lanes)
