"""Cluster simulator: fluid DES engine, chip model, programs, traces."""

from repro.sim.chip import ComputeCost, effective_gemm_seconds, gemm_cost, slice_cost
from repro.sim.cluster import SimResult, combined_utilization, simulate
from repro.sim.engine import (
    CORE,
    HBM,
    LINK_H,
    LINK_V,
    NIC,
    Activity,
    Engine,
    SimulationError,
    Span,
    makespan,
)
from repro.sim.program import Program, ProgramBuilder
from repro.sim.trace import (
    DEFAULT_LANES,
    ZERO_BREAKDOWN,
    CommBreakdown,
    Trace,
    ascii_timeline,
    busy_time,
    comm_breakdown,
    compute_time,
    kind_durations,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Activity",
    "CORE",
    "CommBreakdown",
    "ComputeCost",
    "DEFAULT_LANES",
    "Engine",
    "HBM",
    "LINK_H",
    "LINK_V",
    "NIC",
    "Program",
    "ProgramBuilder",
    "SimResult",
    "SimulationError",
    "Span",
    "Trace",
    "ZERO_BREAKDOWN",
    "ascii_timeline",
    "busy_time",
    "comm_breakdown",
    "combined_utilization",
    "compute_time",
    "effective_gemm_seconds",
    "gemm_cost",
    "kind_durations",
    "makespan",
    "simulate",
    "slice_cost",
    "to_chrome_trace",
    "write_chrome_trace",
]
