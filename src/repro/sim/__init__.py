"""Cluster simulator: fluid DES engine, chip model, programs, traces."""

from repro.sim.chip import ComputeCost, effective_gemm_seconds, gemm_cost, slice_cost
from repro.sim.cluster import SimResult, combined_utilization, simulate
from repro.sim.engine import (
    CORE,
    HBM,
    LINK_H,
    LINK_V,
    NIC,
    Activity,
    Engine,
    SimFailure,
    SimulationError,
    Span,
    makespan,
)
from repro.sim.program import Program, ProgramBuilder
from repro.sim.trace import (
    DEFAULT_LANES,
    ZERO_BREAKDOWN,
    CommBreakdown,
    Trace,
    ascii_timeline,
)

__all__ = [
    "Activity",
    "CORE",
    "CommBreakdown",
    "ComputeCost",
    "DEFAULT_LANES",
    "Engine",
    "HBM",
    "LINK_H",
    "LINK_V",
    "NIC",
    "Program",
    "ProgramBuilder",
    "SimFailure",
    "SimResult",
    "SimulationError",
    "Span",
    "Trace",
    "ZERO_BREAKDOWN",
    "ascii_timeline",
    "combined_utilization",
    "effective_gemm_seconds",
    "gemm_cost",
    "makespan",
    "simulate",
    "slice_cost",
]
