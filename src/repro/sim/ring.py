"""Per-step ring network simulator.

This is the high-fidelity validation layer for the communication cost
model: it simulates ring collectives step by step — every chip, every
synchronization, every shard (or packet) transfer — instead of using
the closed-form expressions of :class:`repro.comm.cost.CommCostModel`.
With homogeneous chip start times the two must agree exactly (the tests
pin this); with skewed start times, the step simulator shows how ring
synchronization absorbs the skew, which is how we produce the
"measured" communication times for the Figure 15 reproduction.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.hw.params import HardwareParams


@dataclasses.dataclass
class RingSimResult:
    """Outcome of one step-simulated collective.

    Attributes:
        total_time: Time from operation launch until every chip holds
            the final result (seconds, relative to time 0).
        step_completions: Completion time of each synchronized step.
        bytes_per_link: Bytes each directed link carried in total.
        syncs: Number of synchronization events on the critical path.
    """

    total_time: float
    step_completions: List[float]
    bytes_per_link: float
    syncs: int


def _start_vector(ring_size: int, start_times: Optional[Sequence[float]]) -> List[float]:
    if start_times is None:
        return [0.0] * ring_size
    if len(start_times) != ring_size:
        raise ValueError(
            f"need {ring_size} start times, got {len(start_times)}"
        )
    return list(start_times)


def simulate_allgather(
    ring_size: int,
    shard_bytes: float,
    hw: HardwareParams,
    start_times: Optional[Sequence[float]] = None,
) -> RingSimResult:
    """Step-simulate a ring AllGather.

    Every step is a neighbour synchronization followed by a full-shard
    transfer on every link in parallel (Figure 3, right). A chip can
    begin step ``t`` only when both it and its upstream neighbour have
    finished step ``t - 1``.
    """
    _check(ring_size, shard_bytes)
    starts = _start_vector(ring_size, start_times)
    if ring_size == 1:
        # A collective over one chip is a no-op (no launch needed).
        return RingSimResult(max(starts), [], 0.0, 0)
    ready = [t + hw.t_launch for t in starts]
    transfer = shard_bytes / hw.ring_bandwidth
    completions = []
    for _step in range(ring_size - 1):
        new_ready = []
        for rank in range(ring_size):
            upstream = (rank - 1) % ring_size
            start = max(ready[rank], ready[upstream]) + hw.t_sync
            new_ready.append(start + transfer)
        ready = new_ready
        completions.append(max(ready))
    return RingSimResult(
        total_time=max(ready),
        step_completions=completions,
        bytes_per_link=(ring_size - 1) * shard_bytes,
        syncs=ring_size - 1,
    )


def simulate_reducescatter(
    ring_size: int,
    shard_bytes: float,
    hw: HardwareParams,
    start_times: Optional[Sequence[float]] = None,
) -> RingSimResult:
    """Step-simulate a ring ReduceScatter.

    Identical communication structure to AllGather (partial sums travel
    instead of shards), so it shares the implementation.
    """
    return simulate_allgather(ring_size, shard_bytes, hw, start_times)


def simulate_broadcast(
    ring_size: int,
    shard_bytes: float,
    packets: int,
    hw: HardwareParams,
    start_times: Optional[Sequence[float]] = None,
) -> RingSimResult:
    """Step-simulate SUMMA's pipelined ring broadcast (Figure 3, left).

    The root's shard is split into ``packets`` packets streamed over the
    ring: packet ``d`` leaves the root at stage ``d`` and takes
    ``ring_size - 1`` hops, so the pipeline drains after
    ``ring_size + packets - 2`` stages. Every stage is globally
    synchronized (the source of SUMMA's O(P^2) synchronization
    overhead when repeated every iteration).
    """
    _check(ring_size, shard_bytes)
    if packets < 1:
        raise ValueError("packets must be >= 1")
    starts = _start_vector(ring_size, start_times)
    if ring_size == 1:
        return RingSimResult(max(starts), [], 0.0, 0)
    clock = max(starts) + hw.t_launch
    packet_time = (shard_bytes / packets) / hw.ring_bandwidth
    stages = ring_size + packets - 2
    completions = []
    for _stage in range(stages):
        clock += hw.t_sync + packet_time
        completions.append(clock)
    return RingSimResult(
        total_time=clock,
        step_completions=completions,
        bytes_per_link=shard_bytes,
        syncs=stages,
    )


def simulate_reduce(
    ring_size: int,
    shard_bytes: float,
    packets: int,
    hw: HardwareParams,
    start_times: Optional[Sequence[float]] = None,
) -> RingSimResult:
    """Step-simulate SUMMA's pipelined all-to-one reduce."""
    return simulate_broadcast(ring_size, shard_bytes, packets, hw, start_times)


def simulate_sendrecv(
    message_bytes: float,
    hops: int,
    hw: HardwareParams,
    start_time: float = 0.0,
) -> RingSimResult:
    """Step-simulate a multi-hop SendRecv."""
    if message_bytes < 0 or hops < 0:
        raise ValueError("message_bytes and hops must be non-negative")
    if hops == 0 or message_bytes == 0:
        return RingSimResult(start_time, [], 0.0, 0)
    clock = start_time + hw.t_launch
    completions = []
    for _hop in range(hops):
        clock += hw.t_sync + message_bytes / hw.ring_bandwidth
        completions.append(clock)
    return RingSimResult(
        total_time=clock,
        step_completions=completions,
        bytes_per_link=message_bytes,
        syncs=hops,
    )


def _check(ring_size: int, shard_bytes: float) -> None:
    if ring_size < 1:
        raise ValueError(f"ring_size must be >= 1, got {ring_size}")
    if shard_bytes < 0:
        raise ValueError("shard_bytes must be non-negative")
