"""Fluid discrete-event simulation engine.

This engine is the reproduction's stand-in for the paper's customized
SST + rdmaNic + DRAMSim3 stack (Section 4.1). It simulates a
representative chip of an SPMD cluster at *activity* granularity: a
GeMM kernel, a collective communication, or a slicing copy is one
activity with

* a nominal duration (its execution time with no interference),
* a set of **exclusive resources** it occupies (the compute core, one
  ICI link direction), and
* **shared-capacity demands** (HBM bandwidth) under which concurrent
  activities slow each other down proportionally.

Exclusive resources give the paper's overlap semantics for free:
software pipelining emerges from dependency edges plus link/core
serialization, prologues and epilogues appear as the non-overlapped
first/last iterations, and the "no collective overlap on real TPUs"
mode is expressed by making collectives also claim the core. The shared
HBM resource reproduces the only cross-unit interference the paper
models: contention between the NIC and the compute cores for HBM
bandwidth.

The fluid approximation: when the sum of HBM demands exceeds capacity,
every activity's progress rate is scaled by ``capacity / total_demand``
(proportional sharing). Rates are recomputed whenever any activity
starts or finishes, so the simulation is exact for piecewise-constant
demand.

Implementation notes (the event-driven core)
--------------------------------------------

The original engine re-sorted the full ready list, rescanned every
waiting activity, and rebuilt every shared-demand total on *every*
event. This version is event-driven:

* **Ready heap.** Dependency-satisfied activities live in a binary heap
  keyed ``(ready_time, aid)``, so the priority scan of the start phase
  pops candidates in order instead of sorting a list per event.
* **Per-resource wait queues.** An activity blocked on a busy exclusive
  resource parks in that resource's wait queue and is only reconsidered
  when the resource actually frees (resources free exactly at activity
  completion, so a parked activity can never become startable at any
  other moment). Woken waiters re-enter the ready heap, which restores
  the global ``(ready_time, aid)`` service order of the original
  full-list scan.
* **Incremental shared-demand totals.** Each shared resource tracks its
  set of running consumers (in start order). Totals, contention
  factors, and per-activity rates are recomputed only for resources
  whose membership changed at the current event, and only for the
  activities consuming those resources.

Bit-exactness: per-resource totals are re-accumulated from the ordered
consumer set (never incrementally adjusted with ``+= / -=``), which
reproduces the seed engine's left-to-right summation exactly; the time
accumulation, remaining-work decrements, and completion thresholds are
the same floating-point expressions in the same order. The engine is
therefore span-for-span bit-identical with the reference step-loop
implementation kept under ``tests/reference_engine.py`` (enforced by
``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.obs.hooks import wait_sink as _wait_sink

if TYPE_CHECKING:  # pragma: no cover - avoid the sim -> faults cycle
    from repro.faults.hard import HardFault

#: Canonical resource names used by program builders.
CORE = "core"
LINK_H = "link_h"  # inter-column (horizontal) ICI ring direction
LINK_V = "link_v"  # inter-row (vertical) ICI ring direction
HBM = "hbm"
NIC = "nic"  # shared NIC of a logical-mesh chip (Section 6)

_EPS = 1e-15


@dataclasses.dataclass
class Activity:
    """One unit of simulated work.

    Attributes:
        aid: Unique id within its program.
        label: Human-readable name (shown in traces).
        kind: Category used for reporting, e.g. ``"compute"``,
            ``"comm"``, ``"slice"``.
        duration: Nominal duration in seconds at full rate. May be 0
            for pure ordering points.
        exclusive: Names of exclusive resources held while running.
        shared: Mapping of shared resource name to demand rate
            (units/second at full progress rate).
        deps: Ids of activities that must finish before this starts.
        meta: Free-form metadata (cost breakdowns, flop counts).
    """

    aid: int
    label: str
    kind: str
    duration: float
    exclusive: Tuple[str, ...] = ()
    shared: Dict[str, float] = dataclasses.field(default_factory=dict)
    deps: Tuple[int, ...] = ()
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"activity {self.label!r} has negative duration")
        for demand in self.shared.values():
            if demand < 0:
                raise ValueError(f"activity {self.label!r} has negative demand")


class Span(NamedTuple):
    """Recorded execution interval of one activity.

    A ``NamedTuple`` rather than a dataclass: spans are produced in bulk
    on the simulator's hot path (one per activity per run) and the
    C-level tuple constructor and attribute access keep materialization
    cheap for both the event-heap engine and the compiled engine's
    vectorized replay.
    """

    aid: int
    label: str
    kind: str
    start: float
    end: float
    exclusive: Tuple[str, ...]
    meta: Dict[str, object]

    @property
    def duration(self) -> float:
        return self.end - self.start


class SimulationError(RuntimeError):
    """Raised for structural problems: cycles, unknown dependencies."""


@dataclasses.dataclass(frozen=True)
class SimFailure:
    """A hard fault interrupted the run (a chip or link died).

    Surfaced by :meth:`Engine.run_with_failures` as a structured result
    — never an exception, and never a silently-truncated span list that
    looks like a fast finish.

    Attributes:
        time: Simulated time at which the victim resource died. The
            cluster's lockstep step halts here; for goodput modeling
            this is the wall time the failing step still consumed.
        resource: The dead resource (``"core"``, ``"link_h"``, ...).
        kind: ``"chip"`` or ``"link"``.
        in_flight: Partial spans of the activities running at the
            failure instant, truncated at ``time`` and marked with
            ``meta["interrupted"] = True``. Sorted by ``(start, aid)``.
        finished: Number of activities that completed before the fault.
        unstarted: Number of activities that never started.
    """

    time: float
    resource: str
    kind: str
    in_flight: Tuple[Span, ...]
    finished: int
    unstarted: int

    @property
    def total(self) -> int:
        """Total activities of the interrupted program."""
        return self.finished + len(self.in_flight) + self.unstarted


class Engine:
    """Runs a set of activities to completion.

    Args:
        activities: The activity DAG. Ids must be unique and
            dependencies must refer to existing ids.
        shared_capacities: Capacity (units/second) of each shared
            resource. Demands on resources not listed here are treated
            as unconstrained.
    """

    def __init__(
        self,
        activities: Sequence[Activity],
        shared_capacities: Optional[Dict[str, float]] = None,
    ):
        self.activities = {a.aid: a for a in activities}
        if len(self.activities) != len(activities):
            raise SimulationError("duplicate activity ids")
        for act in activities:
            for dep in act.deps:
                if dep not in self.activities:
                    raise SimulationError(
                        f"activity {act.label!r} depends on unknown id {dep}"
                    )
        self.shared_capacities = dict(shared_capacities or {})

    def run(self) -> List[Span]:
        """Execute the DAG; returns spans sorted by start time.

        This is the no-failure fast path: no hard-fault bookkeeping
        runs, and results are bit-identical to the engine before
        failures existed (pinned by ``tests/test_engine_equivalence``).
        """
        spans, _failure = self._run(None, False)
        return spans

    def run_with_failures(
        self, hard_faults: Sequence["HardFault"] = ()
    ) -> Tuple[List[Span], Optional[SimFailure]]:
        """Execute the DAG under hard faults; may end in a failure.

        Args:
            hard_faults: Permanent resource deaths (duck-typed objects
                with ``time``/``resource``/``kind`` attributes — see
                :mod:`repro.faults.hard`). Only the earliest can fire:
                the lockstep step halts there.

        Returns:
            ``(spans, failure)``. ``failure`` is ``None`` when the
            program completed before any fault time (then ``spans`` is
            exactly :meth:`run`'s result); otherwise the structured
            :class:`SimFailure` with the completed spans so far.

        Activities whose fault plan marked them with
        ``meta["failed_resource"]`` (a transient-outage retry budget
        that exhausted — see ``repro.recovery.retry``) also end the run:
        the named link is declared dead at the instant the activity's
        last backoff expires.
        """
        fault = None
        for candidate in hard_faults:
            if fault is None or candidate.time < fault.time:
                fault = candidate
        return self._run(fault, True)

    def _run(
        self, fault: Optional["HardFault"], check_poison: bool
    ) -> Tuple[List[Span], Optional[SimFailure]]:
        """Shared event loop of :meth:`run` and :meth:`run_with_failures`.

        Activity ids and resource names are interned to dense list
        indices up front, so the event loops below are pure list/int
        operations; heap entries carry ``(ready_time, aid, index)``,
        which orders identically to ``(ready_time, aid)`` because aids
        are unique.

        With ``fault is None`` and ``check_poison`` false the loop's
        arithmetic is untouched — the failure checks are pure
        comparisons behind constant-false guards, so the no-failure
        path stays bit-identical.
        """
        acts = self.activities
        n_acts = len(acts)
        act_list = list(acts.values())
        index_of = {act.aid: i for i, act in enumerate(act_list)}

        fail_time = fault.time if fault is not None else None
        poisoned: Optional[Set[int]] = None
        if check_poison:
            marked = {
                i
                for i, act in enumerate(act_list)
                if act.meta.get("failed_resource")
            }
            if marked:
                poisoned = marked

        res_index: Dict[str, int] = {}
        aids: List[int] = [0] * n_acts
        durations: List[float] = [0.0] * n_acts
        exclusives: List[Tuple[int, ...]] = [()] * n_acts
        shareds: List[Dict[int, float]] = [{}] * n_acts
        dep_count: List[int] = [0] * n_acts
        dependents: List[List[int]] = [[] for _ in range(n_acts)]
        for i, act in enumerate(act_list):
            aids[i] = act.aid
            durations[i] = act.duration
            excl = []
            for name in act.exclusive:
                r = res_index.get(name)
                if r is None:
                    r = res_index[name] = len(res_index)
                excl.append(r)
            exclusives[i] = tuple(excl)
            shared: Dict[int, float] = {}
            for name, demand in act.shared.items():
                r = res_index.get(name)
                if r is None:
                    r = res_index[name] = len(res_index)
                shared[r] = demand
            shareds[i] = shared
            # Duplicate dep ids collapse, exactly as the reference
            # engine's per-activity dependency *set* collapses them.
            unique_deps = set(act.deps)
            dep_count[i] = len(unique_deps)
            for dep in unique_deps:
                dependents[index_of[dep]].append(i)

        n_res = len(res_index)
        capacities: List[Optional[float]] = [None] * n_res
        for name, value in self.shared_capacities.items():
            r = res_index.get(name)
            if r is not None:
                capacities[r] = value

        heappush = heapq.heappush
        heappop = heapq.heappop
        ready_heap = [
            (0.0, aids[i], i) for i in range(n_acts) if not dep_count[i]
        ]
        heapq.heapify(ready_heap)

        busy: List[bool] = [False] * n_res
        # index -> [start, remaining, completion threshold, rate], in
        # start order.
        running: Dict[int, List[float]] = {}
        # Per exclusive resource: a min-heap of (ready_time, aid, index)
        # entries parked on it. Only the front waiter is woken when the
        # resource frees; if it re-parks elsewhere while the resource is
        # still free, the next waiter is cascaded into the ready heap.
        # Waiters therefore surface in global (ready_time, aid) order —
        # each cascade releases an entry ranking after its predecessor —
        # which reproduces the reference engine's full rescan without
        # its quadratic wake-all churn.
        wait_q: List[list] = [[] for _ in range(n_res)]
        # index -> resource whose freeing woke it (pending cascade).
        wake_origin: Dict[int, int] = {}
        # Per shared resource: {running index: demand}, in start order,
        # so that re-accumulating a total replays the reference
        # engine's left-to-right summation bit-for-bit.
        members: List[Dict[int, float]] = [{} for _ in range(n_res)]
        factors: List[float] = [1.0] * n_res
        # Shared resources whose consumer set changed since their last
        # total/factor recompute.
        changed: Set[int] = set()

        spans: List[Span] = []
        finished = 0
        now = 0.0
        inf = float("inf")
        # Queue-wait observation channel (repro.obs): when a capture is
        # active, each start records how long the activity sat ready but
        # blocked. Pure observation — never read by the loop — so the
        # simulated spans are bit-identical with or without it.
        observed = _wait_sink()
        # Guard against infinite loops on malformed inputs.
        max_steps = 10 * n_acts + 100

        def _interrupted(time: float, resource: str, kind: str) -> SimFailure:
            """The structured failure at ``time``; reads live loop state."""
            in_flight = []
            for i, state in running.items():
                act = act_list[i]
                meta = dict(act.meta)
                meta["interrupted"] = True
                in_flight.append(
                    Span(aids[i], act.label, act.kind, state[0], time,
                         act.exclusive, meta)
                )
            in_flight.sort(key=lambda s: (s.start, s.aid))
            return SimFailure(
                time=time,
                resource=resource,
                kind=kind,
                in_flight=tuple(in_flight),
                finished=finished,
                unstarted=n_acts - finished - len(running),
            )

        _step = 0
        while True:
            _step += 1
            if _step > max_steps:
                raise SimulationError("simulation did not converge (internal error)")

            # -- Start phase: serve newly-ready and woken activities in
            # (ready_time, aid) order; blocked ones park on the first
            # busy resource they need.
            while ready_heap:
                item = heappop(ready_heap)
                i = item[2]
                origin = wake_origin.pop(i, -1) if wake_origin else -1
                exclusive = exclusives[i]
                blocked_on = -1
                for r in exclusive:
                    if busy[r]:
                        blocked_on = r
                        break
                if blocked_on >= 0:
                    heappush(wait_q[blocked_on], item)
                    # This waiter moved on while its wake-origin is
                    # still free: give the origin's next waiter a turn.
                    if origin >= 0 and not busy[origin]:
                        queue = wait_q[origin]
                        if queue:
                            nxt = heappop(queue)
                            wake_origin[nxt[2]] = origin
                            heappush(ready_heap, nxt)
                    continue
                for r in exclusive:
                    busy[r] = True
                if observed is not None:
                    observed.append((act_list[i].kind, now - item[0]))
                duration = durations[i]
                running[i] = [
                    now,
                    duration if duration > 0.0 else 0.0,
                    _EPS * (duration if duration > 1.0 else 1.0),
                    1.0,
                ]
                shared = shareds[i]
                if shared:
                    for r, demand in shared.items():
                        members[r][i] = demand
                        changed.add(r)

            if not running:
                unresolved = [
                    act_list[i].label for i in range(n_acts) if dep_count[i]
                ]
                if unresolved:
                    raise SimulationError(
                        f"dependency cycle or starvation among: {unresolved[:5]}"
                    )
                if finished == n_acts:
                    break
                raise SimulationError("no runnable activities but work remains")

            # -- Rate phase: refresh totals/factors of changed resources
            # only, then the rates of their consumers only.
            if changed:
                dirty: Set[int] = set()
                for r in changed:
                    consumers = members[r]
                    if not consumers:
                        continue
                    total = 0.0
                    for demand in consumers.values():
                        total = total + demand
                    capacity = capacities[r]
                    if capacity is None or total <= capacity or total <= 0:
                        factors[r] = 1.0
                    else:
                        factors[r] = capacity / total
                    dirty.update(consumers)
                changed.clear()
                for i in dirty:
                    state = running.get(i)
                    if state is None:
                        continue
                    rate = 1.0
                    for r in shareds[i]:
                        factor = factors[r]
                        if factor < rate:
                            rate = factor
                    state[3] = rate if rate > _EPS else _EPS

            # -- Advance phase: earliest completion defines the step.
            dt = inf
            for state in running.values():
                quotient = state[1] / state[3]
                if quotient < dt:
                    dt = quotient
            if dt < 0:
                raise SimulationError("negative time step (internal error)")
            # A hard fault strictly inside the step interval halts the
            # run at the fault time; completions landing exactly on the
            # fault time still count (the step finished as it died).
            if fail_time is not None and now + dt > fail_time:
                spans.sort(key=lambda s: (s.start, s.aid))
                return spans, _interrupted(fail_time, fault.resource, fault.kind)
            now += dt
            completed: List[int] = []
            for i, state in running.items():
                remaining = state[1] - state[3] * dt
                state[1] = remaining
                if remaining <= state[2]:
                    completed.append(i)

            # -- Completion phase: free resources, record spans, wake
            # dependents and parked waiters.
            if poisoned is not None:
                # A completing activity whose retry budget exhausted
                # declares its link permanently dead at this instant;
                # everything still running (itself included) is
                # interrupted.
                for i in completed:
                    if i in poisoned:
                        resource = str(act_list[i].meta["failed_resource"])
                        spans.sort(key=lambda s: (s.start, s.aid))
                        return spans, _interrupted(now, resource, "link")
            freed: List[int] = []
            for i in completed:
                state = running.pop(i)
                act = act_list[i]
                for r in exclusives[i]:
                    busy[r] = False
                    freed.append(r)
                shared = shareds[i]
                if shared:
                    for r in shared:
                        del members[r][i]
                        changed.add(r)
                spans.append(
                    Span(aids[i], act.label, act.kind, state[0], now,
                         act.exclusive, act.meta)
                )
                finished += 1
                for child in dependents[i]:
                    count = dep_count[child] - 1
                    dep_count[child] = count
                    if not count:
                        heappush(ready_heap, (now, aids[child], child))
            for r in freed:
                queue = wait_q[r]
                if queue:
                    nxt = heappop(queue)
                    wake_origin[nxt[2]] = r
                    heappush(ready_heap, nxt)

        spans.sort(key=lambda s: (s.start, s.aid))
        return spans, None


def makespan(spans: Iterable[Span]) -> float:
    """End time of the last span (0 for an empty program)."""
    return max((s.end for s in spans), default=0.0)
