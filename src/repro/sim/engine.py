"""Fluid discrete-event simulation engine.

This engine is the reproduction's stand-in for the paper's customized
SST + rdmaNic + DRAMSim3 stack (Section 4.1). It simulates a
representative chip of an SPMD cluster at *activity* granularity: a
GeMM kernel, a collective communication, or a slicing copy is one
activity with

* a nominal duration (its execution time with no interference),
* a set of **exclusive resources** it occupies (the compute core, one
  ICI link direction), and
* **shared-capacity demands** (HBM bandwidth) under which concurrent
  activities slow each other down proportionally.

Exclusive resources give the paper's overlap semantics for free:
software pipelining emerges from dependency edges plus link/core
serialization, prologues and epilogues appear as the non-overlapped
first/last iterations, and the "no collective overlap on real TPUs"
mode is expressed by making collectives also claim the core. The shared
HBM resource reproduces the only cross-unit interference the paper
models: contention between the NIC and the compute cores for HBM
bandwidth.

The fluid approximation: when the sum of HBM demands exceeds capacity,
every activity's progress rate is scaled by ``capacity / total_demand``
(proportional sharing). Rates are recomputed whenever any activity
starts or finishes, so the simulation is exact for piecewise-constant
demand.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Canonical resource names used by program builders.
CORE = "core"
LINK_H = "link_h"  # inter-column (horizontal) ICI ring direction
LINK_V = "link_v"  # inter-row (vertical) ICI ring direction
HBM = "hbm"
NIC = "nic"  # shared NIC of a logical-mesh chip (Section 6)

_EPS = 1e-15


@dataclasses.dataclass
class Activity:
    """One unit of simulated work.

    Attributes:
        aid: Unique id within its program.
        label: Human-readable name (shown in traces).
        kind: Category used for reporting, e.g. ``"compute"``,
            ``"comm"``, ``"slice"``.
        duration: Nominal duration in seconds at full rate. May be 0
            for pure ordering points.
        exclusive: Names of exclusive resources held while running.
        shared: Mapping of shared resource name to demand rate
            (units/second at full progress rate).
        deps: Ids of activities that must finish before this starts.
        meta: Free-form metadata (cost breakdowns, flop counts).
    """

    aid: int
    label: str
    kind: str
    duration: float
    exclusive: Tuple[str, ...] = ()
    shared: Dict[str, float] = dataclasses.field(default_factory=dict)
    deps: Tuple[int, ...] = ()
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"activity {self.label!r} has negative duration")
        for demand in self.shared.values():
            if demand < 0:
                raise ValueError(f"activity {self.label!r} has negative demand")


@dataclasses.dataclass(frozen=True)
class Span:
    """Recorded execution interval of one activity."""

    aid: int
    label: str
    kind: str
    start: float
    end: float
    exclusive: Tuple[str, ...]
    meta: Dict[str, object]

    @property
    def duration(self) -> float:
        return self.end - self.start


class SimulationError(RuntimeError):
    """Raised for structural problems: cycles, unknown dependencies."""


class Engine:
    """Runs a set of activities to completion.

    Args:
        activities: The activity DAG. Ids must be unique and
            dependencies must refer to existing ids.
        shared_capacities: Capacity (units/second) of each shared
            resource. Demands on resources not listed here are treated
            as unconstrained.
    """

    def __init__(
        self,
        activities: Sequence[Activity],
        shared_capacities: Optional[Dict[str, float]] = None,
    ):
        self.activities = {a.aid: a for a in activities}
        if len(self.activities) != len(activities):
            raise SimulationError("duplicate activity ids")
        for act in activities:
            for dep in act.deps:
                if dep not in self.activities:
                    raise SimulationError(
                        f"activity {act.label!r} depends on unknown id {dep}"
                    )
        self.shared_capacities = dict(shared_capacities or {})

    def run(self) -> List[Span]:
        """Execute the DAG; returns spans sorted by start time."""
        acts = self.activities
        remaining_deps = {aid: set(a.deps) for aid, a in acts.items()}
        dependents: Dict[int, List[int]] = {aid: [] for aid in acts}
        for aid, act in acts.items():
            for dep in act.deps:
                dependents[dep].append(aid)

        ready: List[Tuple[float, int]] = [
            (0.0, aid) for aid, deps in remaining_deps.items() if not deps
        ]
        ready.sort(key=lambda item: (item[0], item[1]))
        busy: Dict[str, int] = {}
        running: Dict[int, _Running] = {}
        spans: List[Span] = []
        finished = set()
        now = 0.0
        # Guard against infinite loops on malformed inputs.
        max_steps = 10 * len(acts) + 100

        for _step in itertools.count():
            if _step > max_steps:
                raise SimulationError("simulation did not converge (internal error)")
            self._start_ready(ready, busy, running, acts, now)
            if not running:
                if any(remaining_deps[aid] for aid in acts if aid not in finished):
                    unresolved = [
                        acts[aid].label
                        for aid in acts
                        if aid not in finished and remaining_deps[aid]
                    ]
                    raise SimulationError(
                        f"dependency cycle or starvation among: {unresolved[:5]}"
                    )
                if len(finished) == len(acts):
                    break
                raise SimulationError("no runnable activities but work remains")
            rates = self._compute_rates(running)
            dt = min(
                run.remaining / rates[aid] for aid, run in running.items()
            )
            if dt < 0:
                raise SimulationError("negative time step (internal error)")
            now += dt
            completed = []
            for aid, run in running.items():
                run.remaining -= rates[aid] * dt
                if run.remaining <= _EPS * max(1.0, run.nominal):
                    completed.append(aid)
            for aid in completed:
                run = running.pop(aid)
                act = acts[aid]
                for res in act.exclusive:
                    del busy[res]
                spans.append(
                    Span(
                        aid=aid,
                        label=act.label,
                        kind=act.kind,
                        start=run.start,
                        end=now,
                        exclusive=act.exclusive,
                        meta=act.meta,
                    )
                )
                finished.add(aid)
                for child in dependents[aid]:
                    remaining_deps[child].discard(aid)
                    if not remaining_deps[child]:
                        ready.append((now, child))
            ready.sort(key=lambda item: (item[0], item[1]))

        spans.sort(key=lambda s: (s.start, s.aid))
        return spans

    def _start_ready(
        self,
        ready: List[Tuple[float, int]],
        busy: Dict[str, int],
        running: Dict[int, "_Running"],
        acts: Dict[int, Activity],
        now: float,
    ) -> None:
        """Start every ready activity whose exclusive resources are free.

        Scans in (ready-time, id) order so that an activity blocked on
        the core does not prevent a later link activity from starting.
        """
        still_waiting: List[Tuple[float, int]] = []
        for ready_time, aid in ready:
            act = acts[aid]
            if any(res in busy for res in act.exclusive):
                still_waiting.append((ready_time, aid))
                continue
            for res in act.exclusive:
                busy[res] = aid
            running[aid] = _Running(
                start=now,
                remaining=max(act.duration, 0.0),
                nominal=max(act.duration, _EPS),
            )
        ready[:] = still_waiting

    def _compute_rates(self, running: Dict[int, "_Running"]) -> Dict[int, float]:
        """Proportional-share progress rates under shared capacities."""
        totals: Dict[str, float] = {}
        for aid in running:
            for res, demand in self.activities[aid].shared.items():
                totals[res] = totals.get(res, 0.0) + demand
        factors: Dict[str, float] = {}
        for res, total in totals.items():
            capacity = self.shared_capacities.get(res)
            if capacity is None or total <= capacity or total <= 0:
                factors[res] = 1.0
            else:
                factors[res] = capacity / total
        rates = {}
        for aid in running:
            act = self.activities[aid]
            rate = 1.0
            for res in act.shared:
                rate = min(rate, factors[res])
            rates[aid] = max(rate, _EPS)
        return rates


@dataclasses.dataclass
class _Running:
    start: float
    remaining: float
    nominal: float


def makespan(spans: Iterable[Span]) -> float:
    """End time of the last span (0 for an empty program)."""
    return max((s.end for s in spans), default=0.0)
