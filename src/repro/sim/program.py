"""Program construction for the cluster simulator.

A *program* is the activity DAG one representative chip of the SPMD
cluster executes for one distributed GeMM (every chip executes the same
schedule, so simulating one chip with its row/column ring timings gives
the cluster makespan). :class:`ProgramBuilder` provides the vocabulary
the algorithm implementations use — compute kernels, slicing copies,
ring collectives, SendRecvs — and centralizes the hardware overlap
policy (Section 5.3): when ``hw.overlap_collectives`` is false,
collective communications also claim the compute core; when SendRecv
overlap is limited, the non-overlappable fraction of each SendRecv
claims the core.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.comm.cost import CommCost, CommCostModel
from repro.hw.params import HardwareParams
from repro.sim.chip import ComputeCost, checksum_cost, gemm_cost, slice_cost
from repro.sim.engine import (
    CORE,
    HBM,
    LINK_H,
    LINK_V,
    NIC,
    Activity,
    Engine,
    SimFailure,
    SimulationError,
    Span,
)

if TYPE_CHECKING:  # pragma: no cover - avoid the sim <-> faults cycle
    from repro.faults.plan import FaultPlan


@dataclasses.dataclass
class Program:
    """An activity DAG plus the shared resource capacities it runs under."""

    activities: List[Activity]
    shared_capacities: Dict[str, float]
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    def run(
        self,
        faults: Optional["FaultPlan"] = None,
        engine: Optional[str] = None,
    ) -> List[Span]:
        """Simulate the program; returns the execution trace.

        ``faults`` applies a :class:`repro.faults.FaultPlan` at the
        engine boundary: the plan rewrites activity durations and the
        unmodified engine runs the perturbed DAG. ``None`` (and any
        null plan) runs the program exactly as built — bit-identical
        to the unfaulted engine.

        ``engine`` selects the simulation engine (``"heap"`` or
        ``"compiled"``); ``None`` uses the process default (see
        :func:`repro.sim.compiled.default_engine`). The compiled engine
        produces bit-identical spans and automatically falls back to
        full heap simulation for any perturbed run.

        Raises :class:`SimulationError` if the plan carries hard
        faults (or an exhaustible retry policy) and the run dies; use
        :meth:`execute` to receive the failure as a value.
        """
        spans, failure = self.execute(faults, engine=engine)
        if failure is not None:
            raise SimulationError(
                f"simulation died at t={failure.time:.6g}s "
                f"({failure.kind} fault on {failure.resource!r}); "
                "use Program.execute() to inspect the SimFailure"
            )
        return spans

    def execute(
        self,
        faults: Optional["FaultPlan"] = None,
        engine: Optional[str] = None,
    ) -> Tuple[List[Span], Optional[SimFailure]]:
        """Simulate the program, surfacing hard failures as a value.

        Returns ``(spans, failure)``. ``failure`` is ``None`` for a
        completed run; otherwise a :class:`SimFailure` describing when
        and where the run died, with ``spans`` the (truncated) trace up
        to that instant. With ``faults=None`` this is exactly
        :meth:`run`'s unfaulted fast path.

        Fault plans force the event-heap engine regardless of
        ``engine``: a perturbed instance invalidates the steady-state
        template, so the compiled engine's contract is full-simulation
        fallback (counted under the ``compile.fallbacks`` metric).
        """
        from repro.sim.compiled import (
            ENGINE_NAMES,
            CompiledEngine,
            default_engine,
        )

        if engine is None:
            engine = default_engine()
        elif engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
            )
        if faults is None:
            if engine == "compiled":
                compiled = CompiledEngine(
                    self.activities,
                    self.shared_capacities,
                    self.meta.get("motifs"),
                )
                return compiled.run(), None
            spans = Engine(self.activities, self.shared_capacities).run()
            return spans, None
        program = faults.apply(self)
        if faults.is_null:
            # A null plan is a no-op rewrite: same unperturbed program,
            # so the engine selection still applies.
            return program.execute(None, engine=engine)
        if engine == "compiled":
            from repro.obs.registry import registry

            registry().inc(
                "compile.fallbacks", labels={"reason": "fault-plan"}
            )
        heap = Engine(program.activities, program.shared_capacities)
        return heap.run_with_failures(faults.hard_faults)

    @property
    def total_flops(self) -> float:
        """Sum of per-chip FLOPs over all compute activities."""
        return sum(
            float(a.meta.get("flops", 0.0)) for a in self.activities
        )


class ProgramBuilder:
    """Builds activity DAGs under one hardware configuration.

    All ``deps`` arguments are sequences of activity ids returned by
    earlier calls. Link serialization (two collectives in the same
    direction cannot overlap) comes from exclusive link resources, so
    builders do not need to chain same-link operations explicitly.
    """

    def __init__(self, hw: HardwareParams):
        self.hw = hw
        self.costs = CommCostModel.for_hw(hw)
        self._activities: List[Activity] = []
        self._next_id = 0
        self._motifs: List[Dict[str, int]] = []

    def build(self, **meta: object) -> Program:
        """Finalize into a runnable :class:`Program`."""
        capacities = {HBM: self.hw.hbm_bandwidth}
        if self.hw.has_shared_nic:
            capacities[NIC] = self.hw.nic_bandwidth
        program_meta = dict(meta)
        if self._motifs:
            program_meta["motifs"] = list(self._motifs)
        return Program(
            activities=list(self._activities),
            shared_capacities=capacities,
            meta=program_meta,
        )

    def mark(self) -> int:
        """The id the next emitted activity will get.

        Capture this before a repeated emission loop and pass it to
        :meth:`motif` after the loop to annotate the repetition.
        """
        return self._next_id

    def motif(self, first: int, count: int) -> None:
        """Annotate the activities since ``first`` as ``count`` repeated
        instances (a motif boundary hint for the compiled engine).

        The hint is advisory: the compiled engine re-verifies that the
        instances really are shift-isomorphic before composing them, so
        an inapplicable annotation (uneven loop bodies, conditional
        emissions) costs nothing. Calls that do not divide evenly are
        dropped for the same reason.
        """
        span = self._next_id - first
        if count >= 2 and span > 0 and span % count == 0:
            self._motifs.append(
                {"first": first, "period": span // count, "count": count}
            )

    # ---------------------------------------------------------------- compute

    def gemm(
        self,
        label: str,
        m: int,
        n: int,
        k: int,
        deps: Sequence[int] = (),
    ) -> int:
        """A local GeMM kernel on the compute core."""
        cost = gemm_cost(m, n, k, self.hw)
        return self._compute_activity(label, "compute", cost, deps)

    def slice_copy(
        self, label: str, sub_shard_bytes: float, deps: Sequence[int] = ()
    ) -> int:
        """A blocked slicing (or slice write-back) copy on the core."""
        cost = slice_cost(sub_shard_bytes, self.hw)
        return self._compute_activity(label, "slice", cost, deps)

    def checksum(
        self, label: str, elements: float, deps: Sequence[int] = ()
    ) -> int:
        """An ABFT checksum encode/verify pass over ``elements`` elements.

        A memory-bound streaming reduction on the core (zero useful
        FLOPs), used by the ``abft=True`` program variants.
        """
        cost = checksum_cost(elements, self.hw)
        return self._compute_activity(label, "compute", cost, deps)

    def expected_compute(
        self,
        label: str,
        cost: ComputeCost,
        probability: float,
        deps: Sequence[int] = (),
    ) -> int:
        """A compute kernel charged at its expected (probability-scaled) cost.

        Models a recovery epilogue that only sometimes runs — e.g. the
        ABFT recompute of a corrupted block, whose expected duration is
        the block recompute time times the per-run corruption
        probability. FLOPs are reported as zero: recovery work is
        overhead, not useful throughput.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        scaled = ComputeCost(
            seconds=cost.seconds * probability,
            hbm_bytes=cost.hbm_bytes * probability,
            flops=0.0,
        )
        return self._compute_activity(label, "compute", scaled, deps)

    def _compute_activity(
        self, label: str, kind: str, cost: ComputeCost, deps: Sequence[int]
    ) -> int:
        return self._add(
            label=label,
            kind=kind,
            duration=cost.seconds,
            exclusive=(CORE,),
            shared={HBM: cost.hbm_rate} if cost.hbm_rate > 0 else {},
            deps=deps,
            meta={"flops": cost.flops, "hbm_bytes": cost.hbm_bytes},
        )

    # ------------------------------------------------------------------- comm

    def allgather(
        self,
        label: str,
        ring_size: int,
        shard_bytes: float,
        link: str,
        deps: Sequence[int] = (),
        granularity: str = "op",
    ) -> int:
        """A ring AllGather collective on one link direction.

        ``granularity="op"`` models the whole collective as one
        activity (the default; fast and sufficient for overlap
        structure). ``granularity="step"`` emits the ``P - 1``
        individual ring steps as chained activities — the fidelity knob
        used to validate that the op-level aggregation does not distort
        results.
        """
        if granularity == "step":
            return self._collective_steps(
                label, "ag", ring_size, shard_bytes, link, deps
            )
        cost = self.costs.allgather(ring_size, shard_bytes)
        return self._collective(label, cost, link, deps)

    def reducescatter(
        self,
        label: str,
        ring_size: int,
        shard_bytes: float,
        link: str,
        deps: Sequence[int] = (),
        granularity: str = "op",
    ) -> int:
        """A ring ReduceScatter collective on one link direction.

        See :meth:`allgather` for the ``granularity`` option.
        """
        if granularity == "step":
            return self._collective_steps(
                label, "rds", ring_size, shard_bytes, link, deps
            )
        cost = self.costs.reducescatter(ring_size, shard_bytes)
        return self._collective(label, cost, link, deps)

    def _collective_steps(
        self,
        label: str,
        kind: str,
        ring_size: int,
        shard_bytes: float,
        link: str,
        deps: Sequence[int],
    ) -> int:
        """Emit a collective as its individual synchronized ring steps."""
        if link not in (LINK_H, LINK_V):
            raise ValueError(f"unknown link {link!r}")
        if ring_size <= 1:
            return self.barrier(f"{label}/noop", deps)
        exclusive = (link,) if self.hw.overlap_collectives else (link, CORE)
        hbm_factor = 3.0 if kind == "rds" else 2.0
        step_cost = CommCost(
            launch=0.0,
            transfer=shard_bytes / self.hw.ring_bandwidth,
            sync=self.hw.t_sync,
            hbm_bytes=hbm_factor * shard_bytes,
            syncs=1,
            wire_bytes=shard_bytes,
        )
        launch_cost = CommCost(
            launch=self.hw.t_launch, transfer=0.0, sync=0.0,
            hbm_bytes=0.0, syncs=0, wire_bytes=0.0,
        )
        prev = self._comm_activity(f"{label}/launch", launch_cost, (), deps)
        for step in range(ring_size - 1):
            prev = self._comm_activity(
                f"{label}/step{step}", step_cost, exclusive, [prev]
            )
        return prev

    def broadcast(
        self,
        label: str,
        ring_size: int,
        shard_bytes: float,
        packets: int,
        link: str,
        deps: Sequence[int] = (),
    ) -> int:
        """A SUMMA pipelined ring broadcast."""
        cost = self.costs.broadcast(ring_size, shard_bytes, packets)
        return self._collective(label, cost, link, deps)

    def reduce(
        self,
        label: str,
        ring_size: int,
        shard_bytes: float,
        packets: int,
        link: str,
        deps: Sequence[int] = (),
    ) -> int:
        """A SUMMA pipelined ring all-to-one reduce."""
        cost = self.costs.reduce(ring_size, shard_bytes, packets)
        return self._collective(label, cost, link, deps)

    def sendrecv(
        self,
        label: str,
        message_bytes: float,
        link: str,
        deps: Sequence[int] = (),
        hops: int = 1,
    ) -> int:
        """A point-to-point SendRecv (Cannon shifts, Wang decomposition).

        Honors ``hw.overlap_sendrecv`` and
        ``hw.sendrecv_overlap_fraction``: the non-overlappable fraction
        of the transfer additionally occupies the compute core,
        modelling compiler-created dependencies (Section 5.3.1).
        """
        cost = self.costs.sendrecv(message_bytes, hops)
        fraction = (
            self.hw.sendrecv_overlap_fraction if self.hw.overlap_sendrecv else 0.0
        )
        if fraction >= 1.0:
            return self._comm_activity(label, cost, (link,), deps)
        if fraction <= 0.0:
            return self._comm_activity(label, cost, (link, CORE), deps)
        overlapped = cost.scaled(fraction)
        blocking = cost.scaled(1.0 - fraction)
        first = self._comm_activity(f"{label}/async", overlapped, (link,), deps)
        return self._comm_activity(
            f"{label}/blocking", blocking, (link, CORE), [first]
        )

    def _collective(
        self, label: str, cost: CommCost, link: str, deps: Sequence[int]
    ) -> int:
        if link not in (LINK_H, LINK_V):
            raise ValueError(f"unknown link {link!r}")
        exclusive = (link,) if self.hw.overlap_collectives else (link, CORE)
        return self._comm_activity(label, cost, exclusive, deps)

    def _comm_activity(
        self,
        label: str,
        cost: CommCost,
        exclusive: Sequence[str],
        deps: Sequence[int],
    ) -> int:
        duration = cost.total
        shared = {}
        if duration > 0 and cost.hbm_bytes > 0:
            shared[HBM] = cost.hbm_bytes / duration
        if (
            self.hw.has_shared_nic
            and duration > 0
            and cost.wire_bytes > 0
        ):
            # On a logical mesh all ring traffic shares the chip's NIC:
            # concurrent collectives in different directions contend
            # (Section 6). The fluid engine stretches both when their
            # combined demand exceeds the NIC bandwidth.
            shared[NIC] = cost.wire_bytes / duration
        return self._add(
            label=label,
            kind="comm",
            duration=duration,
            exclusive=tuple(exclusive),
            shared=shared,
            deps=deps,
            meta={
                "launch": cost.launch,
                "transfer": cost.transfer,
                "sync": cost.sync,
                "syncs": cost.syncs,
                "hbm_bytes": cost.hbm_bytes,
            },
        )

    def comm_on(
        self,
        label: str,
        cost: CommCost,
        resources: Sequence[str],
        deps: Sequence[int] = (),
    ) -> int:
        """A communication activity on explicit exclusive resources.

        For rings outside the 2D plane (e.g. the replica dimension of a
        3D torus) where the standard link policy does not apply. The
        collective-overlap policy is still honored.
        """
        exclusive = tuple(resources)
        if not self.hw.overlap_collectives and CORE not in exclusive:
            exclusive = exclusive + (CORE,)
        return self._comm_activity(label, cost, exclusive, deps)

    # ---------------------------------------------------------------- plumbing

    @classmethod
    def extending(cls, program: Program, hw: HardwareParams) -> "ProgramBuilder":
        """A builder pre-loaded with an existing program's activities.

        Used to append cluster-level operations (e.g. a data-parallel
        gradient all-reduce) to an algorithm's GeMM program.
        """
        builder = cls(hw)
        builder._activities = list(program.activities)
        builder._next_id = (
            max((a.aid for a in program.activities), default=-1) + 1
        )
        motifs = program.meta.get("motifs")
        if motifs:
            builder._motifs = [dict(m) for m in motifs]
        return builder

    def barrier(self, label: str, deps: Sequence[int]) -> int:
        """A zero-duration ordering point."""
        return self._add(
            label=label, kind="barrier", duration=0.0, exclusive=(),
            shared={}, deps=deps, meta={},
        )

    def _add(
        self,
        label: str,
        kind: str,
        duration: float,
        exclusive: Sequence[str],
        shared: Dict[str, float],
        deps: Sequence[int],
        meta: Optional[Dict[str, object]] = None,
    ) -> int:
        # Takes ownership of ``shared``: every call site above passes a
        # freshly built dict, so no defensive copy is made. The Activity
        # is assembled by swapping in its instance dict wholesale — this
        # is the hottest allocation site of a sweep (one call per
        # activity of every built program), and the dataclass
        # ``__init__`` costs about as much as the rest of the call. The
        # ``__post_init__`` checks are inlined with identical messages.
        if duration < 0:
            raise ValueError(f"activity {label!r} has negative duration")
        for demand in shared.values():
            if demand < 0:
                raise ValueError(f"activity {label!r} has negative demand")
        aid = self._next_id
        self._next_id += 1
        if type(exclusive) is not tuple:
            exclusive = tuple(exclusive)
        if type(deps) is not tuple:
            deps = tuple(deps)
        act = Activity.__new__(Activity)
        act.__dict__ = {
            "aid": aid,
            "label": label,
            "kind": kind,
            "duration": duration,
            "exclusive": exclusive,
            "shared": shared,
            "deps": deps,
            "meta": meta if meta is not None else {},
        }
        self._activities.append(act)
        return aid


def repeat_program(block: Program, copies: int) -> Program:
    """Stack ``copies`` sequential repetitions of ``block``.

    This is the deep-model constructor: one transformer-style layer
    (``block``, e.g. a distributed GeMM program) repeated layer after
    layer. Copy ``k+1``'s entry activities (those with no intra-block
    dependencies) depend on copy ``k``'s exit activities (those with no
    intra-block dependents) — the layer-to-layer dataflow of a stacked
    model. The whole stack carries a layer-level motif annotation, which
    is the compiled engine's primary composition target.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    acts = block.activities
    n = len(acts)
    position = {a.aid: i for i, a in enumerate(acts)}
    referenced = set()
    for act in acts:
        referenced.update(act.deps)
    sinks = tuple(
        sorted(i for i, a in enumerate(acts) if a.aid not in referenced)
    )
    out: List[Activity] = []
    for k in range(copies):
        base = k * n
        prefix = f"layer{k}/"
        if k:
            entry_deps = tuple(base - n + s for s in sinks)
        else:
            entry_deps = ()
        for i, act in enumerate(acts):
            if act.deps:
                deps = tuple(base + position[d] for d in act.deps)
            else:
                deps = entry_deps
            clone = Activity.__new__(Activity)
            clone.__dict__ = {
                "aid": base + i,
                "label": prefix + act.label,
                "kind": act.kind,
                "duration": act.duration,
                "exclusive": act.exclusive,
                "shared": dict(act.shared),
                "deps": deps,
                "meta": dict(act.meta),
            }
            out.append(clone)
    meta = dict(block.meta)
    meta["copies"] = copies
    # The per-layer motif supersedes any block-internal annotations
    # (their aids are only valid inside copy 0). The copies are clones
    # by construction, so the annotation asserts shift-isomorphic
    # structure (``trusted``) and the compiled engine skips the
    # per-instance signature scan; durations are still bit-verified.
    meta["motifs"] = [
        {"first": 0, "period": n, "count": copies, "trusted": True}
    ]
    return Program(
        activities=out,
        shared_capacities=dict(block.shared_capacities),
        meta=meta,
    )
