"""TPU core compute model: tiled GeMM timing and HBM traffic.

Models the paper's simulated TPU core (Section 4.1 / Figure 8): a core
with systolic arrays and a scratchpad that computes an output tile per
loop iteration, prefetching input tiles from HBM overlapped with the
multiplications. At the activity granularity of our simulator this
reduces to, per GeMM kernel:

* compute time = padded FLOPs / sustained throughput, where padding
  rounds the M and N extents up to the systolic-array width and charges
  a pipeline-fill term on K (this is what makes fine-grain partial
  GeMMs less efficient, as the paper observes on real hardware in
  Section 5.3.1), and
* HBM traffic of a scratchpad-tiled GeMM (inputs re-read once per
  output tile stripe), which both bounds memory-bound kernels and
  feeds the shared-HBM contention model.
"""

from __future__ import annotations

import dataclasses
import math

from repro.hw.params import HardwareParams
from repro.perf.cache import memoize


@dataclasses.dataclass(frozen=True)
class ComputeCost:
    """Timing and memory traffic of one compute kernel on one chip."""

    seconds: float
    hbm_bytes: float
    flops: float

    @property
    def hbm_rate(self) -> float:
        """Average HBM demand while the kernel runs (bytes/second)."""
        if self.seconds <= 0:
            return 0.0
        return self.hbm_bytes / self.seconds


def _ceil_to(value: int, granularity: int) -> int:
    return int(math.ceil(value / granularity)) * granularity


def gemm_hbm_bytes(m: int, n: int, k: int, hw: HardwareParams) -> float:
    """HBM traffic of a scratchpad-tiled ``m x n x k`` GeMM (bytes).

    Uses square output tiles of side ``t`` chosen so that one A panel
    (``t x k``) and one B panel (``k x t``) fit in half the scratchpad
    (double buffering for the prefetch pipeline). A is then read once
    per tile-column, B once per tile-row, and C written once (read and
    written once when accumulating, which we fold into the factor 2).
    """
    dtype = hw.dtype_bytes
    if min(m, n, k) <= 0:
        return 0.0
    half_spad = hw.scratchpad_bytes / 2.0
    t = int(half_spad // max(2 * k * dtype, 1))
    t = max(min(t, max(m, n)), hw.mxu_dim)
    tiles_m = math.ceil(m / t)
    tiles_n = math.ceil(n / t)
    a_reads = m * k * tiles_n
    b_reads = k * n * tiles_m
    c_traffic = 2 * m * n
    return float((a_reads + b_reads + c_traffic) * dtype)


@memoize("gemm_cost")
def _gemm_cost(m: int, n: int, k: int, hw: HardwareParams) -> ComputeCost:
    if min(m, n, k) <= 0:
        return ComputeCost(seconds=hw.t_kernel, hbm_bytes=0.0, flops=0.0)
    flops = 2.0 * m * n * k
    padded_m = _ceil_to(m, hw.mxu_dim)
    padded_n = _ceil_to(n, hw.mxu_dim)
    # Padding rounds M and N up to the systolic-array width; the
    # pipeline-fill term charges one array fill per output tile row
    # (fills overlap with streaming across the tile grid).
    fill_flops = 2.0 * padded_m * hw.mxu_dim * hw.mxu_dim
    padded_flops = 2.0 * padded_m * padded_n * k + fill_flops
    compute_seconds = padded_flops / hw.effective_flops
    hbm_bytes = gemm_hbm_bytes(m, n, k, hw)
    memory_seconds = hbm_bytes / hw.hbm_bandwidth
    return ComputeCost(
        seconds=hw.t_kernel + max(compute_seconds, memory_seconds),
        hbm_bytes=hbm_bytes,
        flops=flops,
    )


def gemm_cost(m: int, n: int, k: int, hw: HardwareParams) -> ComputeCost:
    """Execution cost of one local ``m x n x k`` GeMM kernel.

    The kernel time is the roofline maximum of compute time (with MXU
    padding and pipeline fill) and HBM time, plus the kernel launch
    overhead ``t_kernel``. Results are memoized on ``(m, n, k, hw)``:
    a design-space sweep evaluates the same local kernel once per mesh
    candidate and slice count.
    """
    return _gemm_cost(m, n, k, hw)


@memoize("slice_cost")
def _slice_cost(sub_shard_bytes: float, hw: HardwareParams) -> ComputeCost:
    if sub_shard_bytes < 0:
        raise ValueError("sub_shard_bytes must be non-negative")
    bytes_moved = 2.0 * sub_shard_bytes * (1.0 + hw.slicing_overhead)
    return ComputeCost(
        seconds=hw.t_kernel + bytes_moved / hw.hbm_bandwidth,
        hbm_bytes=bytes_moved,
        flops=0.0,
    )


def slice_cost(sub_shard_bytes: float, hw: HardwareParams) -> ComputeCost:
    """Cost of one blocked slicing operation (Algorithm 2).

    Slicing is a strided HBM-to-HBM copy of one sub-shard (read plus
    write), with a small relative overhead for the non-unit stride.
    The paper measures the total slicing overhead at ~1.3% of execution
    time on real hardware, i.e. small but not free. Memoized like
    :func:`gemm_cost`.
    """
    return _slice_cost(sub_shard_bytes, hw)


@memoize("checksum_cost")
def _checksum_cost(elements: float, hw: HardwareParams) -> ComputeCost:
    if elements < 0:
        raise ValueError("elements must be non-negative")
    hbm_bytes = elements * hw.dtype_bytes
    return ComputeCost(
        seconds=hw.t_kernel + hbm_bytes / hw.hbm_bandwidth,
        hbm_bytes=hbm_bytes,
        flops=0.0,
    )


def checksum_cost(elements: float, hw: HardwareParams) -> ComputeCost:
    """Cost of an ABFT checksum pass streaming ``elements`` elements.

    Checksum encode (summing a shard into its appended row/column) and
    verification (re-summing a block against its carried checksums) are
    memory-bound streaming reductions: one read of the operand at HBM
    bandwidth plus a kernel launch. Reports zero FLOPs so protection
    overhead shows up as *lost* utilization rather than inflated useful
    work. Memoized like :func:`gemm_cost`.
    """
    return _checksum_cost(elements, hw)


def effective_gemm_seconds(m: int, n: int, k: int, hw: HardwareParams) -> float:
    """Convenience wrapper returning only the kernel time."""
    return gemm_cost(m, n, k, hw).seconds
