"""Compiled structure-exploiting engine: motif composition over the DAG.

LLM training programs are the same per-layer GeMM+collective block
repeated dozens of times, yet the event-heap engine simulates every
repetition activity by activity. This module adds a *program
compilation* layer on top of :class:`repro.sim.engine.Engine`:

1. **Motif detection.** Repeated activity-DAG fragments are located
   (from builder annotations in ``Program.meta["motifs"]``, or inferred
   from ``label[index]`` naming) and *verified*: every instance must
   have bit-identical durations, resources, shared demands, and a
   dependency structure that maps onto its neighbors by a constant aid
   shift. Plain annotations are hints only — a wrong annotation is
   detected and ignored, never trusted. Annotations carrying
   ``trusted: True`` (emitted by :func:`repro.sim.program.repeat_program`,
   whose instances are clones by construction) assert the structural
   half of that invariant and skip the per-instance signature scan;
   durations are still bit-verified vectorized, so a fault plan's
   perturbations demote a trusted hint exactly like an untrusted one.
2. **Steady-state lock-in.** The program is simulated on a recording
   copy of the event loop. At each instance-completion boundary the
   event block of the just-finished instance (time deltas, start and
   completion sequences in instance-relative coordinates) and a full
   canonical fingerprint of the engine state (running set, ready heap,
   wait queues, shared-membership order, contention factors) are
   compared against the previous boundary. Two matching consecutive
   fingerprints mean the simulation has reached its steady state; for
   unverified structure the event blocks themselves must match too.
3. **Composition by replay.** Remaining instances are *replayed* from
   the locked template instead of simulated: event times are
   re-accumulated sequentially (one ``cumsum`` over the frozen dt bits —
   the engine's own summation order, so composed span times are
   bit-identical), spans and queue-wait observations are emitted from
   the template, and per-event time-tie patterns are verified so that
   any floating-point absorption that could change heap ordering aborts
   composition. Replay stops early enough that the last instances and
   the epilogue — whose event streams genuinely differ (pipeline
   drain, epilogue activities becoming ready) — are simulated: the
   engine state at the final composed boundary is reconstructed from
   the template fingerprint and the loop resumes normally.

The composed path is built for throughput: activities outside the
residual simulated portion never have their resource/demand structures
interned (the loop interns lazily, on first touch), full-cover trusted
motifs derive dependents from a per-slot template instead of an O(n)
reverse-edge build, and the replayed event stream is materialized from
numpy arrays (tiled dt cumsum, scattered start times, gathered span
boundaries) with only the unavoidable ``Span`` objects constructed in
Python.

Correctness before speed: composition only engages when every check
above passes; any irregularity (perturbed durations from a
:class:`repro.faults.FaultPlan`, hard faults, out-of-order instance
completion, non-motif activities alive at a boundary) falls back to
plain full simulation, bit-identically. ``tests/test_compiled_engine``
pins the composed path span-for-span against the frozen reference
engine.
"""

from __future__ import annotations

import dataclasses
import gc as _gc
import heapq
import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.hooks import wait_sink as _wait_sink
from repro.obs.registry import registry as _registry
from repro.sim.engine import (
    Activity,
    Engine,
    SimulationError,
    Span,
)

_EPS = 1e-15

#: Minimum motif instances for composition to be worth attempting.
MIN_INSTANCES = 4

#: Maximum instance look-ahead the steady state may touch (starts or
#: completions of activities this many instances past the current
#: boundary). Deeper pipelining than this is out of template range and
#: falls back to full simulation.
MAX_LOOKAHEAD = 8

_object_setattr = object.__setattr__


@dataclasses.dataclass
class CompileStats:
    """What the compilation layer did for one program execution."""

    #: Motif candidates considered (annotated plus inferred).
    motifs_found: int = 0
    #: Candidates that survived structural verification.
    motifs_validated: int = 0
    #: Instances of the chosen motif (0 when none was chosen).
    instances_total: int = 0
    #: Instances whose events were composed analytically.
    instances_composed: int = 0
    #: Instances executed on the event loop (warm-up plus drain).
    instances_simulated: int = 0
    #: Activities whose spans came from the composed path.
    activities_composed: int = 0
    #: Wall-clock spent detecting/validating motifs (not simulating).
    compile_seconds: float = 0.0
    #: Why composition did not engage (``None`` when it did).
    fallback: Optional[str] = None

    @property
    def composed_fraction(self) -> float:
        """Composed share of the motif's instances (0.0 without lock-in)."""
        if not self.instances_total:
            return 0.0
        return self.instances_composed / self.instances_total


class _Motif:
    """A verified repetition: ``count`` instances of ``period`` activities."""

    __slots__ = ("first", "period", "count", "trusted")

    def __init__(self, first: int, period: int, count: int, trusted: bool):
        self.first = first
        self.period = period
        self.count = count
        self.trusted = trusted

    @property
    def end(self) -> int:
        return self.first + self.period * self.count


def infer_motifs(activities: Sequence[Activity]) -> List[Dict[str, int]]:
    """Motif candidates from ``name[index]`` label conventions.

    Builders that predate the annotation API (and hand-built programs)
    index their per-step activities ``gemm[3]``, ``shift_a[3]``, ...;
    grouping by index recovers the instance boundaries. The result is a
    *hint* in annotation form — the detector still verifies it.
    """
    starts: Dict[int, int] = {}
    for act in activities:
        label = act.label
        if not label.endswith("]"):
            continue
        cut = label.rfind("[")
        if cut < 0:
            continue
        digits = label[cut + 1:-1]
        if not digits.isdigit():
            continue
        index = int(digits)
        if index not in starts or act.aid < starts[index]:
            starts[index] = act.aid
    if len(starts) < MIN_INSTANCES or sorted(starts) != list(range(len(starts))):
        return []
    firsts = [starts[i] for i in range(len(starts))]
    strides = {b - a for a, b in zip(firsts, firsts[1:])}
    if len(strides) != 1:
        return []
    period = strides.pop()
    if period <= 0:
        return []
    return [{"first": firsts[0], "period": period, "count": len(firsts)}]


class CompiledEngine:
    """Drop-in :class:`Engine` replacement with steady-state composition.

    Args:
        activities: The activity DAG, exactly as for ``Engine``.
        shared_capacities: Shared-resource capacities, as for ``Engine``.
        motifs: Annotation hints (``Program.meta["motifs"]``): sequence
            of mappings with ``first``/``period``/``count`` keys. When
            ``None``, hints are inferred from activity labels.

    :meth:`run` returns spans bit-identical to ``Engine.run()`` on the
    same input. After a run, :attr:`stats` describes what was composed.

    Unlike ``Engine``, dependency validation may be deferred from
    construction to :meth:`run` on densely-numbered programs — the
    errors raised (and their messages) are the same.
    """

    def __init__(
        self,
        activities: Sequence[Activity],
        shared_capacities: Optional[Dict[str, float]] = None,
        motifs: Optional[Sequence[Dict[str, int]]] = None,
    ):
        self.activities = list(activities)
        self.shared_capacities = dict(shared_capacities or {})
        self._hints = motifs
        self.stats = CompileStats()
        acts = self.activities
        n = len(acts)
        self._n = n
        # Composition's shift arithmetic needs aid == index; anything
        # else gets the engine's full validation here and runs uncomposed.
        dense = True
        try:
            aids = np.fromiter((a.aid for a in acts), dtype=np.int64, count=n)
            if n and not (aids == np.arange(n, dtype=np.int64)).all():
                dense = False
        except (TypeError, ValueError):
            dense = False
        if not dense:
            by_aid = {a.aid: a for a in acts}
            if len(by_aid) != n:
                raise SimulationError("duplicate activity ids")
            for act in acts:
                for dep in act.deps:
                    if dep not in by_aid:
                        raise SimulationError(
                            f"activity {act.label!r} depends on unknown id {dep}"
                        )
        self._dense = dense

    # ------------------------------------------------------------ compile

    def _prepare(self) -> bool:
        """Intern the duration vector; False when ids are not dense."""
        if not self._dense:
            return False
        n = self._n
        self._durations = np.fromiter(
            (a.duration for a in self.activities), dtype=np.float64, count=n
        )
        self._dur_bits = self._durations.view(np.int64)
        return True

    def _instance_signature(self, first: int, period: int, q: int):
        """Canonical per-instance structure, in shift coordinates."""
        acts = self.activities
        base = first + q * period
        sig = []
        for s in range(period):
            act = acts[base + s]
            deps = tuple(
                (1, d - base) if d >= first else (0, d)
                for d in sorted(set(act.deps))
            )
            sig.append(
                (act.exclusive, tuple(sorted(act.shared.items())), deps)
            )
        return tuple(sig)

    def _validate_motif(self, hint: Dict[str, int]) -> Optional[_Motif]:
        """Verify a hint; shrink from the front until instances repeat.

        Warm-up instances legitimately differ (absolute dependencies on
        a skew/encode prologue, perturbed durations from a fault plan):
        the motif is the longest *suffix* of instances that are
        bit-identical in durations and shift-isomorphic in structure.
        A ``trusted`` hint asserts the structural half (its instances
        are clones by construction); durations are always bit-verified.
        """
        try:
            first = int(hint["first"])
            period = int(hint["period"])
            count = int(hint["count"])
        except (KeyError, TypeError, ValueError):
            return None
        trusted = bool(hint.get("trusted", False))
        if first < 0 or period <= 0 or count < MIN_INSTANCES:
            return None
        if first + period * count > self._n:
            return None
        # Vectorized duration uniformity: longest run of trailing
        # instances with bit-identical duration rows.
        rows = self._dur_bits[first:first + period * count]
        rows = rows.reshape(count, period)
        row_ok = (rows == rows[-1]).all(axis=1)
        q0 = count
        while q0 > 0 and row_ok[q0 - 1]:
            q0 -= 1
        if not trusted:
            # Structural uniformity (resources, demands, shifted deps):
            # longest suffix matching the last instance's signature.
            base_sig = self._instance_signature(first, period, count - 1)
            q1 = count - 1
            while q1 > 0 and (
                self._instance_signature(first, period, q1 - 1) == base_sig
            ):
                q1 -= 1
            q0 = max(q0, q1)
        tail = count - q0
        if tail < MIN_INSTANCES:
            return None
        return _Motif(first + q0 * period, period, tail, trusted)

    def _compile(self) -> Optional[_Motif]:
        hints = self._hints
        if hints is None:
            hints = infer_motifs(self.activities)
        best: Optional[_Motif] = None
        for hint in hints:
            self.stats.motifs_found += 1
            motif = self._validate_motif(dict(hint))
            if motif is None:
                continue
            self.stats.motifs_validated += 1
            if best is None or motif.period * motif.count > (
                best.period * best.count
            ):
                best = motif
        return best

    # ---------------------------------------------------------------- run

    def run(self) -> List[Span]:
        """Execute the DAG; spans bit-identical to ``Engine.run()``.

        Cyclic garbage collection is paused for the duration of the run
        (and restored afterwards): the composed path bulk-allocates one
        span per activity, all of which survive, and on 10^5-activity
        programs the generational collector otherwise re-scans the
        entire live heap dozens of times for zero reclaimed garbage —
        more than doubling replay time.
        """
        t0 = _time.perf_counter()
        motif = self._compile() if self._prepare() else None
        self.stats.compile_seconds = _time.perf_counter() - t0
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            if motif is None:
                if self.stats.fallback is None:
                    self.stats.fallback = "no-motif"
                spans = Engine(self.activities, self.shared_capacities).run()
                self._publish()
                return spans
            self.stats.instances_total = motif.count
            spans = self._run_composed(motif)
        finally:
            if gc_was_enabled:
                _gc.enable()
        self._publish()
        return spans

    def _publish(self) -> None:
        """Emit compile stats as observability counters."""
        stats = self.stats
        reg = _registry()
        reg.inc("compile.runs")
        reg.inc("compile.motifs_found", float(stats.motifs_found))
        reg.inc("compile.motifs_validated", float(stats.motifs_validated))
        reg.inc("compile.instances_composed", float(stats.instances_composed))
        reg.inc(
            "compile.instances_simulated", float(stats.instances_simulated)
        )
        reg.inc("compile.activities_composed", float(stats.activities_composed))
        reg.inc("compile.seconds", stats.compile_seconds)
        if stats.fallback is not None:
            reg.inc("compile.fallbacks", labels={"reason": stats.fallback})

    # ------------------------------------------------------- composed run

    @staticmethod
    def _sorted_spans(spans: List[Span]) -> List[Span]:
        """Engine-identical final order: sort by ``(start, aid)``."""
        n = len(spans)
        if n < 2:
            return spans
        starts = np.fromiter((s.start for s in spans), np.float64, count=n)
        aids = np.fromiter((s.aid for s in spans), np.int64, count=n)
        order = np.lexsort((aids, starts))
        return [spans[k] for k in order.tolist()]

    def _run_composed(self, motif: _Motif) -> List[Span]:
        state = _LoopState(self, motif)
        lock = state.run_until_lock()
        if lock is None:
            # The program finished (or the motif misbehaved dynamically)
            # before consecutive instances matched.
            if self.stats.fallback is None:
                self.stats.fallback = "no-lock-in"
            self.stats.instances_simulated = self.stats.instances_total
            return self._sorted_spans(state.spans)
        j_stop = self._compose_limit(motif, lock, state)
        if j_stop <= lock.boundary:
            # Nothing to skip: resume the live loop as if never paused.
            self.stats.fallback = "composition-window-empty"
            self.stats.instances_simulated = self.stats.instances_total
            state.run_to_completion()
            return self._sorted_spans(state.spans)
        composed = j_stop - lock.boundary
        if not state.replay(lock, j_stop):
            # Floating-point tie-pattern changed mid-replay: the steady
            # template is no longer exact. Start over, uncomposed.
            self.stats.fallback = "fp-absorption"
            self.stats.instances_simulated = self.stats.instances_total
            self.stats.instances_composed = 0
            state.discard_observations()
            return Engine(self.activities, self.shared_capacities).run()
        self.stats.instances_composed = composed
        self.stats.instances_simulated = self.stats.instances_total - composed
        self.stats.activities_composed = composed * motif.period
        state.resume_from(lock, j_stop)
        state.run_to_completion()
        return self._sorted_spans(state.spans)

    def _compose_limit(
        self, motif: _Motif, lock: "_Lock", state: "_LoopState"
    ) -> int:
        """Last instance index whose block may be replayed.

        Replaying block ``j`` emits events for instances up to
        ``j + max_delta`` (which must exist), and is only faithful while
        no activity outside the motif becomes ready: the first block in
        which an epilogue activity's final dependency completes is where
        the real event stream departs from the template.
        """
        first, period, count = motif.first, motif.period, motif.count
        end = motif.end
        j_struct = count - 1 - lock.max_delta
        if first == 0 and end == self._n:
            return j_struct
        # Completion-block offsets per slot: activity (slot, q)
        # completes in block q - comp_delta[slot].
        comp_delta = lock.comp_delta
        acts = self.activities
        done = state.done
        perturb = count  # effectively +inf
        ready_block: Dict[int, int] = {}
        for outside in (range(0, first), range(end, self._n)):
            for i in outside:
                if done[i]:
                    continue
                block = -1
                unconstrained = True
                for d in set(acts[i].deps):
                    if done[d]:
                        continue
                    unconstrained = False
                    if first <= d < end:
                        q, s = divmod(d - first, period)
                        block = max(block, q - comp_delta[s])
                    else:
                        # A chained (or forward) non-motif dependency:
                        # use its readiness block when known, otherwise
                        # assume it could fire immediately — conservative
                        # either way, because an underestimate only
                        # shrinks the composition window.
                        block = max(block, ready_block.get(d, -1))
                if unconstrained:
                    # All deps done yet the activity is not running or
                    # parked: it would be alive in the engine state,
                    # which the lock fingerprint rejected — unreachable,
                    # but keep the conservative reading.
                    block = -1
                ready_block[i] = block
                if block < perturb:
                    perturb = block
        return min(j_struct, perturb - 1)


class _Lock:
    """The steady-state template captured at lock-in."""

    __slots__ = (
        "boundary",        # instance index whose block is the template
        "block_start_it",  # first iteration index of the template block
        "events",          # [(starts, dt, tie, comps)] in shift coords
        "max_delta",       # deepest instance look-ahead in the template
        "comp_delta",      # per-slot completion block offset
        "state",           # canonical boundary fingerprint (shift coords)
    )

    def __init__(self):
        self.boundary = -1
        self.block_start_it = -1
        self.events: List[tuple] = []
        self.max_delta = 0
        self.comp_delta: List[int] = []
        self.state = None


class _LoopState:
    """The event loop of :class:`Engine`, recording and resumable.

    This mirrors ``Engine._run``'s no-failure path operation for
    operation (same heap entries, same left-to-right shared-total
    accumulation, same completion thresholds, same wake cascades) so
    spans stay bit-identical; ``tests/test_compiled_engine`` pins that.
    On top it tracks per-iteration event records and instance-completion
    boundaries, and can rebuild its structures from a template
    fingerprint to resume after replayed blocks.

    Resource tables and per-activity exclusive/shared structures are
    interned lazily, on first touch: activities whose spans come from
    the composed path never pay for it.
    """

    def __init__(self, owner: CompiledEngine, motif: _Motif):
        self.owner = owner
        self.motif = motif
        acts = owner.activities
        n = owner._n
        self.durations: List[float] = owner._durations.tolist()
        # Lazily-interned per-activity structures and resource tables.
        self.res_index: Dict[str, int] = {}
        self.exclusives: List[Optional[Tuple[int, ...]]] = [None] * n
        self.shareds: List[Optional[Dict[int, float]]] = [None] * n
        self.busy: List[bool] = []
        self.wait_q: List[list] = []
        self.members: List[Dict[int, float]] = []
        self.factors: List[float] = []
        self.capacities: List[Optional[float]] = []
        self._build_deps()
        self.running: Dict[int, List[float]] = {}
        self.wake_origin: Dict[int, int] = {}
        self.changed: set = set()
        self.spans: List[Span] = []
        self.finished = 0
        self.now = 0.0
        self.observed = _wait_sink()
        self._obs_base = len(self.observed) if self.observed is not None else 0
        self.steps = 0
        self.max_steps = 10 * n + 100
        # --- recording side ---
        self.times: List[float] = []           # time after each iteration
        self.ready_iter: List[int] = [-1] * n  # iteration that readied i
        self.start_iter: List[int] = [0] * n
        self.start_time = np.zeros(n, dtype=np.float64)
        self.done = bytearray(n)
        self.it = -1
        self.inst_done = [0] * motif.count
        self.next_boundary = 0
        self.max_touched = -1
        self.motif_dead = False
        self._cols: Optional[tuple] = None

    def _columns(self) -> tuple:
        """Per-activity attribute columns for bulk span materialization.

        Built on first use by one sequential pass per attribute over the
        activity list (cache-friendly), then reused by every replay.
        """
        cols = self._cols
        if cols is None:
            acts = self.owner.activities
            cols = (
                [a.label for a in acts],
                [a.meta for a in acts],
            )
            self._cols = cols
        return cols

    def _build_deps(self) -> None:
        """Dependency counters, reverse edges, and the initial ready heap.

        Full-cover trusted motifs (``repeat_program`` output) derive
        everything from one steady instance: per-slot dependency counts
        and per-slot relative children, applied by shift arithmetic on
        demand. Anything else gets the engine's eager O(activities)
        reverse-edge build.
        """
        owner = self.owner
        acts = owner.activities
        n = owner._n
        motif = self.motif
        p = motif.period
        count = motif.count
        if motif.trusted and motif.first == 0 and motif.end == n and count >= 3:
            # Children offsets relative to an instance base, valid for
            # instances 0..count-2 (scan instances 1 and 2: intra-
            # instance children plus next-instance entry edges — the
            # trusted shift-isomorphism makes the pattern universal,
            # including instance 0, whose own deps differ but whose
            # children pattern does not).
            rel: List[List[int]] = [[] for _ in range(p)]
            for j in range(p, 3 * p):
                for d in set(acts[j].deps):
                    if d < 0 or d >= n:
                        raise SimulationError(
                            f"activity {acts[j].label!r} depends on "
                            f"unknown id {d}"
                        )
                    if p <= d < 2 * p:
                        rel[d - p].append(j - p)
            # The last instance has no successor: intra edges only.
            rel_last = [[o for o in offs if o < p] for offs in rel]
            self._rel = rel
            self._rel_last = rel_last
            counts0 = []
            for s in range(p):
                for d in set(acts[s].deps):
                    if d < 0 or d >= n:
                        raise SimulationError(
                            f"activity {acts[s].label!r} depends on "
                            f"unknown id {d}"
                        )
                counts0.append(len(set(acts[s].deps)))
            counts1 = [len(set(acts[p + s].deps)) for s in range(p)]
            dep_count = counts0 + counts1 * (count - 1)
            self.dep_count = dep_count
            roots = [s for s in range(p) if not counts0[s]]
            if any(not c for c in counts1):
                free = [s for s in range(p) if not counts1[s]]
                for k in range(1, count):
                    base = k * p
                    roots.extend(base + s for s in free)
            self._children = self._template_children
        else:
            dependents: List[List[int]] = [[] for _ in range(n)]
            dep_count = [0] * n
            for i, act in enumerate(acts):
                unique = set(act.deps)
                dep_count[i] = len(unique)
                for d in unique:
                    if d < 0 or d >= n:
                        raise SimulationError(
                            f"activity {act.label!r} depends on "
                            f"unknown id {d}"
                        )
                    dependents[d].append(i)
            self.dep_count = dep_count
            roots = [i for i in range(n) if not dep_count[i]]
            self._children = dependents.__getitem__
        self.ready_heap: List[Tuple[float, int, int]] = [
            (0.0, i, i) for i in roots
        ]
        heapq.heapify(self.ready_heap)

    def _template_children(self, i: int) -> List[int]:
        p = self.motif.period
        k, s = divmod(i, p)
        base = i - s
        offs = self._rel[s] if k < self.motif.count - 1 else self._rel_last[s]
        return [base + o for o in offs]

    def _intern(self, i: int) -> None:
        """First-touch interning of activity ``i``'s resource structure."""
        act = self.owner.activities[i]
        res_index = self.res_index
        excl = []
        for name in act.exclusive:
            r = res_index.get(name)
            if r is None:
                r = self._add_resource(name)
            excl.append(r)
        self.exclusives[i] = tuple(excl)
        shared: Dict[int, float] = {}
        for name, demand in act.shared.items():
            r = res_index.get(name)
            if r is None:
                r = self._add_resource(name)
            shared[r] = demand
        self.shareds[i] = shared

    def _add_resource(self, name: str) -> int:
        r = self.res_index[name] = len(self.res_index)
        self.busy.append(False)
        self.wait_q.append([])
        self.members.append({})
        self.factors.append(1.0)
        self.capacities.append(self.owner.shared_capacities.get(name))
        return r

    def discard_observations(self) -> None:
        """Drop queue waits recorded by an aborted composed attempt."""
        if self.observed is not None:
            del self.observed[self._obs_base:]

    # -------------------------------------------------------- event loop

    def _iterate(self, record: bool):
        """One engine iteration, mirroring ``Engine._run``'s loop body.

        Returns ``("done", None, None)`` when the program completed,
        ``("boundary", q, event)`` when instance ``q``'s completion
        boundary was crossed, else ``("step", event, None)``. ``event``
        is the iteration record ``(starts, dt, tie, completions)`` when
        ``record`` is set, else ``None``.
        """
        owner = self.owner
        exclusives = self.exclusives
        shareds = self.shareds
        running = self.running
        busy = self.busy
        wait_q = self.wait_q
        wake_origin = self.wake_origin
        members = self.members
        changed = self.changed
        heappush = heapq.heappush
        heappop = heapq.heappop
        ready_heap = self.ready_heap
        observed = self.observed
        now = self.now
        durations = self.durations
        acts = owner.activities
        n_acts = owner._n

        self.steps += 1
        if self.steps > self.max_steps:
            raise SimulationError(
                "simulation did not converge (internal error)"
            )

        ev_starts: List[Tuple[int, int]] = []
        it_next = self.it + 1
        start_iter = self.start_iter
        start_time = self.start_time
        ready_iter = self.ready_iter
        while ready_heap:
            item = heappop(ready_heap)
            i = item[2]
            origin = wake_origin.pop(i, -1) if wake_origin else -1
            exclusive = exclusives[i]
            if exclusive is None:
                self._intern(i)
                exclusive = exclusives[i]
            blocked_on = -1
            for r in exclusive:
                if busy[r]:
                    blocked_on = r
                    break
            if blocked_on >= 0:
                heappush(wait_q[blocked_on], item)
                if origin >= 0 and not busy[origin]:
                    queue = wait_q[origin]
                    if queue:
                        nxt = heappop(queue)
                        wake_origin[nxt[2]] = origin
                        heappush(ready_heap, nxt)
                continue
            for r in exclusive:
                busy[r] = True
            if observed is not None:
                observed.append((acts[i].kind, now - item[0]))
            duration = durations[i]
            running[i] = [
                now,
                duration if duration > 0.0 else 0.0,
                _EPS * (duration if duration > 1.0 else 1.0),
                1.0,
            ]
            shared = shareds[i]
            if shared:
                for r, demand in shared.items():
                    members[r][i] = demand
                    changed.add(r)
            start_iter[i] = it_next
            start_time[i] = now
            if record:
                ev_starts.append((i, ready_iter[i]))

        if not running:
            unresolved = [
                acts[i].label for i in range(n_acts) if self.dep_count[i]
            ]
            if unresolved:
                raise SimulationError(
                    f"dependency cycle or starvation among: {unresolved[:5]}"
                )
            if self.finished == n_acts:
                return ("done", None, None)
            raise SimulationError("no runnable activities but work remains")

        if changed:
            dirty: set = set()
            factors = self.factors
            capacities = self.capacities
            for r in changed:
                consumers = members[r]
                if not consumers:
                    continue
                total = 0.0
                for demand in consumers.values():
                    total = total + demand
                capacity = capacities[r]
                if capacity is None or total <= capacity or total <= 0:
                    factors[r] = 1.0
                else:
                    factors[r] = capacity / total
                dirty.update(consumers)
            changed.clear()
            for i in dirty:
                state = running.get(i)
                if state is None:
                    continue
                rate = 1.0
                for r in shareds[i]:
                    factor = factors[r]
                    if factor < rate:
                        rate = factor
                state[3] = rate if rate > _EPS else _EPS

        dt = float("inf")
        for state in running.values():
            quotient = state[1] / state[3]
            if quotient < dt:
                dt = quotient
        if dt < 0:
            raise SimulationError("negative time step (internal error)")
        prev_now = now
        now += dt
        self.now = now
        self.it = it_next
        self.times.append(now)
        completed: List[int] = []
        for i, state in running.items():
            remaining = state[1] - state[3] * dt
            state[1] = remaining
            if remaining <= state[2]:
                completed.append(i)

        motif = self.motif
        first, period, end = motif.first, motif.period, motif.end
        boundary = -1
        done = self.done
        spans = self.spans
        dep_count = self.dep_count
        children_of = self._children
        inst_done = self.inst_done
        freed: List[int] = []
        for i in completed:
            state = running.pop(i)
            act = acts[i]
            for r in exclusives[i]:
                busy[r] = False
                freed.append(r)
            shared = shareds[i]
            if shared:
                for r in shared:
                    del members[r][i]
                    changed.add(r)
            spans.append(
                Span(
                    i, act.label, act.kind, state[0], now,
                    act.exclusive, act.meta,
                )
            )
            self.finished += 1
            done[i] = 1
            if first <= i < end:
                q = (i - first) // period
                if q > self.max_touched:
                    self.max_touched = q
                filled = inst_done[q] + 1
                inst_done[q] = filled
                if filled == period:
                    if q != self.next_boundary or boundary >= 0:
                        # Out-of-order or simultaneous boundaries: the
                        # steady-state model does not apply; keep
                        # simulating without composition.
                        self.motif_dead = True
                    else:
                        boundary = q
                        self.next_boundary = q + 1
            for child in children_of(i):
                count = dep_count[child] - 1
                dep_count[child] = count
                if not count:
                    heappush(ready_heap, (now, child, child))
                    ready_iter[child] = it_next
        for r in freed:
            queue = wait_q[r]
            if queue:
                nxt = heappop(queue)
                wake_origin[nxt[2]] = r
                heappush(ready_heap, nxt)

        event = None
        if record:
            event = (tuple(ev_starts), dt, now == prev_now, tuple(completed))
        if boundary >= 0 and not self.motif_dead:
            return ("boundary", boundary, event)
        return ("step", event, None)

    def run_to_completion(self) -> None:
        """Drain the loop without recording (tail instances, epilogue)."""
        while self._iterate(False)[0] != "done":
            pass

    # ------------------------------------------------------------ lock-in

    def run_until_lock(self) -> Optional[_Lock]:
        """Simulate with recording until consecutive instance boundaries
        are shift-isomorphic; returns the template or ``None`` when the
        program finished (or composition became impossible) first.

        Lock-in needs two consecutive boundaries with identical
        canonical state fingerprints: determinism plus shift-isomorphic
        remaining structure then forces every later block to repeat the
        one just recorded. For unverified (untrusted, signature-scanned)
        motifs that's already established; the recorded event blocks
        must match too, as a belt-and-suspenders dynamic check.
        """
        trusted = self.motif.trusted
        cur_events: List[tuple] = []
        block_start_it = 0
        prev: Optional[Tuple[Optional[list], Optional[tuple]]] = None
        while True:
            tag, a, b = self._iterate(True)
            if tag == "done":
                return None
            if tag == "step":
                if self.motif_dead:
                    self.run_to_completion()
                    return None
                cur_events.append(a)
                continue
            q = a
            cur_events.append(b)
            canon = self._canon_block(cur_events, q, block_start_it)
            fp = self._fingerprint(q) if canon is not None else None
            if (
                prev is not None
                and fp is not None
                and prev[1] == fp
                and (trusted or prev[0] == canon)
            ):
                lock = self._make_lock(q, block_start_it, canon, fp)
                if lock is not None:
                    return lock
            prev = (canon, fp)
            cur_events = []
            block_start_it = self.it + 1

    def _canon_block(self, events, q: int, block_start_it: int):
        """Instance block in shift coordinates; ``None`` if it touches
        anything outside the motif (then this boundary cannot lock)."""
        motif = self.motif
        first, period, end = motif.first, motif.period, motif.end
        out = []
        for starts, dt, tie, comps in events:
            cs = []
            for i, ri in starts:
                if not first <= i < end or ri < 0:
                    return None
                inst, slot = divmod(i - first, period)
                delta = inst - q
                if delta < 0 or delta > MAX_LOOKAHEAD:
                    return None
                cs.append((slot, delta, ri - block_start_it))
            cc = []
            for i in comps:
                if not first <= i < end:
                    return None
                inst, slot = divmod(i - first, period)
                delta = inst - q
                if delta < 0 or delta > MAX_LOOKAHEAD:
                    return None
                cc.append((slot, delta))
            out.append((tuple(cs), dt, tie, tuple(cc)))
        return out

    def _fingerprint(self, q: int):
        """Canonical engine state at instance ``q``'s boundary.

        Everything the event loop will ever read again, in shift
        coordinates: the running table (insertion order, remaining/
        threshold/rate values, start-iteration offsets), ready heap and
        wait queues (as sorted multisets — heap pop order is layout-
        independent), wake origins, shared-membership insertion order,
        contention factors of populated resources, the changed set, and
        the done flags of partially-executed future instances. ``None``
        when any non-motif activity is still alive — those boundaries
        cannot be steady.
        """
        motif = self.motif
        first, period, end = motif.first, motif.period, motif.end
        count = motif.count
        it_b = self.it
        lookahead = self.max_touched - q
        if lookahead > MAX_LOOKAHEAD:
            return None
        start_iter = self.start_iter
        ready_iter = self.ready_iter

        def coord(i: int):
            if not first <= i < end:
                return None
            inst, slot = divmod(i - first, period)
            delta = inst - q
            if delta < 0 or delta > MAX_LOOKAHEAD:
                return None
            return slot, delta

        run_items = []
        for i, st in self.running.items():
            c = coord(i)
            if c is None:
                return None
            run_items.append(
                (c[0], c[1], start_iter[i] - it_b, st[1], st[2], st[3])
            )
        heap_items = []
        for item in self.ready_heap:
            i = item[2]
            c = coord(i)
            if c is None or ready_iter[i] < 0:
                return None
            heap_items.append((c[0], c[1], ready_iter[i] - it_b))
        heap_items.sort()
        waitq_items = []
        for r, queue in enumerate(self.wait_q):
            if not queue:
                continue
            entries = []
            for item in queue:
                i = item[2]
                c = coord(i)
                if c is None or ready_iter[i] < 0:
                    return None
                entries.append((c[0], c[1], ready_iter[i] - it_b))
            entries.sort()
            waitq_items.append((r, tuple(entries)))
        wake_items = []
        for i, r in self.wake_origin.items():
            c = coord(i)
            if c is None:
                return None
            wake_items.append((c[0], c[1], r))
        wake_items.sort()
        member_items = []
        factor_items = []
        for r, consumers in enumerate(self.members):
            if not consumers:
                continue
            entry = []
            for i in consumers:
                c = coord(i)
                if c is None:
                    return None
                entry.append(c)
            member_items.append((r, tuple(entry)))
            factor_items.append((r, self.factors[r]))
        done = self.done
        pattern = tuple(
            tuple(done[first + (q + d) * period + s] for s in range(period))
            for d in range(1, lookahead + 1)
            if q + d < count
        )
        return (
            tuple(run_items),
            tuple(heap_items),
            tuple(waitq_items),
            tuple(wake_items),
            tuple(member_items),
            tuple(factor_items),
            tuple(sorted(self.changed)),
            pattern,
        )

    def _make_lock(self, q, block_start_it, canon, fp) -> Optional[_Lock]:
        """Assemble the template; reject degenerate steady states.

        A valid steady block starts and completes each motif slot
        exactly once (one instance's worth of work per block) — anything
        else means the "steady" match was coincidental.
        """
        period = self.motif.period
        if not canon:
            return None
        start_slots: Dict[int, int] = {}
        comp_slots: Dict[int, int] = {}
        max_delta = 0
        for starts, _dt, _tie, comps in canon:
            for slot, delta, _roff in starts:
                if slot in start_slots:
                    return None
                start_slots[slot] = delta
                if delta > max_delta:
                    max_delta = delta
            for slot, delta in comps:
                if slot in comp_slots:
                    return None
                comp_slots[slot] = delta
                if delta > max_delta:
                    max_delta = delta
        if len(start_slots) != period or len(comp_slots) != period:
            return None
        for item in fp[0]:
            if item[1] > max_delta:
                max_delta = item[1]
        for item in fp[1]:
            if item[1] > max_delta:
                max_delta = item[1]
        for _r, entries in fp[2]:
            for item in entries:
                if item[1] > max_delta:
                    max_delta = item[1]
        for item in fp[3]:
            if item[1] > max_delta:
                max_delta = item[1]
        for _r, entries in fp[4]:
            for item in entries:
                if item[1] > max_delta:
                    max_delta = item[1]
        lock = _Lock()
        lock.boundary = q
        lock.block_start_it = block_start_it
        lock.events = canon
        lock.max_delta = max_delta
        lock.comp_delta = [comp_slots[s] for s in range(period)]
        lock.state = fp
        return lock

    # ------------------------------------------------------------- replay

    def replay(self, lock: _Lock, j_stop: int) -> bool:
        """Emit blocks ``boundary+1 .. j_stop`` from the template.

        Times are re-accumulated with the frozen per-event dts in the
        engine's own summation order (a single ``cumsum`` seeded with
        the current clock — bit-identical to the sequential loop), so
        every replayed span boundary carries the exact bits full
        simulation would produce. Returns ``False`` if the recorded
        time-tie pattern is violated (floating-point absorption would
        change heap ordering) — the caller then falls back to full
        simulation. The fast path below never mutates state before that
        verdict; the wait-recording variant mirrors the live loop
        instead, because queue-wait observations interleave with span
        emission.
        """
        if self.observed is not None:
            return self._replay_recording(lock, j_stop)
        motif = self.motif
        first, period = motif.first, motif.period
        events = lock.events
        n_events = len(events)
        n_blocks = j_stop - lock.boundary
        # Per-block template arrays, in event order.
        dts = np.fromiter((e[1] for e in events), np.float64, count=n_events)
        ties = np.fromiter((e[2] for e in events), np.bool_, count=n_events)
        s_off: List[int] = []   # slot + delta*period, start entries
        s_evt: List[int] = []   # owning event index
        c_off: List[int] = []   # slot + delta*period, completion entries
        c_evt: List[int] = []
        for e, (starts, _dt, _tie, _comps) in enumerate(events):
            for slot, delta, _roff in starts:
                s_off.append(delta * period + slot)
                s_evt.append(e)
        for e, (_starts, _dt, _tie, comps) in enumerate(events):
            for slot, delta in comps:
                c_off.append(delta * period + slot)
                c_evt.append(e)
        # One sequential accumulation for every replayed event:
        # buf = [now, dt, dt, ...]; cumsum matches `now += dt` bit-wise.
        buf = np.empty(n_blocks * n_events + 1, dtype=np.float64)
        buf[0] = self.now
        buf[1:] = np.tile(dts, n_blocks)
        full = np.cumsum(buf)
        observed_ties = full[1:] == full[:-1]
        if not np.array_equal(observed_ties, np.tile(ties, n_blocks)):
            return False
        # Absolute activity ids and times, all blocks at once.
        rows = (
            first
            + np.arange(lock.boundary + 1, j_stop + 1, dtype=np.int64) * period
        )
        ev_base = np.arange(n_blocks, dtype=np.int64)[:, None] * n_events
        s_gis = (rows[:, None] + np.asarray(s_off, dtype=np.int64)).ravel()
        s_t = full[(ev_base + np.asarray(s_evt, dtype=np.int64)).ravel()]
        start_time = self.start_time
        start_time[s_gis] = s_t
        c_gis = (rows[:, None] + np.asarray(c_off, dtype=np.int64)).ravel()
        c_t = full[(ev_base + np.asarray(c_evt, dtype=np.int64) + 1).ravel()]
        np.frombuffer(self.done, dtype=np.uint8)[c_gis] = 1
        # Materialize the spans (the only per-activity Python work):
        # block-major argument lists fed to ``map(Span._make, zip(...))``
        # so the span records are built by the C-level tuple machinery.
        # Attribute columns come from one sequential pass over the
        # activities (:meth:`_columns`) and are gathered list-to-list —
        # chasing 10^5 ``Activity`` objects in replay order thrashes the
        # cache. Trusted motifs (``repeat_program`` clones) share their
        # ``kind`` strings and ``exclusive`` tuples across instances, so
        # those columns are a per-block template repeated by list
        # multiplication.
        labels_all, metas_all = self._columns()
        acts = self.owner.activities
        gis = c_gis.tolist()
        if motif.trusted:
            t_acts = [acts[g] for g in gis[: len(c_off)]]
            kinds = [a.kind for a in t_acts] * n_blocks
            excls = [a.exclusive for a in t_acts] * n_blocks
        else:
            acts_g = [acts[g] for g in gis]
            kinds = [a.kind for a in acts_g]
            excls = [a.exclusive for a in acts_g]
        self.spans.extend(
            map(
                Span._make,
                zip(
                    gis,
                    [labels_all[g] for g in gis],
                    kinds,
                    start_time[c_gis].tolist(),
                    c_t.tolist(),
                    excls,
                    [metas_all[g] for g in gis],
                ),
            )
        )
        self.times.extend(full[1:].tolist())
        self.finished += n_blocks * period
        self.now = float(full[-1])
        self.it = len(self.times) - 1
        return True

    def _replay_recording(self, lock: _Lock, j_stop: int) -> bool:
        """Replay variant that also emits queue-wait observations."""
        motif = self.motif
        first, period = motif.first, motif.period
        events = lock.events
        times = self.times
        observed = self.observed
        spans = self.spans
        acts = self.owner.activities
        done = self.done
        start_time = self.start_time
        now = self.now
        finished = self.finished
        for j in range(lock.boundary + 1, j_stop + 1):
            block_start = len(times)
            row = first + j * period
            for starts, dt, tie, comps in events:
                for slot, delta, roff in starts:
                    gi = row + delta * period + slot
                    start_time[gi] = now
                    ref = block_start + roff
                    rt = times[ref] if ref >= 0 else 0.0
                    observed.append((acts[gi].kind, now - rt))
                prev = now
                now = now + dt
                if (now == prev) != tie:
                    self.now = now
                    self.it = len(times) - 1
                    return False
                times.append(now)
                for slot, delta in comps:
                    gi = row + delta * period + slot
                    act = acts[gi]
                    spans.append(
                        Span(
                            gi, act.label, act.kind,
                            float(start_time[gi]), now,
                            act.exclusive, act.meta,
                        )
                    )
                    done[gi] = 1
                    finished += 1
        self.now = now
        self.finished = finished
        self.it = len(times) - 1
        return True

    def resume_from(self, lock: _Lock, j_stop: int) -> None:
        """Rebuild live engine state at boundary ``j_stop`` from the
        template fingerprint and the replayed absolute times."""
        owner = self.owner
        motif = self.motif
        first, period = motif.first, motif.period
        acts = owner.activities
        times = self.times
        it_res = len(times) - 1
        self.it = it_res
        n = owner._n
        n_res = len(self.busy)
        (run_items, heap_items, waitq_items, wake_items,
         member_items, factor_items, changed_items, _pattern) = lock.state

        def gi_of(slot: int, delta: int) -> int:
            return first + (j_stop + delta) * period + slot

        def t_of(off: int) -> float:
            idx = it_res + off
            return times[idx] if idx >= 0 else 0.0

        running: Dict[int, List[float]] = {}
        busy = [False] * n_res
        for slot, delta, start_off, remaining, threshold, rate in run_items:
            gi = gi_of(slot, delta)
            start_t = t_of(start_off - 1)
            running[gi] = [start_t, remaining, threshold, rate]
            self.start_iter[gi] = it_res + start_off
            self.start_time[gi] = start_t
            if self.exclusives[gi] is None:
                self._intern(gi)
            for r in self.exclusives[gi]:
                busy[r] = True
        ready_heap = []
        for slot, delta, roff in heap_items:
            gi = gi_of(slot, delta)
            self.ready_iter[gi] = it_res + roff
            ready_heap.append((t_of(roff), gi, gi))
        heapq.heapify(ready_heap)
        wait_q: List[list] = [[] for _ in range(n_res)]
        for r, entries in waitq_items:
            parked = []
            for slot, delta, roff in entries:
                gi = gi_of(slot, delta)
                self.ready_iter[gi] = it_res + roff
                parked.append((t_of(roff), gi, gi))
            heapq.heapify(parked)
            wait_q[r] = parked
        wake_origin: Dict[int, int] = {}
        for slot, delta, r in wake_items:
            wake_origin[gi_of(slot, delta)] = r
        members: List[Dict[int, float]] = [{} for _ in range(n_res)]
        for r, entries in member_items:
            table = members[r]
            for slot, delta in entries:
                gi = gi_of(slot, delta)
                if self.shareds[gi] is None:
                    self._intern(gi)
                table[gi] = self.shareds[gi][r]
        factors = [1.0] * n_res
        for r, value in factor_items:
            factors[r] = value
        # Dependency recount: only not-yet-done activities can still be
        # waiting, and after composition those are the drain instances
        # plus the epilogue — a direct scan over the survivors beats
        # a full-program recount.
        done = self.done
        dep_count = [0] * n
        remaining_ids = np.flatnonzero(
            np.frombuffer(done, dtype=np.uint8) == 0
        ).tolist()
        for i in remaining_ids:
            if i in running:
                continue
            c = 0
            for d in set(acts[i].deps):
                if 0 <= d < n:
                    if not done[d]:
                        c += 1
                else:
                    raise SimulationError(
                        f"activity {acts[i].label!r} depends on "
                        f"unknown id {d}"
                    )
            dep_count[i] = c
        self.dep_count = dep_count
        self.running = running
        self.busy = busy
        self.ready_heap = ready_heap
        self.wait_q = wait_q
        self.wake_origin = wake_origin
        self.members = members
        self.factors = factors
        self.changed = set(changed_items)
        self.now = times[-1]


# --------------------------------------------------------------------------
# Engine selection
# --------------------------------------------------------------------------

#: Valid engine names for ``Program.execute`` / ``cluster.simulate`` /
#: the CLI ``--engine`` flag.
ENGINE_NAMES = ("heap", "compiled")

_default_engine: Optional[str] = None


def default_engine() -> str:
    """The process-wide engine choice.

    Resolution order: :func:`set_default_engine`, then the
    ``REPRO_ENGINE`` environment variable, then ``"heap"``.
    """
    if _default_engine is not None:
        return _default_engine
    import os

    env = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if env in ENGINE_NAMES:
        return env
    return "heap"


def set_default_engine(name: Optional[str]) -> None:
    """Set (or with ``None`` reset) the process-wide engine choice."""
    global _default_engine
    if name is not None and name not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {ENGINE_NAMES}"
        )
    _default_engine = name
