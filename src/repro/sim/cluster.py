"""Cluster-level simulation results.

Wraps a program execution into the metrics the paper reports: makespan,
per-chip FLOPs, FLOP utilization (achieved throughput over the cluster's
peak, Section 5.1.1), and the communication breakdown of Figure 10.

:func:`simulate` is also where the observability layer taps the
simulator: each engine execution's queue waits are captured, derived
per-run metrics are attached as :attr:`SimResult.metrics`, and the
process-wide registry counters/histograms are bumped. With
``REPRO_NO_METRICS=1`` all of that collapses to nothing and the spans
are byte-for-byte what they always were.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional

from repro.hw.params import HardwareParams
from repro.obs.derive import RunMetrics, derive_run_metrics
from repro.obs.hooks import capture_waits
from repro.obs.registry import registry
from repro.sim.engine import SimFailure, Span, makespan
from repro.sim.program import Program
from repro.sim.trace import CommBreakdown, Trace

if TYPE_CHECKING:  # pragma: no cover - avoid the sim <-> faults cycle
    from repro.faults.plan import FaultPlan


@dataclasses.dataclass
class SimResult:
    """Outcome of simulating one program on one representative chip."""

    hw: HardwareParams
    spans: List[Span]
    makespan: float
    flops_per_chip: float
    failure: Optional[SimFailure] = None
    #: Derived observability metrics of this execution (utilization,
    #: overlap fraction, queue waits, ...). ``None`` when metrics were
    #: disabled (``REPRO_NO_METRICS``) at simulation time; everything
    #: span-derivable can still be recomputed via
    #: ``repro.obs.derive_run_metrics(result.spans)``.
    metrics: Optional[RunMetrics] = None

    @property
    def completed(self) -> bool:
        """Whether the run finished (no hard fault killed it)."""
        return self.failure is None

    @property
    def trace(self) -> Trace:
        """The execution's spans wrapped for analysis and export."""
        return Trace.from_spans(self.spans)

    @property
    def compute_seconds(self) -> float:
        """Wall-clock time the core spent in GeMM kernels."""
        return self.trace.compute_time()

    @property
    def comm(self) -> CommBreakdown:
        """Total (overlapped plus non-overlapped) communication time."""
        return self.trace.breakdown()

    def flop_utilization(self, peak_flops: float = None) -> float:
        """Achieved GeMM throughput over peak chip throughput.

        Because every chip performs the same amount of compute, the
        per-chip ratio equals the cluster-level FLOP utilization the
        paper reports.
        """
        peak = peak_flops if peak_flops is not None else self.hw.peak_flops
        if self.makespan <= 0 or self.failure is not None:
            # A killed step produced no usable work: the whole step is
            # re-executed after recovery, so its utilization is zero.
            return 0.0
        return self.flops_per_chip / (self.makespan * peak)


def simulate(
    program: Program,
    hw: HardwareParams,
    faults: Optional["FaultPlan"] = None,
    engine: Optional[str] = None,
) -> SimResult:
    """Run ``program`` and collect cluster metrics.

    ``faults`` executes the program under a
    :class:`repro.faults.FaultPlan` (see :meth:`Program.run`); the
    recorded per-chip FLOPs are unchanged, so ``flop_utilization``
    naturally reports the degradation.

    ``engine`` selects the simulation engine (``"heap"`` or
    ``"compiled"``); ``None`` uses the process default (see
    :func:`repro.sim.compiled.default_engine`). Both engines produce
    bit-identical spans, so every derived metric is engine-agnostic.

    If the plan carries hard faults (or an exhaustible retry policy)
    and the run dies, the result's ``failure`` field holds the
    structured :class:`SimFailure` and ``makespan`` is the failure
    time — the wall clock the cluster burned before halting.
    """
    with capture_waits() as waits:
        spans, failure = program.execute(faults, engine=engine)
    metrics = None
    if waits is not None:
        metrics = derive_run_metrics(spans, waits)
        reg = registry()
        reg.inc("sim.runs")
        reg.inc("sim.activities", float(len(spans)))
        if faults is not None and not faults.is_null:
            reg.inc("sim.faulted_runs")
        if failure is not None:
            reg.inc(
                "sim.failures",
                labels={"kind": failure.kind, "resource": failure.resource},
            )
        for kind, wait in waits:
            reg.observe(
                "engine.queue_wait_seconds", wait, labels={"kind": kind}
            )
    return SimResult(
        hw=hw,
        spans=spans,
        makespan=failure.time if failure is not None else makespan(spans),
        flops_per_chip=program.total_flops,
        failure=failure,
        metrics=metrics,
    )


def combined_utilization(results: List[SimResult]) -> float:
    """FLOP utilization of a sequence of GeMMs executed back to back.

    Used to aggregate the forward, backward-data, and backward-weight
    GeMMs of all FC layers into one utilization number, as in Figure 9.
    """
    if not results:
        raise ValueError("need at least one result")
    total_time = sum(r.makespan for r in results)
    total_flops = sum(r.flops_per_chip for r in results)
    peak = results[0].hw.peak_flops
    if total_time <= 0:
        return 0.0
    return total_flops / (total_time * peak)
