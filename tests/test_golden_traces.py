"""Golden-trace regression tests: pinned Chrome-trace exports.

Three canonical programs — MeshSlice output-stationary, SUMMA, and
Cannon, each computing the same 4096^3 GeMM on a 4x4 TPUv4 mesh — are
simulated and their full Chrome-trace JSON (span tracks, metadata, and
derived counter tracks) compared byte-for-byte against files pinned
under ``tests/goldens/``. Any change to the engine's scheduling, the
program builders, the cost models, or the trace exporter shows up here
as a diff against the golden.

When a change is intentional, regenerate with::

    pytest tests/test_golden_traces.py --update-goldens

and review the golden diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro import Mesh2D, TPUV4, get_algorithm, simulate
from repro.algorithms.base import GeMMConfig
from repro.core import Dataflow, GeMMShape

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: name -> (algorithm, slice count) of the canonical 4x4 programs.
CANONICAL = {
    "meshslice_os_4x4": ("meshslice", 4),
    "summa_4x4": ("summa", 4),
    "cannon_4x4": ("cannon", 1),
}


def _canonical_events(algorithm, slices):
    cfg = GeMMConfig(
        shape=GeMMShape(4096, 4096, 4096),
        mesh=Mesh2D(4, 4),
        dataflow=Dataflow.OS,
        slices=slices,
    )
    program = get_algorithm(algorithm).build_program(cfg, TPUV4)
    return simulate(program, TPUV4).trace.to_chrome()


def _render(events):
    return json.dumps(events, sort_keys=True, indent=1) + "\n"


@pytest.mark.parametrize("name", sorted(CANONICAL))
def test_chrome_trace_matches_golden(name, update_goldens):
    algorithm, slices = CANONICAL[name]
    rendered = _render(_canonical_events(algorithm, slices))
    path = GOLDEN_DIR / f"{name}.json"
    if update_goldens:
        path.parent.mkdir(exist_ok=True)
        path.write_text(rendered)
        pytest.skip(f"updated {path.name}")
    assert path.exists(), (
        f"golden {path.name} missing; generate it with "
        "pytest --update-goldens"
    )
    assert rendered == path.read_text(), (
        f"{name}'s Chrome trace drifted from {path.name}; if the change "
        "is intentional, regenerate with pytest --update-goldens and "
        "review the golden diff"
    )


@pytest.mark.parametrize("name", sorted(CANONICAL))
def test_goldens_carry_all_event_phases(name):
    """Each pinned file has span, metadata, and counter events."""
    path = GOLDEN_DIR / f"{name}.json"
    events = json.loads(path.read_text())
    phases = {e["ph"] for e in events}
    assert phases == {"X", "M", "C"}


def test_goldens_are_loadable_and_sorted():
    """Golden files parse and render exactly as pinned (no drift in
    the canonical serialization itself)."""
    for name in CANONICAL:
        path = GOLDEN_DIR / f"{name}.json"
        events = json.loads(path.read_text())
        assert _render(events) == path.read_text()
