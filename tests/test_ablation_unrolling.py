"""Tests for the loop-unrolling ablation (Section 4.2)."""

import pytest

from repro.experiments.ablation_unrolling import (
    natural_iterations,
    run,
    unrolling_speedup,
)
from repro.mesh import Mesh2D


class TestUnrolling:
    def test_summa_gains_substantially(self):
        rows = run()
        assert unrolling_speedup(rows, "summa") > 0.20

    def test_wang_gains_modestly(self):
        rows = run()
        speedup = unrolling_speedup(rows, "wang")
        assert -0.01 <= speedup < 0.20

    def test_natural_counts(self):
        mesh = Mesh2D(4, 64)
        assert natural_iterations("wang", mesh, None) == 64
        assert natural_iterations("summa", mesh, None) == 64
        with pytest.raises(ValueError):
            natural_iterations("cannon", mesh, None)

    def test_rows_cover_both_variants(self):
        rows = run()
        variants = {(r.algorithm, r.variant) for r in rows}
        assert ("summa", "natural") in variants
        assert ("summa", "unrolled (paper)") in variants

    def test_main_renders(self):
        from repro.experiments import ablation_unrolling

        report = ablation_unrolling.main()
        assert "unrolling speeds summa" in report
